"""E9 — Starfish-style what-if prediction accuracy (Section II.B).

Paper: Starfish's what-if engine "can answer queries like 'Given the
profile of a job A, input data x, cluster resources c1, what will the
performance of job B be with input data y and cluster resources c2'" but
"showed less accuracy when tried with heterogeneous applications and
cloud workloads" — finding good configurations "hinges on the accuracy
of the what-if engine itself".

This bench profiles each workload once under the probe configuration,
then predicts runtimes for unseen configurations and compares against
ground truth.  Expected shape: decent accuracy near the profiled regime
(same workload, mild config changes), degrading sharply for
configurations that change the execution regime — and a
prediction-driven tuner that is execution-cheap but plateaus above
model-based tuners that learn from real observations.
"""

import numpy as np
import pytest

from repro.analysis import render_table
from repro.config import spark_core_space
from repro.core import probe_configuration
from repro.sparksim import SparkSimulator
from repro.tuning import (
    BayesOptTuner,
    JobProfile,
    SimulationObjective,
    WhatIfEngine,
    run_tuner,
    whatif_tune,
)
from repro.workloads import get_workload

WORKLOADS = ["sort", "bayes", "pagerank"]
N_TEST_CONFIGS = 30


def _accuracy(simulator, cluster, workload, input_mb, mild: bool):
    """Median relative prediction error over random configurations.

    ``mild=True`` restricts test configs to resource sizing near the
    probe (same regime); ``mild=False`` samples the full space (regime
    changes included).
    """
    space = spark_core_space()
    probe = probe_configuration()
    profile_run = simulator.run(workload, input_mb, cluster, probe, seed=1)
    engine = WhatIfEngine(JobProfile.from_execution(profile_run, probe, cluster))
    rng = np.random.default_rng(5 if mild else 6)
    errors = []
    for i in range(N_TEST_CONFIGS):
        if mild:
            config = probe.replace(**{
                "spark.executor.instances": int(rng.integers(4, 13)),
                "spark.executor.cores": int(rng.integers(2, 7)),
                "spark.default.parallelism": int(rng.integers(64, 257)),
            })
        else:
            config = probe.replace(**dict(space.sample_configuration(rng)))
        predicted = engine.predict(config)
        actual = simulator.run(workload, input_mb, cluster, config,
                               seed=100 + i)
        if not actual.success or not np.isfinite(predicted):
            continue
        errors.append(abs(predicted - actual.runtime_s) / actual.runtime_s)
    return float(np.median(errors))


def run_e9(cluster):
    simulator = SparkSimulator()
    accuracy = {}
    for name in WORKLOADS:
        workload = get_workload(name)
        input_mb = workload.inputs.ds1_mb
        accuracy[name] = {
            "mild": _accuracy(simulator, cluster, workload, input_mb, mild=True),
            "full": _accuracy(simulator, cluster, workload, input_mb, mild=False),
        }

    # Tuning comparison on one workload: prediction-driven vs model-based.
    workload = get_workload("sort")
    input_mb = workload.inputs.ds1_mb
    space = spark_core_space()
    obj_wi = SimulationObjective(workload, input_mb, cluster=cluster, seed=50)
    whatif_result = whatif_tune(obj_wi, space, cluster, budget=6, seed=0)
    obj_bo = SimulationObjective(workload, input_mb, cluster=cluster, seed=50)
    bo_result = run_tuner(BayesOptTuner(space, seed=0, n_init=8), obj_bo, budget=25)
    return accuracy, whatif_result, bo_result


@pytest.mark.benchmark(group="e9")
def test_e9_whatif_accuracy(benchmark, paper_cluster):
    accuracy, whatif_result, bo_result = benchmark.pedantic(
        run_e9, args=(paper_cluster,), rounds=1, iterations=1,
    )
    rows = [
        [name, f"{a['mild']:.0%}", f"{a['full']:.0%}"]
        for name, a in accuracy.items()
    ]
    rows.append(["whatif-tuned best (6 execs)", f"{whatif_result.best_cost:.0f}s", ""])
    rows.append(["BO-tuned best (25 execs)", f"{bo_result.best_cost:.0f}s", ""])
    print(render_table(
        "E9: what-if prediction error (median relative) — near-regime vs full space",
        ["workload / tuner", "near-regime", "full space"], rows,
    ))

    for a in accuracy.values():
        # Usable near the profiled regime, degraded across the full space.
        assert a["mild"] < 0.6
        assert a["full"] > a["mild"]
    # The execution-cheap what-if tuner is competitive but does not beat
    # the learning tuner ("hinges on the accuracy of the engine itself").
    assert whatif_result.n_evaluations < bo_result.n_evaluations
    assert bo_result.best_cost <= whatif_result.best_cost * 1.1
