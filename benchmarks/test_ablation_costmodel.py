"""Ablations of the simulator design choices called out in DESIGN.md.

Three ablations validate that the substrate's mechanisms — not numeric
accidents — produce the paper-shaped results:

* **A1 measurement noise vs selection quality**: best-of-N selection
  under noisy single runs picks configurations whose *true* runtime is
  worse than the true best; more noise, worse selection.  This is the
  mechanism behind the paper's warning that transient conditions bias
  one-shot choices.
* **A2 stragglers x speculation**: ``spark.speculation`` only pays when
  the straggler process is enabled — the knob's value is coupled to an
  environment property, which is why static tuning goes stale.
* **A3 GC pressure**: disabling the GC model flattens the memory-
  sensitivity of iterative workloads, confirming the memory cliffs come
  from the modelled mechanism.
"""

import numpy as np
import pytest

from repro.analysis import render_table
from repro.config import spark_space
from repro.core import probe_configuration
from repro.sparksim import Calibration, SparkSimulator, with_overrides
from repro.workloads import PageRank, Sort


def _selection_gap(cluster, noise_scale, n_configs=40, seeds=3):
    """True-runtime regret of best-of-N selection under scaled noise.

    ``noise_scale`` scales all three measurement-noise sources (task
    noise, run noise, stragglers) relative to the default calibration.
    """
    space = spark_space()
    base = Calibration()
    calib = with_overrides(
        base,
        task_noise_sigma=base.task_noise_sigma * noise_scale,
        run_noise_sigma=base.run_noise_sigma * noise_scale,
        straggler_probability=base.straggler_probability * noise_scale,
    )
    noisy_sim = SparkSimulator(calibration=calib, noise=noise_scale > 0)
    true_sim = SparkSimulator(noise=False)
    workload = Sort()
    input_mb = workload.inputs.ds1_mb
    rng = np.random.default_rng(0)
    configs = space.sample_configurations(n_configs, rng)
    true_runtimes = np.array([
        true_sim.run(workload, input_mb, cluster, c).effective_runtime()
        for c in configs
    ])
    true_best = true_runtimes.min()
    gaps = []
    for s in range(seeds):
        observed = np.array([
            noisy_sim.run(workload, input_mb, cluster, c, seed=1000 * s + i)
            .effective_runtime()
            for i, c in enumerate(configs)
        ])
        picked = int(np.argmin(observed))
        gaps.append(true_runtimes[picked] / true_best - 1.0)
    return float(np.mean(gaps))


def _speculation_benefit(cluster, straggler_p):
    calib = with_overrides(Calibration(), straggler_probability=straggler_p)
    sim = SparkSimulator(calibration=calib)
    workload = Sort()
    input_mb = workload.inputs.ds2_mb
    base_cfg = probe_configuration().replace(**{"spark.default.parallelism": 512})
    on = base_cfg.replace(**{"spark.speculation": True})
    runs_off = np.mean([sim.run(workload, input_mb, cluster, base_cfg, seed=s).runtime_s
                        for s in range(8)])
    runs_on = np.mean([sim.run(workload, input_mb, cluster, on, seed=s).runtime_s
                       for s in range(8)])
    return float(runs_off / runs_on)  # >1: speculation helped


def _memory_sensitivity(cluster, flatten_gc):
    sim = SparkSimulator(noise=False)
    if flatten_gc:
        import repro.sparksim.costmodel as cm

        original = cm.gc_fraction
        cm.gc_fraction = lambda occ: 0.015
        try:
            return _memory_ratio(sim, cluster)
        finally:
            cm.gc_fraction = original
    return _memory_ratio(sim, cluster)


def _memory_ratio(sim, cluster):
    workload = PageRank(iterations=4)
    input_mb = workload.inputs.ds2_mb
    tight = probe_configuration().replace(**{
        "spark.executor.memory": 3072, "spark.memory.fraction": 0.85,
        "spark.default.parallelism": 200,
    })
    roomy = tight.replace(**{"spark.executor.memory": 24576})
    slow = sim.run(workload, input_mb, cluster, tight).effective_runtime()
    fast = sim.run(workload, input_mb, cluster, roomy).effective_runtime()
    return slow / fast


def run_ablation(cluster):
    return {
        "gap_no_noise": _selection_gap(cluster, noise_scale=0.0),
        "gap_default": _selection_gap(cluster, noise_scale=1.0),
        "gap_high": _selection_gap(cluster, noise_scale=4.0),
        "spec_no_stragglers": _speculation_benefit(cluster, straggler_p=0.0),
        "spec_with_stragglers": _speculation_benefit(cluster, straggler_p=0.06),
        "mem_ratio_gc": _memory_sensitivity(cluster, flatten_gc=False),
        "mem_ratio_flat": _memory_sensitivity(cluster, flatten_gc=True),
    }


@pytest.mark.benchmark(group="ablation")
def test_ablation_costmodel(benchmark, paper_cluster):
    out = benchmark.pedantic(run_ablation, args=(paper_cluster,),
                             rounds=1, iterations=1)
    rows = [
        ["A1 selection regret, no noise", f"{out['gap_no_noise']:.1%}"],
        ["A1 selection regret, default noise", f"{out['gap_default']:.1%}"],
        ["A1 selection regret, 4x noise", f"{out['gap_high']:.1%}"],
        ["A2 speculation speedup, no stragglers", f"{out['spec_no_stragglers']:.3f}x"],
        ["A2 speculation speedup, heavy stragglers", f"{out['spec_with_stragglers']:.3f}x"],
        ["A3 tight/roomy memory ratio, GC modelled", f"{out['mem_ratio_gc']:.2f}x"],
        ["A3 tight/roomy memory ratio, GC flattened", f"{out['mem_ratio_flat']:.2f}x"],
    ]
    print(render_table("Ablations: mechanisms behind the paper-shaped results",
                       ["ablation", "measured"], rows))

    # A1: noise degrades best-of-N selection monotonically.
    assert out["gap_no_noise"] <= out["gap_default"] <= out["gap_high"]
    assert out["gap_high"] > 0.01
    # A2: speculation helps (>2% speedup) only when stragglers exist.
    assert out["spec_with_stragglers"] > 1.02
    assert out["spec_with_stragglers"] > out["spec_no_stragglers"]
    # A3: the GC mechanism contributes to memory sensitivity.
    assert out["mem_ratio_gc"] > out["mem_ratio_flat"]
    assert out["mem_ratio_gc"] > 1.1
