"""Fig. 2 — Spark internal architecture: program -> RDD graph -> DAG ->
stages -> tasks -> executors.

The paper's Fig. 2 is structural; its reproduction is the DAG compiler:
we verify that each suite workload's program decomposes into the stage /
task structure real Spark produces (shuffle boundaries cut stages, narrow
chains pipeline, tasks = partitions, executors host task slots).
"""

import pytest

from repro.analysis import render_table
from repro.config import SPARK_DEFAULTS, Configuration, grant_resources
from repro.sparksim import CacheRegistry, ExecutorModel, compile_job
from repro.workloads import all_workloads

EXPECTED_STRUCTURE = {
    # workload -> (num jobs, num stages) at reference size/iterations
    "wordcount": (1, 2),
    "sort": (1, 2),
    "terasort": (1, 2),
    "pagerank": (2 + 6, 2 + 1 + 6 * 4),   # links, ranks, then 4 stages/iter
    "bayes": (2, 4),
    "kmeans": (1 + 6, 1 + 6 * 2),
    "sql-join-agg": (1, 4),  # two scans, join+project (pipelined), aggregate
    "mlfit": (1 + 8, 1 + 8 * 2),
    "scan": (1, 1),
    "aggregation": (1, 2),
}


def compile_all():
    structure = {}
    for workload in all_workloads():
        registry = CacheRegistry()
        next_id = 0
        n_stages = 0
        n_tasks = 0
        jobs = workload.jobs(workload.inputs.ds1_mb)
        for job in jobs:
            plan = compile_job(job, registry, first_stage_id=next_id)
            next_id += plan.num_stages
            n_stages += plan.num_stages
            for stage in plan.stages:
                n_tasks += stage.num_tasks_hint or SPARK_DEFAULTS[
                    "spark.default.parallelism"
                ]
                for rdd_id, mb, rb in stage.materializes:
                    registry.materialize(rdd_id, mb, rb)
            for rdd in job.unpersist_after:
                registry.evict(rdd.id)
        structure[workload.name] = (len(jobs), n_stages, n_tasks)
    return structure


@pytest.mark.benchmark(group="fig2")
def test_fig2_spark_internals(benchmark, paper_cluster):
    structure = benchmark.pedantic(compile_all, rounds=1, iterations=1)
    rows = []
    for name, (jobs, stages, tasks) in structure.items():
        exp_jobs, exp_stages = EXPECTED_STRUCTURE[name]
        rows.append([name, f"{exp_jobs} jobs / {exp_stages} stages",
                     f"{jobs} jobs / {stages} stages / {tasks} tasks"])
    print(render_table("Fig. 2: program -> DAG -> stages -> tasks",
                       ["workload", "expected", "compiled"], rows))
    for name, (jobs, stages, tasks) in structure.items():
        exp_jobs, exp_stages = EXPECTED_STRUCTURE[name]
        assert jobs == exp_jobs, name
        assert stages == exp_stages, name
        assert tasks >= stages  # every stage has at least one task

    # Executor side of the figure: tasks execute on granted executor slots.
    config = Configuration({**SPARK_DEFAULTS, **{
        "spark.executor.instances": 8, "spark.executor.cores": 4,
        "spark.executor.memory": 8192,
    }})
    grant = grant_resources(config, paper_cluster)
    executor = ExecutorModel.from_config(config)
    assert grant.executors == 8
    assert executor.concurrent_tasks == 4
    assert grant.executors * executor.concurrent_tasks == 32
