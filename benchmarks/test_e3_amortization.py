"""E3 — tuning-cost amortization (Section IV.C).

Paper's worked example: "the BestConfig system requires 500 execution
samples to identify a good Spark configuration, and this would consume
more resources than the 90 'normal' runs of our exemplar workload during
a 3 months period" — i.e. isolated 500-sample tuning does NOT amortize,
while (i) data-efficient tuning and (ii) offloading tuning cost to the
provider both restore the economics.

This bench measures the actual campaign costs in the simulator: a
BestConfig-style 500-run campaign vs a CherryPick-style ~25-run
campaign, then feeds real dollars into the amortization model.
"""

import numpy as np
import pytest

from repro.analysis import render_table
from repro.cloud import CostLedger
from repro.config import spark_core_space
from repro.core import AmortizationInputs, analyze_amortization, probe_configuration
from repro.sparksim import SparkSimulator
from repro.tuning import (
    BayesOptTuner,
    BestConfigTuner,
    SimulationObjective,
    run_tuner,
)
from repro.workloads import get_workload

RUNS_PER_MONTH = 30
MONTHS = 3


def _campaign(tuner_factory, budget, workload, input_mb, cluster, seed=0):
    ledger = CostLedger()
    objective = SimulationObjective(workload, input_mb, cluster=cluster,
                                    ledger=ledger, seed=seed)
    space = spark_core_space()
    result = run_tuner(tuner_factory(space, seed), objective, budget=budget)
    return result, ledger


def run_e3(cluster):
    simulator = SparkSimulator()
    workload = get_workload("bayes")
    input_mb = workload.inputs.ds2_mb

    # The incumbent production configuration: a *reasonable* config the
    # user already runs (the probe), not the pathological default — the
    # paper's amortization argument is about marginal savings of tuning,
    # and comparing against an unusable default would flatter any tuner.
    incumbent = SimulationObjective(workload, input_mb, cluster=cluster, seed=1)
    default_runtime = float(np.mean([
        incumbent(probe_configuration()) for _ in range(3)
    ]))
    default_run_cost = cluster.cost_of(default_runtime)

    campaigns = {}
    for name, factory, budget in [
        ("bestconfig-500", lambda s, seed: BestConfigTuner(s, seed=seed, samples_per_round=25), 500),
        ("cherrypick-25", lambda s, seed: BayesOptTuner(s, seed=seed, n_init=8), 25),
    ]:
        result, ledger = _campaign(factory, budget, workload, input_mb, cluster)
        tuned_run_cost = cluster.cost_of(result.best_cost)
        report = analyze_amortization(AmortizationInputs(
            tuning_cost_usd=ledger.tuning_cost,
            default_run_cost_usd=default_run_cost,
            tuned_run_cost_usd=tuned_run_cost,
            runs_per_month=RUNS_PER_MONTH,
            months_until_retuning=MONTHS,
        ))
        offloaded = analyze_amortization(AmortizationInputs(
            tuning_cost_usd=ledger.tuning_cost,
            default_run_cost_usd=default_run_cost,
            tuned_run_cost_usd=tuned_run_cost,
            runs_per_month=RUNS_PER_MONTH,
            months_until_retuning=MONTHS,
            user_cost_share=0.0,
        ))
        production_bill = default_run_cost * RUNS_PER_MONTH * MONTHS
        campaigns[name] = {
            "evals": result.n_evaluations,
            "tuning_cost": ledger.tuning_cost,
            "tuned_runtime": result.best_cost,
            "production_bill": production_bill,
            "report": report,
            "offloaded": offloaded,
        }
    return campaigns, default_runtime, default_run_cost


@pytest.mark.benchmark(group="e3")
def test_e3_amortization(benchmark, paper_cluster):
    campaigns, default_runtime, default_cost = benchmark.pedantic(
        run_e3, args=(paper_cluster,), rounds=1, iterations=1,
    )
    rows = []
    for name, c in campaigns.items():
        r = c["report"]
        rows.append([
            name, c["evals"], f"${c['tuning_cost']:.2f}",
            f"${c['production_bill']:.2f}",
            f"{c['tuned_runtime']:.0f}s vs {default_runtime:.0f}s",
            "-" if r.breakeven_runs == float("inf") else f"{r.breakeven_runs:.0f}",
            "yes" if r.amortizes else "NO",
            "yes" if c["offloaded"].amortizes else "NO",
        ])
    print(render_table(
        f"E3: amortization over {RUNS_PER_MONTH * MONTHS} production runs "
        f"(paper: 500-sample tuning outweighs 90 runs/3 months)",
        ["campaign", "evals", "tuning cost", "90-run bill",
         "tuned vs incumbent runtime",
         "breakeven runs", "amortizes (user pays)", "amortizes (offloaded)"],
        rows,
    ))

    best500 = campaigns["bestconfig-500"]
    cherry = campaigns["cherrypick-25"]
    # The paper's headline arithmetic: 500 exploratory executions consume
    # more resources than the ~90 production runs of a 3-month period.
    assert best500["tuning_cost"] > best500["production_bill"]
    assert cherry["tuning_cost"] < cherry["production_bill"]
    # Against a reasonable incumbent the 500-run campaign cannot be repaid
    # before re-tuning is due; the data-efficient one can.
    assert best500["report"].breakeven_runs > RUNS_PER_MONTH * MONTHS
    assert not best500["report"].amortizes
    assert cherry["report"].amortizes
    # Offloading the cost to the provider bounds the user side (vision #3).
    assert best500["offloaded"].amortizes
