"""E11 — accuracy of black-box runtime-prediction models (Section II.C).

Paper: existing tuning suffers "limited accuracy (due to models which do
not take into account what the workload actually does but considers them
as black-boxes)".  This bench cross-validates four model families — GP
(CherryPick), random forest (PARIS), kernel ridge (AROMA's SVR stand-in)
and Ernest's structural model — on runtime data sampled from the
simulator, per workload.

Expected shape: flexible black-box models (GP/forest) extract a usable
but far-from-perfect ranking signal from 70 samples — the "limited
accuracy" the paper describes; Ernest's structural model, which only
sees cluster scale, ranks at noise level once the other configuration
dimensions vary ("poor adaptivity"); and MAPE in the tens of percent
everywhere shows these models rank better than they predict.
"""

import numpy as np
import pytest

from repro.analysis import cross_validate, render_table
from repro.config import OneHotEncoder, UnitEncoder, spark_core_space
from repro.sparksim import SparkSimulator
from repro.tuning import (
    ErnestModel,
    GaussianProcess,
    KernelRidgeRegressor,
    RandomForestRegressor,
)
from repro.workloads import get_workload

N_SAMPLES = 70
WORKLOADS = ["mlfit", "sql-join-agg", "pagerank"]


class _ErnestAdapter:
    """Ernest as a config->runtime model: only sees slot counts.

    Features are the one-hot config vector; Ernest consumes (machines,
    data) so the adapter reconstructs an effective machine count from the
    executor sizing columns — everything else is invisible to it, which
    is exactly its structural limitation.
    """

    def __init__(self, encoder, input_mb):
        self.encoder = encoder
        self.input_mb = input_mb
        self._model = ErnestModel()
        names = encoder.feature_names
        self._i_inst = names.index("spark.executor.instances")
        self._i_cores = names.index("spark.executor.cores")

    def _machines(self, X):
        # Undo the unit scaling approximately: instances in [1,48] log-ish
        # is opaque here, so use the raw unit values as a proxy scale.
        return 1.0 + 47.0 * X[:, self._i_inst] * (1.0 + 15.0 * X[:, self._i_cores]) / 16.0

    def fit(self, X, y):
        machines = self._machines(np.atleast_2d(X))
        self._model.fit(machines, np.full(len(machines), self.input_mb), y)
        return self

    def predict(self, X):
        machines = self._machines(np.atleast_2d(X))
        return self._model.predict(machines, np.full(len(machines), self.input_mb))


def _dataset(workload_name, cluster):
    simulator = SparkSimulator()
    space = spark_core_space()
    onehot = OneHotEncoder(space)
    unit = UnitEncoder(space)
    workload = get_workload(workload_name)
    input_mb = workload.inputs.ds1_mb
    rng = np.random.default_rng(11)
    X, y = [], []
    # Models train on *completed* runs (how the surveyed systems work),
    # averaged over three measurements per configuration — single cloud
    # runs carry straggler noise comparable to the config differences
    # themselves (see the A1 ablation), so all serious tuning systems
    # repeat measurements.
    i = 0
    while len(y) < N_SAMPLES:
        config = space.sample_configuration(rng)
        runs = [simulator.run(workload, input_mb, cluster, _full(config),
                              seed=3 * i + r) for r in range(3)]
        i += 1
        if all(r.success for r in runs):
            X.append((onehot.encode(config), unit.encode(config)))
            y.append(float(np.mean([r.runtime_s for r in runs])))
    X_onehot = np.array([a for a, _ in X])
    X_unit = np.array([b for _, b in X])
    return X_onehot, X_unit, np.array(y), onehot, input_mb


def _full(config):
    from repro.config import Configuration, SPARK_DEFAULTS

    return Configuration({**SPARK_DEFAULTS, **dict(config)})


def run_e11(cluster):
    out = {}
    for name in WORKLOADS:
        X_onehot, X_unit, y, onehot, input_mb = _dataset(name, cluster)
        # Each family gets its natural encoding: GPs and kernel methods
        # use the compact unit encoding (as in BO); trees use one-hot.
        models = {
            "gp (CherryPick)": (
                lambda: GaussianProcess(n_restarts=2, seed=0), X_unit, True),
            "forest (PARIS)": (
                lambda: RandomForestRegressor(n_trees=20, seed=0), X_onehot, True),
            "kernel-ridge (AROMA)": (
                lambda: KernelRidgeRegressor(lengthscale=0.8, alpha=5e-2),
                X_unit, True),
            "ernest (structural)": (
                lambda: _ErnestAdapter(onehot, input_mb), X_onehot, False),
        }
        scores = {}
        for model_name, (factory, X, log_targets) in models.items():
            scores[model_name] = cross_validate(factory, X, y, k=5, seed=1,
                                                log_targets=log_targets)
        out[name] = scores
    return out


@pytest.mark.benchmark(group="e11")
def test_e11_model_accuracy(benchmark, paper_cluster):
    results = benchmark.pedantic(run_e11, args=(paper_cluster,),
                                 rounds=1, iterations=1)
    rows = []
    for workload, scores in results.items():
        for model, s in scores.items():
            rows.append([workload, model, f"{s.mape:.0%}", f"{s.spearman:.2f}"])
    print(render_table(
        "E11: runtime-model accuracy (5-fold CV, 70 samples/workload)",
        ["workload", "model", "MAPE", "rank corr"], rows,
    ))

    for workload, scores in results.items():
        flexible = [scores["gp (CherryPick)"], scores["forest (PARIS)"]]
        # Flexible black boxes extract a positive (but limited) ranking
        # signal everywhere...
        assert max(s.spearman for s in flexible) > 0.2, workload
        # ...while remaining far from accurate prediction — the paper's
        # "limited accuracy" point.
        assert min(s.mape for s in flexible) > 0.10, workload
        # Ernest, blind to everything except cluster scale, ranks worse
        # than the best flexible model on every workload here ("poor
        # adaptivity" once non-scaling knobs vary).
        assert scores["ernest (structural)"].spearman < max(
            s.spearman for s in flexible
        ), workload
    # The forest (PARIS) is the strongest ranker on at least one workload.
    assert any(
        scores["forest (PARIS)"].spearman == max(s.spearman for s in scores.values())
        for scores in results.values()
    )
