"""E10 — extensions beyond the survey: multi-fidelity tuning and elasticity.

Two features the paper's vision implies but no surveyed system provides:

* **Successive halving over truncated workloads** — iterative jobs admit
  cheap low-fidelity proxies (fewer PageRank iterations), so most of the
  exploration can run at a fraction of full cost.  Expected shape:
  SH reaches a configuration comparable to full-fidelity random search
  while consuming materially less simulated cluster time.
* **Elastic per-run cluster sizing** — a recurring workload with
  fluctuating input sizes is billed for what each run needs, not for a
  statically provisioned worst case.  Expected shape: elastic sizing
  undercuts the static-for-peak cluster's bill without blowing up
  runtimes.
"""

import numpy as np
import pytest

from repro.analysis import render_table
from repro.cloud import Cluster, get_instance
from repro.config import Configuration, SPARK_DEFAULTS, spark_core_space
from repro.core import ElasticScaler, probe_configuration
from repro.sparksim import SparkSimulator
from repro.tuning import successive_halving
from repro.workloads import PageRank

FULL_ITERATIONS = 6


def _mf_objective(cluster, simulator, counter):
    def objective_at(config, fidelity):
        counter["n"] += 1
        iterations = max(1, int(round(FULL_ITERATIONS * fidelity)))
        workload = PageRank(iterations=iterations)
        full = Configuration({**SPARK_DEFAULTS, **dict(config)})
        result = simulator.run(workload, 9_000, cluster, full, seed=counter["n"])
        return result.effective_runtime()

    return objective_at


def run_multifidelity(cluster):
    simulator = SparkSimulator()
    space = spark_core_space()
    counter = {"n": 0}
    sh = successive_halving(_mf_objective(cluster, simulator, counter), space,
                            n_configs=27, eta=3, min_fidelity=0.2, seed=0)

    # Full-fidelity random search with the same *number* of executions.
    rng = np.random.default_rng(1)
    full_obj = _mf_objective(cluster, simulator, counter)
    random_costs, random_seconds = [], 0.0
    for config in space.sample_configurations(sh.total_executions, rng):
        cost = full_obj(config, 1.0)
        random_costs.append(cost)
        random_seconds += cost
    return sh, float(np.min(random_costs)), random_seconds


def run_elasticity():
    simulator = SparkSimulator()
    workload = PageRank(iterations=4)
    instance = get_instance("m5.2xlarge")
    config = probe_configuration().replace(**{
        "spark.executor.instances": 40, "spark.executor.cores": 4,
        "spark.executor.memory": 8192, "spark.default.parallelism": 256,
    })
    rng = np.random.default_rng(2)
    schedule = [float(rng.choice([4_000, 8_000, 16_000, 32_000]))
                for _ in range(24)]

    # Static: provisioned for the peak input.
    static = Cluster(instance, 16)
    static_cost = static_time = 0.0
    for i, mb in enumerate(schedule):
        r = simulator.run(workload, mb, static, config, seed=i)
        static_cost += static.cost_of(r.effective_runtime())
        static_time += r.effective_runtime()

    # Elastic: per-run sizing learned online, under a runtime ceiling
    # (the Section IV.D trade-off: cheap, but never pathologically slow).
    scaler = ElasticScaler(instance, min_nodes=2, max_nodes=16,
                           objective="price", runtime_cap_s=700.0)
    elastic_cost = elastic_time = 0.0
    for i, mb in enumerate(schedule):
        cluster = scaler.cluster_for(mb)
        r = simulator.run(workload, mb, cluster, config, seed=i)
        runtime = r.effective_runtime()
        scaler.observe(cluster.count, mb, runtime)
        elastic_cost += cluster.cost_of(runtime)
        elastic_time += runtime
    return static_cost, static_time, elastic_cost, elastic_time


@pytest.mark.benchmark(group="e10")
def test_e10_extensions(benchmark, paper_cluster):
    (sh, random_best, random_seconds), elastic = benchmark.pedantic(
        lambda c: (run_multifidelity(c), run_elasticity()),
        args=(paper_cluster,), rounds=1, iterations=1,
    )
    static_cost, static_time, elastic_cost, elastic_time = elastic
    rows = [
        ["SH best (full fidelity)", f"{sh.best_cost:.0f}s"],
        ["random best (same #execs)", f"{random_best:.0f}s"],
        ["SH simulated cluster time", f"{sh.total_simulated_seconds:.0f}s"],
        ["random simulated cluster time", f"{random_seconds:.0f}s"],
        ["SH rung ladder", " -> ".join(f"{f:.2f}x{n}" for f, n in sh.rung_trace)],
        ["static 16-node bill (24 runs)", f"${static_cost:.2f}"],
        ["elastic bill (24 runs)", f"${elastic_cost:.2f}"],
        ["elastic / static runtime", f"{elastic_time / static_time:.2f}x"],
    ]
    print(render_table("E10: multi-fidelity tuning and elastic sizing",
                       ["quantity", "measured"], rows))

    # SH spends materially less cluster time than full-fidelity search...
    assert sh.total_simulated_seconds < 0.8 * random_seconds
    # ...while finding a comparable configuration.
    assert sh.best_cost < random_best * 1.4
    # Elasticity undercuts the static-for-peak bill at bounded slowdown —
    # the explicit cost/runtime trade the paper wants users to be able to
    # express.
    assert elastic_cost < static_cost
    assert elastic_time < static_time * 4.0
