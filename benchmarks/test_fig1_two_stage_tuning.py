"""Fig. 1 — the two-stage tuning flow, end to end.

The paper's Fig. 1 shows the tuning service first selecting the virtual
cluster (cloud configuration) and then the DISC system configuration,
with the user only submitting the workload.  This bench runs that exact
flow through :class:`~repro.core.TuningService` and verifies each
stage's contract: stage 1 provisions a cluster from the provider
catalogue within its exploration budget; stage 2 produces a Spark
configuration that beats both the default and the probe configuration.
"""

import pytest

from repro.analysis import render_table
from repro.core import TuningService, probe_configuration
from repro.sparksim import SparkSimulator
from repro.workloads import PageRank


def run_fig1():
    service = TuningService(provider="aws", seed=11)
    workload = PageRank()
    input_mb = workload.inputs.ds2_mb
    deployment = service.submit("tenant-a", workload, input_mb,
                                cloud_budget=10, disc_budget=20)

    # Reference points on the chosen cluster (sizing repaired to fit the
    # nodes, as any launchable manual attempt would be).
    from repro.config import repair

    simulator = SparkSimulator()
    probe_cfg = repair(probe_configuration(), deployment.cluster)
    probe = simulator.run(workload, input_mb, deployment.cluster,
                          probe_cfg, seed=777)
    default_cfg = repair(
        probe_configuration().replace(
            **dict(service.disc_space.default_configuration())
        ),
        deployment.cluster,
    )
    default = simulator.run(workload, input_mb, deployment.cluster,
                            default_cfg, seed=777)
    return deployment, probe, default, service


@pytest.mark.benchmark(group="fig1")
def test_fig1_two_stage_tuning(benchmark):
    deployment, probe, default, service = benchmark.pedantic(
        run_fig1, rounds=1, iterations=1,
    )
    rows = [
        ["stage 1: cluster", "user picks manually", deployment.cluster.describe()],
        ["stage 2: DISC config evals", "500 (BestConfig) / 1000s (DAC)",
         deployment.tuning_evaluations],
        ["tuned runtime (s)", "-", deployment.expected_runtime_s],
        ["probe-config runtime (s)", "-", probe.effective_runtime()],
        ["default-config runtime (s)", "-", default.effective_runtime()],
    ]
    print(render_table("Fig. 1: two-stage seamless tuning flow",
                       ["step", "paper/baseline", "measured"], rows))

    # Contract assertions.
    assert deployment.cluster.instance.provider == "aws"
    assert 2 <= deployment.cluster.count <= 20
    assert deployment.tuning_evaluations <= 31     # far below BestConfig's 500
    # The deployed config is at least as good as the probe (up to
    # run-to-run noise: the references are re-measured under fresh seeds)
    # and clearly better than the default configuration.
    assert deployment.expected_runtime_s < probe.effective_runtime() * 1.1
    assert deployment.expected_runtime_s < default.effective_runtime()
    # Every exploratory execution landed in the provider-side history.
    assert len(service.store) >= deployment.tuning_evaluations - 10
