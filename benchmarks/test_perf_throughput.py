"""Perf — evaluation throughput of the batch engine (PR 1 tentpole).

Measures evaluations/sec for a 200-candidate random-search campaign in
four configurations and records them in ``BENCH_throughput.json`` at the
repo root, so the perf trajectory is tracked from this PR onward:

* ``seed_serial``: the seed-repo loop — ``run_tuner`` driving a plain
  :class:`SimulationObjective`, one simulation per call, no cache.
* ``engine_serial``: ``run_tuner_batched`` through a cold serial engine
  (batching + in-batch dedup, no parallelism).
* ``engine_parallel``: the same, with the process-pool executor.  On a
  single-core host this is *honestly* reported as ≈1× or worse — the
  pool cannot beat the GIL-free serial loop without cores.
* ``engine_parallel_memoized``: the acceptance scenario — the same
  200-candidate batch re-evaluated through the warm cache, i.e. the
  paper's provider-side amortization (principle 3): a recurring or
  cross-tenant session whose candidates the provider has already paid
  for.  Must be ≥ 5× the seed serial loop.

Run: ``PYTHONPATH=src python -m pytest benchmarks/test_perf_throughput.py -s``
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

import numpy as np

from repro.config.spark_params import spark_core_space
from repro.cloud import Cluster
from repro.engine import EngineObjective, EvaluationEngine
from repro.sparksim.scheduler import _list_schedule, _list_schedule_heap
from repro.tuning import (
    RandomSearchTuner,
    SimulationObjective,
    run_tuner,
    run_tuner_batched,
)
from repro.workloads import Sort

N_CANDIDATES = 200
BATCH_SIZE = 25
TUNER_SEED = 42
OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_throughput.json"

CLUSTER = Cluster.of("m5.2xlarge", 6)
SPACE = spark_core_space()


def _tuner():
    return RandomSearchTuner(SPACE, seed=TUNER_SEED)


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def _scenario_seed_serial():
    objective = SimulationObjective(Sort(), 4096.0, cluster=CLUSTER,
                                    repair=True, seed=3)
    return _timed(lambda: run_tuner(_tuner(), objective, budget=N_CANDIDATES))


def _scenario_engine(executor, warm=False):
    with EvaluationEngine(executor=executor) as engine:
        def campaign():
            objective = EngineObjective(engine, Sort(), 4096.0,
                                        cluster=CLUSTER, repair=True, seed=3)
            return run_tuner_batched(_tuner(), objective,
                                     budget=N_CANDIDATES,
                                     batch_size=BATCH_SIZE)

        if warm:
            campaign()            # provider already paid for these runs
        result, elapsed = _timed(campaign)
        counters = engine.counters()
    return result, elapsed, counters


def _scheduler_microbench():
    rng = np.random.default_rng(0)
    rows = []
    for slots in (32, 64, 128, 256):
        d = np.exp(rng.uniform(-2, 2, 5000))
        reps = 20
        t0 = time.perf_counter()
        for _ in range(reps):
            heap = _list_schedule_heap(d, slots)
        t_heap = (time.perf_counter() - t0) / reps
        t0 = time.perf_counter()
        for _ in range(reps):
            vec = _list_schedule(d, slots)
        t_vec = (time.perf_counter() - t0) / reps
        assert vec == heap
        rows.append({"slots": slots, "heap_ms": t_heap * 1e3,
                     "vectorized_ms": t_vec * 1e3,
                     "speedup": t_heap / t_vec})
    return rows


def test_perf_throughput():
    seed_result, seed_elapsed = _scenario_seed_serial()
    serial_result, serial_elapsed, serial_counters = _scenario_engine("serial")
    par_result, par_elapsed, par_counters = _scenario_engine("process")
    warm_result, warm_elapsed, warm_counters = _scenario_engine(
        "process", warm=True)

    # Same tuner seed everywhere: every scenario evaluates the identical
    # 200-candidate stream.  Engine scenarios also agree on every cost
    # (per-config seeding); the seed loop draws per-call noise seeds, so
    # its costs are the same distribution but not bit-equal.
    assert [o.config for o in seed_result.history] == \
           [o.config for o in serial_result.history]
    assert [o.cost for o in serial_result.history] == \
           [o.cost for o in par_result.history] == \
           [o.cost for o in warm_result.history]
    assert warm_counters["hits"] >= N_CANDIDATES  # the warm pass is all hits

    def eps(elapsed):
        return N_CANDIDATES / elapsed

    scenarios = {
        "seed_serial": {"elapsed_s": seed_elapsed, "evals_per_s": eps(seed_elapsed)},
        "engine_serial": {"elapsed_s": serial_elapsed,
                          "evals_per_s": eps(serial_elapsed),
                          "counters": serial_counters},
        "engine_parallel": {"elapsed_s": par_elapsed,
                            "evals_per_s": eps(par_elapsed),
                            "counters": par_counters},
        "engine_parallel_memoized": {"elapsed_s": warm_elapsed,
                                     "evals_per_s": eps(warm_elapsed),
                                     "counters": warm_counters},
    }
    amortized_speedup = eps(warm_elapsed) / eps(seed_elapsed)
    report = {
        "benchmark": "evaluation engine throughput",
        "candidates": N_CANDIDATES,
        "batch_size": BATCH_SIZE,
        "workload": "sort@4096MB",
        "cluster": "m5.2xlarge x6",
        "machine": {"cpu_count": os.cpu_count(),
                    "platform": platform.platform()},
        "scenarios": scenarios,
        "speedup_vs_seed": {
            name: s["evals_per_s"] / scenarios["seed_serial"]["evals_per_s"]
            for name, s in scenarios.items()
        },
        "scheduler_microbench": _scheduler_microbench(),
    }
    OUT_PATH.write_text(json.dumps(report, indent=2) + "\n")

    print(f"\n{'scenario':<28}{'elapsed':>10}{'evals/s':>10}{'speedup':>9}")
    for name, s in scenarios.items():
        print(f"{name:<28}{s['elapsed_s']:>9.2f}s{s['evals_per_s']:>10.1f}"
              f"{report['speedup_vs_seed'][name]:>8.1f}x")

    # ISSUE acceptance: parallel + memoized engine >= 5x the seed loop.
    assert amortized_speedup >= 5.0, (
        f"amortized engine only {amortized_speedup:.1f}x the seed serial loop"
    )
