"""Perf — evaluation throughput of the batch engine.

Measures evaluations/sec for a 200-candidate random-search campaign and
records them in ``BENCH_throughput.json`` at the repo root, so the perf
trajectory is tracked across PRs:

* ``seed_serial``: the seed-repo loop — ``run_tuner`` driving a plain
  :class:`SimulationObjective`, one simulation per call, no cache.
* ``engine_serial_scalar``: the engine's pre-batching cold path,
  reproduced exactly — per-candidate dispatch (``group_batches=False``)
  on a simulator with the compiled-plan cache disabled
  (``plan_cache_size=0``), i.e. jobs are re-planned for every
  evaluation.  This is the baseline the batch fast path is judged
  against.
* ``engine_serial_plancache``: per-candidate dispatch with the plan
  cache on — isolates the plan cache's contribution from batching's.
* ``engine_serial``: the default serial engine — plan cache plus the
  candidate-batched fast path (``run_batch``).  The headline cold
  number.
* ``sim_scalar_cold`` / ``sim_batch_cold``: the simulator alone on the
  identical 200 candidates — a cold per-eval ``run()`` loop with the
  plan cache off (the pre-batching fast path) vs cold ``run_batch``
  chunks.  This pair isolates the batch fast path from the tuner +
  objective + engine harness that every engine scenario pays
  identically (sampling, resolve/repair, request building — ~80 µs/eval
  that batching cannot touch); the fast path itself must be ≥ 3× the
  per-eval path it replaced, while the harness-inclusive
  ``engine_serial``/``engine_serial_scalar`` ratio is asserted at ≥ 2×.
* ``sim_batch_joint``: all 200 candidates in ONE ``run_batch`` call —
  the joint (stages × candidates) compiled program with nothing left to
  amortize across chunks.  This is the widest batch the fused plan
  sweep sees and must also clear the ≥ 3× bar against the scalar loop.
* ``engine_parallel``: the same, through the process-pool executor.  On
  a single-core host this is *honestly* reported as ≈1× or worse — the
  pool cannot beat the GIL-free serial loop without cores (and
  ``executor_kind`` in its counters records that the engine resolved
  the pool to serial dispatch).
* ``engine_parallel_shm``: an explicit two-worker
  :class:`~repro.engine.executors.ParallelExecutor` with zero-copy
  shared-memory dispatch and a shared on-disk plan store — the
  saturation configuration.  Its counters record pool size and
  per-worker chunk counts.  The whole scenario is gated on
  ``os.cpu_count() >= 2``: a forked pool on one core measures pure
  dispatch overhead, not parallelism, so a single-core host records a
  ``{"skipped": ...}`` marker instead of a misleading number (and the
  regression checker skips the scenario in either report direction).
* ``engine_parallel_memoized``: the same 200-candidate batch
  re-evaluated through the warm cache, i.e. the paper's provider-side
  amortization (principle 3): a recurring or cross-tenant session whose
  candidates the provider has already paid for.  Must be ≥ 5× the seed
  serial loop.

Run: ``PYTHONPATH=src python -m pytest benchmarks/test_perf_throughput.py -s``
"""

from __future__ import annotations

import json
import os
import platform
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.config.constraints import repair
from repro.config.space import Configuration
from repro.config.spark_params import SPARK_DEFAULTS, spark_core_space
from repro.cloud import Cluster
from repro.engine import EngineObjective, EvaluationEngine
from repro.engine.executors import ParallelExecutor, SerialExecutor
from repro.sparksim import SparkSimulator
from repro.sparksim.costmodel import Calibration
from repro.sparksim.scheduler import (
    _MIN_VECTOR_SLOTS,
    _list_schedule,
    _list_schedule_heap,
    _sample_durations,
)
from repro.tuning import (
    RandomSearchTuner,
    SimulationObjective,
    run_tuner,
    run_tuner_batched,
)
from repro.workloads import Sort

N_CANDIDATES = 200
BATCH_SIZE = 25
TUNER_SEED = 42
OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_throughput.json"

CLUSTER = Cluster.of("m5.2xlarge", 6)
SPACE = spark_core_space()

#: the chosen ``_list_schedule`` path (heap below ``_MIN_VECTOR_SLOTS``
#: slots, vectorized at or above) may never be this much slower than the
#: path it rejected — guards the crossover constant against drift
MAX_WRONG_PATH_PENALTY = 1.5

#: the saturation target for a multi-core provider host (joint batches
#: on every worker of a warm shared plan store); recorded in the report
#: so a multi-core runner regenerating the JSON checks itself against
#: it — unreachable and therefore not asserted on a single-core box
MULTI_CORE_TARGET_EVALS_PER_S = 50_000


def _tuner():
    return RandomSearchTuner(SPACE, seed=TUNER_SEED)


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def _scenario_seed_serial():
    objective = SimulationObjective(Sort(), 4096.0, cluster=CLUSTER,
                                    repair=True, seed=3)
    return _timed(lambda: run_tuner(_tuner(), objective, budget=N_CANDIDATES))


def _scenario_engine(executor, warm=False, simulator=None):
    with EvaluationEngine(simulator=simulator, executor=executor) as engine:
        def campaign():
            objective = EngineObjective(engine, Sort(), 4096.0,
                                        cluster=CLUSTER, repair=True, seed=3)
            return run_tuner_batched(_tuner(), objective,
                                     budget=N_CANDIDATES,
                                     batch_size=BATCH_SIZE)

        if warm:
            campaign()            # provider already paid for these runs
        result, elapsed = _timed(campaign)
        counters = engine.counters()
    return result, elapsed, counters


def _scenario_engine_scalar(plan_cache_size):
    """Per-candidate serial dispatch, optionally without the plan cache."""
    sim = SparkSimulator(plan_cache_size=plan_cache_size)
    executor = SerialExecutor(sim, group_batches=False)
    return _scenario_engine(executor, simulator=sim)


def _scenario_engine_parallel_shm():
    """Two workers, zero-copy request dispatch, shared on-disk plan store."""
    with tempfile.TemporaryDirectory(prefix="bench-planstore-") as store_dir:
        executor = ParallelExecutor(max_workers=2, plan_store_dir=store_dir)
        return _scenario_engine(executor)


def _resolved_candidates():
    """The campaign's 200 candidates as fully-resolved (config, seed) pairs."""
    rng = np.random.default_rng(TUNER_SEED)
    base = dict(SPARK_DEFAULTS)
    configs, seeds = [], []
    for i, sampled in enumerate(SPACE.sample_configurations(N_CANDIDATES, rng)):
        full = dict(base)
        full.update(sampled.as_dict())
        configs.append(repair(Configuration(full), CLUSTER))
        seeds.append(1000 + i)
    return configs, seeds


def _scenario_sim_pair(reps=5):
    """Cold scalar ``run()`` loop vs cold ``run_batch`` over ``reps`` reps.

    Both sides simulate the identical candidates and seeds, so results
    must agree bitwise; fresh simulators per rep keep the plan cache
    cold at the start of every measurement.  A third timing covers the
    joint path: the whole campaign in one ``run_batch`` call.  Returns
    the best elapsed time per side plus the median per-rep speedup of
    each batched side over the scalar loop.
    """
    configs, seeds = _resolved_candidates()
    workload = Sort()
    scalar_times, batch_times, joint_times = [], [], []
    scalar_results = batch_results = joint_results = None
    for _ in range(reps):
        sim = SparkSimulator(plan_cache_size=0)
        t0 = time.perf_counter()
        scalar_results = [
            sim.run(workload, 4096.0, CLUSTER, configs[i], seed=seeds[i])
            for i in range(N_CANDIDATES)
        ]
        scalar_times.append(time.perf_counter() - t0)

        sim = SparkSimulator()
        t0 = time.perf_counter()
        batch_results = []
        for s in range(0, N_CANDIDATES, BATCH_SIZE):
            batch_results.extend(sim.run_batch(
                workload, 4096.0, CLUSTER, configs[s:s + BATCH_SIZE],
                seeds=seeds[s:s + BATCH_SIZE],
            ))
        batch_times.append(time.perf_counter() - t0)

        sim = SparkSimulator()
        t0 = time.perf_counter()
        joint_results = sim.run_batch(workload, 4096.0, CLUSTER, configs,
                                      seeds=seeds)
        joint_times.append(time.perf_counter() - t0)
    assert scalar_results == batch_results == joint_results  # bit-identity
    # Each rep times the sides back to back, so the per-rep ratio is
    # robust to the slow clock drift of shared runners; the median rep
    # is then robust to transient noise in either side.
    def median_ratio(times):
        ratios = sorted(s / b for s, b in zip(scalar_times, times))
        return ratios[len(ratios) // 2]

    return (min(scalar_times), min(batch_times), min(joint_times),
            median_ratio(batch_times), median_ratio(joint_times))


def _scheduler_microbench():
    rng = np.random.default_rng(0)
    rows = []
    for slots in (16, 32, 64, 128, 256):
        # Durations drawn from the production noise model — the
        # crossover depends on the duration spread (tight durations give
        # long safe prefixes), so the microbench must measure the
        # distribution the simulator actually schedules.
        d = _sample_durations(5000, 1.0, rng, Calibration())
        reps = 20
        t0 = time.perf_counter()
        for _ in range(reps):
            heap = _list_schedule_heap(d, slots)
        t_heap = (time.perf_counter() - t0) / reps
        t0 = time.perf_counter()
        for _ in range(reps):
            vec = _list_schedule(d, slots)
        t_vec = (time.perf_counter() - t0) / reps
        assert vec == heap
        # _list_schedule itself delegates to the heap below the
        # crossover, so time the vectorized chunk loop directly there.
        if slots < _MIN_VECTOR_SLOTS:
            t_chosen, t_other = t_heap, _timed_vectorized(d, slots, reps)
        else:
            t_chosen, t_other = t_vec, t_heap
        rows.append({"slots": slots, "heap_ms": t_heap * 1e3,
                     "vectorized_ms": t_vec * 1e3,
                     "speedup": t_heap / t_vec,
                     "chosen_vs_other": t_chosen / t_other})
        # The crossover constant must keep choosing a path that is at
        # worst modestly slower than the alternative at every width.
        assert t_chosen <= MAX_WRONG_PATH_PENALTY * t_other, (
            f"_list_schedule chose a path {t_chosen / t_other:.2f}x slower "
            f"than the alternative at {slots} slots; "
            f"_MIN_VECTOR_SLOTS={_MIN_VECTOR_SLOTS} needs re-measuring"
        )
    return rows


def _timed_vectorized(d, slots, reps):
    """Time the vectorized chunk loop below its crossover cutoff."""
    import repro.sparksim.scheduler as sched
    saved = sched._MIN_VECTOR_SLOTS
    sched._MIN_VECTOR_SLOTS = 0
    try:
        t0 = time.perf_counter()
        for _ in range(reps):
            _list_schedule(d, slots)
        return (time.perf_counter() - t0) / reps
    finally:
        sched._MIN_VECTOR_SLOTS = saved


def test_perf_throughput():
    (sim_scalar_elapsed, sim_batch_elapsed, sim_joint_elapsed,
     fastpath_speedup, joint_speedup) = _scenario_sim_pair()
    seed_result, seed_elapsed = _scenario_seed_serial()
    scalar_result, scalar_elapsed, scalar_counters = \
        _scenario_engine_scalar(plan_cache_size=0)
    plancache_result, plancache_elapsed, plancache_counters = \
        _scenario_engine_scalar(plan_cache_size=64)
    serial_result, serial_elapsed, serial_counters = _scenario_engine("serial")
    par_result, par_elapsed, par_counters = _scenario_engine("process")
    # A forked two-worker pool on one core measures dispatch overhead,
    # not parallelism — skip the scenario and record why.
    shm_supported = (os.cpu_count() or 1) >= 2
    if shm_supported:
        shm_result, shm_elapsed, shm_counters = _scenario_engine_parallel_shm()
    warm_result, warm_elapsed, warm_counters = _scenario_engine(
        "process", warm=True)

    # Same tuner seed everywhere: every scenario evaluates the identical
    # 200-candidate stream.  Engine scenarios also agree on every cost
    # (per-config seeding, and the batched fast path is bit-identical to
    # per-candidate dispatch); the seed loop draws per-call noise seeds,
    # so its costs are the same distribution but not bit-equal.
    assert [o.config for o in seed_result.history] == \
           [o.config for o in serial_result.history]
    engine_results = [scalar_result, plancache_result, serial_result,
                      par_result, warm_result]
    if shm_supported:
        engine_results.append(shm_result)
    costs = [o.cost for o in engine_results[0].history]
    for result in engine_results[1:]:
        assert [o.cost for o in result.history] == costs
    assert warm_counters["hits"] >= N_CANDIDATES  # the warm pass is all hits

    def eps(elapsed):
        return N_CANDIDATES / elapsed

    scenarios = {
        "seed_serial": {"elapsed_s": seed_elapsed, "evals_per_s": eps(seed_elapsed)},
        "sim_scalar_cold": {"elapsed_s": sim_scalar_elapsed,
                            "evals_per_s": eps(sim_scalar_elapsed)},
        "sim_batch_cold": {"elapsed_s": sim_batch_elapsed,
                           "evals_per_s": eps(sim_batch_elapsed)},
        "sim_batch_joint": {"elapsed_s": sim_joint_elapsed,
                            "evals_per_s": eps(sim_joint_elapsed)},
        "engine_serial_scalar": {"elapsed_s": scalar_elapsed,
                                 "evals_per_s": eps(scalar_elapsed),
                                 "counters": scalar_counters},
        "engine_serial_plancache": {"elapsed_s": plancache_elapsed,
                                    "evals_per_s": eps(plancache_elapsed),
                                    "counters": plancache_counters},
        "engine_serial": {"elapsed_s": serial_elapsed,
                          "evals_per_s": eps(serial_elapsed),
                          "counters": serial_counters},
        "engine_parallel": {"elapsed_s": par_elapsed,
                            "evals_per_s": eps(par_elapsed),
                            "counters": par_counters},
        "engine_parallel_shm": (
            {"elapsed_s": shm_elapsed, "evals_per_s": eps(shm_elapsed),
             "counters": shm_counters}
            if shm_supported
            else {"skipped": "requires cpu_count >= 2",
                  "cpu_count": os.cpu_count()}
        ),
        "engine_parallel_memoized": {"elapsed_s": warm_elapsed,
                                     "evals_per_s": eps(warm_elapsed),
                                     "counters": warm_counters},
    }
    amortized_speedup = eps(warm_elapsed) / eps(seed_elapsed)
    batch_speedup = eps(serial_elapsed) / eps(scalar_elapsed)
    report = {
        "benchmark": "evaluation engine throughput",
        "candidates": N_CANDIDATES,
        "batch_size": BATCH_SIZE,
        "workload": "sort@4096MB",
        "cluster": "m5.2xlarge x6",
        "machine": {"cpu_count": os.cpu_count(),
                    "platform": platform.platform()},
        "scenarios": scenarios,
        "speedup_vs_seed": {
            name: s["evals_per_s"] / scenarios["seed_serial"]["evals_per_s"]
            for name, s in scenarios.items() if "evals_per_s" in s
        },
        "batch_speedup_vs_scalar": batch_speedup,
        "fastpath_speedup_vs_scalar": fastpath_speedup,
        "joint_speedup_vs_scalar": joint_speedup,
        "multi_core_target_evals_per_s": MULTI_CORE_TARGET_EVALS_PER_S,
        "scheduler_microbench": _scheduler_microbench(),
    }
    OUT_PATH.write_text(json.dumps(report, indent=2) + "\n")

    print(f"\n{'scenario':<28}{'elapsed':>10}{'evals/s':>10}{'speedup':>9}")
    for name, s in scenarios.items():
        if "skipped" in s:
            print(f"{name:<28}  skipped ({s['skipped']})")
            continue
        print(f"{name:<28}{s['elapsed_s']:>9.2f}s{s['evals_per_s']:>10.1f}"
              f"{report['speedup_vs_seed'][name]:>8.1f}x")

    # PR 3 acceptance: the batched fast path (plan cache + struct-of-
    # arrays costing) >= 3x the per-candidate cold path it replaced,
    # measured at the simulator layer where the replacement happened
    # (median of per-rep back-to-back ratios; see _scenario_sim_pair).
    assert fastpath_speedup >= 3.0, (
        f"run_batch only {fastpath_speedup:.1f}x the cold run() loop"
    )
    # PR 6 acceptance: the joint (stages x candidates) program holds the
    # same bar with the whole campaign in one call — chunking was not
    # load-bearing for the fast path's advantage.
    assert joint_speedup >= 3.0, (
        f"joint run_batch only {joint_speedup:.1f}x the cold run() loop"
    )
    # On a multi-core host the shm scenario ran: its two-worker pool
    # telemetry must account for the dispatched chunks, and parallel
    # dispatch must actually beat the serial loop.
    if shm_supported:
        workers = shm_counters["workers"]
        assert workers["pool_size"] == 2
        assert workers["workers_used"] >= 1
        assert eps(shm_elapsed) > eps(serial_elapsed), (
            f"shm pool ({eps(shm_elapsed):.0f} evals/s) not faster than "
            f"serial ({eps(serial_elapsed):.0f}) despite "
            f"{os.cpu_count()} cores"
        )
    # End-to-end the same campaign pays ~80 µs/eval of tuner + objective
    # + engine harness on both sides, which dilutes the ratio; the
    # engine-level guard is correspondingly lower.
    assert batch_speedup >= 2.0, (
        f"batched engine only {batch_speedup:.1f}x the scalar cold path"
    )
    # PR 1 acceptance: parallel + memoized engine >= 5x the seed loop.
    assert amortized_speedup >= 5.0, (
        f"amortized engine only {amortized_speedup:.1f}x the seed serial loop"
    )
