"""Perf — multi-tenant service under a full-population load burst.

Drives the :mod:`repro.core.serviced` stack (asyncio front end,
admission control, SLO-priority scheduling, fingerprint-sharded
sessions over one append-only history log) with the CI load profile:
**1000 concurrent tenants**, each tuning on a pinned cluster with a
lightweight random-search session and then ingesting 100 recurring
production executions — **100,000 submitted runs** total, all on the
serial single-host profile.

The two headline SLIs land in ``BENCH_service.json`` at the repo root
and are gated by ``check_bench_regression.py`` in the bench-smoke job:

* ``runs_per_s`` — production-run ingest throughput over the whole
  scenario wall time (higher is better, loose tolerance: the asyncio +
  shard-thread interleaving moves with the host);
* ``tune_latency_p99_s`` — p99 submit-to-deploy latency across all
  1000 tune requests (lower is better).  Under a full-population burst
  against a 256-slot admission queue this includes queueing time, which
  is the point: it is the latency a tenant actually experiences.

The scenario block also records the pool-wide **per-phase wall-time
breakdown** (suggest vs evaluate vs ingest vs similarity, merged across
shards) so a regression in either SLI can be attributed to the phase
that grew; the bench-smoke job uploads it as its own artifact.

Run: ``PYTHONPATH=src python -m pytest benchmarks/test_perf_service.py -s``
"""

from __future__ import annotations

import json
import os
import platform
from dataclasses import asdict
from pathlib import Path

from repro.core.serviced import LoadScenario, run_load

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_service.json"

#: the CI load profile: a full-population burst on the serial profile
SCENARIO = LoadScenario(
    n_tenants=1000,
    n_workload_families=6,
    runs_per_tenant=100,
    ingest_batches=2,
    n_shards=8,
    disc_budget=3,
    batch_size=3,
    max_pending=256,
    per_tenant_inflight=2,
    seed=1,
)


def test_perf_service_load():
    report = run_load(SCENARIO)

    # Acceptance: the whole population deploys and every run is ingested.
    assert report.tenants_deployed == SCENARIO.n_tenants
    assert report.tenants_denied == 0
    assert report.runs_submitted == SCENARIO.n_tenants * SCENARIO.runs_per_tenant
    assert report.runs_submitted >= 100_000

    # Every paid execution is in the shared history log: (probe + budget)
    # per tuning session plus every production run.
    expected_records = (
        SCENARIO.n_tenants * (1 + SCENARIO.disc_budget)
        + SCENARIO.n_tenants * SCENARIO.runs_per_tenant
    )
    assert report.history_records == expected_records

    # The burst must actually exercise admission control (1000 tenants
    # against a 256-slot queue), and retries must absorb every rejection.
    assert sum(report.rejections.values()) > 0

    # Same-fingerprint tenants share shards: their canonical probes are
    # warm-cache answers on the shard that saw them first.
    assert sum(report.stats["shards"]["engine_hits_by_shard"]) > 0

    # Latency SLIs are well-formed.
    assert report.tune_latency_p99_s >= report.tune_latency_p50_s > 0

    # Billing flowed through both ledger sides on every shard that ran.
    assert report.tuning_cost_usd > 0
    assert report.production_cost_usd > 0

    # The pool-wide per-phase wall-time breakdown (suggest vs evaluate
    # vs ingest vs similarity) must cover the phases this load exercises.
    assert set(report.per_phase) >= {"suggest", "evaluate", "ingest"}
    for phase in report.per_phase.values():
        assert phase["seconds"] >= 0.0 and phase["calls"] >= 1

    out = {
        "benchmark": "multi-tenant service load",
        "machine": {"cpu_count": os.cpu_count(),
                    "platform": platform.platform()},
        "scenarios": {
            "load_1000x100": {
                # strict-JSON friendly: the uncapped budget (inf) -> null
                "scenario": {
                    k: (None if v == float("inf") else v)
                    for k, v in asdict(report.scenario).items()
                },
                "wall_s": report.wall_s,
                "runs_submitted": report.runs_submitted,
                "runs_per_s": report.runs_per_s,
                "tune_latency_p50_s": report.tune_latency_p50_s,
                "tune_latency_p99_s": report.tune_latency_p99_s,
                "tenants_deployed": report.tenants_deployed,
                "tenants_denied": report.tenants_denied,
                "rejections": report.rejections,
                "slo_attained": report.slo_attained,
                "slo_missed": report.slo_missed,
                "tuning_cost_usd": report.tuning_cost_usd,
                "production_cost_usd": report.production_cost_usd,
                "history_records": report.history_records,
                "admission": report.stats["admission"],
                "scheduler": report.stats["scheduler"],
                "shards": report.stats["shards"],
                "per_phase": report.per_phase,
            },
        },
    }
    OUT_PATH.write_text(json.dumps(out, indent=2) + "\n")

    print(f"\n{'tenants':>10}{'runs':>10}{'wall':>9}{'runs/s':>9}"
          f"{'p50':>8}{'p99':>8}")
    print(f"{report.tenants_deployed:>10}{report.runs_submitted:>10}"
          f"{report.wall_s:>8.1f}s{report.runs_per_s:>9.0f}"
          f"{report.tune_latency_p50_s:>7.1f}s"
          f"{report.tune_latency_p99_s:>7.1f}s")
    print("per-phase: " + "  ".join(
        f"{name} {p['seconds']:.1f}s/{p['calls']}"
        for name, p in sorted(report.per_phase.items())))
