"""Table I — potential execution-time saving of re-tuning over evolving inputs.

Paper methodology (Section IV.B): for each of three workloads and three
evolving input sizes, run 100 random configurations and find the best;
report the saving of DS2/DS3's best over re-using DS1's best.

Paper numbers (one experimental draw on EMR):

    Potential savings      Pagerank   Bayes   Wordcount
    DS1_best - DS2_best        8%       17%       0%
    DS1_best - DS3_best       56%       25%       3%

Expected shape: PageRank saves the most and grows steeply with input
size (its cached graph and shuffle volumes shift the optimum); Bayes is
intermediate; Wordcount is scan-bound and saves ~nothing.  The absolute
percentages are one noisy draw of a best-of-100 process — we fix the
sampling seed for reproducibility and report the same single-draw
methodology.
"""

import numpy as np
import pytest

from repro.analysis import render_table
from repro.config import spark_space
from repro.sparksim import SparkSimulator
from repro.workloads import TABLE1_WORKLOADS, get_workload

#: the paper reports a single experimental draw; we average three fixed
#: draws of the 100-random-configuration process to tame best-of-100
#: selection noise (see EXPERIMENTS.md for the per-draw spread)
SAMPLE_SEEDS = (42, 5, 13)
N_CONFIGS = 100
EVAL_SEEDS = range(300, 303)

PAPER = {
    "pagerank": (8.0, 56.0),
    "bayes": (17.0, 25.0),
    "wordcount": (0.0, 3.0),
}


def _best_config(simulator, workload, input_mb, cluster, configs, seed_base):
    best_runtime, best = np.inf, None
    for i, config in enumerate(configs):
        result = simulator.run(workload, input_mb, cluster, config, seed=seed_base + i)
        if result.success and result.runtime_s < best_runtime:
            best_runtime, best = result.runtime_s, config
    return best


def _mean_runtime(simulator, workload, input_mb, cluster, config):
    return float(np.mean([
        simulator.run(workload, input_mb, cluster, config, seed=s).effective_runtime()
        for s in EVAL_SEEDS
    ]))


def _one_draw(simulator, space, cluster, sample_seed):
    rng = np.random.default_rng(sample_seed)
    configs = space.sample_configurations(N_CONFIGS, rng)
    savings = {}
    for name in TABLE1_WORKLOADS:
        workload = get_workload(name)
        best_ds1 = _best_config(simulator, workload, workload.inputs.ds1_mb,
                                cluster, configs, sample_seed * 100)
        row = []
        for label in ("DS2", "DS3"):
            input_mb = workload.inputs.size(label)
            best_k = _best_config(simulator, workload, input_mb, cluster,
                                  configs, sample_seed * 100)
            reuse = _mean_runtime(simulator, workload, input_mb, cluster, best_ds1)
            tuned = _mean_runtime(simulator, workload, input_mb, cluster, best_k)
            row.append(max(0.0, (reuse - tuned) / reuse * 100.0))
        savings[name] = tuple(row)
    return savings


def run_table1(cluster):
    simulator = SparkSimulator()
    space = spark_space()
    draws = [_one_draw(simulator, space, cluster, s) for s in SAMPLE_SEEDS]
    return {
        name: tuple(
            float(np.mean([d[name][k] for d in draws])) for k in range(2)
        )
        for name in TABLE1_WORKLOADS
    }


@pytest.mark.benchmark(group="table1")
def test_table1_retuning_savings(benchmark, paper_cluster):
    savings = benchmark.pedantic(run_table1, args=(paper_cluster,),
                                 rounds=1, iterations=1)
    rows = []
    for name in TABLE1_WORKLOADS:
        p2, p3 = PAPER[name]
        m2, m3 = savings[name]
        rows.append([name, f"{p2:.0f}% / {p3:.0f}%", f"{m2:.1f}% / {m3:.1f}%"])
    print(render_table(
        "Table I: potential saving of re-tuning (DS2 / DS3)",
        ["workload", "paper", "measured"], rows,
    ))

    # Shape assertions: ordering at DS3 and the scan-bound flatness.
    assert savings["pagerank"][1] > savings["bayes"][1] > savings["wordcount"][1]
    assert savings["pagerank"][1] >= 25.0          # large saving at DS3
    assert savings["wordcount"][1] <= 10.0         # marginal for wordcount
    # Savings grow with input growth for pagerank (8% -> 56% in the paper).
    assert savings["pagerank"][1] > savings["pagerank"][0]
