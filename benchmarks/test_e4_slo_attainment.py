"""E4 — "jobs should run within X% of the optimal runtime" (Sections IV.D, V.C).

The paper proposes tuning-effectiveness SLOs and lists three candidate
metrics for the unknowable 'optimal': the true optimum (measurable only
exhaustively), the best similar workload ever run, and improvement over
the default configuration.  This bench tunes three workloads under a
fixed budget and evaluates all three SLO metrics, reporting attainment
of 'within 25% of optimal' — the commonly-agreed efficiency metric the
paper says tuning services should be judged by.

Expected shape: a modest BO budget attains the 25%-of-optimal SLO for
most workloads; the improvement-over-default metric is trivially attained
(default is terrible); the best-similar metric is the strictest.
"""

import numpy as np
import pytest

from repro.analysis import render_table
from repro.config import spark_core_space
from repro.core import SLOMetric, TuningSLO, evaluate_slo
from repro.tuning import BayesOptTuner, SimulationObjective, run_tuner
from repro.workloads import get_workload

BUDGET = 30
WORKLOADS = ["pagerank", "bayes", "sort"]
TARGET = 0.25


def _exhaustive_optimum(space, workload, input_mb, cluster, n=300):
    rng = np.random.default_rng(7)
    best = np.inf
    for i, config in enumerate(space.sample_configurations(n, rng)):
        obj = SimulationObjective(workload, input_mb, cluster=cluster, seed=20_000 + i)
        best = min(best, obj(config))
    return best


def run_e4(cluster):
    space = spark_core_space()
    out = {}
    best_any = np.inf
    for name in WORKLOADS:
        workload = get_workload(name)
        input_mb = workload.inputs.ds1_mb
        optimum = _exhaustive_optimum(space, workload, input_mb, cluster)
        objective = SimulationObjective(workload, input_mb, cluster=cluster, seed=5)
        result = run_tuner(BayesOptTuner(space, seed=5, n_init=10), objective, BUDGET)
        default_runtime = objective(space.default_configuration())
        out[name] = {
            "achieved": result.best_cost,
            "optimum": optimum,
            "default": default_runtime,
        }
        best_any = min(best_any, optimum)
    for name in WORKLOADS:
        out[name]["best_similar"] = best_any
    return out


@pytest.mark.benchmark(group="e4")
def test_e4_slo_attainment(benchmark, paper_cluster):
    results = benchmark.pedantic(run_e4, args=(paper_cluster,), rounds=1, iterations=1)
    slo_opt = TuningSLO(SLOMetric.WITHIN_OPTIMAL, TARGET)
    slo_default = TuningSLO(SLOMetric.IMPROVEMENT_OVER_DEFAULT, 0.5)
    rows, attainments = [], []
    for name, r in results.items():
        opt_report = evaluate_slo(slo_opt, r["achieved"], r["optimum"])
        def_report = evaluate_slo(slo_default, r["achieved"], r["default"])
        attainments.append(opt_report.attained)
        rows.append([
            name,
            f"{r['achieved']:.0f}s / optimum {r['optimum']:.0f}s",
            f"{opt_report.value:+.0%}",
            "ATTAINED" if opt_report.attained else "MISSED",
            f"{def_report.value:.0%} better than default",
        ])
    print(render_table(
        f"E4: tuning-efficiency SLO — within {TARGET:.0%} of optimal after {BUDGET} evals",
        ["workload", "achieved vs optimal", "distance", "SLO verdict",
         "vs default"], rows,
    ))

    # A modest BO budget attains the within-25% SLO for most workloads...
    assert sum(attainments) >= len(WORKLOADS) - 1
    # ...and the improvement-over-default target is attained everywhere.
    for r in results.values():
        report = evaluate_slo(slo_default, r["achieved"], r["default"])
        assert report.attained
