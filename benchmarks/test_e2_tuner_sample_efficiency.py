"""E2 — sample efficiency of the surveyed tuning strategies (Section II).

Paper claims woven into the survey: BestConfig needed ~500 executions to
tune 30 Spark parameters; DAC's models need thousands of executions;
model-based Bayesian optimization (CherryPick) finds near-optimal
configurations "using a small number of execution samples"; RL (Bu et
al.) "fits systems with a limited number of configuration parameters".

This bench runs every strategy with an identical small budget on the
same workload/cluster/seeds and reports (i) the best runtime found and
(ii) executions needed to get within 20% of a strong reference optimum.

Expected shape: model-based tuners (BO, tree, DAC) dominate random /
round-based search at small budgets; hill climbing and Q-learning trail
on this 12-dimensional space.
"""

import numpy as np
import pytest

from repro.analysis import render_table
from repro.config import spark_core_space
from repro.sparksim import SparkSimulator
from repro.tuning import (
    BayesOptTuner,
    BestConfigTuner,
    DACTuner,
    GeneticTuner,
    HillClimbTuner,
    QLearningTuner,
    RandomSearchTuner,
    SimulationObjective,
    TreeTuner,
    run_tuner,
)
from repro.workloads import get_workload

BUDGET = 40
SEEDS = (0, 1)
TARGET_FRACTION = 0.2

TUNERS = {
    "random": lambda s, seed: RandomSearchTuner(s, seed=seed),
    "bestconfig (DDS+RBS)": lambda s, seed: BestConfigTuner(s, seed=seed, samples_per_round=10),
    "hillclimb (MROnline)": lambda s, seed: HillClimbTuner(s, seed=seed),
    "qlearning (Bu et al.)": lambda s, seed: QLearningTuner(s, seed=seed),
    "genetic": lambda s, seed: GeneticTuner(s, seed=seed, population_size=10),
    "dac (model+GA)": lambda s, seed: DACTuner(s, seed=seed, n_init=10,
                                               ga_generations=6, n_trees=12),
    "tree (Wang et al.)": lambda s, seed: TreeTuner(s, seed=seed, n_init=10, n_trees=15),
    "bo (CherryPick)": lambda s, seed: BayesOptTuner(s, seed=seed, n_init=10),
}

MODEL_BASED = {"dac (model+GA)", "tree (Wang et al.)", "bo (CherryPick)"}


def _reference_optimum(space, workload, input_mb, cluster):
    """Strong reference: best of 400 random configurations."""
    simulator = SparkSimulator()
    rng = np.random.default_rng(99)
    best = np.inf
    for i, config in enumerate(space.sample_configurations(400, rng)):
        objective = SimulationObjective(workload, input_mb, cluster=cluster,
                                        simulator=simulator, seed=10_000 + i)
        best = min(best, objective(config))
    return best


def run_e2(cluster):
    space = spark_core_space()
    workload = get_workload("pagerank")
    input_mb = workload.inputs.ds1_mb
    reference = _reference_optimum(space, workload, input_mb, cluster)
    table = {}
    for name, factory in TUNERS.items():
        bests, evals_to_target = [], []
        for seed in SEEDS:
            objective = SimulationObjective(
                workload, input_mb, cluster=cluster, seed=500 + seed,
            )
            result = run_tuner(factory(space, seed), objective, budget=BUDGET)
            bests.append(result.best_cost)
            evals_to_target.append(
                result.evaluations_to_within(TARGET_FRACTION, reference)
            )
        table[name] = {
            "best": float(np.mean(bests)),
            "evals": evals_to_target,
            "reference": reference,
        }
    return table


@pytest.mark.benchmark(group="e2")
def test_e2_tuner_sample_efficiency(benchmark, paper_cluster):
    table = benchmark.pedantic(run_e2, args=(paper_cluster,), rounds=1, iterations=1)
    reference = next(iter(table.values()))["reference"]
    rows = []
    for name, s in table.items():
        evals = "/".join("-" if e is None else str(e) for e in s["evals"])
        rows.append([name, s["best"], f"{s['best'] / reference:.2f}x", evals])
    print(render_table(
        f"E2: best runtime after {BUDGET} evaluations "
        f"(reference optimum {reference:.1f}s from 400 random)",
        ["tuner", "best (s)", "vs reference", "evals to within 20%"], rows,
    ))

    # Model-based strategies beat plain random at this budget on average.
    random_best = table["random"]["best"]
    model_bests = [table[n]["best"] for n in MODEL_BASED]
    assert min(model_bests) < random_best
    assert np.mean(model_bests) < random_best * 1.1
    # The best model-based tuner gets near the 400-sample reference with
    # ~an order of magnitude fewer executions (the CherryPick claim).
    reached = [e for n in MODEL_BASED for e in table[n]["evals"] if e is not None]
    assert reached and min(reached) <= BUDGET
