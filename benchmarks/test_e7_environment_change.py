"""E7 — resilience to environment change / co-location bias (Sections II.A, IV.B).

Paper: one-shot cloud-configuration choices "could be biased due to
transient co-location of test workload runs with other resource-intensive
workloads or (at the other end) with atypically low contention" — and
static approaches "miss the opportunity of using the cloud's elasticity
features when the workload changes".

This bench (i) quantifies the runtime penalty of co-location
interference, (ii) measures how often a one-shot best-of-N cloud choice
made under noisy conditions differs from the quiet-condition choice, and
(iii) ablates the simulator's interference model (a DESIGN.md ablation
target).
"""

import numpy as np
import pytest

from repro.analysis import render_table
from repro.cloud import Cluster, InterferenceModel, NOISY, QUIET
from repro.config import cloud_space
from repro.core import probe_configuration
from repro.sparksim import SparkSimulator
from repro.workloads import get_workload

N_TRIALS = 10
N_CANDIDATES = 12


def _one_shot_choice(space, workload, input_mb, interference, seed):
    """Best-of-N cloud configs, each measured by a single execution."""
    simulator = SparkSimulator()
    rng = np.random.default_rng(seed)
    configs = space.sample_configurations(N_CANDIDATES, rng)
    best_cost, best = np.inf, None
    for i, config in enumerate(configs):
        cluster = Cluster.of(config["cloud.instance_type"],
                             int(config["cloud.cluster_size"]))
        env = interference.step() if interference else QUIET
        result = simulator.run(workload, input_mb, cluster,
                               probe_configuration(), env=env, seed=seed + i)
        cost = cluster.cost_of(result.effective_runtime())
        if cost < best_cost:
            best_cost, best = cost, config
    return best


def run_e7():
    simulator = SparkSimulator()
    workload = get_workload("sort")
    input_mb = workload.inputs.ds2_mb
    cluster = Cluster.of("h1.4xlarge", 4)

    # (i) interference penalty on a fixed deployment
    quiet_rt = np.mean([
        simulator.run(workload, input_mb, cluster, probe_configuration(),
                      env=QUIET, seed=s).runtime_s for s in range(5)
    ])
    noisy_rt = np.mean([
        simulator.run(workload, input_mb, cluster, probe_configuration(),
                      env=NOISY, seed=s).runtime_s for s in range(5)
    ])

    # (ii) one-shot cloud choice instability under heavy contention
    # (level=5: a congested multi-tenant host, network slowdowns ~1.6x)
    space = cloud_space("aws", min_nodes=2, max_nodes=12)
    flips = 0
    for t in range(N_TRIALS):
        stable = _one_shot_choice(space, workload, input_mb, None, seed=50 * t)
        contended = _one_shot_choice(
            space, workload, input_mb,
            InterferenceModel(level=5.0, seed=t), seed=50 * t,
        )
        if stable != contended:
            flips += 1

    # (iii) ablation: interference process statistics
    model = InterferenceModel(level=1.0, seed=0)
    factors = [model.step().combined() for _ in range(300)]
    return {
        "quiet_rt": quiet_rt,
        "noisy_rt": noisy_rt,
        "flips": flips,
        "mean_factor": float(np.mean(factors)),
        "p95_factor": float(np.quantile(factors, 0.95)),
    }


@pytest.mark.benchmark(group="e7")
def test_e7_environment_change(benchmark):
    out = benchmark.pedantic(run_e7, rounds=1, iterations=1)
    rows = [
        ["noisy-neighbour slowdown", "significant (paper: biases choices)",
         f"{out['noisy_rt'] / out['quiet_rt']:.2f}x"],
        ["one-shot cloud choice flips under contention",
         "frequent", f"{out['flips']}/{N_TRIALS}"],
        ["interference factor mean / p95", "~1.1 / ~1.3",
         f"{out['mean_factor']:.2f} / {out['p95_factor']:.2f}"],
    ]
    print(render_table("E7: co-location interference biases static choices",
                       ["quantity", "expected", "measured"], rows))

    assert out["noisy_rt"] > 1.1 * out["quiet_rt"]
    # Transient contention changes the one-shot winner often enough to
    # matter — the bias the paper warns about.
    assert out["flips"] >= 2
    assert 1.0 < out["mean_factor"] < 1.5
