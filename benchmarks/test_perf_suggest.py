"""Perf — the saturated suggest path: incremental surrogate + index.

Measures the two hot provider-side read paths this PR made incremental
and records them in ``BENCH_suggest.json`` at the repo root, gated by
``check_bench_regression.py`` in the bench-smoke job:

* ``suggest_throughput``: steady-state ``suggest()``/``observe()``
  cycles of a :class:`BayesOptTuner` carrying **200 observations**,
  with hyperparameter re-optimization pushed out of the window so the
  measurement isolates the per-call surrogate work (rank-1 Cholesky
  update + acquisition) from the periodic O(n³) refit both modes pay
  identically.  ``incremental=True`` (the default: append-only encoded
  design matrix, per-point cost transform, running incumbent) must be
  **≥ 3×** the ``incremental=False`` reference, which re-encodes the
  full history twice per suggest — and the two suggestion streams must
  be identical, config for config (the bit-identity the hypothesis
  suite in ``tests/tuning/test_bo_incremental.py`` proves in depth).
* ``similarity_lookup_1M``: ``find_similar_workloads`` against a
  synthetic **1,000,000-record** history spread over 16 workload keys.
  The indexed path (one vectorized (W, d) distance op over the
  :class:`~repro.core.simindex.SignatureIndex`'s cached means) must
  answer **≥ 50×** faster than the pre-index reference
  (``find_similar_workloads_scan``: one full-log pass per workload
  key), and return identical neighbours.  The one-time incremental
  sync cost is reported separately — it is paid once per batch of
  appended records, not per query.

Run: ``PYTHONPATH=src python -m pytest benchmarks/test_perf_suggest.py -s``
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

import numpy as np

from repro.config.space import Configuration
from repro.config.spark_params import spark_core_space
from repro.core.histlog import HistoryLog
from repro.core.history import HistoryStore
from repro.core.similarity import (
    find_similar_workloads,
    find_similar_workloads_scan,
)
from repro.tuning.bo.bayesopt import BayesOptTuner

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_suggest.json"

# --- suggest_throughput -----------------------------------------------------
N_OBSERVED = 200          # surrogate size the acceptance bar is stated at
N_TIMED = 50              # suggest/observe cycles inside the timed window
N_CANDIDATES = 32         # small pool: the window measures surrogate
                          # maintenance, not acquisition scoring
SUGGEST_REPS = 3          # back-to-back reps; the median ratio is reported

# --- similarity_lookup_1M ---------------------------------------------------
N_RECORDS = 1_000_000
N_TENANTS = 4
N_LABELS = 4              # 16 workload keys: keeps one scan query ~O(10 s)
N_FEATURES = 11
N_QUERIES = 200           # indexed lookups per timing pass


def _suggest_campaign(incremental: bool, observations, costs):
    """Feed 200 observations, absorb the one-time fit, time N_TIMED cycles."""
    tuner = BayesOptTuner(
        spark_core_space(), seed=9, n_init=8, n_candidates=N_CANDIDATES,
        refit_every=10**9, incremental=incremental,
    )
    for config, cost in observations:
        tuner.observe(config, cost)
    # First suggest triggers the one full hyperparameter fit; both modes
    # pay it identically, so it stays outside the timed window.
    tuner.observe(tuner.suggest(), 77.0)
    trail = []
    t0 = time.perf_counter()
    for cost in costs:
        config = tuner.suggest()
        tuner.observe(config, cost)
        trail.append(config)
    return time.perf_counter() - t0, trail


def _scenario_suggest_throughput():
    space = spark_core_space()
    rng = np.random.default_rng(7)
    observations = [
        (config, float(5.0 + 500.0 * r))
        for config, r in zip(space.sample_configurations(N_OBSERVED, rng),
                             rng.random(N_OBSERVED))
    ]
    costs = [float(5.0 + 500.0 * x) for x in rng.random(N_TIMED)]
    inc_times, reb_times = [], []
    for _ in range(SUGGEST_REPS):
        e_inc, trail_inc = _suggest_campaign(True, observations, costs)
        e_reb, trail_reb = _suggest_campaign(False, observations, costs)
        # Identical streams or the speedup is meaningless.
        assert trail_inc == trail_reb
        inc_times.append(e_inc)
        reb_times.append(e_reb)
    ratios = sorted(r / i for i, r in zip(inc_times, reb_times))
    return {
        "n_observations": N_OBSERVED,
        "timed_suggests": N_TIMED,
        "n_candidates": N_CANDIDATES,
        "incremental_elapsed_s": min(inc_times),
        "rebuild_elapsed_s": min(reb_times),
        "suggests_per_s": N_TIMED / min(inc_times),
        "rebuild_suggests_per_s": N_TIMED / min(reb_times),
        "speedup_vs_rebuild": ratios[len(ratios) // 2],
    }


def _synthetic_history():
    """1M records over 16 workload keys in one append-only log."""
    rng = np.random.default_rng(13)
    log = HistoryLog(segment_records=200_000)
    store = HistoryStore(log)
    config = Configuration({})          # shared: configs are not indexed
    signatures = rng.random((N_RECORDS, N_FEATURES)) * 8.0
    runtimes = 5.0 + 500.0 * rng.random(N_RECORDS)
    failed = rng.random(N_RECORDS) < 0.02
    t0 = time.perf_counter()
    for i in range(N_RECORDS):
        log.append_new(
            tenant=f"t{i % N_TENANTS}",
            workload_label=f"w{(i // N_TENANTS) % N_LABELS}",
            input_mb=1024.0, cluster="m5.xlarge x4", config=config,
            runtime_s=float(runtimes[i]), success=bool(not failed[i]),
            signature=signatures[i],
        )
    build_s = time.perf_counter() - t0
    return log, store, build_s


def _scenario_similarity_lookup():
    log, store, build_s = _synthetic_history()
    rng = np.random.default_rng(29)
    targets = rng.random((N_QUERIES, N_FEATURES)) * 8.0

    # Reference: the pre-index path, one full-log scan per workload key.
    # One query is O(workloads × records) — timed once, it *is* the
    # per-lookup cost the index replaced.
    t0 = time.perf_counter()
    scan_hits = find_similar_workloads_scan(store, targets[0], k=3)
    scan_s = time.perf_counter() - t0

    # One-time incremental sync folds the 1M appended records into the
    # index; every query after that is a (W, d) matrix op.
    t0 = time.perf_counter()
    store.index().sync()
    sync_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    for target in targets:
        indexed_hits = find_similar_workloads(store, target, k=3)
    lookup_s = (time.perf_counter() - t0) / N_QUERIES

    # Identity: the indexed path must return the scan's neighbours
    # bitwise — same keys, same distances, same mean signatures.
    indexed_hits = find_similar_workloads(store, targets[0], k=3)
    assert [(s.tenant, s.workload_label, s.distance) for s in indexed_hits] \
        == [(s.tenant, s.workload_label, s.distance) for s in scan_hits]
    for a, b in zip(indexed_hits, scan_hits):
        assert np.array_equal(a.signature, b.signature)

    counters = store.index().counters()
    assert counters["records_indexed"] == N_RECORDS
    return {
        "n_records": N_RECORDS,
        "n_workloads": N_TENANTS * N_LABELS,
        "history_build_s": build_s,
        "scan_query_s": scan_s,
        "index_sync_s": sync_s,
        "lookup_us": lookup_s * 1e6,
        "lookups_per_s": 1.0 / lookup_s,
        "speedup_vs_scan": scan_s / lookup_s,
        "index_counters": counters,
    }


def test_perf_suggest_path():
    suggest = _scenario_suggest_throughput()
    similarity = _scenario_similarity_lookup()

    report = {
        "benchmark": "suggest path",
        "machine": {"cpu_count": os.cpu_count(),
                    "platform": platform.platform()},
        "scenarios": {
            "suggest_throughput": suggest,
            "similarity_lookup_1M": similarity,
        },
    }
    OUT_PATH.write_text(json.dumps(report, indent=2) + "\n")

    print(f"\nsuggest@{suggest['n_observations']}: "
          f"{suggest['suggests_per_s']:.0f}/s incremental vs "
          f"{suggest['rebuild_suggests_per_s']:.0f}/s rebuild "
          f"({suggest['speedup_vs_rebuild']:.1f}x)")
    print(f"similarity@{similarity['n_records']}: "
          f"{similarity['lookup_us']:.0f}us indexed vs "
          f"{similarity['scan_query_s']:.2f}s scan "
          f"({similarity['speedup_vs_scan']:.0f}x), "
          f"sync {similarity['index_sync_s']:.2f}s")

    # PR 8 acceptance: incremental surrogate state >= 3x the per-call
    # rebuild at 200 observations, with identical suggestion streams.
    assert suggest["speedup_vs_rebuild"] >= 3.0, (
        f"incremental suggest only {suggest['speedup_vs_rebuild']:.1f}x "
        f"the rebuild baseline"
    )
    # PR 8 acceptance: indexed similarity lookup >= 50x the pre-index
    # linear scan over 1M records, with identical neighbours.
    assert similarity["speedup_vs_scan"] >= 50.0, (
        f"indexed lookup only {similarity['speedup_vs_scan']:.0f}x the scan"
    )
