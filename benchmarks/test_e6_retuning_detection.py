"""E6 — defining the need for workload re-tuning (challenge V.D).

Paper: "simply picking fixed percentual runtime deltas as thresholds for
re-tuning are likely to lead to it being done either too frequently or
too late"; detection should "distinguish marginal changes in workload
characteristics from dramatic ones".

This bench streams simulated production runtimes of a recurring workload
through every detector under three scenarios — steady (no drift), a
marginal input change (should mostly be ignored), and a dramatic input
change (must fire promptly) — and reports false-alarm rate, detection
rate and detection delay.

Expected shape: the fixed threshold either false-alarms (small delta) or
detects late/never (large delta); adaptive detectors (Page-Hinkley,
CUSUM, windowed z-test) fire on the dramatic change with low false-alarm
rates.
"""

import numpy as np
import pytest

from repro.analysis import render_table
from repro.config import spark_core_space
from repro.core import (
    CusumDetector,
    FixedThresholdDetector,
    PageHinkleyDetector,
    WindowedZTestDetector,
    probe_configuration,
)
from repro.sparksim import SparkSimulator
from repro.workloads import PageRank

N_STREAMS = 8
STEADY_LEN = 24
SHIFT_AT = 12

DETECTORS = {
    "fixed delta=10% (touchy)": lambda: FixedThresholdDetector(delta=0.10),
    "fixed delta=100% (sluggish)": lambda: FixedThresholdDetector(delta=1.00),
    "page-hinkley": PageHinkleyDetector,
    "cusum": CusumDetector,
    "windowed z-test": WindowedZTestDetector,
}


def _stream(simulator, cluster, config, sizes, seed_base):
    workload = PageRank(iterations=4)
    return [
        simulator.run(workload, mb, cluster, config, seed=seed_base + i).effective_runtime()
        for i, mb in enumerate(sizes)
    ]


def run_e6(cluster):
    simulator = SparkSimulator()
    config = probe_configuration().replace(**{
        "spark.executor.memory": 12288, "spark.default.parallelism": 200,
    })
    # Scenario sizes chosen by measured runtime ratios: +5% input is a
    # ~1.04x runtime change (marginal — inside noise), +80% input is a
    # ~1.6x change (dramatic — worth re-tuning, but *under* the sluggish
    # fixed threshold's 2x trigger, exposing its "too late" failure mode).
    steady = [5_000] * STEADY_LEN
    marginal = [5_000] * SHIFT_AT + [5_250] * (STEADY_LEN - SHIFT_AT)
    dramatic = [5_000] * SHIFT_AT + [9_000] * (STEADY_LEN - SHIFT_AT)

    table = {}
    for name, factory in DETECTORS.items():
        false_alarms = detected = 0
        marginal_fires = 0
        delays = []
        for s in range(N_STREAMS):
            det = factory()
            for r in _stream(simulator, cluster, config, steady, 1000 * s):
                if det.update(r):
                    false_alarms += 1
            det = factory()
            for r in _stream(simulator, cluster, config, marginal, 2000 * s):
                if det.update(r):
                    marginal_fires += 1
                    break
            det = factory()
            for i, r in enumerate(_stream(simulator, cluster, config, dramatic, 3000 * s)):
                if det.update(r):
                    if i >= SHIFT_AT:
                        detected += 1
                        delays.append(i - SHIFT_AT)
                    break
        table[name] = {
            "false_alarm_rate": false_alarms / (N_STREAMS * STEADY_LEN),
            "marginal_fire_rate": marginal_fires / N_STREAMS,
            "detection_rate": detected / N_STREAMS,
            "mean_delay": float(np.mean(delays)) if delays else float("nan"),
        }
    return table


@pytest.mark.benchmark(group="e6")
def test_e6_retuning_detection(benchmark, paper_cluster):
    table = benchmark.pedantic(run_e6, args=(paper_cluster,), rounds=1, iterations=1)
    rows = [
        [name, f"{s['false_alarm_rate']:.1%}", f"{s['marginal_fire_rate']:.0%}",
         f"{s['detection_rate']:.0%}", s["mean_delay"]]
        for name, s in table.items()
    ]
    print(render_table(
        "E6: re-tuning detection (1.6x runtime shift at run 12; "
        "marginal = 1.04x)",
        ["detector", "false alarms (steady)", "fires on marginal",
         "detects dramatic", "delay (runs)"], rows,
    ))

    touchy = table["fixed delta=10% (touchy)"]
    sluggish = table["fixed delta=100% (sluggish)"]
    adaptive = [table["page-hinkley"], table["cusum"], table["windowed z-test"]]
    # The paper's predicted failure modes of fixed thresholds:
    assert touchy["false_alarm_rate"] > 0.02            # "too frequently"
    assert sluggish["detection_rate"] <= 0.25           # "too late" (missed)
    # Adaptive detectors: quiet when steady, mostly quiet on the marginal
    # change, and reliable on the dramatic one.
    for s in adaptive:
        assert s["false_alarm_rate"] <= 0.02
        assert s["marginal_fire_rate"] <= 0.5
        assert s["detection_rate"] >= 0.75
    best_adaptive = max(s["detection_rate"] for s in adaptive)
    assert best_adaptive > sluggish["detection_rate"]
