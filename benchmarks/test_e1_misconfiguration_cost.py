"""E1 — the cost of misconfiguration (Sections I and III.B).

Paper claims: "plausible but under-provisioned cluster setups can slow
the analytics pipelines by up to 12X [CherryPick] while suboptimal
framework configurations can lead to 89X performance degradation [DAC]";
"tuned configuration parameters being able to improve the performance by
up to 89X compared to the default configuration".

Expected shape: across the suite, worst-vs-best random-config spread of
one-to-two orders of magnitude, default-vs-best of the same order for at
least one workload, and a meaningful fraction of plausible random
configurations crashing outright.
"""

import numpy as np
import pytest

from repro.analysis import render_table
from repro.config import spark_space
from repro.sparksim import SparkSimulator
from repro.workloads import get_workload

N_CONFIGS = 80
WORKLOADS = ["pagerank", "bayes", "sort", "sql-join-agg"]


def run_e1(cluster):
    simulator = SparkSimulator()
    space = spark_space()
    rng = np.random.default_rng(1)
    configs = space.sample_configurations(N_CONFIGS, rng)
    default = space.default_configuration()
    out = {}
    for name in WORKLOADS:
        workload = get_workload(name)
        input_mb = workload.inputs.ds2_mb
        runtimes, failures = [], 0
        for i, config in enumerate(configs):
            result = simulator.run(workload, input_mb, cluster, config, seed=i)
            if result.success:
                runtimes.append(result.runtime_s)
            else:
                failures += 1
                runtimes.append(result.effective_runtime())
        default_run = simulator.run(workload, input_mb, cluster, default, seed=0)
        out[name] = {
            "best": min(runtimes),
            "worst": max(runtimes),
            "default": default_run.effective_runtime(),
            "failures": failures,
        }
    return out


@pytest.mark.benchmark(group="e1")
def test_e1_misconfiguration_cost(benchmark, paper_cluster):
    stats = benchmark.pedantic(run_e1, args=(paper_cluster,), rounds=1, iterations=1)
    rows = []
    for name, s in stats.items():
        rows.append([
            name,
            f"{s['worst'] / s['best']:.0f}x",
            f"{s['default'] / s['best']:.0f}x",
            f"{s['failures']}/{N_CONFIGS}",
        ])
    print(render_table(
        "E1: misconfiguration cost (paper: up to 12x cloud / 89x DISC)",
        ["workload", "worst/best", "default/best", "crashed configs"], rows,
    ))

    spreads = [s["worst"] / s["best"] for s in stats.values()]
    default_ratios = [s["default"] / s["best"] for s in stats.values()]
    # Order-of-magnitude spreads, with at least one workload in the
    # tens-of-x band the DAC paper reports.
    assert max(spreads) > 20.0
    assert all(sp > 5.0 for sp in spreads)
    assert max(default_ratios) > 10.0
    # A meaningful fraction of plausible configurations crash.
    total_failures = sum(s["failures"] for s in stats.values())
    assert total_failures >= 0.05 * N_CONFIGS * len(stats)
