"""E8 — interpretable tuning models (challenge V.A).

Paper: GP optimization is data-efficient "however, it is challenging to
extract the acquired tuning knowledge from Gaussian process"; Duvenaud's
additive GPs decompose the model into low-dimensional functions,
"potentially enabling the interpretation of input interactions and their
influence on the variance of the overall model".

This bench tunes the same workload with a standard GP and an additive
GP, then checks (i) the additive model pays little or no accuracy/
optimization cost, and (ii) its variance decomposition ranks the
parameters the simulator actually responds to (resource sizing,
parallelism) above the knobs that barely matter (speculation flags,
fetch sizing) — extracted tuning knowledge.
"""

import numpy as np
import pytest

from repro.analysis import render_table
from repro.config import spark_core_space
from repro.tuning import AdditiveGPTuner, BayesOptTuner, SimulationObjective, run_tuner
from repro.workloads import get_workload

BUDGET = 35
SEEDS = (0, 1)

#: knobs the cost model responds to strongly vs weakly
HEAVY = {"spark.executor.instances", "spark.executor.cores",
         "spark.executor.memory", "spark.default.parallelism"}
LIGHT = {"spark.speculation", "spark.reducer.maxSizeInFlight",
         "spark.shuffle.file.buffer"}


def run_e8(cluster):
    space = spark_core_space()
    workload = get_workload("pagerank")
    input_mb = workload.inputs.ds1_mb

    plain_bests, additive_bests = [], []
    importances = None
    for seed in SEEDS:
        obj_a = SimulationObjective(workload, input_mb, cluster=cluster, seed=300 + seed)
        plain = run_tuner(BayesOptTuner(space, seed=seed, n_init=10), obj_a, BUDGET)
        obj_b = SimulationObjective(workload, input_mb, cluster=cluster, seed=300 + seed)
        additive_tuner = AdditiveGPTuner(space, seed=seed, n_init=10)
        additive = run_tuner(additive_tuner, obj_b, BUDGET)
        plain_bests.append(plain.best_cost)
        additive_bests.append(additive.best_cost)
        importances = additive_tuner.parameter_importances()
    values, curve = additive_tuner.effect_curve("spark.executor.instances",
                                                resolution=10)
    return {
        "plain": float(np.mean(plain_bests)),
        "additive": float(np.mean(additive_bests)),
        "importances": importances,
        "effect": (values, curve),
    }


@pytest.mark.benchmark(group="e8")
def test_e8_interpretability(benchmark, paper_cluster):
    out = benchmark.pedantic(run_e8, args=(paper_cluster,), rounds=1, iterations=1)
    imp = out["importances"]
    ranked = sorted(imp.items(), key=lambda kv: -kv[1])
    rows = [[name, f"{share:.1%}",
             "heavy" if name in HEAVY else ("light" if name in LIGHT else "")]
            for name, share in ranked]
    print(render_table(
        f"E8: additive-GP variance decomposition "
        f"(plain GP best {out['plain']:.0f}s vs additive {out['additive']:.0f}s)",
        ["parameter", "variance share", "expected weight"], rows,
    ))

    # (i) interpretability costs little optimization quality.
    assert out["additive"] <= out["plain"] * 1.35
    # (ii) the decomposition extracts real tuning knowledge: the heavy
    # resource knobs collectively outrank the light protocol knobs.
    heavy_mass = sum(v for k, v in imp.items() if k in HEAVY)
    light_mass = sum(v for k, v in imp.items() if k in LIGHT)
    assert heavy_mass > light_mass
    # The top-ranked parameter is a heavy one.
    assert ranked[0][0] in HEAVY
    # (iii) the per-parameter effect curve is non-trivial (not flat).
    _, curve = out["effect"]
    assert np.ptp(curve) > 0
