"""Shared helpers for the experiment benchmarks.

Every bench regenerates one table/figure/claim from the paper and prints
a paper-vs-measured comparison (collect with ``pytest benchmarks/
--benchmark-only -s`` to see the tables; EXPERIMENTS.md records the
reference output).
"""

import pytest

from repro.cloud import Cluster


@pytest.fixture(scope="session")
def paper_cluster():
    """The Table-I experimental cluster: four h1.4xlarge instances."""
    return Cluster.of("h1.4xlarge", 4)
