"""E5 — leveraging tuning knowledge across workloads (challenge V.B).

The paper: "inject the acquired knowledge from one tuning workload to a
similar one: this has the potential to accelerate the tuning and improve
its data efficiency (required number of workload executions)" — with
AROMA-style clustering finding the similar workload and warm-started
models doing the injection; plus the negative-transfer warning.

This bench populates a provider history with a tuned sibling workload
(same shape, different CPU profile, different tenant), then tunes the
target cold vs warm and compares the incumbent after a small budget.

Expected shape: warm-started tuning dominates cold at small budgets; the
similarity search picks the true sibling over an unrelated workload; and
a tight negative-transfer radius refuses to transfer from dissimilar
workloads.
"""

import numpy as np
import pytest

from repro.analysis import render_table
from repro.config import spark_core_space
from repro.core import (
    HistoryStore,
    build_transfer_plan,
    find_similar_workloads,
    probe_configuration,
    signature,
)
from repro.sparksim import SparkSimulator
from repro.tuning import BayesOptTuner, SimulationObjective, run_tuner
from repro.workloads import PageRank, Wordcount, variant_of

#: transfer accelerates *early* convergence — the claim is about data
#: efficiency, so the comparison runs at a small budget
BUDGET = 8
SEEDS = (0, 1, 2, 3, 4, 5)


def _populate_history(store, cluster, simulator):
    """A neighbour tenant tuned their pagerank (30 runs) + noise workloads."""
    space = spark_core_space()
    sibling = variant_of(PageRank(), name="their-graph", cpu_scale=1.35)
    rng = np.random.default_rng(3)
    for i, config in enumerate(space.sample_configurations(30, rng)):
        full = probe_configuration().replace(**dict(config))
        result = simulator.run(sibling, 9_000, cluster, full, seed=i)
        store.record("neighbour", sibling.name, 9_000, cluster.describe(),
                     full, result, signature(result))
    unrelated = Wordcount()
    for i in range(5):
        result = simulator.run(unrelated, 20_000, cluster, probe_configuration(), seed=i)
        store.record("other", unrelated.name, 20_000, cluster.describe(),
                     probe_configuration(), result, signature(result))


def run_e5(cluster):
    simulator = SparkSimulator()
    store = HistoryStore()
    _populate_history(store, cluster, simulator)
    space = spark_core_space()
    target = PageRank()
    input_mb = target.inputs.ds2_mb

    probe_obj = SimulationObjective(target, input_mb, cluster=cluster,
                                    simulator=simulator, seed=400)
    probe_runtime = probe_obj(probe_configuration())
    target_sig = signature(probe_obj.last_result)

    similar = find_similar_workloads(store, target_sig, k=2)
    plan = build_transfer_plan(store, target_sig, space,
                               target_scale_runtime=probe_runtime)
    guarded = build_transfer_plan(store, target_sig, space, max_distance=1e-6)

    cold_bests, warm_bests = [], []
    for seed in SEEDS:
        obj_cold = SimulationObjective(target, input_mb, cluster=cluster, seed=600 + seed)
        cold = run_tuner(BayesOptTuner(space, seed=seed, n_init=8),
                         obj_cold, budget=BUDGET)
        obj_warm = SimulationObjective(target, input_mb, cluster=cluster, seed=600 + seed)
        warm = run_tuner(
            BayesOptTuner(space, seed=seed, n_init=4, warm_start=plan.observations),
            obj_warm, budget=BUDGET,
        )
        cold_bests.append(cold.best_cost)
        warm_bests.append(warm.best_cost)
    return {
        "similar": similar,
        "plan": plan,
        "guarded": guarded,
        "cold": cold_bests,
        "warm": warm_bests,
    }


@pytest.mark.benchmark(group="e5")
def test_e5_transfer_learning(benchmark, paper_cluster):
    out = benchmark.pedantic(run_e5, args=(paper_cluster,), rounds=1, iterations=1)
    cold, warm = np.mean(out["cold"]), np.mean(out["warm"])
    rows = [
        ["nearest workload found", "the sibling graph job",
         f"{out['similar'][0].tenant}/{out['similar'][0].workload_label}"],
        ["transferred observations", "-", len(out["plan"].observations)],
        [f"cold best after {BUDGET} evals (s)", "-", cold],
        [f"warm best after {BUDGET} evals (s)", "-", warm],
        ["warm / cold", "< 1 (faster convergence)", f"{warm / cold:.2f}"],
        ["transfer under tight radius", "refused (negative-transfer guard)",
         "refused" if out["guarded"].is_empty else "allowed"],
    ]
    print(render_table("E5: cross-workload transfer (AROMA similarity + warm start)",
                       ["quantity", "expected", "measured"], rows))

    assert out["similar"][0].workload_label == "their-graph"
    assert not out["plan"].is_empty
    assert out["guarded"].is_empty
    # Warm-started tuning converges faster at this small budget, winning
    # half or more of the paired seeds and on average.
    wins = sum(w <= c for w, c in zip(out["warm"], out["cold"]))
    assert wins >= len(SEEDS) // 2
    assert warm < cold
