"""Gate throughput regressions against the committed benchmark JSON.

Compares a freshly-generated ``BENCH_throughput.json`` against the
committed baseline and fails when a cold-path scenario's evals/s
regressed by more than the tolerance.  Warm-cache and parallel scenarios
are excluded: their numbers are dominated by cache bookkeeping and
host core counts, not the code under guard.

Usage::

    python benchmarks/check_bench_regression.py BASELINE FRESH \
        [--max-regression 0.30]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: cold-path scenarios whose evals/s are gated
GATED_SCENARIOS = (
    "sim_scalar_cold",
    "sim_batch_cold",
    "engine_serial_scalar",
    "engine_serial",
)


def check(baseline: dict, fresh: dict, max_regression: float) -> list[str]:
    failures = []
    base_scenarios = baseline.get("scenarios", {})
    fresh_scenarios = fresh.get("scenarios", {})
    for name in GATED_SCENARIOS:
        base = base_scenarios.get(name)
        new = fresh_scenarios.get(name)
        if base is None:
            # The committed baseline predates this scenario; nothing to
            # regress against yet — the next regeneration picks it up.
            continue
        if new is None:
            failures.append(f"{name}: missing from fresh report")
            continue
        base_eps = float(base["evals_per_s"])
        new_eps = float(new["evals_per_s"])
        floor = base_eps * (1.0 - max_regression)
        if new_eps < floor:
            failures.append(
                f"{name}: {new_eps:.1f} evals/s is "
                f"{1.0 - new_eps / base_eps:.0%} below the committed "
                f"{base_eps:.1f} (allowed: {max_regression:.0%})"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", type=Path,
                        help="committed BENCH_throughput.json")
    parser.add_argument("fresh", type=Path,
                        help="freshly generated BENCH_throughput.json")
    parser.add_argument("--max-regression", type=float, default=0.30,
                        help="allowed fractional evals/s drop (default 0.30)")
    args = parser.parse_args(argv)
    if not 0.0 <= args.max_regression < 1.0:
        parser.error("--max-regression must be in [0, 1)")

    baseline = json.loads(args.baseline.read_text())
    fresh = json.loads(args.fresh.read_text())
    failures = check(baseline, fresh, args.max_regression)
    for name in GATED_SCENARIOS:
        scenario = fresh.get("scenarios", {}).get(name)
        if scenario:
            print(f"{name:<24}{float(scenario['evals_per_s']):>10.1f} evals/s")
    if failures:
        print("\nthroughput regression:", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    print("\nno cold-path regression beyond "
          f"{args.max_regression:.0%} tolerance")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
