"""Gate benchmark regressions against a committed benchmark JSON.

Compares a freshly-generated benchmark report against the committed
baseline and fails when a gated scenario metric regressed beyond its
tolerance.  The gate table is selected by the report's ``benchmark``
field, so one checker serves every ``BENCH_*.json`` in the repo:

* **evaluation engine throughput** (``BENCH_throughput.json``) gates
  ``evals_per_s`` per scenario.  Cold single-process paths are tight
  (their noise is the code under guard); pool-backed scenarios get a
  looser bound — their numbers also move with host core count and
  fork/IPC weather.  Warm-cache scenarios are excluded entirely: they
  measure cache bookkeeping, not simulation.
* **multi-tenant service load** (``BENCH_service.json``) gates the two
  service SLIs: ``runs_per_s`` (higher is better; loose — the asyncio +
  shard-thread interleaving moves with the host) and
  ``tune_latency_p99_s`` (lower is better; may at most double).
* **suggest path** (``BENCH_suggest.json``) gates the provider's two
  hot read paths: ``suggests_per_s`` (incremental surrogate cycles at
  200 observations; tight — pure single-thread numpy) and the indexed
  ``lookups_per_s`` over the 1M-record history (loose — sub-millisecond
  quantities move with timer resolution on shared runners).

A scenario whose report entry carries a ``"skipped"`` marker — in the
baseline **or** the fresh report — is host-gated (e.g. the two-worker
pool scenario on a single-core runner) and is not compared.

Usage::

    python benchmarks/check_bench_regression.py BASELINE FRESH \
        [--max-regression 0.30]

``--max-regression`` scales every tolerance by the same factor relative
to the 0.30 default (so ``0.60`` doubles each scenario's allowance).
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from pathlib import Path

#: default fractional drop allowed for a tight (cold-path) gate
DEFAULT_TOLERANCE = 0.30


@dataclass(frozen=True)
class Gate:
    """One gated metric of one scenario."""

    metric: str
    tolerance: float              # allowed fractional regression
    higher_is_better: bool = True


#: report ``benchmark`` field -> {scenario name -> gates}
GATED_BENCHMARKS: dict[str, dict[str, tuple[Gate, ...]]] = {
    "evaluation engine throughput": {
        "sim_scalar_cold": (Gate("evals_per_s", DEFAULT_TOLERANCE),),
        "sim_batch_cold": (Gate("evals_per_s", DEFAULT_TOLERANCE),),
        "sim_batch_joint": (Gate("evals_per_s", DEFAULT_TOLERANCE),),
        "engine_serial_scalar": (Gate("evals_per_s", DEFAULT_TOLERANCE),),
        "engine_serial": (Gate("evals_per_s", DEFAULT_TOLERANCE),),
        "engine_parallel_shm": (Gate("evals_per_s", 0.60),),
    },
    "multi-tenant service load": {
        "load_1000x100": (
            Gate("runs_per_s", 0.60),
            Gate("tune_latency_p99_s", 1.00, higher_is_better=False),
        ),
    },
    "suggest path": {
        "suggest_throughput": (Gate("suggests_per_s", DEFAULT_TOLERANCE),),
        "similarity_lookup_1M": (Gate("lookups_per_s", 0.60),),
    },
}


def check(baseline: dict, fresh: dict, max_regression: float) -> list[str]:
    failures = []
    scale = max_regression / DEFAULT_TOLERANCE
    name = fresh.get("benchmark")
    gates = GATED_BENCHMARKS.get(name)
    if gates is None:
        return [f"unknown benchmark {name!r}: no gate table"]
    if baseline.get("benchmark") not in (None, name):
        return [
            f"baseline is for {baseline.get('benchmark')!r}, fresh for {name!r}"
        ]
    base_scenarios = baseline.get("scenarios", {})
    fresh_scenarios = fresh.get("scenarios", {})
    for scenario, scenario_gates in gates.items():
        base = base_scenarios.get(scenario)
        new = fresh_scenarios.get(scenario)
        if base is None:
            # The committed baseline predates this scenario; nothing to
            # regress against yet — the next regeneration picks it up.
            continue
        if new is None:
            failures.append(f"{scenario}: missing from fresh report")
            continue
        if "skipped" in base or "skipped" in new:
            # Host-gated scenario (e.g. needs >= 2 cores): either side
            # recorded a skip marker instead of numbers, so there is
            # nothing meaningful to compare.
            continue
        for gate in scenario_gates:
            allowed = gate.tolerance * scale
            if gate.higher_is_better:
                allowed = min(allowed, 0.99)
            base_value = float(base[gate.metric])
            new_value = float(new[gate.metric])
            if gate.higher_is_better:
                bound = base_value * (1.0 - allowed)
                regressed = new_value < bound
                drop = 1.0 - new_value / base_value if base_value else 0.0
            else:
                bound = base_value * (1.0 + allowed)
                regressed = new_value > bound
                drop = new_value / base_value - 1.0 if base_value else 0.0
            if regressed:
                failures.append(
                    f"{scenario}.{gate.metric}: {new_value:.2f} is "
                    f"{drop:.0%} {'below' if gate.higher_is_better else 'above'} "
                    f"the committed {base_value:.2f} (allowed: {allowed:.0%})"
                )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", type=Path,
                        help="committed benchmark JSON")
    parser.add_argument("fresh", type=Path,
                        help="freshly generated benchmark JSON")
    parser.add_argument("--max-regression", type=float,
                        default=DEFAULT_TOLERANCE,
                        help="tight-gate fractional drop; scales every "
                             "per-scenario tolerance (default 0.30)")
    args = parser.parse_args(argv)
    if not 0.0 <= args.max_regression < 1.0:
        parser.error("--max-regression must be in [0, 1)")

    baseline = json.loads(args.baseline.read_text())
    fresh = json.loads(args.fresh.read_text())
    failures = check(baseline, fresh, args.max_regression)
    for scenario, scenario_gates in GATED_BENCHMARKS.get(
            fresh.get("benchmark"), {}).items():
        data = fresh.get("scenarios", {}).get(scenario)
        if not data:
            continue
        if "skipped" in data:
            print(f"{scenario}: skipped ({data['skipped']})")
            continue
        for gate in scenario_gates:
            print(f"{scenario}.{gate.metric:<32}"
                  f"{float(data[gate.metric]):>12.2f}")
    if failures:
        print("\nbenchmark regression:", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    print(f"\nno regression beyond {args.max_regression:.0%} base tolerance")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
