"""Gate throughput regressions against the committed benchmark JSON.

Compares a freshly-generated ``BENCH_throughput.json`` against the
committed baseline and fails when a gated scenario's evals/s regressed
by more than its tolerance.  Tolerances are per scenario: cold
single-process paths are tight (their noise is the code under guard),
while pool-backed scenarios get a looser bound — their numbers also
move with host core count and fork/IPC weather.  Warm-cache scenarios
are excluded entirely: they measure cache bookkeeping, not simulation.

Usage::

    python benchmarks/check_bench_regression.py BASELINE FRESH \
        [--max-regression 0.30]

``--max-regression`` scales every tolerance by the same factor relative
to the 0.30 default (so ``0.60`` doubles each scenario's allowance).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: default fractional evals/s drop allowed for a tight (cold-path) gate
DEFAULT_TOLERANCE = 0.30

#: gated scenarios -> allowed fractional evals/s drop at the default
#: ``--max-regression``.  The pool-backed scenario tolerates more: its
#: elapsed time includes fork + IPC costs the host controls.
GATED_SCENARIOS: dict[str, float] = {
    "sim_scalar_cold": DEFAULT_TOLERANCE,
    "sim_batch_cold": DEFAULT_TOLERANCE,
    "sim_batch_joint": DEFAULT_TOLERANCE,
    "engine_serial_scalar": DEFAULT_TOLERANCE,
    "engine_serial": DEFAULT_TOLERANCE,
    "engine_parallel_shm": 0.60,
}


def check(baseline: dict, fresh: dict, max_regression: float) -> list[str]:
    failures = []
    scale = max_regression / DEFAULT_TOLERANCE
    base_scenarios = baseline.get("scenarios", {})
    fresh_scenarios = fresh.get("scenarios", {})
    for name, tolerance in GATED_SCENARIOS.items():
        base = base_scenarios.get(name)
        new = fresh_scenarios.get(name)
        if base is None:
            # The committed baseline predates this scenario; nothing to
            # regress against yet — the next regeneration picks it up.
            continue
        if new is None:
            failures.append(f"{name}: missing from fresh report")
            continue
        allowed = min(tolerance * scale, 0.99)
        base_eps = float(base["evals_per_s"])
        new_eps = float(new["evals_per_s"])
        floor = base_eps * (1.0 - allowed)
        if new_eps < floor:
            failures.append(
                f"{name}: {new_eps:.1f} evals/s is "
                f"{1.0 - new_eps / base_eps:.0%} below the committed "
                f"{base_eps:.1f} (allowed: {allowed:.0%})"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", type=Path,
                        help="committed BENCH_throughput.json")
    parser.add_argument("fresh", type=Path,
                        help="freshly generated BENCH_throughput.json")
    parser.add_argument("--max-regression", type=float,
                        default=DEFAULT_TOLERANCE,
                        help="tight-gate fractional evals/s drop; scales "
                             "every per-scenario tolerance (default 0.30)")
    args = parser.parse_args(argv)
    if not 0.0 <= args.max_regression < 1.0:
        parser.error("--max-regression must be in [0, 1)")

    baseline = json.loads(args.baseline.read_text())
    fresh = json.loads(args.fresh.read_text())
    failures = check(baseline, fresh, args.max_regression)
    for name in GATED_SCENARIOS:
        scenario = fresh.get("scenarios", {}).get(name)
        if scenario:
            print(f"{name:<24}{float(scenario['evals_per_s']):>10.1f} evals/s")
    if failures:
        print("\nthroughput regression:", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    print("\nno cold-path regression beyond "
          f"{args.max_regression:.0%} tolerance")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
