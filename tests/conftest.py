"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.cloud import Cluster
from repro.config import spark_core_space, spark_space
from repro.sparksim import SparkSimulator


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def space():
    return spark_space()


@pytest.fixture
def core_space():
    return spark_core_space()


@pytest.fixture
def cluster():
    """The paper's experimental cluster: 4x h1.4xlarge."""
    return Cluster.of("h1.4xlarge", 4)


@pytest.fixture
def simulator():
    return SparkSimulator()


@pytest.fixture
def quiet_simulator():
    """Deterministic simulator (noise off) for exact-value assertions."""
    return SparkSimulator(noise=False)
