"""Integration tests for the seamless tuning service (Fig. 1 end to end)."""

import pytest

from repro.core import (
    FixedThresholdDetector,
    SLOMetric,
    TuningService,
    TuningSLO,
)
from repro.workloads import PageRank, Sort, Wordcount, variant_of


@pytest.fixture
def service():
    return TuningService(provider="aws", seed=7)


class TestTwoStageTuning:
    def test_submit_returns_complete_deployment(self, service):
        dep = service.submit("t1", Wordcount(), 20_000,
                             cloud_budget=8, disc_budget=12)
        assert dep.cluster.count >= 2
        assert dep.expected_runtime_s > 0
        assert dep.tuning_evaluations <= 8 + 12
        assert dep.config["spark.executor.memory"] >= 512

    def test_cloud_stage_picks_within_provider(self, service):
        cluster, evals = service.tune_cloud(Sort(), 10_000, budget=8)
        assert cluster.instance.provider == "aws"
        assert 1 <= evals <= 8

    def test_tuned_beats_default_config(self, service, simulator):
        dep = service.submit("t1", PageRank(), 9_000,
                             cloud_budget=8, disc_budget=15)
        from repro.config import spark_core_space

        default = service.disc_space.default_configuration()
        obj_default = simulator.run(
            dep.workload, dep.input_mb, dep.cluster,
            service.store.all()[0].config.replace(**dict(default)), seed=99,
        )
        assert dep.expected_runtime_s < obj_default.effective_runtime()

    def test_history_accumulates(self, service):
        service.submit("t1", Wordcount(), 20_000, cloud_budget=6, disc_budget=8)
        assert len(service.store) >= 8
        assert service.ledger.tuning_runs >= 8

    def test_slo_report_attached(self, service):
        slo = TuningSLO(SLOMetric.IMPROVEMENT_OVER_DEFAULT, target_fraction=0.3)
        dep = service.submit("t1", PageRank(), 9_000, slo=slo,
                             cloud_budget=6, disc_budget=12)
        assert dep.slo_report is not None
        assert dep.slo_report.attained  # default is terrible; easy target


class TestTransferAcrossTenants:
    def test_second_tenant_warm_starts(self, service):
        service.submit("t1", PageRank(), 9_000, cloud_budget=6, disc_budget=12)
        sibling = variant_of(PageRank(), name="their-graph", cpu_scale=1.3)
        dep = service.submit("t2", sibling, 9_000, cloud_budget=6, disc_budget=10)
        assert any("t1/" in s for s in dep.transferred_from)

    def test_transfer_can_be_disabled(self, service):
        service.submit("t1", PageRank(), 9_000, cloud_budget=6, disc_budget=10)
        dep = service.submit("t2", PageRank(cpu_scale=1.2), 9_000,
                             cloud_budget=6, disc_budget=10, use_transfer=False)
        assert dep.transferred_from == []


class TestProductionMonitoring:
    def test_steady_production_no_retuning(self, service):
        # The adaptive default detector stays quiet on a steady stream
        # (a touchy fixed threshold would false-fire on noise outliers —
        # exactly the Section V.D failure mode, tested in test_retuning).
        dep = service.submit("t1", Wordcount(), 20_000,
                             cloud_budget=6, disc_budget=10)
        runs = service.run_production(dep, [20_000] * 10)
        assert len(runs) == 10
        assert not any(r.retuned for r in runs)
        assert dep.retuned_count == 0

    def test_input_growth_triggers_retuning(self, service):
        dep = service.submit("t1", PageRank(), 5_000,
                             cloud_budget=6, disc_budget=12)
        sizes = [5_000] * 5 + [40_000] * 6
        runs = service.run_production(
            dep, sizes, detector=FixedThresholdDetector(delta=0.5),
            retune_budget=8,
        )
        assert any(r.retuned for r in runs)
        assert dep.retuned_count >= 1
        # Re-tuning happened at or after the size jump.
        first_retune = next(r.index for r in runs if r.retuned)
        assert first_retune >= 5

    def test_production_charged_to_ledger(self, service):
        dep = service.submit("t1", Wordcount(), 20_000,
                             cloud_budget=6, disc_budget=8)
        before = service.ledger.production_runs
        service.run_production(dep, [20_000] * 4)
        assert service.ledger.production_runs == before + 4
