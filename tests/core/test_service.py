"""Integration tests for the seamless tuning service (Fig. 1 end to end)."""

import pytest

from repro.core import (
    FixedThresholdDetector,
    PageHinkleyDetector,
    SLOMetric,
    TuningService,
    TuningSLO,
)
from repro.sparksim import FaultPlan, SparkSimulator, oom_kill
from repro.tuning.bo.bayesopt import BayesOptTuner
from repro.workloads import PageRank, Sort, Wordcount, variant_of


@pytest.fixture
def service():
    return TuningService(provider="aws", seed=7)


class TestTwoStageTuning:
    def test_submit_returns_complete_deployment(self, service):
        dep = service.submit("t1", Wordcount(), 20_000,
                             cloud_budget=8, disc_budget=12)
        assert dep.cluster.count >= 2
        assert dep.expected_runtime_s > 0
        assert dep.tuning_evaluations <= 8 + 12
        assert dep.config["spark.executor.memory"] >= 512

    def test_cloud_stage_picks_within_provider(self, service):
        cluster, evals = service.tune_cloud(Sort(), 10_000, budget=8)
        assert cluster.instance.provider == "aws"
        assert 1 <= evals <= 8

    def test_tuned_beats_default_config(self, service, simulator):
        dep = service.submit("t1", PageRank(), 9_000,
                             cloud_budget=8, disc_budget=15)
        from repro.config import spark_core_space

        default = service.disc_space.default_configuration()
        obj_default = simulator.run(
            dep.workload, dep.input_mb, dep.cluster,
            service.store.all()[0].config.replace(**dict(default)), seed=99,
        )
        assert dep.expected_runtime_s < obj_default.effective_runtime()

    def test_history_accumulates(self, service):
        service.submit("t1", Wordcount(), 20_000, cloud_budget=6, disc_budget=8)
        assert len(service.store) >= 8
        assert service.ledger.tuning_runs >= 8

    def test_slo_report_attached(self, service):
        slo = TuningSLO(SLOMetric.IMPROVEMENT_OVER_DEFAULT, target_fraction=0.3)
        dep = service.submit("t1", PageRank(), 9_000, slo=slo,
                             cloud_budget=6, disc_budget=12)
        assert dep.slo_report is not None
        assert dep.slo_report.attained  # default is terrible; easy target


class TestTransferAcrossTenants:
    def test_second_tenant_warm_starts(self, service):
        service.submit("t1", PageRank(), 9_000, cloud_budget=6, disc_budget=12)
        sibling = variant_of(PageRank(), name="their-graph", cpu_scale=1.3)
        dep = service.submit("t2", sibling, 9_000, cloud_budget=6, disc_budget=10)
        assert any("t1/" in s for s in dep.transferred_from)

    def test_transfer_can_be_disabled(self, service):
        service.submit("t1", PageRank(), 9_000, cloud_budget=6, disc_budget=10)
        dep = service.submit("t2", PageRank(cpu_scale=1.2), 9_000,
                             cloud_budget=6, disc_budget=10, use_transfer=False)
        assert dep.transferred_from == []


class TestProductionMonitoring:
    def test_steady_production_no_retuning(self, service):
        # The adaptive default detector stays quiet on a steady stream
        # (a touchy fixed threshold would false-fire on noise outliers —
        # exactly the Section V.D failure mode, tested in test_retuning).
        dep = service.submit("t1", Wordcount(), 20_000,
                             cloud_budget=6, disc_budget=10)
        runs = service.run_production(dep, [20_000] * 10)
        assert len(runs) == 10
        assert not any(r.retuned for r in runs)
        assert dep.retuned_count == 0

    def test_input_growth_triggers_retuning(self, service):
        dep = service.submit("t1", PageRank(), 5_000,
                             cloud_budget=6, disc_budget=12)
        sizes = [5_000] * 5 + [40_000] * 6
        runs = service.run_production(
            dep, sizes, detector=FixedThresholdDetector(delta=0.5),
            retune_budget=8,
        )
        assert any(r.retuned for r in runs)
        assert dep.retuned_count >= 1
        # Re-tuning happened at or after the size jump.
        first_retune = next(r.index for r in runs if r.retuned)
        assert first_retune >= 5

    def test_production_charged_to_ledger(self, service):
        dep = service.submit("t1", Wordcount(), 20_000,
                             cloud_budget=6, disc_budget=8)
        before = service.ledger.production_runs
        service.run_production(dep, [20_000] * 4)
        assert service.ledger.production_runs == before + 4

    def test_successful_runs_are_audited_as_detector_fed(self, service):
        dep = service.submit("t1", Wordcount(), 20_000,
                             cloud_budget=6, disc_budget=8)
        runs = service.run_production(dep, [20_000] * 5)
        assert all(r.success for r in runs)
        assert all(r.detector_fed for r in runs)
        assert all(r.consecutive_failures == 0 for r in runs)
        assert all(r.retune_reason is None for r in runs)


class TestFailureAwareProduction:
    """ISSUE 2: crashes must not poison the detector; K crashes re-tune."""

    def _deployment(self, service):
        return service.submit("t1", Wordcount(), 20_000,
                              cloud_budget=6, disc_budget=8)

    def _faulty_service(self, probability, seed=7):
        plan = FaultPlan.of(oom_kill(probability))
        return TuningService(
            provider="aws", seed=seed,
            simulator=SparkSimulator(fault_plan=plan),
        )

    def test_crashes_do_not_poison_the_detector(self, service):
        """Regression: zero false re-tunes on a steady stream with crashes.

        The old code fed ``effective_runtime()`` (floored at 3600s) into
        Page-Hinkley, so a single production crash fired a false re-tune;
        the replayed legacy stream below still does, the service no
        longer does.
        """
        dep = self._deployment(service)
        # p chosen so crashes occur but never 3 consecutive on this seed:
        # the consecutive-failure policy stays out of the picture and any
        # re-tune here could only come from detector poisoning.
        faulty = self._faulty_service(probability=0.15)
        detector = PageHinkleyDetector()
        runs = faulty.run_production(dep, [20_000] * 12, detector=detector)
        failed = [r for r in runs if not r.success]
        assert failed, "fault plan should crash at least one production run"
        # After the fix: crashes never reach the detector, no false alarms.
        assert detector.n_alarms == 0
        assert not any(r.retuned for r in runs)
        assert all(not r.detector_fed for r in failed)
        assert all(r.detector_fed for r in runs if r.success)
        # Before the fix (replayed): penalized crash runtimes poison the
        # same detector and fire at least one false re-tune.
        legacy = PageHinkleyDetector()
        legacy_alarms = 0
        for r in runs:
            penalized = r.runtime_s if r.success else max(r.runtime_s * 4, 3600.0)
            legacy_alarms += bool(legacy.update(penalized))
        assert legacy_alarms >= 1

    def test_consecutive_failures_trigger_explicit_retune(self, service):
        dep = self._deployment(service)
        faulty = self._faulty_service(probability=1.0)
        detector = PageHinkleyDetector()
        runs = faulty.run_production(
            dep, [20_000] * 4, detector=detector,
            retune_budget=6, max_consecutive_failures=3,
        )
        assert [r.consecutive_failures for r in runs] == [1, 2, 3, 1]
        assert runs[2].retuned and runs[2].retune_reason == "failures"
        assert dep.retuned_count >= 1
        # The failure policy, not the detector, owns crash handling.
        assert detector.n_alarms == 0
        assert all(not r.detector_fed for r in runs)

    def test_max_consecutive_failures_validated(self, service):
        dep = self._deployment(service)
        with pytest.raises(ValueError):
            service.run_production(dep, [20_000], max_consecutive_failures=0)


class TestCloudStopGuardFix:
    """ISSUE 2 satellite: the EI stop rule must track the tuner's n_init."""

    def test_small_budgets_consult_the_stop_rule(self, service, monkeypatch):
        calls = []
        original = BayesOptTuner.should_stop

        def spy(self, ei_fraction=0.1):
            calls.append(ei_fraction)
            return original(self, ei_fraction)

        monkeypatch.setattr(BayesOptTuner, "should_stop", spy)
        service.tune_cloud(Sort(), 10_000, budget=5)
        # Regression: with the hard-coded ``i >= 6`` guard this was never
        # consulted for budget < 7.
        assert len(calls) >= 1

    def test_stop_rule_ends_campaign_right_after_the_initial_design(
        self, service, monkeypatch,
    ):
        monkeypatch.setattr(
            BayesOptTuner, "should_stop", lambda self, ei_fraction=0.1: True,
        )
        _, evaluations = service.tune_cloud(Sort(), 10_000, budget=12)
        assert evaluations == 6      # n_init = min(6, 12): first consult wins
