"""Tests for the history store and workload characterization."""

import numpy as np
import pytest

from repro.core import (
    FEATURE_NAMES,
    HistoryStore,
    probe_configuration,
    signature,
    signature_distance,
)
from repro.workloads import KMeans, PageRank, Sort, Wordcount


def _run(simulator, cluster, workload, input_mb, seed=1):
    return simulator.run(workload, input_mb, cluster, probe_configuration(), seed=seed)


class TestSignature:
    def test_feature_vector_shape(self, cluster, simulator):
        sig = signature(_run(simulator, cluster, Wordcount(), 5000))
        assert sig.shape == (len(FEATURE_NAMES),)
        assert np.isfinite(sig).all()

    def test_probe_config_always_fits(self, cluster, simulator):
        for w in (Wordcount(), Sort(), PageRank(), KMeans()):
            r = _run(simulator, cluster, w, w.inputs.ds1_mb)
            assert r.success

    def test_sort_shuffle_heavier_than_wordcount(self, cluster, simulator):
        idx = FEATURE_NAMES.index("shuffle_ratio")
        wc = signature(_run(simulator, cluster, Wordcount(), 10_000))
        sort = signature(_run(simulator, cluster, Sort(), 10_000))
        assert sort[idx] > 5 * wc[idx]

    def test_iterative_workloads_cache_heavy(self, cluster, simulator):
        idx = FEATURE_NAMES.index("cache_fraction")
        km = signature(_run(simulator, cluster, KMeans(), 5_000))
        wc = signature(_run(simulator, cluster, Wordcount(), 5_000))
        assert km[idx] > 0.3
        assert wc[idx] == 0.0

    def test_same_workload_similar_across_sizes(self, cluster, simulator):
        """Characterization should recognize a workload as it grows..."""
        pr1 = signature(_run(simulator, cluster, PageRank(), 5_000))
        pr2 = signature(_run(simulator, cluster, PageRank(), 12_000))
        wc = signature(_run(simulator, cluster, Wordcount(), 20_000))
        assert signature_distance(pr1, pr2) < signature_distance(pr1, wc)

    def test_distance_zero_for_identical(self, cluster, simulator):
        sig = signature(_run(simulator, cluster, Sort(), 5_000))
        assert signature_distance(sig, sig) == 0.0

    def test_distance_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            signature_distance(np.zeros(3), np.zeros(3))


class TestHistoryStore:
    def _populate(self, cluster, simulator):
        store = HistoryStore()
        for tenant, w, mb in [("a", Wordcount(), 5000), ("a", Sort(), 5000),
                              ("b", Sort(), 8000)]:
            for seed in range(3):
                r = _run(simulator, cluster, w, mb, seed=seed)
                store.record(tenant, w.name, mb, cluster.describe(),
                             probe_configuration(), r, signature(r))
        return store

    def test_record_and_query(self, cluster, simulator):
        store = self._populate(cluster, simulator)
        assert len(store) == 9
        assert store.tenants() == ["a", "b"]
        assert ("a", "wordcount") in store.workload_keys()
        assert len(store.for_workload("a", "sort")) == 3

    def test_record_ids_unique_and_timestamps_ordered(self, cluster, simulator):
        store = self._populate(cluster, simulator)
        ids = [r.record_id for r in store.all()]
        stamps = [r.timestamp for r in store.all()]
        assert len(set(ids)) == len(ids)
        assert stamps == sorted(stamps)

    def test_best_for(self, cluster, simulator):
        store = self._populate(cluster, simulator)
        best = store.best_for("a", "sort")
        runs = store.for_workload("a", "sort")
        assert best.runtime_s == min(r.runtime_s for r in runs)

    def test_best_for_missing_returns_none(self):
        assert HistoryStore().best_for("x", "y") is None

    def test_mean_signature(self, cluster, simulator):
        store = self._populate(cluster, simulator)
        mean_sig = store.mean_signature("a", "sort")
        assert mean_sig.shape == (len(FEATURE_NAMES),)
        assert store.mean_signature("zz", "zz") is None

    def test_best_runtime_overall_with_filter(self, cluster, simulator):
        store = self._populate(cluster, simulator)
        overall = store.best_runtime_overall()
        sorts_only = store.best_runtime_overall(
            lambda r: r.workload_label == "sort"
        )
        assert overall <= sorts_only
