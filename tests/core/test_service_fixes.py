"""Regression tests for the service-layer correctness fixes.

Each class pins one of the bugs fixed alongside the service layer:
probe records that never matched the launched configuration, the SLO
reference run that was charged but never counted, and history records
aliasing caller-owned signature arrays.
"""

import numpy as np

from repro.cloud.cluster import Cluster
from repro.core import HistoryStore, SLOMetric, TuningService, TuningSLO
from repro.core.characterization import probe_configuration
from repro.tuning.random_search import RandomSearchTuner
from repro.workloads import Wordcount


class TestProbeRecordedAsLaunched:
    """tune_disc used to record the raw probe configuration while the
    tuner observed the repaired one — history replayed by transfer then
    contained a configuration that never actually ran."""

    def test_recorded_probe_matches_observed_probe(self):
        service = TuningService(seed=3)
        # 2-vCPU nodes: the canonical 4-core/8 GiB probe executors cannot
        # launch as requested, so the repair must change the config.
        cluster = Cluster.of("m5.large", 4)
        session, _ = service.tune_disc(
            "t1", "wc", Wordcount(), 5_000, cluster,
            budget=4, use_transfer=False,
        )
        probe_record = service.store.for_workload("t1", "wc")[0]
        probe_observation = session.result.history[0]
        for name in service.disc_space.names:
            assert probe_record.config[name] == probe_observation.config[name]

    def test_repair_actually_changed_the_probe(self):
        service = TuningService(seed=3)
        cluster = Cluster.of("m5.large", 4)
        service.tune_disc("t1", "wc", Wordcount(), 5_000, cluster,
                          budget=4, use_transfer=False)
        recorded = service.store.for_workload("t1", "wc")[0].config
        raw = probe_configuration()
        assert recorded["spark.executor.cores"] <= cluster.instance.vcpus
        assert (
            recorded["spark.executor.cores"] != raw["spark.executor.cores"]
            or recorded["spark.executor.memory"] != raw["spark.executor.memory"]
        )


class TestSLOReferenceCounted:
    """The IMPROVEMENT_OVER_DEFAULT reference run is a paid execution;
    it used to be charged to the ledger but left out of the
    deployment's evaluation count and invisible on the report."""

    @staticmethod
    def _submit(slo):
        service = TuningService(seed=11)
        return service.submit(
            "t1", Wordcount(), 20_000, slo=slo,
            cluster=Cluster.of("m5.xlarge", 4),
            # include_default=False: the default config must not also be
            # a search suggestion, or the SLO reference run would be an
            # (unpaid) engine cache hit and the ledger comparison below
            # would no longer count it
            disc_tuner=RandomSearchTuner(service.disc_space, seed=5,
                                         include_default=False),
            disc_budget=5, use_transfer=False,
        ), service

    def test_reference_evaluation_audited_and_counted(self):
        (baseline, _), (dep, service) = self._submit(None), self._submit(
            TuningSLO(SLOMetric.IMPROVEMENT_OVER_DEFAULT, 0.2)
        )
        assert dep.slo_report is not None
        assert dep.slo_report.reference_evaluations == 1
        assert dep.tuning_evaluations == baseline.tuning_evaluations + 1
        # the bill and the count agree: every ledger-charged tuning run
        # appears in the deployment's evaluation total
        assert dep.tuning_evaluations == service.ledger.tuning_runs

    def test_history_based_references_are_free(self):
        dep, service = self._submit(
            TuningSLO(SLOMetric.WITHIN_OPTIMAL, 0.5)
        )
        assert dep.slo_report is not None
        assert dep.slo_report.reference_evaluations == 0
        assert dep.tuning_evaluations == service.ledger.tuning_runs


class TestSignatureAliasing:
    """record() used to keep a reference to the caller's signature array:
    mutating it afterwards silently changed past similarity answers."""

    @staticmethod
    def _store_with_one(sig):
        store = HistoryStore()
        store.record("t1", "wc", 1_000.0, "c",
                     probe_configuration(), _Result(50.0, True), sig)
        return store

    def test_caller_mutation_does_not_change_history(self):
        sig = np.ones(8)
        store = self._store_with_one(sig)
        before = store.mean_signature("t1", "wc").copy()
        sig[:] = 99.0
        np.testing.assert_array_equal(store.mean_signature("t1", "wc"), before)
        np.testing.assert_array_equal(store.all()[0].signature, before)

    def test_stored_signature_is_read_only(self):
        store = self._store_with_one(np.ones(8))
        rec = store.all()[0]
        try:
            rec.signature[0] = 5.0
        except ValueError:
            pass
        else:
            raise AssertionError("stored signature should be immutable")


class _Result:
    def __init__(self, runtime_s, success):
        self.runtime_s = runtime_s
        self.success = success
