"""Identity suite: the signature index vs. the naive full-log scans.

The index is a pure performance structure — every answer must be
*bit-identical* to recomputing from a fresh snapshot, including across
forced :class:`HistoryLog` compactions mid-stream (append order is
stable through seal + compaction, which is what keeps the index's
suffix-incremental sync valid).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.space import Configuration
from repro.core.histlog import HistoryLog
from repro.core.history import HistoryStore
from repro.core.simindex import signature_index
from repro.core.similarity import (
    find_similar_workloads,
    find_similar_workloads_scan,
    signature_distance,
)

N_FEATURES = 11  # characterization signature dimension (scaled() asserts it)

_feature = st.floats(0.0, 8.0, allow_nan=False)
_signature = st.lists(_feature, min_size=N_FEATURES, max_size=N_FEATURES)
_record = st.tuples(
    st.integers(0, 3),                    # tenant
    st.integers(0, 2),                    # label
    st.floats(0.125, 1000.0, allow_nan=False),           # runtime
    st.booleans(),                        # success
    _signature,
    st.booleans(),                        # force a compaction after this record
)


def _fill(records, segment_records=5):
    """Append hypothesis-drawn records, compacting where flagged."""
    log = HistoryLog(segment_records=segment_records, compact_after=2)
    store = HistoryStore(log)
    cfg = Configuration({})
    for tenant, label, runtime, success, sig, compact in records:
        log.append_new(
            tenant=f"t{tenant}", workload_label=f"w{label}", input_mb=100.0,
            cluster="c", config=cfg, runtime_s=float(runtime),
            success=success, signature=np.asarray(sig, dtype=float),
        )
        if compact:
            log.compact()
    return log, store


class TestAggregateIdentity:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(_record, min_size=0, max_size=60))
    def test_aggregates_match_snapshot_recompute(self, records):
        _, store = _fill(records)
        snap = store.all()
        assert store.workload_keys() == sorted({r.key for r in snap})
        for key in store.workload_keys():
            runs = [r for r in snap if r.key == key and r.success]
            best = store.best_for(*key)
            mean = store.mean_signature(*key)
            if runs:
                # Same record object, not just the same runtime — and the
                # mean must be the bit-exact np.mean the scan computed.
                assert best is min(runs, key=lambda r: r.runtime_s)
                assert np.array_equal(
                    mean, np.mean([r.signature for r in runs], axis=0)
                )
            else:
                assert best is None and mean is None
        succ = [r for r in snap if r.success]
        expected = min((r.runtime_s for r in succ), default=None)
        assert store.best_runtime_overall() == expected

    @settings(max_examples=40, deadline=None)
    @given(st.lists(_record, min_size=0, max_size=60),
           st.integers(0, 3), st.integers(0, 2))
    def test_best_runtime_excluding_matches_scan(self, records, tenant, label):
        _, store = _fill(records)
        exclude = (f"t{tenant}", f"w{label}")
        naive = min(
            (r.runtime_s for r in store.all()
             if r.success and r.key != exclude),
            default=None,
        )
        assert store.index().best_runtime_excluding(exclude) == naive

    @settings(max_examples=25, deadline=None)
    @given(st.lists(_record, min_size=0, max_size=50))
    def test_incremental_equals_rebuild(self, records):
        """Syncing record-by-record ends in the same state as one rebuild."""
        log, store = _fill(records)
        index = store.index()
        index.sync()
        before = {
            key: (store.mean_signature(*key), store.best_for(*key))
            for key in store.workload_keys()
        }
        index.rebuild()
        for key, (mean, best) in before.items():
            if mean is None:
                assert store.mean_signature(*key) is None
            else:
                assert np.array_equal(store.mean_signature(*key), mean)
            assert store.best_for(*key) is best


class TestFindSimilarIdentity:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(_record, min_size=0, max_size=50), _signature,
           st.integers(0, 6),
           st.one_of(st.none(), st.tuples(st.integers(0, 3), st.integers(0, 2))),
           st.floats(0.1, 50.0, allow_nan=False))
    def test_indexed_neighbours_bit_identical_to_scan(
            self, records, target, k, exclude, max_distance):
        _, store = _fill(records)
        target = np.asarray(target, dtype=float)
        if exclude is not None:
            exclude = (f"t{exclude[0]}", f"w{exclude[1]}")
        indexed = find_similar_workloads(
            store, target, k=k, exclude=exclude, max_distance=max_distance)
        scanned = find_similar_workloads_scan(
            store, target, k=k, exclude=exclude, max_distance=max_distance)
        assert len(indexed) == len(scanned)
        for a, b in zip(indexed, scanned):
            assert (a.tenant, a.workload_label) == (b.tenant, b.workload_label)
            assert a.distance == b.distance          # bitwise, not approx
            assert np.array_equal(a.signature, b.signature)

    def test_interleaved_queries_and_appends_stay_identical(self):
        """Query → append → compact → query: the sync must keep up."""
        rng = np.random.default_rng(5)
        log = HistoryLog(segment_records=3, compact_after=2)
        store = HistoryStore(log)
        cfg = Configuration({})
        target = rng.random(N_FEATURES)
        for i in range(120):
            log.append_new(
                tenant=f"t{i % 5}", workload_label=f"w{i % 3}",
                input_mb=100.0, cluster="c", config=cfg,
                runtime_s=float(rng.random() * 100),
                success=bool(rng.random() > 0.25),
                signature=rng.random(N_FEATURES),
            )
            if i % 17 == 0:
                log.compact()
            if i % 7 == 0:
                a = find_similar_workloads(store, target, k=4)
                b = find_similar_workloads_scan(store, target, k=4)
                assert [(s.tenant, s.workload_label, s.distance) for s in a] \
                    == [(s.tenant, s.workload_label, s.distance) for s in b]

    def test_tie_break_matches_scan_key_order(self):
        """Equidistant workloads must come back in key-sorted order."""
        log = HistoryLog()
        store = HistoryStore(log)
        cfg = Configuration({})
        sig = np.ones(N_FEATURES)
        for tenant in ("t3", "t0", "t2", "t1"):
            log.append_new(
                tenant=tenant, workload_label="w", input_mb=1.0, cluster="c",
                config=cfg, runtime_s=1.0, success=True, signature=sig,
            )
        target = np.zeros(N_FEATURES)
        for k in (1, 2, 3, 4, 9):
            got = find_similar_workloads(store, target, k=k)
            ref = find_similar_workloads_scan(store, target, k=k)
            assert [s.tenant for s in got] == [s.tenant for s in ref]


class TestIndexMechanics:
    def test_one_index_per_log_shared_across_store_views(self):
        log = HistoryLog()
        a, b = HistoryStore(log), HistoryStore(log)
        assert a.index() is b.index()
        assert HistoryStore().index() is not a.index()

    def test_sync_is_incremental_not_rescan(self):
        log = HistoryLog()
        store = HistoryStore(log)
        cfg = Configuration({})
        sig = np.ones(N_FEATURES)
        for i in range(10):
            log.append_new(tenant="t", workload_label="w", input_mb=1.0,
                           cluster="c", config=cfg, runtime_s=1.0,
                           success=True, signature=sig)
        index = store.index()
        index.sync()
        assert index.counters()["records_indexed"] == 10
        for i in range(5):
            log.append_new(tenant="t", workload_label="w", input_mb=1.0,
                           cluster="c", config=cfg, runtime_s=1.0,
                           success=True, signature=sig)
        index.sync()
        c = index.counters()
        assert c["records_indexed"] == 15      # 5 new, not 15 rescanned
        assert c["rebuilds"] == 0

    def test_dimension_mismatch_rejected(self):
        log = HistoryLog()
        store = HistoryStore(log)
        cfg = Configuration({})
        log.append_new(tenant="t", workload_label="w", input_mb=1.0,
                       cluster="c", config=cfg, runtime_s=1.0,
                       success=True, signature=np.ones(N_FEATURES))
        log.append_new(tenant="t", workload_label="w", input_mb=1.0,
                       cluster="c", config=cfg, runtime_s=1.0,
                       success=True, signature=np.ones(3))
        with pytest.raises(ValueError):
            store.index().sync()


class TestLogTail:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(_record, min_size=0, max_size=40), st.integers(0, 45))
    def test_tail_is_snapshot_suffix(self, records, start):
        log, _ = _fill(records, segment_records=3)
        assert log.tail(start) == log.snapshot()[start:]


def test_index_arrays_keep_float64_signatures():
    """Dtype pins on the index's array surfaces (runtime counterpart of
    staticcheck's RA001): mean signatures and candidate signatures stay
    float64, so distance identity with the scan never depends on a
    narrower accumulator sneaking into the shard arrays."""
    rng = np.random.default_rng(9)
    log = HistoryLog(segment_records=4, compact_after=2)
    store = HistoryStore(log)
    cfg = Configuration({})
    for i in range(24):
        log.append_new(
            tenant=f"t{i % 3}", workload_label=f"w{i % 2}", input_mb=100.0,
            cluster="c", config=cfg, runtime_s=float(rng.random() * 10 + 1),
            success=True, signature=rng.random(N_FEATURES),
        )
    for key in store.workload_keys():
        mean = store.mean_signature(*key)
        assert mean.dtype == np.float64, key
        assert mean.shape == (N_FEATURES,)
    target = rng.random(N_FEATURES)
    for candidate in find_similar_workloads(store, target, k=4):
        assert candidate.signature.dtype == np.float64
        assert isinstance(candidate.distance, float)


def test_signature_index_internal_arrays_are_float64():
    """The index's backing matrices themselves, not just query results.

    White-box on purpose: ``find_similar`` compares distances computed
    from ``_means``, so the accumulator dtype is load-bearing for the
    bit-identity suite above even though it never escapes the class."""
    log = HistoryLog()
    store = HistoryStore(log)
    cfg = Configuration({})
    for i in range(8):
        log.append_new(tenant="t", workload_label=f"w{i}", input_mb=1.0,
                       cluster="c", config=cfg, runtime_s=1.0, success=True,
                       signature=np.full(N_FEATURES, float(i)))
    index = store.index()
    index.sync()
    assert signature_index(log) is index
    assert index._means.dtype == np.float64
    assert index._best_runtimes.dtype == np.float64
    assert index._counts.dtype == np.int64


def test_signature_distance_still_euclidean():
    a = np.arange(N_FEATURES, dtype=float)
    b = a + 2.0
    d = signature_distance(a, b)
    assert d == pytest.approx(np.linalg.norm((a - b) / _scale()))


def _scale():
    from repro.core.characterization import _FEATURE_SCALE
    return _FEATURE_SCALE
