"""Tests for re-tuning drift detectors."""

import numpy as np
import pytest

from repro.core import (
    CusumDetector,
    FixedThresholdDetector,
    PageHinkleyDetector,
    WindowedZTestDetector,
)

DETECTORS = [
    lambda: FixedThresholdDetector(delta=0.3),
    lambda: PageHinkleyDetector(),
    lambda: CusumDetector(),
    lambda: WindowedZTestDetector(),
]


def _steady(rng, n=30, mean=100.0, noise=0.05):
    return mean * rng.lognormal(0, noise, n)


def _shifted(rng, n_before=15, n_after=15, mean=100.0, shift=2.0, noise=0.05):
    before = mean * rng.lognormal(0, noise, n_before)
    after = mean * shift * rng.lognormal(0, noise, n_after)
    return np.concatenate([before, after])


class TestAllDetectors:
    @pytest.mark.parametrize("factory", DETECTORS)
    def test_detects_a_big_shift(self, factory):
        rng = np.random.default_rng(1)
        detector = factory()
        fired_at = None
        for i, r in enumerate(_shifted(rng, shift=2.5)):
            if detector.update(r):
                fired_at = i
                break
        assert fired_at is not None
        assert fired_at >= 15  # not before the shift

    @pytest.mark.parametrize("factory", DETECTORS)
    def test_mostly_quiet_on_steady_stream(self, factory):
        alarms = 0
        for seed in range(10):
            rng = np.random.default_rng(seed)
            detector = factory()
            for r in _steady(rng):
                if detector.update(r):
                    alarms += 1
        assert alarms <= 3  # <= 1% false-alarm-ish across 300 steady runs

    @pytest.mark.parametrize("factory", DETECTORS)
    def test_resets_after_alarm(self, factory):
        rng = np.random.default_rng(2)
        detector = factory()
        for r in _shifted(rng, shift=3.0):
            detector.update(r)
        n_before = detector.n_alarms
        assert n_before >= 1
        # After re-baselining, a steady stream at the new level stays quiet.
        post_alarms = sum(
            detector.update(r) for r in _steady(rng, n=20, mean=300.0)
        )
        assert post_alarms <= 1

    @pytest.mark.parametrize("factory", DETECTORS)
    def test_rejects_bad_runtimes(self, factory):
        detector = factory()
        with pytest.raises(ValueError):
            detector.update(0.0)
        with pytest.raises(ValueError):
            detector.update(float("inf"))

    @pytest.mark.parametrize("factory", DETECTORS)
    def test_rejects_non_finite_runtimes_without_polluting_state(self, factory):
        # Failed production runs must never enter the detector stream —
        # the service filters them, and the detector itself refuses any
        # value that could not be a real runtime.
        detector = factory()
        for bad in (float("nan"), float("-inf"), -5.0):
            with pytest.raises(ValueError):
                detector.update(bad)
        assert detector.n_seen == 0
        assert detector.n_alarms == 0


class TestFixedThresholdWeakness:
    """The failure mode Section V.D describes: fixed deltas misfire."""

    def test_small_delta_false_alarms_on_noise(self):
        rng = np.random.default_rng(3)
        touchy = FixedThresholdDetector(delta=0.05)
        alarms = sum(touchy.update(r) for r in _steady(rng, n=50, noise=0.1))
        assert alarms >= 3  # fires on pure noise

    def test_large_delta_misses_slow_drift(self):
        rng = np.random.default_rng(4)
        sluggish = FixedThresholdDetector(delta=1.0)
        # 40% degradation: worth re-tuning, but under the 100% threshold.
        drifted = np.concatenate([_steady(rng, 10), _steady(rng, 20, mean=140.0)])
        assert not any(sluggish.update(r) for r in drifted)

    def test_adaptive_detector_catches_what_fixed_misses(self):
        rng = np.random.default_rng(4)
        drifted = np.concatenate([_steady(rng, 10), _steady(rng, 20, mean=140.0)])
        cusum = CusumDetector()
        assert any(cusum.update(r) for r in drifted)


class TestValidation:
    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            FixedThresholdDetector(delta=0)
        with pytest.raises(ValueError):
            PageHinkleyDetector(threshold=0)
        with pytest.raises(ValueError):
            CusumDetector(h=0)
        with pytest.raises(ValueError):
            WindowedZTestDetector(reference=1)
