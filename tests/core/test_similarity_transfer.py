"""Tests for k-medoids clustering, neighbour lookup and transfer plans."""

import numpy as np
import pytest

from repro.config import spark_core_space
from repro.core import (
    HistoryStore,
    KMedoids,
    build_transfer_plan,
    find_similar_workloads,
    probe_configuration,
    signature,
)
from repro.workloads import PageRank, Sort, Wordcount, variant_of


class TestKMedoids:
    def test_separates_clear_clusters(self, rng):
        a = rng.normal(0, 0.1, (20, 2))
        b = rng.normal(5, 0.1, (20, 2))
        km = KMedoids(k=2, seed=0).fit(np.vstack([a, b]))
        labels = km.labels_
        assert len(set(labels[:20])) == 1
        assert len(set(labels[20:])) == 1
        assert labels[0] != labels[25]

    def test_medoids_are_data_points(self, rng):
        X = rng.random((30, 3))
        km = KMedoids(k=3, seed=1).fit(X)
        assert all(0 <= i < 30 for i in km.medoid_indices_)
        assert len(set(km.medoid_indices_)) == 3

    def test_k_one_picks_central_point(self):
        X = np.array([[0.0], [1.0], [0.5], [0.45]])
        km = KMedoids(k=1).fit(X)
        assert km.medoid_indices_[0] in (2, 3)

    def test_rejects_k_larger_than_n(self):
        with pytest.raises(ValueError):
            KMedoids(k=5).fit(np.zeros((3, 2)))

    def test_predict_assigns_nearest(self, rng):
        X = np.vstack([rng.normal(0, 0.1, (10, 2)), rng.normal(5, 0.1, (10, 2))])
        km = KMedoids(k=2, seed=0).fit(X)
        medoid_points = X[km.medoid_indices_]
        labels = km.predict(np.array([[0.0, 0.0], [5.0, 5.0]]), medoid_points)
        assert labels[0] != labels[1]


def _populated_store(cluster, simulator):
    """History with two pagerank-like tenants and one wordcount tenant."""
    store = HistoryStore()
    space = spark_core_space()
    rng = np.random.default_rng(0)
    jobs = [
        ("acme", PageRank(), 9_000),
        ("globex", variant_of(PageRank(), name="graph-x", cpu_scale=1.4), 6_000),
        ("initech", Wordcount(), 20_000),
    ]
    for tenant, w, mb in jobs:
        for i in range(6):
            cfg = space.sample_configuration(rng)
            full = probe_configuration().replace(**dict(cfg))
            r = simulator.run(w, mb, cluster, full, seed=i)
            store.record(tenant, w.name, mb, cluster.describe(), full, r, signature(r))
    return store


class TestFindSimilar:
    def test_nearest_is_the_sibling_workload(self, cluster, simulator):
        store = _populated_store(cluster, simulator)
        target = store.mean_signature("acme", "pagerank")
        similar = find_similar_workloads(store, target, k=2,
                                         exclude=("acme", "pagerank"))
        assert similar[0].workload_label == "graph-x"

    def test_exclude_self(self, cluster, simulator):
        store = _populated_store(cluster, simulator)
        target = store.mean_signature("acme", "pagerank")
        similar = find_similar_workloads(store, target, k=5,
                                         exclude=("acme", "pagerank"))
        assert all(s.workload_label != "pagerank" for s in similar)

    def test_max_distance_guards_negative_transfer(self, cluster, simulator):
        store = _populated_store(cluster, simulator)
        target = store.mean_signature("acme", "pagerank")
        none = find_similar_workloads(store, target, k=5, max_distance=1e-9,
                                      exclude=("acme", "pagerank"))
        assert none == []

    def test_distances_sorted(self, cluster, simulator):
        store = _populated_store(cluster, simulator)
        target = store.mean_signature("initech", "wordcount")
        similar = find_similar_workloads(store, target, k=3,
                                         exclude=("initech", "wordcount"))
        distances = [s.distance for s in similar]
        assert distances == sorted(distances)


class TestTransferPlan:
    def test_plan_prefers_similar_source(self, cluster, simulator):
        store = _populated_store(cluster, simulator)
        space = spark_core_space()
        target = store.mean_signature("acme", "pagerank")
        plan = build_transfer_plan(store, target, space,
                                   exclude=("acme", "pagerank"), k_sources=1)
        assert not plan.is_empty
        assert plan.sources[0].workload_label == "graph-x"

    def test_costs_rescaled_to_target(self, cluster, simulator):
        store = _populated_store(cluster, simulator)
        space = spark_core_space()
        target = store.mean_signature("acme", "pagerank")
        plan = build_transfer_plan(store, target, space,
                                   exclude=("acme", "pagerank"),
                                   k_sources=1, target_scale_runtime=100.0)
        # Costs are anchored so the source's *median* run maps onto the
        # target probe runtime; the source's best runs land below it
        # (the warmed model should still expect improvements).
        source = plan.sources[0]
        runs = sorted(
            r.runtime_s
            for r in store.for_workload(source.tenant, source.workload_label)
            if r.success
        )
        median = runs[len(runs) // 2]
        expected_best = runs[0] * (100.0 / median)
        assert min(cost for _, cost in plan.observations) == pytest.approx(expected_best)
        assert min(cost for _, cost in plan.observations) < 100.0

    def test_projected_configs_valid_in_space(self, cluster, simulator):
        store = _populated_store(cluster, simulator)
        space = spark_core_space()
        target = store.mean_signature("acme", "pagerank")
        plan = build_transfer_plan(store, target, space, exclude=("acme", "pagerank"))
        for config, _ in plan.observations:
            space.validate(config)

    def test_empty_store_empty_plan(self):
        space = spark_core_space()
        plan = build_transfer_plan(HistoryStore(), np.zeros(11), space)
        assert plan.is_empty

    def test_observation_cap(self, cluster, simulator):
        store = _populated_store(cluster, simulator)
        space = spark_core_space()
        target = store.mean_signature("acme", "pagerank")
        plan = build_transfer_plan(store, target, space,
                                   exclude=("acme", "pagerank"),
                                   max_observations=3)
        assert len(plan.observations) <= 3
