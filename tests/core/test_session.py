"""Tests for TuningSession: probing, recording, stopping rules."""

import pytest

from repro.cloud import CostLedger
from repro.config import spark_core_space
from repro.core import HistoryStore, SessionConfig, TuningSession
from repro.tuning import BayesOptTuner, RandomSearchTuner, SimulationObjective
from repro.workloads import Wordcount


def _session(cluster, tuner_cls=RandomSearchTuner, store=None, ledger=None, **tuner_kwargs):
    space = spark_core_space()
    workload = Wordcount()
    input_mb = 20_000
    objective = SimulationObjective(workload, input_mb, cluster=cluster, seed=9)
    return TuningSession(
        tenant="t", workload_label="wc", workload=workload, input_mb=input_mb,
        cluster=cluster, tuner=tuner_cls(space, seed=1, **tuner_kwargs),
        objective=objective, store=store, ledger=ledger,
    )


class TestProbe:
    def test_probe_returns_signature_and_runtime(self, cluster):
        session = _session(cluster)
        sig, runtime = session.probe()
        assert sig.shape == (11,)
        assert runtime > 0

    def test_probe_recorded_in_store(self, cluster):
        store = HistoryStore()
        session = _session(cluster, store=store)
        session.probe()
        assert len(store) == 1
        assert store.all()[0].workload_label == "wc"


class TestRun:
    def test_respects_budget(self, cluster):
        session = _session(cluster)
        result = session.run(SessionConfig(budget=7, ei_stop_fraction=None))
        assert result.n_evaluations == 7

    def test_records_every_evaluation(self, cluster):
        store = HistoryStore()
        session = _session(cluster, store=store)
        session.run(SessionConfig(budget=5, ei_stop_fraction=None))
        assert len(store) == 5

    def test_ledger_charged(self, cluster):
        ledger = CostLedger()
        session = _session(cluster, ledger=ledger)
        session.run(SessionConfig(budget=4, ei_stop_fraction=None))
        assert ledger.tuning_runs == 4

    def test_target_runtime_early_exit(self, cluster):
        session = _session(cluster)
        # Absurdly lax target: stop as soon as min_evaluations allows.
        result = session.run(SessionConfig(
            budget=30, min_evaluations=3, target_runtime_s=1e9,
            ei_stop_fraction=None,
        ))
        assert result.n_evaluations == 3

    def test_ei_stopping_rule_can_end_early(self, cluster):
        session = _session(cluster, tuner_cls=BayesOptTuner, n_init=6)
        result = session.run(SessionConfig(
            budget=40, min_evaluations=10, ei_stop_fraction=0.5,
        ))
        # With such a lax EI threshold the session stops before exhausting
        # the budget (CherryPick's stop-when-converged behaviour).
        assert result.n_evaluations < 40

    def test_min_evaluations_enforced(self, cluster):
        session = _session(cluster, tuner_cls=BayesOptTuner, n_init=4)
        result = session.run(SessionConfig(
            budget=20, min_evaluations=12, ei_stop_fraction=10.0,
            target_runtime_s=1e9,
        ))
        assert result.n_evaluations >= 12
