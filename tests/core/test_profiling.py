"""Per-phase profiling: the accumulator and its service-stack wiring."""

import threading

from repro.cloud.cluster import Cluster
from repro.core import PhaseProfiler, TuningService
from repro.core.serviced.frontend import ingest_production_runs
from repro.core.serviced.loadgen import LoadScenario, run_load
from repro.workloads import get_workload


class TestPhaseProfiler:
    def test_accumulates_time_and_calls(self):
        p = PhaseProfiler()
        for _ in range(3):
            with p.phase("suggest"):
                pass
        snap = p.snapshot()
        assert snap["suggest"]["calls"] == 3
        assert snap["suggest"]["seconds"] >= 0.0
        assert p.total_seconds() >= 0.0

    def test_exceptions_still_charged(self):
        p = PhaseProfiler()
        try:
            with p.phase("evaluate"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert p.snapshot()["evaluate"]["calls"] == 1

    def test_merge_folds_totals(self):
        a, b = PhaseProfiler(), PhaseProfiler()
        a.add("suggest", 1.0, calls=2)
        b.add("suggest", 0.5, calls=1)
        b.add("ingest", 2.0, calls=4)
        a.merge(b)
        snap = a.snapshot()
        assert snap["suggest"]["seconds"] == 1.5
        assert snap["suggest"]["calls"] == 3
        assert snap["ingest"]["calls"] == 4

    def test_thread_safety_no_lost_updates(self):
        p = PhaseProfiler()

        def work():
            for _ in range(200):
                p.add("evaluate", 0.001)

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert p.snapshot()["evaluate"]["calls"] == 800


class TestServiceWiring:
    def test_submit_records_suggest_evaluate_similarity(self):
        service = TuningService(seed=0)
        cluster = Cluster.of("m5.xlarge", 4)
        service.submit(
            "tenant-a", get_workload("wordcount"), 500.0,
            cluster=cluster, disc_budget=4, use_transfer=True,
        )
        phases = service.counters()["phases"]
        assert phases["suggest"]["calls"] >= 1
        assert phases["evaluate"]["calls"] >= 1
        assert phases["similarity"]["calls"] >= 1
        counters = service.counters()
        assert "engine" in counters and "signature_index" in counters

    def test_ingest_phase_recorded(self):
        service = TuningService(seed=0)
        cluster = Cluster.of("m5.xlarge", 4)
        deployment = service.submit(
            "tenant-a", get_workload("wordcount"), 500.0,
            cluster=cluster, disc_budget=3, use_transfer=False,
        )
        n = ingest_production_runs(service, deployment, 500.0, 5)
        assert n == 5
        phases = service.counters()["phases"]
        assert phases["ingest"]["calls"] == 1
        assert phases["ingest"]["seconds"] > 0.0

    def test_load_report_carries_pool_wide_per_phase(self):
        report = run_load(LoadScenario(
            n_tenants=4, n_workload_families=2, runs_per_tenant=4,
            ingest_batches=1, n_shards=2, disc_budget=2, batch_size=2,
        ))
        assert report.tenants_deployed == 4
        assert set(report.per_phase) >= {"suggest", "evaluate", "ingest"}
        for phase in report.per_phase.values():
            assert phase["seconds"] >= 0.0 and phase["calls"] >= 1
        shards = report.stats["shards"]
        assert len(shards["phases_by_shard"]) == 2
