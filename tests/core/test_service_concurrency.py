"""Concurrency stress tests for the shared service state.

The multi-tenant front end runs sessions on several shard threads at
once; these tests pin the thread-safety fixes that makes that sound:
seed allocation, ledger charges, engine batch dispatch and the shard
pool itself under concurrent load.  The final class re-runs the shard
stress with the service locks wrapped in the runtime lock-order
sanitizer (``repro.staticcheck.dynsan``) so an AB/BA inversion that a
schedule never happens to trip still fails the suite.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.cloud.cluster import Cluster
from repro.cloud.pricing import CostLedger
from repro.core import HistoryStore, TuningService
from repro.core.histlog import HistoryLog
from repro.core.serviced import ShardPool
from repro.engine import EngineObjective, EvaluationEngine
from repro.sparksim import SparkSimulator
from repro.staticcheck.dynsan import LockOrderSanitizer, instrument_attr
from repro.workloads import Wordcount


class TestSeedAllocation:
    def test_concurrent_next_seed_never_collides(self):
        """Two sessions sharing a seed would draw identical candidate
        streams and fake cross-tenant amortization."""
        service = TuningService(seed=1)
        seeds: list[int] = []
        lock = threading.Lock()

        def worker():
            mine = [service._next_seed() for _ in range(200)]
            with lock:
                seeds.extend(mine)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(seeds) == 1600
        assert len(set(seeds)) == 1600


class TestLedgerCharges:
    def test_concurrent_charges_sum_exactly(self):
        ledger = CostLedger()
        cluster = Cluster.of("m5.xlarge", 4)

        def worker(k):
            for _ in range(250):
                if k % 2:
                    ledger.charge_tuning(cluster, 60.0)
                else:
                    ledger.charge_production(cluster, 120.0)

        threads = [threading.Thread(target=worker, args=(k,)) for k in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert ledger.tuning_runs == 1000
        assert ledger.production_runs == 1000
        assert ledger.tuning_seconds == pytest.approx(1000 * 60.0)
        assert ledger.production_seconds == pytest.approx(1000 * 120.0)
        assert len(ledger.history()) == 2000
        one_tuning = ledger.tuning_cost / 1000
        assert ledger.tuning_cost == pytest.approx(one_tuning * 1000)


class TestEngineDispatch:
    def test_concurrent_objectives_agree_and_counters_balance(self):
        """Several shard threads driving one engine must get identical
        answers for identical candidates, with every lookup accounted
        as either a hit or a miss."""
        simulator = SparkSimulator()
        engine = EvaluationEngine(simulator=simulator, executor="serial")
        cluster = Cluster.of("m5.xlarge", 4)
        workload = Wordcount()
        space = TuningService(seed=0).disc_space
        rng = np.random.default_rng(0)
        configs = [space.default_configuration()] + [
            space.sample_configuration(rng) for _ in range(5)
        ]

        def worker(_):
            objective = EngineObjective(
                engine, workload, 5_000, cluster=cluster, seed=0,
            )
            return [objective(c) for c in configs]

        with ThreadPoolExecutor(max_workers=6) as pool:
            outcomes = list(pool.map(worker, range(6)))
        for other in outcomes[1:]:
            assert other == outcomes[0]
        stats = engine.stats
        assert stats.lookups == 6 * len(configs)
        assert stats.misses == len(configs)
        assert stats.hits == stats.lookups - stats.misses


class TestShardPoolUnderLoad:
    def test_all_futures_resolve_and_state_stays_consistent(self):
        log = HistoryLog(segment_records=32, compact_after=2)
        ledgers = [CostLedger() for _ in range(3)]

        def factory(i):
            return TuningService(store=HistoryStore(log), ledger=ledgers[i],
                                 executor="serial", seed=100 + i)

        cluster = Cluster.of("m5.xlarge", 4)
        with ShardPool(3, factory) as pool:
            def job(service):
                seed = service._next_seed()
                service.ledger.charge_tuning(cluster, 30.0)
                service.store.record(
                    f"t{seed % 7}", "wc", 1_000.0, cluster.describe(),
                    service.disc_space.default_configuration(),
                    _Result(30.0, True), np.ones(4),
                )
                return seed

            futures = [
                pool.submit(i % 3, job, fingerprint=f"fp{i % 5}")
                for i in range(120)
            ]
            seeds = [f.result(timeout=30) for f in futures]
        assert len(seeds) == 120
        assert sum(s.n_jobs for s in pool._shards) == 120
        assert sum(ledger.tuning_runs for ledger in ledgers) == 120
        snap = log.snapshot()
        assert len(snap) == 120
        assert len({r.record_id for r in snap}) == 120
        assert pool.stats()["distinct_fingerprints"] == 5


class TestLockOrderUnderStress:
    def test_shard_stress_with_sanitized_locks_stays_acyclic(self):
        """The RC005 acceptance check at runtime: the shard stress path
        (seed lock, ledger lock, history-log lock) runs under the
        lock-order sanitizer with raise-on-cycle armed.  A new nested
        acquisition in either order deadlocks this test *deterministically*
        as a LockOrderViolation instead of hanging CI."""
        san = LockOrderSanitizer()
        log = HistoryLog(segment_records=32, compact_after=2)
        instrument_attr(log, "_lock", san, name="HistoryLog._lock")
        ledgers = [CostLedger() for _ in range(3)]
        for i, ledger in enumerate(ledgers):
            instrument_attr(ledger, "_lock", san,
                            name=f"CostLedger#{i}._lock")

        def factory(i):
            service = TuningService(store=HistoryStore(log),
                                    ledger=ledgers[i],
                                    executor="serial", seed=200 + i)
            instrument_attr(service, "_seed_lock", san,
                            name=f"TuningService#{i}._seed_lock")
            return service

        cluster = Cluster.of("m5.xlarge", 4)
        with ShardPool(3, factory) as pool:
            def job(service):
                seed = service._next_seed()
                service.ledger.charge_tuning(cluster, 30.0)
                service.store.record(
                    f"t{seed % 5}", "wc", 1_000.0, cluster.describe(),
                    service.disc_space.default_configuration(),
                    _Result(30.0, True), np.ones(4),
                )
                return seed

            futures = [pool.submit(i % 3, job) for i in range(90)]
            seeds = [f.result(timeout=30) for f in futures]
        assert len(set(seeds)) == 90
        assert len(log.snapshot()) == 90
        # no inversion was observed anywhere in the stress run
        assert san.cycles() == []
        # and the instrumentation really was on the hot path: every
        # sanitized lock appears in at least one recorded acquisition or
        # the run would have deadlocked on a wrapped-lock bug
        assert sum(ledger.tuning_runs for ledger in ledgers) == 90

    def test_sanitizer_detects_a_seeded_inversion_in_service_code_shape(self):
        """Negative control for the test above: the same wrapper setup
        around a deliberate AB/BA inversion does raise."""
        from repro.staticcheck.dynsan import LockOrderViolation

        san = LockOrderSanitizer()
        log_lock = san.lock("HistoryLog._lock")
        ledger_lock = san.lock("CostLedger._lock")
        with log_lock:
            with ledger_lock:
                pass
        with pytest.raises(LockOrderViolation):
            with ledger_lock:
                with log_lock:
                    pass


class _Result:
    def __init__(self, runtime_s, success):
        self.runtime_s = runtime_s
        self.success = success
