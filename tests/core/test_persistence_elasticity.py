"""Tests for history persistence and elastic cluster sizing."""

import json

import numpy as np
import pytest

from repro.cloud import get_instance
from repro.core import (
    ElasticScaler,
    HistoryStore,
    load_history,
    probe_configuration,
    save_history,
    signature,
)
from repro.workloads import Sort


class TestPersistence:
    def _store(self, cluster, simulator):
        store = HistoryStore()
        for seed in range(4):
            result = simulator.run(Sort(), 5_000, cluster,
                                   probe_configuration(), seed=seed)
            store.record("t", "sort", 5_000, cluster.describe(),
                         probe_configuration(), result, signature(result))
        return store

    def test_roundtrip(self, cluster, simulator, tmp_path):
        store = self._store(cluster, simulator)
        path = tmp_path / "history.json"
        save_history(store, path)
        loaded = load_history(path)
        assert len(loaded) == len(store)
        for a, b in zip(store.all(), loaded.all()):
            assert a.record_id == b.record_id
            assert a.config == b.config
            assert a.runtime_s == pytest.approx(b.runtime_s)
            assert np.allclose(a.signature, b.signature)

    def test_loaded_store_continues_id_sequence(self, cluster, simulator, tmp_path):
        store = self._store(cluster, simulator)
        path = tmp_path / "history.json"
        save_history(store, path)
        loaded = load_history(path)
        result = simulator.run(Sort(), 5_000, cluster, probe_configuration(), seed=99)
        rec = loaded.record("t", "sort", 5_000, cluster.describe(),
                            probe_configuration(), result, signature(result))
        existing = {r.record_id for r in store.all()}
        assert rec.record_id not in existing

    def test_queries_survive_roundtrip(self, cluster, simulator, tmp_path):
        store = self._store(cluster, simulator)
        path = tmp_path / "history.json"
        save_history(store, path)
        loaded = load_history(path)
        assert loaded.workload_keys() == store.workload_keys()
        assert loaded.best_for("t", "sort").runtime_s == pytest.approx(
            store.best_for("t", "sort").runtime_s
        )

    def test_version_check(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text(json.dumps({"format_version": 99, "records": []}))
        with pytest.raises(ValueError):
            load_history(path)

    def test_empty_store_roundtrip(self, tmp_path):
        path = tmp_path / "empty.json"
        save_history(HistoryStore(), path)
        assert len(load_history(path)) == 0


class TestElasticScaler:
    def _scaler(self, **kwargs):
        return ElasticScaler(get_instance("m5.xlarge"), min_nodes=2,
                             max_nodes=16, **kwargs)

    def test_explores_distinct_sizes_first(self):
        scaler = self._scaler()
        sizes = []
        for _ in range(3):
            n = scaler.choose_nodes(10_000)
            sizes.append(n)
            scaler.observe(n, 10_000, 100.0)
        assert len(set(sizes)) >= 2

    def test_validates_construction(self):
        with pytest.raises(ValueError):
            ElasticScaler(get_instance("m5.xlarge"), min_nodes=5, max_nodes=2)
        with pytest.raises(ValueError):
            ElasticScaler(get_instance("m5.xlarge"), objective="vibes")

    def test_rejects_bad_runtime(self):
        with pytest.raises(ValueError):
            self._scaler().observe(4, 100, 0.0)

    def _train(self, scaler, a=5.0, b=0.05, d=2.0):
        """Feed synthetic Ernest-shaped observations."""
        rng = np.random.default_rng(0)
        for _ in range(12):
            n = int(rng.integers(2, 17))
            data = float(rng.uniform(5_000, 40_000))
            runtime = a + b * data / n + d * n
            scaler.observe(n, data, runtime)

    def test_price_objective_balances_nodes(self):
        scaler = self._scaler()
        self._train(scaler)
        chosen_small = scaler.choose_nodes(5_000)
        chosen_big = scaler.choose_nodes(40_000)
        # Bigger inputs justify more nodes.
        assert chosen_big >= chosen_small
        assert 2 <= chosen_small <= 16

    def test_runtime_objective_uses_more_nodes(self):
        price = self._scaler(objective="price")
        speed = self._scaler(objective="runtime")
        self._train(price)
        self._train(speed)
        assert speed.choose_nodes(30_000) >= price.choose_nodes(30_000)

    def test_runtime_cap_filters_cheap_but_slow(self):
        uncapped = self._scaler()
        capped = self._scaler(runtime_cap_s=120.0)
        # Steep data term: few nodes are cheap but slow.
        self._train(uncapped, b=0.2, d=0.5)
        self._train(capped, b=0.2, d=0.5)
        n_uncapped = uncapped.choose_nodes(40_000)
        n_capped = capped.choose_nodes(40_000)
        assert n_capped >= n_uncapped

    def test_shrinks_when_input_shrinks(self):
        scaler = self._scaler()
        self._train(scaler)
        big = scaler.choose_nodes(40_000)
        small = scaler.choose_nodes(2_000)
        assert small <= big
