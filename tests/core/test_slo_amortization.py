"""Tests for SLO evaluation and amortization analysis."""

import pytest

from repro.core import (
    AmortizationInputs,
    SLOMetric,
    TuningSLO,
    analyze_amortization,
    evaluate_slo,
)


class TestSLO:
    def test_within_optimal_attained(self):
        slo = TuningSLO(SLOMetric.WITHIN_OPTIMAL, target_fraction=0.2)
        report = evaluate_slo(slo, achieved_runtime_s=110, reference_runtime_s=100)
        assert report.value == pytest.approx(0.10)
        assert report.attained

    def test_within_optimal_missed(self):
        slo = TuningSLO(SLOMetric.WITHIN_OPTIMAL, target_fraction=0.2)
        report = evaluate_slo(slo, 130, 100)
        assert not report.attained

    def test_improvement_over_default(self):
        slo = TuningSLO(SLOMetric.IMPROVEMENT_OVER_DEFAULT, target_fraction=0.5)
        good = evaluate_slo(slo, achieved_runtime_s=40, reference_runtime_s=100)
        bad = evaluate_slo(slo, achieved_runtime_s=80, reference_runtime_s=100)
        assert good.attained and good.value == pytest.approx(0.6)
        assert not bad.attained

    def test_within_best_similar(self):
        slo = TuningSLO(SLOMetric.WITHIN_BEST_SIMILAR, target_fraction=0.3)
        assert evaluate_slo(slo, 120, 100).attained
        assert not evaluate_slo(slo, 200, 100).attained

    def test_describe_mentions_verdict(self):
        slo = TuningSLO(SLOMetric.WITHIN_OPTIMAL, 0.2)
        assert "ATTAINED" in evaluate_slo(slo, 100, 100).describe()
        assert "MISSED" in evaluate_slo(slo, 1000, 100).describe()

    def test_validation(self):
        with pytest.raises(ValueError):
            TuningSLO(SLOMetric.WITHIN_OPTIMAL, -0.1)
        slo = TuningSLO(SLOMetric.WITHIN_OPTIMAL, 0.1)
        with pytest.raises(ValueError):
            evaluate_slo(slo, 0, 100)


class TestSLOWithPenalizedFailures:
    """A campaign whose best observation is a crashed run still reports."""

    def test_penalized_failure_misses_distance_slo(self):
        # effective_runtime() floors crashes at 3600s x penalty; the SLO
        # math must stay well-defined and report a (badly) missed target.
        slo = TuningSLO(SLOMetric.WITHIN_OPTIMAL, target_fraction=0.2)
        report = evaluate_slo(
            slo, achieved_runtime_s=4 * 3600.0, reference_runtime_s=500.0,
        )
        assert not report.attained
        assert report.value > 20
        assert "MISSED" in report.describe()

    def test_penalized_failure_misses_improvement_slo(self):
        slo = TuningSLO(SLOMetric.IMPROVEMENT_OVER_DEFAULT, target_fraction=0.1)
        report = evaluate_slo(
            slo, achieved_runtime_s=4 * 3600.0, reference_runtime_s=900.0,
        )
        assert not report.attained
        assert report.value < 0                  # a regression, not improvement

    def test_best_observation_may_be_a_failure(self):
        from repro.config.space import Configuration
        from repro.tuning.base import Observation, TuningResult

        config = Configuration({"spark.executor.cores": 4})
        result = TuningResult(history=[
            Observation(config, cost=4 * 3600.0, succeeded=False),
            Observation(config, cost=5 * 3600.0, succeeded=False),
        ])
        assert result.best.succeeded is False
        assert result.best.cost == 4 * 3600.0
        assert result.incumbent_curve()[-1] == 4 * 3600.0


class TestAmortization:
    def test_papers_bestconfig_example_does_not_amortize(self):
        """500 tuning runs vs 90 production runs in 3 months (Section IV.C)."""
        run_cost = 1.0
        inputs = AmortizationInputs(
            tuning_cost_usd=500 * run_cost,      # 500 exploratory executions
            default_run_cost_usd=run_cost,
            tuned_run_cost_usd=run_cost * 0.2,   # even a generous 80% saving
            runs_per_month=30,
            months_until_retuning=3,
        )
        report = analyze_amortization(inputs)
        assert not report.amortizes
        assert report.net_saving_usd < 0

    def test_data_efficient_tuning_amortizes(self):
        """CherryPick-style ~10-exec tuning pays off quickly."""
        inputs = AmortizationInputs(
            tuning_cost_usd=10.0,
            default_run_cost_usd=1.0,
            tuned_run_cost_usd=0.5,
            runs_per_month=30,
            months_until_retuning=3,
        )
        report = analyze_amortization(inputs)
        assert report.amortizes
        assert report.breakeven_runs == pytest.approx(20)
        assert report.net_saving_usd == pytest.approx(90 * 0.5 - 10)

    def test_provider_offload_bounds_user_cost(self):
        """Principle 3: shifting tuning cost to the provider."""
        base = dict(
            tuning_cost_usd=500.0, default_run_cost_usd=1.0,
            tuned_run_cost_usd=0.5, runs_per_month=30, months_until_retuning=3,
        )
        user_pays = analyze_amortization(AmortizationInputs(**base, user_cost_share=1.0))
        offloaded = analyze_amortization(AmortizationInputs(**base, user_cost_share=0.0))
        assert not user_pays.amortizes
        assert offloaded.amortizes
        assert offloaded.user_tuning_cost_usd == 0.0

    def test_no_saving_never_breaks_even(self):
        inputs = AmortizationInputs(
            tuning_cost_usd=10.0, default_run_cost_usd=1.0,
            tuned_run_cost_usd=1.0, runs_per_month=10, months_until_retuning=12,
        )
        report = analyze_amortization(inputs)
        assert report.breakeven_runs == float("inf")
        assert not report.amortizes

    def test_describe(self):
        inputs = AmortizationInputs(10, 1.0, 0.5, 30, 3)
        assert "amortizes" in analyze_amortization(inputs).describe()

    def test_validation(self):
        with pytest.raises(ValueError):
            AmortizationInputs(-1, 1, 1, 1, 1)
        with pytest.raises(ValueError):
            AmortizationInputs(1, 1, 1, 1, 1, user_cost_share=2.0)
