"""Tests for the multi-tenant service layer (repro.core.serviced)."""

import asyncio

import numpy as np
import pytest

from repro.cloud.cluster import Cluster
from repro.cloud.pricing import CostLedger
from repro.core import HistoryStore, SLOMetric, TuningService, TuningSLO
from repro.core.histlog import HistoryLog
from repro.core.serviced import (
    REJECT_BUDGET,
    REJECT_QUEUE_FULL,
    REJECT_TENANT_CAP,
    AdmissionController,
    RunBatchRequest,
    ServiceFrontEnd,
    ShardPool,
    SLOPriorityScheduler,
    TenantBudget,
    TuneRequest,
    shard_index,
    workload_fingerprint,
)
from repro.core.serviced.loadgen import LoadScenario, run_load
from repro.core.slo import evaluate_slo
from repro.tuning.random_search import RandomSearchTuner
from repro.workloads import PageRank, Wordcount


class TestAdmission:
    def test_queue_full_rejected_with_reason(self):
        ctl = AdmissionController(max_pending=2, per_tenant_inflight=5)
        assert ctl.try_admit("a")
        assert ctl.try_admit("b")
        decision = ctl.try_admit("c")
        assert not decision and decision.reason == REJECT_QUEUE_FULL
        ctl.release("a")
        assert ctl.try_admit("c")

    def test_per_tenant_cap(self):
        ctl = AdmissionController(max_pending=100, per_tenant_inflight=2)
        assert ctl.try_admit("a") and ctl.try_admit("a")
        decision = ctl.try_admit("a")
        assert not decision and decision.reason == REJECT_TENANT_CAP
        assert ctl.try_admit("b")          # other tenants unaffected

    def test_budget_rejection_and_stats(self):
        ctl = AdmissionController()
        decision = ctl.try_admit("a", budget_exhausted=True)
        assert not decision and decision.reason == REJECT_BUDGET
        ctl.try_admit("a")
        stats = ctl.stats()
        assert stats["n_admitted"] == 1
        assert stats["n_rejected"] == {REJECT_BUDGET: 1}
        assert stats["pending"] == 1

    def test_unmatched_release_raises(self):
        ctl = AdmissionController()
        with pytest.raises(RuntimeError):
            ctl.release("ghost")


class TestTenantBudget:
    def test_exhaustion_and_headroom(self):
        budget = TenantBudget("t", max_tuning_cost=10.0)
        assert budget.remaining_fraction == 1.0
        budget.charge(7.5)
        assert budget.remaining_fraction == pytest.approx(0.25)
        assert not budget.exhausted
        budget.charge(5.0)
        assert budget.exhausted
        assert budget.remaining_fraction == 0.0

    def test_attainment_from_reports(self):
        budget = TenantBudget(
            "t", slo=TuningSLO(SLOMetric.WITHIN_OPTIMAL, 0.2),
        )
        assert budget.attainment == 1.0
        budget.note_report(evaluate_slo(budget.slo, 130.0, 100.0))  # missed
        budget.note_report(evaluate_slo(budget.slo, 110.0, 100.0))  # attained
        assert budget.slo_missed == 1 and budget.slo_attained == 1
        assert budget.attainment == pytest.approx(0.5)


class TestScheduler:
    def test_slo_deficit_jumps_the_queue(self):
        sched = SLOPriorityScheduler()
        happy = TenantBudget("happy")
        unhappy = TenantBudget("unhappy")
        unhappy.slo_missed = 3
        sched.push("happy-job", shard=0, budget=happy)
        sched.push("unhappy-job", shard=0, budget=unhappy)
        shard, item = sched.pop_ready()
        assert item == "unhappy-job"

    def test_headroom_breaks_ties(self):
        sched = SLOPriorityScheduler()
        rich = TenantBudget("rich", max_tuning_cost=100.0)
        poor = TenantBudget("poor", max_tuning_cost=100.0)
        poor.charge(90.0)
        sched.push("poor-job", shard=0, budget=poor)
        sched.push("rich-job", shard=0, budget=rich)
        assert sched.pop_ready()[1] == "rich-job"

    def test_fifo_for_equal_priority(self):
        sched = SLOPriorityScheduler()
        sched.push("first", shard=0)
        sched.push("second", shard=0)
        assert sched.pop_ready()[1] == "first"
        assert sched.pop_ready()[1] == "second"

    def test_busy_shards_are_skipped_not_dropped(self):
        sched = SLOPriorityScheduler()
        urgent = TenantBudget("urgent")
        urgent.slo_missed = 5
        sched.push("pinned-urgent", shard=1, budget=urgent)
        sched.push("elsewhere", shard=2)
        # shard 1 busy: the urgent item stays queued, shard 2's item runs
        assert sched.pop_ready(busy_shards={1}) == (2, "elsewhere")
        # shard 1 frees up: the urgent item is still there, at priority
        assert sched.pop_ready() == (1, "pinned-urgent")
        assert sched.pop_ready() is None


class TestFingerprints:
    def test_submission_fingerprint_stable_and_name_sensitive(self):
        wc, pr = Wordcount(), PageRank()
        assert workload_fingerprint(wc, 1000) == workload_fingerprint(wc, 1000)
        assert workload_fingerprint(wc, 1000) != workload_fingerprint(pr, 1000)
        # same decade -> same shard placement; different decade -> different
        assert workload_fingerprint(wc, 1000) == workload_fingerprint(wc, 5000)
        assert workload_fingerprint(wc, 1000) != workload_fingerprint(wc, 100)

    def test_signature_fingerprint_quantizes_noise(self):
        sig = np.array([1.03, 2.04, 0.51])
        noisy = sig + 0.004
        far = sig + 10.0
        wc = Wordcount()
        assert (workload_fingerprint(wc, 1, signature=sig)
                == workload_fingerprint(wc, 1, signature=noisy))
        assert (workload_fingerprint(wc, 1, signature=sig)
                != workload_fingerprint(wc, 1, signature=far))

    def test_shard_index_in_range(self):
        fp = workload_fingerprint(Wordcount(), 1000)
        for n in (1, 2, 7):
            assert 0 <= shard_index(fp, n) < n


def _stack(n_shards=2, **admission_kw):
    log = HistoryLog()
    ledgers = [CostLedger() for _ in range(n_shards)]

    def factory(i):
        return TuningService(store=HistoryStore(log), ledger=ledgers[i],
                             executor="serial", seed=50 + i)

    pool = ShardPool(n_shards, factory)
    frontend = ServiceFrontEnd(
        pool, admission=AdmissionController(**admission_kw)
        if admission_kw else None,
    )
    return frontend, pool, HistoryStore(log), ledgers


def _tune_request(tenant="t1", workload=None, **kw):
    return TuneRequest(
        tenant=tenant, workload=workload or Wordcount(), input_mb=2_000,
        cluster=Cluster.of("m5.xlarge", 4), disc_budget=3,
        use_transfer=False, batch_size=3,
        tuner_factory=lambda service, seed: RandomSearchTuner(
            service.disc_space, seed=seed),
        **kw,
    )


class TestFrontEnd:
    def test_tune_and_ingest_end_to_end(self):
        frontend, pool, store, ledgers = _stack()

        async def scenario():
            outcome = await frontend.submit(_tune_request())
            assert outcome.accepted and outcome.kind == "tune"
            assert outcome.deployment is not None
            assert outcome.latency_s > 0
            runs = await frontend.submit(RunBatchRequest(
                tenant="t1", deployment=outcome.deployment,
                input_mb=2_000, n_runs=7,
            ))
            assert runs.accepted and runs.runs_submitted == 7
            await frontend.close()
            return outcome

        try:
            outcome = asyncio.run(scenario())
        finally:
            pool.close()
        # probe + 3 evaluations + 7 production runs, all in the shared log
        assert len(store) == 4 + 7
        assert sum(ledger.production_runs for ledger in ledgers) == 7
        assert outcome.deployment.tuning_evaluations == 4

    def test_same_fingerprint_tenants_share_a_shard_and_its_cache(self):
        frontend, pool, store, _ = _stack(n_shards=2)

        async def scenario():
            a = await frontend.submit(_tune_request(tenant="a"))
            b = await frontend.submit(_tune_request(tenant="b"))
            await frontend.close()
            return a, b

        try:
            a, b = asyncio.run(scenario())
        finally:
            pool.close()
        assert a.shard == b.shard
        # both tenants probed with the same canonical config on the same
        # cluster: the second probe is a warm-cache answer on that shard
        assert pool.service_of(a.shard).engine.stats.hits >= 1

    def test_budget_exhaustion_rejects_next_submission(self):
        frontend, pool, _, _ = _stack()
        frontend.register_budget(
            TenantBudget("t1", max_tuning_cost=1e-9)
        )

        async def scenario():
            first = await frontend.submit(_tune_request())
            second = await frontend.submit(_tune_request())
            await frontend.close()
            return first, second

        try:
            first, second = asyncio.run(scenario())
        finally:
            pool.close()
        assert first.accepted                      # budget spent by this one
        assert frontend.budget_of("t1").spent_cost > 0
        assert not second.accepted
        assert second.reason == REJECT_BUDGET

    def test_tenant_inflight_cap_rejects_concurrent_burst(self):
        frontend, pool, _, _ = _stack(per_tenant_inflight=1, max_pending=64)

        async def scenario():
            outcomes = await asyncio.gather(*[
                frontend.submit(_tune_request()) for _ in range(3)
            ])
            await frontend.close()
            return outcomes

        try:
            outcomes = asyncio.run(scenario())
        finally:
            pool.close()
        accepted = [o for o in outcomes if o.accepted]
        rejected = [o for o in outcomes if not o.accepted]
        assert len(accepted) == 1
        assert {o.reason for o in rejected} == {REJECT_TENANT_CAP}

    def test_stats_snapshot_has_all_layers(self):
        frontend, pool, _, _ = _stack()
        try:
            stats = frontend.stats()
        finally:
            pool.close()
        assert set(stats) == {"admission", "scheduler", "shards"}
        assert stats["shards"]["n_shards"] == 2


class TestLoadGenerator:
    def test_small_scenario_accounting(self):
        scenario = LoadScenario(
            n_tenants=8, n_workload_families=2, runs_per_tenant=5,
            ingest_batches=1, n_shards=2, disc_budget=3,
            max_pending=16, per_tenant_inflight=2, seed=4,
        )
        report = run_load(scenario)
        assert report.tenants_deployed + report.tenants_denied == 8
        assert report.tenants_deployed == 8       # retries absorb rejections
        assert report.runs_submitted == 8 * 5
        assert report.runs_per_s > 0
        assert report.tune_latency_p99_s >= report.tune_latency_p50_s > 0
        # every execution is in the shared history: (probe + budget) per
        # tune session plus every production run
        assert report.history_records == 8 * (1 + 3) + 8 * 5
        assert report.production_cost_usd > 0
        assert report.tuning_cost_usd > 0
        metrics = report.to_metrics()
        assert metrics["runs_submitted"] == 40.0
        assert all(isinstance(v, float) for v in metrics.values())

    def test_budget_cap_denies_spendy_tenants(self):
        scenario = LoadScenario(
            n_tenants=4, n_workload_families=1, runs_per_tenant=4,
            ingest_batches=1, n_shards=1, disc_budget=3,
            max_tuning_cost_usd=1e-9, seed=9,
        )
        report = run_load(scenario)
        # tuning itself is admitted (budget spends on completion), but
        # the follow-up ingest finds the budget gone
        assert report.rejections.get(REJECT_BUDGET, 0) > 0
