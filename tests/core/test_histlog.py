"""Tests for the append-only history log and its HistoryStore view."""

import threading

import numpy as np
import pytest

from repro.config import spark_core_space
from repro.core import ExecutionRecord, HistoryLog, HistoryStore
from repro.core.histlog import readonly_signature


def _record(i: int, tenant: str = "t1", label: str = "wc") -> ExecutionRecord:
    return ExecutionRecord(
        record_id=i, tenant=tenant, workload_label=label,
        input_mb=1000.0 + i, cluster="4x m5.xlarge (aws)",
        config=spark_core_space().default_configuration(),
        runtime_s=100.0 + i, success=i % 5 != 3,
        signature=np.full(8, float(i)), timestamp=i,
    )


class _LegacyListStore:
    """The behaviour contract: the original list-backed store."""

    def __init__(self):
        self.records = []

    def append_new(self, **kw):
        rec = ExecutionRecord(record_id=len(self.records),
                              timestamp=len(self.records), **kw)
        self.records.append(rec)
        return rec


class TestHistoryLogBasics:
    def test_append_order_and_ids(self):
        log = HistoryLog(segment_records=4, compact_after=2)
        for i in range(10):
            log.append_new(
                tenant="t1", workload_label="wc", input_mb=100.0,
                cluster="c", config=spark_core_space().default_configuration(),
                runtime_s=float(i), success=True, signature=np.ones(3),
            )
        snap = log.snapshot()
        assert [r.record_id for r in snap] == list(range(10))
        assert [r.timestamp for r in snap] == list(range(10))
        assert len(log) == 10

    def test_round_trip_equals_in_memory_store(self):
        """Segmented + compacted log answers record-for-record like a list."""
        log = HistoryLog(segment_records=3, compact_after=2)
        legacy = _LegacyListStore()
        rng = np.random.default_rng(0)
        for i in range(25):
            kw = dict(
                tenant=f"t{i % 3}", workload_label=f"w{i % 4}",
                input_mb=float(100 + i), cluster="c",
                config=spark_core_space().default_configuration(),
                runtime_s=float(rng.uniform(10, 100)), success=bool(i % 7),
                signature=rng.normal(size=6),
            )
            log.append_new(**kw)
            legacy.append_new(**kw)
        assert log.segment_stats()["n_compactions"] >= 1
        for got, want in zip(log.snapshot(), legacy.records):
            assert got.record_id == want.record_id
            assert got.key == want.key
            assert got.runtime_s == want.runtime_s
            assert got.success == want.success
            np.testing.assert_array_equal(got.signature, want.signature)

    def test_explicit_compact_preserves_everything(self):
        log = HistoryLog(segment_records=4, compact_after=100)
        for i in range(11):
            log.append(_record(i))
        before = log.snapshot()
        log.compact()
        stats = log.segment_stats()
        assert stats["base_records"] == 11
        assert stats["sealed_segments"] == []
        assert stats["active_records"] == 0
        assert log.snapshot() == before

    def test_add_advances_id_and_clock(self):
        """Loaded records must never collide with later appends."""
        log = HistoryLog()
        log.append(_record(41))
        next_id, next_clock = log.reserve_ids()
        assert next_id == 42 and next_clock == 42
        rec = log.append_new(
            tenant="t2", workload_label="pr", input_mb=1.0, cluster="c",
            config=spark_core_space().default_configuration(),
            runtime_s=1.0, success=True, signature=np.ones(2),
        )
        assert rec.record_id == 42
        assert rec.timestamp == 42

    def test_snapshot_is_immutable_and_cached(self):
        log = HistoryLog()
        log.append(_record(0))
        s1 = log.snapshot()
        assert s1 is log.snapshot()          # same version -> cached tuple
        log.append(_record(1))
        s2 = log.snapshot()
        assert s1 is not s2
        assert len(s1) == 1 and len(s2) == 2  # old snapshot unaffected
        with pytest.raises(TypeError):
            s2[0] = None

    def test_signatures_stored_read_only(self):
        log = HistoryLog()
        sig = np.ones(4)
        rec = log.append_new(
            tenant="t", workload_label="w", input_mb=1.0, cluster="c",
            config=spark_core_space().default_configuration(),
            runtime_s=1.0, success=True, signature=sig,
        )
        with pytest.raises(ValueError):
            rec.signature[0] = 99.0
        sig[0] = 99.0                        # caller mutation is harmless
        assert rec.signature[0] == 1.0

    def test_readonly_signature_copies(self):
        src = np.arange(3.0)
        out = readonly_signature(src)
        src[0] = 42.0
        assert out[0] == 0.0
        assert not out.flags.writeable


class TestConcurrency:
    def test_concurrent_reader_during_compaction(self):
        """Readers see a consistent append-order prefix while writers
        seal and compact underneath them."""
        log = HistoryLog(segment_records=8, compact_after=2)
        stop = threading.Event()
        errors: list[str] = []

        def reader():
            while not stop.is_set():
                snap = log.snapshot()
                ids = [r.record_id for r in snap]
                if ids != list(range(len(ids))):
                    errors.append(f"torn snapshot: {ids[:10]}...")
                    return

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for t in threads:
            t.start()
        for i in range(600):
            log.append(_record(i))
        stop.set()
        for t in threads:
            t.join()
        assert not errors
        assert len(log.snapshot()) == 600
        assert log.segment_stats()["n_compactions"] >= 1

    def test_concurrent_appends_allocate_unique_ids(self):
        log = HistoryLog(segment_records=16, compact_after=2)

        def writer(k):
            for _ in range(100):
                log.append_new(
                    tenant=f"t{k}", workload_label="w", input_mb=1.0,
                    cluster="c",
                    config=spark_core_space().default_configuration(),
                    runtime_s=1.0, success=True, signature=np.ones(2),
                )

        threads = [threading.Thread(target=writer, args=(k,)) for k in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = log.snapshot()
        assert len(snap) == 400
        assert len({r.record_id for r in snap}) == 400


class TestHistoryStoreView:
    def test_view_shares_one_log(self):
        log = HistoryLog()
        a, b = HistoryStore(log), HistoryStore(log)
        a.record("t1", "wc", 1.0, "c",
                 spark_core_space().default_configuration(),
                 _FakeResult(12.0, True), np.ones(3))
        assert len(b) == 1
        assert b.for_workload("t1", "wc")[0].runtime_s == 12.0
        assert b.log is log

    def test_queries_over_segmented_log(self):
        log = HistoryLog(segment_records=3, compact_after=2)
        store = HistoryStore(log)
        for i in range(20):
            store.record(f"t{i % 2}", "wc", 1.0, "c",
                         spark_core_space().default_configuration(),
                         _FakeResult(float(100 - i), i % 4 != 1), np.full(3, i))
        assert store.tenants() == ["t0", "t1"]
        best = store.best_for("t0", "wc")
        assert best is not None
        assert best.runtime_s == min(
            r.runtime_s for r in store.for_workload("t0", "wc") if r.success
        )
        mean = store.mean_signature("t1", "wc")
        assert mean is not None and mean.shape == (3,)


class _FakeResult:
    def __init__(self, runtime_s, success):
        self.runtime_s = runtime_s
        self.success = success
