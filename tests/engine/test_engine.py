"""Tests for the batch evaluation engine: cache, determinism, executors."""

import numpy as np
import pytest

from repro.cloud import CostLedger, Cluster
from repro.config.spark_params import spark_core_space
from repro.engine import (
    EngineObjective,
    EvalRequest,
    EvaluationCache,
    EvaluationEngine,
    config_fingerprint,
)
from repro.tuning import RandomSearchTuner, run_tuner, run_tuner_batched
from repro.workloads import Sort

CLUSTER = Cluster.of("m5.2xlarge", 6)
SPACE = spark_core_space()


def _configs(n, seed=7):
    rng = np.random.default_rng(seed)
    return SPACE.sample_configurations(n, rng)


def _objective(engine, **kwargs):
    kwargs.setdefault("cluster", CLUSTER)
    kwargs.setdefault("seed", 3)
    kwargs.setdefault("repair", True)
    return EngineObjective(engine, Sort(), 4096.0, **kwargs)


class TestFingerprintAndCache:
    def test_fingerprint_is_order_insensitive_and_stable(self):
        a = {"spark.executor.cores": 4, "spark.executor.memory_mb": 8192}
        b = dict(reversed(list(a.items())))
        assert config_fingerprint(a) == config_fingerprint(b)
        assert config_fingerprint(a) != config_fingerprint(
            {**a, "spark.executor.cores": 5}
        )

    def test_lru_eviction_and_counters(self):
        cache = EvaluationCache(capacity=2)
        cache.put(("a",), 1, latency_s=0.5)
        cache.put(("b",), 2, latency_s=0.5)
        assert cache.get(("a",)) == 1            # refreshes recency
        cache.put(("c",), 3, latency_s=0.5)      # evicts ("b",)
        assert cache.get(("b",)) is None
        assert cache.get(("c",)) == 3
        assert cache.stats.evictions == 1
        assert cache.stats.hits == 2
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == pytest.approx(2 / 3)


class TestEvaluationEngine:
    def test_repeat_request_is_a_cache_hit(self):
        engine = EvaluationEngine()
        objective = _objective(engine)
        config = _configs(1)[0]
        cost_first = objective(config)
        first = objective.last_records[0]
        cost_again = objective(config)
        again = objective.last_records[0]
        assert not first.cached and again.cached
        assert cost_again == cost_first
        assert again.result is first.result
        counters = engine.counters()
        assert counters["hits"] == 1
        assert counters["n_evaluated"] == 1
        assert counters["n_requested"] == 2

    def test_in_batch_duplicates_simulated_once(self):
        engine = EvaluationEngine()
        config = _configs(1)[0]
        objective = _objective(engine)
        outcomes = objective.evaluate_batch([config, config, config])
        assert len({cost for cost, _ in outcomes}) == 1
        assert engine.n_evaluated == 1
        cached_flags = [r.cached for r in objective.last_records]
        assert cached_flags == [False, True, True]

    def test_cache_hits_are_not_charged_to_the_ledger(self):
        ledger = CostLedger()
        engine = EvaluationEngine()
        objective = _objective(engine, ledger=ledger)
        config = _configs(1)[0]
        objective(config)
        runs_after_miss = ledger.tuning_runs
        objective(config)
        assert ledger.tuning_runs == runs_after_miss == 1

    def test_cache_size_zero_disables_memoization(self):
        engine = EvaluationEngine(cache_size=0)
        objective = _objective(engine)
        config = _configs(1)[0]
        objective(config)
        objective(config)
        assert engine.n_evaluated == 2
        assert engine.counters()["hits"] == 0

    def test_rejects_unknown_executor(self):
        with pytest.raises(ValueError):
            EvaluationEngine(executor="threads")


class TestDeterminism:
    """ISSUE acceptance: serial and parallel runs are bit-identical."""

    def _run(self, executor):
        with EvaluationEngine(executor=executor, max_workers=2) as engine:
            objective = _objective(engine)
            outcomes = objective.evaluate_batch(_configs(10))
            runtimes = [r.result.runtime_s for r in objective.last_records]
        return outcomes, runtimes

    def test_serial_and_parallel_histories_bit_identical(self):
        serial_outcomes, serial_runtimes = self._run("serial")
        parallel_outcomes, parallel_runtimes = self._run("process")
        assert serial_outcomes == parallel_outcomes
        assert serial_runtimes == parallel_runtimes  # exact, not approx

    def test_per_config_seeding_is_call_order_independent(self):
        config = _configs(1)[0]
        a = _objective(EvaluationEngine())
        b = _objective(EvaluationEngine())
        b(_configs(3, seed=99)[0])     # burn a call on b first
        assert a(config) == b(config)

    def test_per_call_mode_redraws_noise(self):
        objective = _objective(EvaluationEngine(), seed_mode="per-call")
        config = _configs(1)[0]
        first, second = objective(config), objective(config)
        # Distinct seeds -> distinct requests -> no cache hit.
        assert objective.engine.counters()["hits"] == 0
        assert first != second


class TestFailedRunSettlement:
    """Crashed executions still settle: charged, penalized, flagged."""

    def _crashing_engine(self):
        from repro.sparksim import FaultPlan, SparkSimulator, oom_kill

        return EvaluationEngine(
            simulator=SparkSimulator(fault_plan=FaultPlan.of(oom_kill(1.0)))
        )

    def test_crashed_run_is_charged_and_flagged(self):
        ledger = CostLedger()
        engine = self._crashing_engine()
        objective = _objective(engine, ledger=ledger)
        [(cost, succeeded)] = objective.evaluate_batch(_configs(1))
        assert not succeeded
        assert not objective.last_result.success
        # The provider paid for the wasted execution...
        assert ledger.tuning_runs == 1
        assert ledger.tuning_cost > 0
        # ...and the tuner sees the penalized runtime, never the raw one.
        assert cost >= objective.failure_floor_s
        assert cost >= objective.last_result.runtime_s

    def test_cached_crash_is_not_charged_twice(self):
        ledger = CostLedger()
        engine = self._crashing_engine()
        objective = _objective(engine, ledger=ledger)
        config = _configs(1)[0]
        first = objective(config)
        assert ledger.tuning_runs == 1
        again = objective(config)
        assert again == first                    # penalty memoized too
        assert ledger.tuning_runs == 1           # cache hits are free

    def test_failure_flag_propagates_through_batched_driver(self):
        engine = self._crashing_engine()
        objective = _objective(engine)
        tuner = RandomSearchTuner(SPACE, seed=4)
        result = run_tuner_batched(tuner, objective, budget=5, batch_size=3)
        assert all(not o.succeeded for o in result.history)
        assert all(o.cost >= objective.failure_floor_s for o in result.history)


class TestBatchedTunerDriver:
    def test_run_tuner_batched_matches_serial_run_tuner(self):
        def make():
            tuner = RandomSearchTuner(SPACE, seed=11)
            objective = _objective(EvaluationEngine())
            return tuner, objective

        tuner_a, obj_a = make()
        serial = run_tuner(tuner_a, obj_a, budget=12)
        tuner_b, obj_b = make()
        batched = run_tuner_batched(tuner_b, obj_b, budget=12, batch_size=5)
        assert [o.cost for o in serial.history] == [o.cost for o in batched.history]
        assert [o.config for o in serial.history] == [o.config for o in batched.history]

    def test_single_source_of_truth_history(self):
        tuner = RandomSearchTuner(SPACE, seed=2)
        objective = _objective(EvaluationEngine())
        result = run_tuner_batched(tuner, objective, budget=6, batch_size=3)
        assert result.history == tuner.history       # same records, no forks
        assert all(o is h for o, h in zip(result.history, tuner.history))
        assert all(o.succeeded is not None for o in result.history)


class TestExecutorKind:
    def test_serial_engine_reports_serial(self):
        engine = EvaluationEngine()
        assert engine.executor_kind == "serial"
        assert engine.counters()["executor_kind"] == "serial"

    def test_process_engine_reports_process(self, monkeypatch):
        monkeypatch.setattr("os.cpu_count", lambda: 8)
        with EvaluationEngine(executor="process") as engine:
            assert engine.executor_kind == "process"
            assert engine.counters()["executor_kind"] == "process"

    def test_single_core_host_downgrades_process_to_serial(self, monkeypatch):
        # A pool of one worker is pure overhead: fork + pickle per chunk
        # with zero parallelism.  The engine must resolve to serial.
        monkeypatch.setattr("os.cpu_count", lambda: 1)
        with EvaluationEngine(executor="process") as engine:
            assert engine.executor_kind == "serial"
            objective = _objective(engine)
            cost = objective(_configs(1)[0])
            assert cost > 0

    def test_custom_executor_reports_class_name(self):
        class Fake:
            def run_batch(self, requests):
                raise NotImplementedError

        engine = EvaluationEngine(executor=Fake())
        assert engine.executor_kind == "Fake"


class TestSerialExecutorGrouping:
    def test_grouped_and_ungrouped_records_are_identical(self):
        from repro.engine.executors import SerialExecutor
        from repro.sparksim import SparkSimulator

        def campaign(group_batches):
            sim = SparkSimulator()
            executor = SerialExecutor(sim, group_batches=group_batches)
            with EvaluationEngine(simulator=sim, executor=executor) as engine:
                objective = _objective(engine)
                tuner = RandomSearchTuner(SPACE, seed=21)
                return run_tuner_batched(tuner, objective, budget=15,
                                         batch_size=5)

        grouped = campaign(True)
        ungrouped = campaign(False)
        assert [o.cost for o in grouped.history] == \
               [o.cost for o in ungrouped.history]
