"""Engine-suite fixtures: shared-memory leak detection.

Every segment :mod:`repro.engine.shm` creates carries a recognizable
prefix, so leaks are observable from the outside: any segment that
survives a test is a bug in the executor's lifecycle bookkeeping
(request segments must die with their batch, result segments with their
read or the next reap).  The check runs after *each* test — a leak is
reported next to the test that caused it, not at the end of the session
— and once more for the whole suite.
"""

from __future__ import annotations

import pytest

from repro.engine.shm import PREFIX

try:
    from pathlib import Path

    _SHM_DIR = Path("/dev/shm")
    _OBSERVABLE = _SHM_DIR.is_dir()
except OSError:                      # non-POSIX: nothing to observe
    _OBSERVABLE = False


def _segments() -> set[str]:
    if not _OBSERVABLE:
        return set()
    return {p.name for p in _SHM_DIR.glob(f"{PREFIX}*")}


@pytest.fixture(autouse=True)
def no_leaked_shm_segments():
    """Fail any test that leaves a reprosim shared-memory segment behind."""
    before = _segments()
    yield
    leaked = _segments() - before
    assert not leaked, (
        f"leaked shared-memory segment(s): {sorted(leaked)} — "
        f"an executor failed to unlink on its batch/rebuild/close path"
    )
