"""Shared-memory dispatch: codec exactness and executor lifecycle.

The zero-copy path is an optimisation with two contracts: (1) the
columnar ``Configuration`` codec round-trips *exactly* — values and
their Python types, categoricals included; (2) the
:class:`~repro.engine.executors.ParallelExecutor` produces bit-identical
results to serial dispatch and never leaks a segment, including on
crash/rebuild/timeout paths (the autouse conftest fixture asserts the
latter after every test here).
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloud import Cluster
from repro.cloud.interference import NOISY, QUIET, TYPICAL
from repro.config.space import Configuration
from repro.config.spark_params import SPARK_DEFAULTS, spark_space
from repro.engine.engine import EvalRequest
from repro.engine.executors import ParallelExecutor, SerialExecutor
from repro.engine.shm import (
    PREFIX,
    decode_configs,
    encode_configs,
    read_payload,
    unlink_segment,
    write_payload,
)
from repro.sparksim.faults import FaultPlan, worker_crash
from repro.workloads import Sort, Wordcount

CLUSTER = Cluster.of("m5.2xlarge", 4)
SPACE = spark_space()
ENVS = (QUIET, TYPICAL, NOISY)

# Values covering every column kind: typed scalars, categoricals with
# repeats, and pickled-column fallbacks (None, tuples, mixed types).
_SCALARS = st.one_of(
    st.booleans(),
    st.integers(min_value=-(2**70), max_value=2**70),
    st.floats(allow_nan=False),
    st.sampled_from(["snappy", "lz4", "zstd", ""]),
    st.none(),
    st.tuples(st.integers(), st.integers()),
)


def _round_trip(configs, indices=None):
    seg = encode_configs(configs)
    try:
        return decode_configs(seg, indices)
    finally:
        seg.close()
        seg.unlink()


class TestCodec:
    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(st.text(min_size=1, max_size=8), min_size=1, max_size=6,
                 unique=True),
        st.integers(min_value=1, max_value=9),
        st.integers(min_value=0, max_value=2**31 - 1),
        st.data(),
    )
    def test_round_trip_is_exact(self, keys, n_rows, seed, data):
        # Each key's column draws one value strategy per row so columns
        # are realistically homogeneous *or* mixed (pickled fallback).
        configs = []
        for _ in range(n_rows):
            configs.append(Configuration({
                k: data.draw(_SCALARS, label=k) for k in keys
            }))
        out = _round_trip(configs)
        assert out == configs
        for got, want in zip(out, configs):
            for k in keys:
                assert type(got[k]) is type(want[k]), k

    def test_spark_configs_round_trip(self):
        rng = np.random.default_rng(11)
        configs = []
        for _ in range(16):
            full = dict(SPARK_DEFAULTS)
            full.update(SPACE.sample_configuration(rng).as_dict())
            configs.append(Configuration(full))
        out = _round_trip(configs)
        assert out == configs
        for got, want in zip(out, configs):
            for k in want:
                assert type(got[k]) is type(want[k]), k

    def test_subset_decode_selects_rows(self):
        configs = [
            Configuration({"a": i, "b": float(i), "c": str(i)})
            for i in range(10)
        ]
        assert _round_trip(configs, [7, 1, 1]) == [
            configs[7], configs[1], configs[1],
        ]

    def test_empty_batch_rejected(self):
        try:
            encode_configs([])
        except ValueError:
            pass
        else:
            raise AssertionError("empty batch must not encode")

    def test_heterogeneous_keys_rejected(self):
        configs = [Configuration({"a": 1}), Configuration({"b": 2})]
        try:
            encode_configs(configs)
        except ValueError:
            pass
        else:
            raise AssertionError("mismatched key sets must not encode")

    def test_payload_round_trip_and_unlink(self):
        payload = {"results": list(range(100)), "tag": "x"}
        name, size = write_payload(payload)
        assert name.startswith(PREFIX)
        assert read_payload(name, size) == payload
        unlink_segment(name)          # already gone: must be a no-op


def _requests(n, seed=3, workload=None):
    rng = np.random.default_rng(seed)
    requests = []
    for i in range(n):
        full = dict(SPARK_DEFAULTS)
        full.update(SPACE.sample_configuration(rng).as_dict())
        requests.append(EvalRequest(
            workload=workload or Sort(), input_mb=1024.0, cluster=CLUSTER,
            config=Configuration(full), env=ENVS[i % len(ENVS)],
            seed=100 + i,
        ))
    return requests


class TestParallelShm:
    def test_shm_dispatch_matches_serial(self):
        requests = _requests(24)
        serial = SerialExecutor().run_batch(requests)
        with ParallelExecutor(max_workers=2) as executor:
            parallel = executor.run_batch(requests)
            util = executor.utilization()
        assert parallel == serial
        assert util["pool_size"] == 2
        assert util["workers_used"] >= 1
        assert sum(util["chunks_by_worker"]) >= 1

    def test_small_batches_fall_back_to_pickled_dispatch(self):
        requests = _requests(4)
        serial = SerialExecutor().run_batch(requests)
        with ParallelExecutor(max_workers=2, shm_min_batch=8) as executor:
            assert executor.run_batch(requests) == serial

    def test_mixed_workloads_one_segment(self):
        requests = _requests(12) + _requests(12, seed=9, workload=Wordcount())
        serial = SerialExecutor().run_batch(requests)
        with ParallelExecutor(max_workers=2) as executor:
            assert executor.run_batch(requests) == serial

    def test_crash_faults_fail_chunks_without_leaking(self):
        plan = FaultPlan((worker_crash(1.0),))
        requests = _requests(16)
        with ParallelExecutor(max_workers=2, fault_plan=plan,
                              shm_min_batch=2) as executor:
            results, error = executor.run_batch_partial(requests)
            assert error is not None
            assert results.count(None) == len(requests)
            # Recovery path: a rebuilt pool serves retried requests
            # (attempt > 0 never crashes) and reaps anything outstanding.
            executor.rebuild()
            from dataclasses import replace

            retried = [replace(r, attempt=1) for r in requests]
            recovered, error = executor.run_batch_partial(retried)
            assert error is None
        clean = SerialExecutor().run_batch(requests)
        assert recovered == clean

    def test_rebuild_mid_session_keeps_answers_identical(self):
        requests = _requests(24)
        serial = SerialExecutor().run_batch(requests)
        with ParallelExecutor(max_workers=2) as executor:
            first = executor.run_batch(requests)
            executor.rebuild()
            second = executor.run_batch(requests)
        assert first == second == serial
