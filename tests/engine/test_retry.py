"""Retry/backoff/degradation: the engine survives crashed workers and pools.

The acceptance bar (ISSUE 2): an injected worker crash mid-batch must not
abort the session — the batch completes via retry, the observation
history is bit-identical to a fault-free serial run of the same seeds,
and the engine counters record the retries and downgrades.
"""

import numpy as np
import pytest
from concurrent.futures.process import BrokenProcessPool

from repro.cloud import Cluster
from repro.cloud.interference import QUIET, TYPICAL
from repro.config.spark_params import spark_core_space
from repro.engine import (
    EngineObjective,
    EvalRequest,
    EvaluationEngine,
    ParallelExecutor,
    RetryError,
    RetryPolicy,
    SerialExecutor,
    default_worker_count,
)
from repro.engine.executors import DEFAULT_WORKER_CAP
from repro.sparksim import FaultPlan, SparkSimulator, worker_crash
from repro.workloads import Sort

CLUSTER = Cluster.of("m5.2xlarge", 6)
SPACE = spark_core_space()

#: fast-retry policy for tests: no real sleeping between attempts
FAST = RetryPolicy(max_attempts=3, backoff_base_s=0.0)


def _configs(n, seed=7):
    rng = np.random.default_rng(seed)
    return SPACE.sample_configurations(n, rng)


def _objective(engine, **kwargs):
    kwargs.setdefault("cluster", CLUSTER)
    kwargs.setdefault("seed", 3)
    kwargs.setdefault("repair", True)
    return EngineObjective(engine, Sort(), 4096.0, **kwargs)


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter_fraction=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(batch_timeout_s=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(degrade_after=0)

    def test_backoff_grows_exponentially(self):
        policy = RetryPolicy(backoff_base_s=0.1, backoff_factor=2.0,
                             jitter_fraction=0.0)
        assert policy.backoff_s(0) == pytest.approx(0.1)
        assert policy.backoff_s(1) == pytest.approx(0.2)
        assert policy.backoff_s(2) == pytest.approx(0.4)

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(backoff_base_s=0.1, jitter_fraction=0.25)
        for attempt in range(4):
            a = policy.backoff_s(attempt, token=9)
            assert a == policy.backoff_s(attempt, token=9)   # reproducible
            base = 0.1 * 2.0**attempt
            assert base <= a <= base * 1.25
        # Different tokens de-synchronize concurrent engines.
        assert policy.backoff_s(1, token=1) != policy.backoff_s(1, token=2)


class TestWorkerCount:
    def test_cap_applies_on_big_hosts(self, monkeypatch):
        monkeypatch.setattr("os.cpu_count", lambda: 128)
        assert default_worker_count() == DEFAULT_WORKER_CAP
        assert default_worker_count(cap=16) == 16

    def test_tiny_hosts_keep_their_cores(self, monkeypatch):
        monkeypatch.setattr("os.cpu_count", lambda: 2)
        assert default_worker_count() == 2
        monkeypatch.setattr("os.cpu_count", lambda: None)
        assert default_worker_count() == 1

    def test_cap_must_be_positive(self):
        with pytest.raises(ValueError):
            default_worker_count(cap=0)


class FlakyExecutor:
    """Serial executor whose first ``fail_calls`` run_batch calls raise."""

    def __init__(self, simulator, fail_calls=1):
        self.inner = SerialExecutor(simulator)
        self.fail_calls = fail_calls
        self.calls = 0

    def run_batch(self, requests):
        self.calls += 1
        if self.calls <= self.fail_calls:
            raise RuntimeError("transient harness failure")
        return self.inner.run_batch(requests)

    def close(self):
        pass


class BrokenPoolExecutor:
    """A 'pool' that is permanently broken; rebuilds never help."""

    def __init__(self):
        self.rebuilds = 0

    def run_batch_partial(self, requests, timeout_s=None):
        return [None] * len(requests), BrokenProcessPool("pool is toast")

    def run_batch(self, requests):
        raise BrokenProcessPool("pool is toast")

    def rebuild(self):
        self.rebuilds += 1

    def close(self):
        pass


class AlwaysFailsExecutor:
    def run_batch(self, requests):
        raise RuntimeError("permanently down")

    def close(self):
        pass


class ExplodingSimulator:
    calibration = None
    noise = False
    fault_plan = None

    def run(self, *args, **kwargs):
        raise RuntimeError("simulator down")


class TestRetryDispatch:
    def test_transient_failure_is_retried_and_completes(self):
        sim = SparkSimulator()
        engine = EvaluationEngine(
            simulator=sim, executor=FlakyExecutor(sim, fail_calls=2),
            retry=FAST,
        )
        objective = _objective(engine)
        outcomes = objective.evaluate_batch(_configs(4))
        assert len(outcomes) == 4
        serial = _objective(EvaluationEngine()).evaluate_batch(_configs(4))
        assert outcomes == serial
        counters = engine.counters()
        assert counters["n_failures"] >= 1
        assert counters["n_retries"] >= 1
        assert counters["n_degraded"] == 0

    def test_retry_none_fails_fast(self):
        sim = SparkSimulator()
        engine = EvaluationEngine(
            simulator=sim, executor=FlakyExecutor(sim), retry=None,
        )
        with pytest.raises(RuntimeError, match="transient"):
            _objective(engine).evaluate_batch(_configs(2))

    def test_persistently_broken_pool_degrades_to_serial(self):
        stub = BrokenPoolExecutor()
        engine = EvaluationEngine(
            executor=stub, retry=RetryPolicy(backoff_base_s=0.0, degrade_after=2),
        )
        objective = _objective(engine)
        outcomes = objective.evaluate_batch(_configs(5))
        assert all(np.isfinite(cost) for cost, _ in outcomes)
        counters = engine.counters()
        assert counters["n_degraded"] == 1
        assert counters["n_pool_rebuilds"] == 1          # one rebuild, then give up
        assert stub.rebuilds == 1
        assert isinstance(engine._executor, SerialExecutor)
        # Degraded results are still the canonical per-seed results.
        assert outcomes == _objective(EvaluationEngine()).evaluate_batch(_configs(5))

    def test_exhausted_attempts_fall_back_to_serial(self):
        engine = EvaluationEngine(
            executor=AlwaysFailsExecutor(),
            retry=RetryPolicy(max_attempts=2, backoff_base_s=0.0),
        )
        objective = _objective(engine)
        outcomes = objective.evaluate_batch(_configs(3))
        assert outcomes == _objective(EvaluationEngine()).evaluate_batch(_configs(3))
        counters = engine.counters()
        assert counters["n_exhausted"] == 3
        assert counters["n_degraded"] == 1

    def test_retry_error_when_even_serial_fallback_fails(self):
        engine = EvaluationEngine(
            simulator=ExplodingSimulator(),
            executor=AlwaysFailsExecutor(),
            retry=RetryPolicy(max_attempts=2, backoff_base_s=0.0),
        )
        request = EvalRequest(
            workload=Sort(), input_mb=1024.0, cluster=CLUSTER,
            config=SPACE.default_configuration(), seed=1,
        )
        with pytest.raises(RetryError):
            engine.evaluate(request)


class TestWorkerCrashRecovery:
    """ISSUE 2 acceptance: crash mid-batch, recover, bit-identical history."""

    def _engines(self, crash_probability):
        plan = FaultPlan.of(worker_crash(crash_probability))
        faulted = EvaluationEngine(
            simulator=SparkSimulator(fault_plan=plan),
            executor="process", max_workers=2,
            retry=RetryPolicy(max_attempts=3, backoff_base_s=0.0),
        )
        reference = EvaluationEngine()   # fault-free serial twin
        return faulted, reference

    def test_crashed_workers_recover_with_identical_history(self):
        faulted, reference = self._engines(crash_probability=1.0)
        with faulted:
            outcomes = _objective(faulted).evaluate_batch(_configs(8))
            counters = faulted.counters()
        expected = _objective(reference).evaluate_batch(_configs(8))
        assert outcomes == expected                       # bit-identical
        assert counters["n_failures"] >= 1
        assert counters["n_retries"] >= 1
        assert counters["n_pool_rebuilds"] >= 1

    def test_partial_crash_re_dispatches_only_unfinished(self):
        faulted, reference = self._engines(crash_probability=0.4)
        with faulted:
            outcomes = _objective(faulted).evaluate_batch(_configs(10, seed=21))
            counters = faulted.counters()
        expected = _objective(reference).evaluate_batch(_configs(10, seed=21))
        assert outcomes == expected
        # Something crashed (p=0.4 over 10 configs) but fewer than all
        # ten requests should have needed a retry on this seed.
        assert 1 <= counters["n_retries"] < 2 * 10

    def test_session_history_unaffected_by_crashes(self):
        # Same property one level up: a tuning loop over a crashing pool
        # produces the exact observations of a clean serial loop.
        from repro.tuning import RandomSearchTuner, run_tuner_batched

        faulted, reference = self._engines(crash_probability=1.0)
        with faulted:
            noisy = run_tuner_batched(
                RandomSearchTuner(SPACE, seed=5), _objective(faulted),
                budget=8, batch_size=4,
            )
        clean = run_tuner_batched(
            RandomSearchTuner(SPACE, seed=5), _objective(reference),
            budget=8, batch_size=4,
        )
        assert [o.cost for o in noisy.history] == [o.cost for o in clean.history]
        assert [o.succeeded for o in noisy.history] == [
            o.succeeded for o in clean.history
        ]


class TestTimeouts:
    def test_unfinished_chunks_fail_at_the_deadline(self):
        with ParallelExecutor(max_workers=2) as executor:
            requests = [
                EvalRequest(
                    workload=Sort(), input_mb=2048.0, cluster=CLUSTER,
                    config=SPACE.default_configuration(), seed=s,
                )
                for s in range(4)
            ]
            results, error = executor.run_batch_partial(requests, timeout_s=1e-9)
        assert isinstance(error, TimeoutError)
        assert results.count(None) >= 1


class TestEnvDistinctMisses:
    def test_same_candidate_new_environment_is_counted(self):
        engine = EvaluationEngine()
        base = EvalRequest(
            workload=Sort(), input_mb=4096.0, cluster=CLUSTER,
            config=SPACE.default_configuration(), env=QUIET, seed=11,
        )
        engine.evaluate(base)
        assert engine.counters()["n_env_distinct_misses"] == 0
        from dataclasses import replace

        engine.evaluate(replace(base, env=TYPICAL))
        counters = engine.counters()
        assert counters["n_env_distinct_misses"] == 1
        assert counters["hits"] == 0                      # both were misses
        # A true repeat stays a plain cache hit, not an env-distinct miss.
        engine.evaluate(base)
        assert engine.counters()["n_env_distinct_misses"] == 1
        assert engine.counters()["hits"] == 1
