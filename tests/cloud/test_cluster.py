"""Tests for cluster aggregation and billing."""

import pytest

from repro.cloud import Cluster, get_instance


class TestCluster:
    def test_aggregates(self, cluster):
        assert cluster.total_vcpus == 64
        assert cluster.total_memory_mb == 4 * 64 * 1024

    def test_requires_at_least_one_node(self):
        with pytest.raises(ValueError):
            Cluster(get_instance("m5.large"), 0)

    def test_of_constructor(self):
        c = Cluster.of("m5.xlarge", 3)
        assert c.instance.name == "m5.xlarge"
        assert c.count == 3

    def test_price_linear_in_nodes(self):
        c1 = Cluster.of("m5.xlarge", 1)
        c4 = Cluster.of("m5.xlarge", 4)
        assert c4.price_per_hour == pytest.approx(4 * c1.price_per_hour)

    def test_cost_per_second_billing(self):
        c = Cluster.of("m5.xlarge", 2)
        assert c.cost_of(1800) == pytest.approx(c.price_per_hour / 2)
        assert c.cost_of(0) == 0.0

    def test_cost_rejects_negative_runtime(self):
        with pytest.raises(ValueError):
            Cluster.of("m5.xlarge", 1).cost_of(-1)

    def test_describe(self, cluster):
        assert cluster.describe() == "4x h1.4xlarge (aws)"
