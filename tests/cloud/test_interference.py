"""Tests for the co-location interference model."""

import numpy as np
import pytest

from repro.cloud import NOISY, QUIET, TYPICAL, Environment, InterferenceModel


class TestEnvironment:
    def test_factors_are_slowdowns(self):
        with pytest.raises(ValueError):
            Environment(cpu_factor=0.9)

    def test_quiet_combined_is_one(self):
        assert QUIET.combined() == 1.0

    def test_presets_ordered(self):
        assert QUIET.combined() < TYPICAL.combined() < NOISY.combined()


class TestInterferenceModel:
    def test_factors_always_at_least_one(self):
        m = InterferenceModel(level=1.0, seed=3)
        for _ in range(200):
            env = m.step()
            assert env.cpu_factor >= 1.0
            assert env.disk_factor >= 1.0
            assert env.network_factor >= 1.0

    def test_level_zero_is_quiet(self):
        m = InterferenceModel(level=0.0, seed=1)
        for _ in range(20):
            assert m.step().combined() == pytest.approx(1.0)

    def test_higher_level_more_contention(self):
        low = InterferenceModel(level=0.5, seed=7)
        high = InterferenceModel(level=3.0, seed=7)
        mean_low = np.mean([low.step().combined() for _ in range(100)])
        mean_high = np.mean([high.step().combined() for _ in range(100)])
        assert mean_high > mean_low

    def test_temporal_correlation(self):
        # Adjacent steps should correlate more than distant ones.
        m = InterferenceModel(level=1.0, correlation=0.9, seed=11)
        series = np.array([m.step().network_factor for _ in range(500)])
        adjacent = np.corrcoef(series[:-1], series[1:])[0, 1]
        distant = np.corrcoef(series[:-50], series[50:])[0, 1]
        assert adjacent > distant + 0.2

    def test_burst_raises_contention(self):
        m = InterferenceModel(level=1.0, seed=5)
        m.step()
        baseline = m.step().combined()
        m.burst(multiplier=5.0)
        assert m.step().combined() > baseline

    def test_deterministic_with_seed(self):
        a = InterferenceModel(seed=42)
        b = InterferenceModel(seed=42)
        for _ in range(10):
            assert a.step() == b.step()

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            InterferenceModel(level=-1)
        with pytest.raises(ValueError):
            InterferenceModel(correlation=1.0)
        m = InterferenceModel()
        with pytest.raises(ValueError):
            m.burst(-1)
