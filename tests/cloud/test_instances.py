"""Tests for the instance catalogue."""

import pytest

from repro.cloud import CATALOGUE, FAMILIES, get_instance, list_instances


class TestCatalogue:
    def test_papers_instance_exists(self):
        # The Table I cluster used h1.4xlarge.
        h1 = get_instance("h1.4xlarge")
        assert h1.vcpus == 16
        assert h1.memory_mb == 64 * 1024
        assert h1.provider == "aws"

    def test_unknown_instance_raises(self):
        with pytest.raises(KeyError):
            get_instance("quantum.9000xlarge")

    def test_three_providers(self):
        providers = {t.provider for t in CATALOGUE.values()}
        assert providers == {"aws", "azure", "gcp"}

    def test_each_provider_has_multiple_families(self):
        for provider in ("aws", "azure", "gcp"):
            families = {t.family for t in list_instances(provider=provider)}
            assert len(families) >= 3

    def test_family_filter(self):
        m5 = list_instances(family="m5")
        assert m5 and all(t.family == "m5" for t in m5)

    def test_price_scales_with_size(self):
        assert get_instance("m5.xlarge").price_per_hour > get_instance("m5.large").price_per_hour
        assert get_instance("m5.4xlarge").price_per_hour == pytest.approx(
            8 * get_instance("m5.large").price_per_hour
        )

    def test_memory_optimized_has_more_memory_per_core(self):
        r5 = get_instance("r5.xlarge")
        c5 = get_instance("c5.xlarge")
        assert r5.memory_per_core_mb > 2 * c5.memory_per_core_mb

    def test_compute_optimized_faster_cores(self):
        assert get_instance("c5.xlarge").cpu_speed > get_instance("m5.xlarge").cpu_speed

    def test_storage_optimized_faster_disks(self):
        assert get_instance("i3.xlarge").disk_mb_s > 3 * get_instance("m5.xlarge").disk_mb_s

    def test_families_registry_consistent(self):
        for fam in FAMILIES.values():
            for t in fam.sizes:
                assert t.family == fam.name
                assert t.provider == fam.provider
                assert CATALOGUE[t.name] is t

    def test_all_specs_positive(self):
        for t in CATALOGUE.values():
            assert t.vcpus >= 1
            assert t.memory_mb >= 512
            assert t.disk_mb_s > 0
            assert t.network_mb_s > 0
            assert t.price_per_hour > 0
