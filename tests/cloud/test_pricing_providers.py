"""Tests for pricing ledger, providers and deployment services."""

import pytest

from repro.cloud import (
    Cluster,
    CostLedger,
    DeploymentService,
    PROVIDERS,
    execution_cost,
    get_instance,
    get_provider,
)


class TestProviders:
    def test_registry(self):
        assert set(PROVIDERS) == {"aws", "azure", "gcp"}
        assert get_provider("aws").deployment_service == "EMR"
        assert get_provider("azure").deployment_service == "HDInsight"
        assert get_provider("gcp").deployment_service == "Dataproc"

    def test_unknown_provider(self):
        with pytest.raises(KeyError):
            get_provider("oracle")

    def test_instances_scoped(self):
        aws = get_provider("aws")
        assert all(t.provider == "aws" for t in aws.instances())
        assert "m5" in aws.families()

    def test_sustained_use_discount(self):
        gcp = get_provider("gcp")
        inst = get_instance("n1-standard.xlarge")
        short = gcp.effective_hourly_price(inst, hours=10)
        long = gcp.effective_hourly_price(inst, hours=400)
        assert long < short

    def test_cross_provider_price_rejected(self):
        gcp = get_provider("gcp")
        with pytest.raises(ValueError):
            gcp.effective_hourly_price(get_instance("m5.large"), 10)


class TestCostLedger:
    def test_charges_accumulate(self):
        ledger = CostLedger()
        cluster = Cluster.of("m5.xlarge", 4)
        c1 = ledger.charge_tuning(cluster, 3600)
        c2 = ledger.charge_production(cluster, 1800)
        assert c1 == pytest.approx(cluster.price_per_hour)
        assert ledger.tuning_runs == 1
        assert ledger.production_runs == 1
        assert ledger.total_cost == pytest.approx(c1 + c2)

    def test_history_ordered(self):
        ledger = CostLedger()
        cluster = Cluster.of("m5.large", 1)
        ledger.charge_tuning(cluster, 10)
        ledger.charge_production(cluster, 20)
        kinds = [kind for kind, _, _ in ledger.history()]
        assert kinds == ["tuning", "production"]

    def test_breakeven(self):
        ledger = CostLedger()
        cluster = Cluster.of("m5.large", 1)
        for _ in range(10):
            ledger.charge_tuning(cluster, 3600)  # 10 hours of tuning
        # Tuned config saves half the hourly price per run.
        saving = cluster.price_per_hour / 2
        runs = ledger.breakeven_runs(cluster.price_per_hour, saving)
        assert runs == pytest.approx(20)

    def test_breakeven_no_saving_is_infinite(self):
        ledger = CostLedger()
        ledger.charge_tuning(Cluster.of("m5.large", 1), 100)
        assert ledger.breakeven_runs(1.0, 2.0) == float("inf")

    def test_execution_cost_helper(self):
        cluster = Cluster.of("m5.large", 2)
        assert execution_cost(cluster, 3600) == pytest.approx(cluster.price_per_hour)


class TestDeploymentService:
    def test_provision(self):
        svc = DeploymentService.for_provider("aws")
        cluster = svc.provision("h1.4xlarge", 4, tenant="t1")
        assert cluster.count == 4
        assert len(svc.provisioning_log()) == 1
        assert svc.provisioning_log()[0].tenant == "t1"

    def test_rejects_cross_provider(self):
        svc = DeploymentService.for_provider("azure")
        with pytest.raises(ValueError):
            svc.provision("m5.xlarge", 2)

    def test_enforces_quota(self):
        svc = DeploymentService.for_provider("aws")
        with pytest.raises(ValueError):
            svc.provision("m5.large", 1000)
        with pytest.raises(ValueError):
            svc.provision("m5.large", 0)
