"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import (
    BoolParameter,
    CategoricalParameter,
    ConfigurationSpace,
    FloatParameter,
    IntParameter,
    grant_resources,
    spark_space,
)
from repro.cloud import Cluster, list_instances
from repro.core.retuning import CusumDetector, PageHinkleyDetector
from repro.core.slo import SLOMetric, TuningSLO, evaluate_slo
from repro.sparksim import RDD, compile_job, gc_fraction, spill_outcome
from repro.sparksim.scheduler import _list_schedule
from repro.tuning.bo.acquisition import expected_improvement
from repro.tuning.bo.kernels import Matern52, RBF


# --- configuration space round trips -------------------------------------

unit = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


@given(st.integers(1, 50), st.integers(51, 10_000), unit)
def test_int_parameter_from_unit_in_bounds(low, high, u):
    p = IntParameter("x", low, high)
    assert low <= p.from_unit(u) <= high


@given(st.integers(1, 50), st.integers(51, 10_000), unit)
def test_int_parameter_roundtrip(low, high, u):
    p = IntParameter("x", low, high)
    v = p.from_unit(u)
    assert p.from_unit(p.to_unit(v)) == v


@given(unit)
def test_log_parameter_roundtrip(u):
    p = IntParameter("x", 8, 2000, log=True)
    v = p.from_unit(u)
    assert p.from_unit(p.to_unit(v)) == v


@settings(max_examples=50)
@given(st.lists(unit, min_size=32, max_size=32))
def test_spark_space_decode_always_valid(units):
    space = spark_space()
    config = space.decode(np.array(units))
    space.validate(config)  # never raises
    # encode-decode is a projection: decoding its own encoding is stable
    again = space.decode(space.encode(config))
    assert again == config


@settings(max_examples=30)
@given(st.integers(0, 2**31 - 1), st.integers(1, 64))
def test_latin_hypercube_covers_every_axis_stratum(seed, n):
    space = ConfigurationSpace([
        FloatParameter("a", 0.0, 1.0),
        FloatParameter("b", 0.0, 1.0),
    ])
    configs = space.latin_hypercube(n, np.random.default_rng(seed))
    assert len(configs) == n
    for name in ("a", "b"):
        strata = sorted(min(n - 1, int(c[name] * n)) for c in configs)
        assert strata == list(range(n))


# --- resource grants ----------------------------------------------------------

_instances = st.sampled_from([t.name for t in list_instances()])


@settings(max_examples=60)
@given(_instances, st.integers(1, 16), st.integers(1, 48), st.integers(1, 16),
       st.integers(512, 65536))
def test_grant_never_exceeds_cluster(instance, nodes, execs, cores, memory):
    cluster = Cluster.of(instance, nodes)
    config = spark_space().default_configuration().replace(**{
        "spark.executor.instances": execs,
        "spark.executor.cores": cores,
        "spark.executor.memory": memory,
    })
    grant = grant_resources(config, cluster)
    assert 0 <= grant.executors <= execs
    assert grant.total_slots <= cluster.total_vcpus
    total_container = grant.executors * memory * 1.1
    assert total_container <= cluster.total_memory_mb * 1.2  # overhead slack


# --- memory model invariants ----------------------------------------------------

positive = st.floats(min_value=0.0, max_value=1e6, allow_nan=False)


@given(positive, positive, st.floats(0.0, 0.5))
def test_spill_conservation(ws, avail, unspillable):
    out = spill_outcome(ws, avail, unspillable)
    if not out.oom:
        assert 0 <= out.spilled_mb <= ws
        # Whatever did not spill fits in available memory.
        assert ws - out.spilled_mb <= avail + 1e-9


@given(st.floats(0.0, 1.2), st.floats(0.0, 1.2))
def test_gc_fraction_monotone_and_bounded(a, b):
    lo, hi = sorted([a, b])
    assert 0 <= gc_fraction(lo) <= gc_fraction(hi) <= 0.45


# --- scheduler invariants -----------------------------------------------------------

@settings(max_examples=50)
@given(st.lists(st.floats(0.01, 100.0), min_size=1, max_size=300),
       st.integers(1, 64))
def test_makespan_bounds(durations, slots):
    d = np.array(durations)
    m = _list_schedule(d, slots)
    assert m >= d.max() - 1e-9                  # longest task is a lower bound
    assert m >= d.sum() / slots - 1e-9          # perfect packing is a lower bound
    assert m <= d.sum() / slots + d.max() + 1e-9  # greedy guarantee


# --- DAG compilation invariants ---------------------------------------------------------

@settings(max_examples=40)
@given(st.floats(10.0, 100_000.0), st.floats(0.01, 1.0), st.floats(0.1, 1.5))
def test_compile_conserves_shuffle_bytes(size, keep, shuffle_ratio):
    job = (RDD.source("d", size).filter(keep=keep)
           .reduce_by_key(size_ratio=shuffle_ratio).count())
    plan = compile_job(job)
    written = sum(s.shuffle_write_mb for s in plan.stages)
    read = sum(s.shuffle_read_mb for s in plan.stages)
    assert abs(written - read) < 1e-6
    assert abs(written - size * keep * shuffle_ratio) < 1e-6


@settings(max_examples=40)
@given(st.integers(1, 6))
def test_pagerank_plan_acyclic_any_iterations(iterations):
    import networkx as nx

    from repro.workloads import PageRank

    jobs = PageRank(iterations=iterations).jobs(1000)
    next_id = 0
    from repro.sparksim import CacheRegistry

    registry = CacheRegistry()
    for job in jobs:
        plan = compile_job(job, registry, first_stage_id=next_id)
        next_id += plan.num_stages
        assert nx.is_directed_acyclic_graph(plan.graph())
        for stage in plan.stages:
            for rdd_id, mb, rb in stage.materializes:
                registry.materialize(rdd_id, mb, rb)
        for rdd in job.unpersist_after:
            registry.evict(rdd.id)


# --- kernels and acquisitions --------------------------------------------------------------

@settings(max_examples=30)
@given(st.integers(0, 2**31 - 1), st.integers(2, 20), st.integers(1, 5))
def test_kernel_matrices_psd(seed, n, d):
    rng = np.random.default_rng(seed)
    X = rng.random((n, d))
    for kernel in (RBF(), Matern52()):
        K = kernel(X, X, kernel.default_theta())
        eig = np.linalg.eigvalsh(K + 1e-10 * np.eye(n))
        assert eig.min() > -1e-7


@given(st.floats(-100, 100), st.floats(1e-6, 100), st.floats(-100, 100))
def test_expected_improvement_nonnegative(mean, std, best):
    ei = expected_improvement(np.array([mean]), np.array([std]), best)
    assert ei[0] >= -1e-12


# --- drift detectors ----------------------------------------------------------------------

@settings(max_examples=30)
@given(st.floats(1.0, 1e6), st.integers(1, 60))
def test_constant_stream_never_alarms(level, n):
    ph = PageHinkleyDetector()
    cusum = CusumDetector()
    for _ in range(n):
        assert not ph.update(level)
        assert not cusum.update(level)


# --- SLO algebra ------------------------------------------------------------------------------

@given(st.floats(1.0, 1e5), st.floats(1.0, 1e5), st.floats(0.0, 2.0))
def test_slo_within_optimal_consistency(achieved, reference, target):
    slo = TuningSLO(SLOMetric.WITHIN_OPTIMAL, target)
    report = evaluate_slo(slo, achieved, reference)
    assert report.attained == (achieved <= reference * (1 + target) + 1e-9 * reference)


# --- Ernest model ----------------------------------------------------------------------------

@settings(max_examples=30)
@given(st.integers(0, 2**31 - 1), st.integers(3, 30))
def test_ernest_coefficients_nonnegative(seed, n):
    from repro.tuning import ErnestModel

    rng = np.random.default_rng(seed)
    machines = rng.integers(1, 32, n).astype(float)
    data = rng.uniform(100, 10_000, n)
    runtimes = rng.uniform(1, 1000, n)
    model = ErnestModel().fit(machines, data, runtimes)
    assert (model.coefficients >= 0).all()
    # Non-negative coefficients imply non-negative predictions.
    assert (model.predict(machines, data) >= 0).all()


# --- spill/grant interplay -------------------------------------------------------------------

@settings(max_examples=40)
@given(st.floats(512, 65536), st.floats(0.3, 0.9), st.floats(0.1, 0.9))
def test_executor_memory_regions_partition_heap(heap, fraction, storage_fraction):
    from repro.config import Configuration, SPARK_DEFAULTS
    from repro.sparksim import ExecutorModel

    config = Configuration({**SPARK_DEFAULTS, **{
        "spark.executor.memory": int(heap),
        "spark.memory.fraction": fraction,
        "spark.memory.storageFraction": storage_fraction,
    }})
    ex = ExecutorModel.from_config(config)
    assert 0 <= ex.storage_immune_mb <= ex.unified_mb <= max(0.0, heap - 300) + 1e-9
    # Execution capacity is monotone non-increasing in cached footprint.
    caps = [ex.execution_capacity_mb(s) for s in (0.0, ex.unified_mb / 2, ex.unified_mb)]
    assert caps[0] >= caps[1] >= caps[2] >= 0


# --- successive halving ----------------------------------------------------------------------

@settings(max_examples=20, deadline=None)
@given(st.integers(0, 2**31 - 1), st.integers(4, 20))
def test_successive_halving_monotone_rungs(seed, n_configs):
    from repro.config import ConfigurationSpace, FloatParameter
    from repro.tuning import successive_halving

    space = ConfigurationSpace([FloatParameter("x", 0.0, 1.0)])

    def objective_at(config, fidelity):
        return 1.0 + (config["x"] - 0.3) ** 2 / fidelity

    result = successive_halving(objective_at, space, n_configs=n_configs,
                                eta=2, seed=seed)
    survivors = [n for _, n in result.rung_trace]
    assert survivors == sorted(survivors, reverse=True)
    fidelities = [f for f, _ in result.rung_trace]
    assert fidelities == sorted(fidelities)
    assert abs(result.best_config["x"] - 0.3) < 0.35


# --- event log round trip ---------------------------------------------------------------------

@settings(max_examples=15, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_eventlog_roundtrip_signature_invariant(seed):
    import tempfile
    from pathlib import Path

    from repro.cloud import Cluster
    from repro.core import probe_configuration, signature
    from repro.sparksim import SparkSimulator, read_event_log, write_event_log
    from repro.workloads import Sort

    simulator = SparkSimulator()
    cluster = Cluster.of("h1.4xlarge", 4)
    result = simulator.run(Sort(), 3_000, cluster, probe_configuration(), seed=seed)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "log.jsonl"
        write_event_log(result, path)
        loaded = read_event_log(path)
    assert np.allclose(signature(loaded), signature(result))
