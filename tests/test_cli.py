"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import _parse_overrides, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_args(self):
        args = build_parser().parse_args([
            "simulate", "--workload", "sort", "--size", "DS2",
            "--instance", "m5.xlarge", "--nodes", "6",
        ])
        assert args.workload == "sort"
        assert args.nodes == 6

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--workload", "mystery"])


class TestOverrides:
    def test_typed_parsing(self):
        out = _parse_overrides([
            "spark.executor.memory=4096",
            "spark.memory.fraction=0.7",
            "spark.shuffle.compress=false",
            "spark.serializer=kryo",
        ])
        assert out["spark.executor.memory"] == 4096
        assert out["spark.memory.fraction"] == 0.7
        assert out["spark.shuffle.compress"] is False
        assert out["spark.serializer"] == "kryo"

    def test_rejects_unknown_key(self):
        with pytest.raises(SystemExit):
            _parse_overrides(["spark.unknown=1"])

    def test_rejects_malformed(self):
        with pytest.raises(SystemExit):
            _parse_overrides(["no-equals-sign"])


class TestCommands:
    def test_workloads_lists_suite(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "pagerank" in out and "wordcount" in out

    def test_instances_filtered(self, capsys):
        assert main(["instances", "--provider", "gcp"]) == 0
        out = capsys.readouterr().out
        assert "n1-standard" in out
        assert "m5" not in out

    def test_simulate_success_exit_zero(self, capsys):
        code = main([
            "simulate", "--workload", "wordcount", "--size", "DS1",
            "--set", "spark.executor.instances=8",
            "--set", "spark.executor.cores=4",
            "--set", "spark.executor.memory=8192",
        ])
        assert code == 0
        assert "SUCCESS" in capsys.readouterr().out

    def test_simulate_failure_exit_one(self, capsys):
        code = main([
            "simulate", "--workload", "wordcount", "--size", "DS1",
            "--set", "spark.executor.memory=65536",
        ])
        assert code == 1
        assert "FAILED" in capsys.readouterr().out

    def test_tune_prints_config(self, capsys):
        code = main([
            "tune", "--workload", "sort", "--size", "DS1",
            "--tuner", "random", "--budget", "5",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "best runtime" in out
        assert "spark.executor.memory" in out

    def test_submit_with_history_file(self, capsys, tmp_path):
        history = tmp_path / "h.json"
        code = main([
            "submit", "--workload", "wordcount", "--input-mb", "20000",
            "--cloud-budget", "6", "--disc-budget", "8",
            "--history", str(history),
        ])
        assert code == 0
        assert history.exists()
        payload = json.loads(history.read_text())
        assert payload["records"]
        # Second submit loads the saved history.
        code = main([
            "submit", "--workload", "wordcount", "--input-mb", "20000",
            "--cloud-budget", "6", "--disc-budget", "8",
            "--history", str(history),
        ])
        assert code == 0
        assert "loaded" in capsys.readouterr().out
