"""Tests for the workload suite: structure, scaling, characteristics."""

import pytest

from repro.config import SPARK_DEFAULTS, Configuration
from repro.sparksim import compile_job
from repro.workloads import (
    SUITE,
    TABLE1_WORKLOADS,
    BayesClassifier,
    EvolvingInput,
    KMeans,
    MLFit,
    PageRank,
    Sort,
    SqlJoinAgg,
    TeraSort,
    Wordcount,
    all_workloads,
    evolving_sizes,
    get_workload,
    variant_of,
    workload_family,
)


GOOD = Configuration({**SPARK_DEFAULTS, **{
    "spark.executor.instances": 8, "spark.executor.cores": 8,
    "spark.executor.memory": 16384, "spark.default.parallelism": 128,
}})


class TestRegistry:
    def test_suite_has_ten(self):
        assert len(SUITE) == 10

    def test_table1_workloads_present(self):
        assert TABLE1_WORKLOADS == ["pagerank", "bayes", "wordcount"]
        for name in TABLE1_WORKLOADS:
            assert name in SUITE

    def test_get_workload(self):
        w = get_workload("pagerank", iterations=3)
        assert isinstance(w, PageRank)
        assert w.iterations == 3

    def test_unknown_workload(self):
        with pytest.raises(KeyError):
            get_workload("mystery")

    def test_all_workloads_instantiable(self):
        workloads = all_workloads()
        assert len(workloads) == len(SUITE)
        names = {w.name for w in workloads}
        assert names == set(SUITE)

    def test_categories_cover_hibench(self):
        categories = {w.category for w in all_workloads()}
        assert {"micro", "graph", "ml", "sql"} <= categories


class TestEvolvingInput:
    def test_monotone_sizes_required(self):
        with pytest.raises(ValueError):
            EvolvingInput(100, 50, 200)

    def test_size_lookup(self):
        e = EvolvingInput(1, 2, 3)
        assert e.size("DS1") == 1 and e.size("DS3") == 3
        with pytest.raises(KeyError):
            e.size("DS9")

    def test_all_workloads_declare_growing_inputs(self):
        for w in all_workloads():
            assert w.inputs.ds1_mb < w.inputs.ds2_mb < w.inputs.ds3_mb

    def test_evolving_sizes_geometric(self):
        assert evolving_sizes(100, 2.0, 3) == [100, 200, 400]
        with pytest.raises(ValueError):
            evolving_sizes(100, 1.0, 3)


class TestJobStructure:
    def test_wordcount_two_stages(self):
        jobs = Wordcount().jobs(1000)
        assert len(jobs) == 1
        assert compile_job(jobs[0]).num_stages == 2

    def test_wordcount_tiny_shuffle(self):
        plan = compile_job(Wordcount().jobs(10_000)[0])
        shuffle = sum(s.shuffle_write_mb for s in plan.stages)
        assert shuffle < 0.05 * 10_000

    def test_sort_full_shuffle(self):
        plan = compile_job(Sort().jobs(10_000)[0])
        shuffle = sum(s.shuffle_write_mb for s in plan.stages)
        assert shuffle == pytest.approx(10_000, rel=0.05)

    def test_terasort_writes_output(self):
        plan = compile_job(TeraSort().jobs(1000)[0])
        assert any(s.writes_output for s in plan.stages)

    def test_pagerank_job_count_scales_with_iterations(self):
        assert len(PageRank(iterations=3).jobs(1000)) == 2 + 3
        assert len(PageRank(iterations=8).jobs(1000)) == 2 + 8

    def test_pagerank_caches_links_and_ranks(self):
        jobs = PageRank(iterations=2).jobs(1000)
        assert jobs[0].target.cached    # links
        assert jobs[1].target.cached    # ranks

    def test_pagerank_unpersists_old_ranks(self):
        jobs = PageRank(iterations=2).jobs(1000)
        assert jobs[2].unpersist_after  # iteration releases previous ranks

    def test_kmeans_iterations(self):
        assert len(KMeans(iterations=4).jobs(1000)) == 1 + 4

    def test_kmeans_validates_params(self):
        with pytest.raises(ValueError):
            KMeans(iterations=0)
        with pytest.raises(ValueError):
            KMeans(k=1)

    def test_bayes_two_passes(self):
        assert len(BayesClassifier().jobs(1000)) == 2

    def test_sql_join_three_upstream_stages(self):
        plan = compile_job(SqlJoinAgg().jobs(1000)[0])
        assert plan.num_stages >= 4  # two scans, join, aggregation

    def test_scan_is_io_bound_single_stage(self):
        from repro.workloads import Scan

        plan = compile_job(Scan().jobs(10_000)[0])
        assert plan.num_stages == 1
        assert plan.stages[0].shuffle_write_mb == 0

    def test_aggregation_shuffles_whole_table(self):
        from repro.workloads import Aggregation

        plan = compile_job(Aggregation().jobs(10_000)[0])
        shuffle = sum(s.shuffle_write_mb for s in plan.stages)
        assert shuffle == pytest.approx(10_000, rel=0.05)

    def test_sqlmicro_validates_params(self):
        from repro.workloads import Aggregation, Scan

        with pytest.raises(ValueError):
            Scan(selectivity=0)
        with pytest.raises(ValueError):
            Aggregation(group_ratio=0)

    def test_mlfit_tiny_shuffles(self):
        jobs = MLFit(iterations=3).jobs(10_000)
        total_shuffle = 0.0
        for i, job in enumerate(jobs):
            plan = compile_job(job, first_stage_id=i * 10)
            total_shuffle += sum(s.shuffle_write_mb for s in plan.stages)
        assert total_shuffle < 0.05 * 10_000

    def test_cpu_scale_validated_everywhere(self):
        for cls in (Wordcount, Sort, TeraSort, PageRank, BayesClassifier,
                    KMeans, SqlJoinAgg, MLFit):
            with pytest.raises(ValueError):
                cls(cpu_scale=0)


class TestRuntimeCharacteristics:
    def test_pagerank_cache_sensitive_wordcount_not(self, cluster, quiet_simulator):
        """The Table-I mechanism: memory matters for pagerank, not wordcount."""
        low_mem = GOOD.replace(**{"spark.executor.memory": 2048})
        ratios = {}
        for w in (PageRank(iterations=4), Wordcount()):
            slow = quiet_simulator.run(w, 10_000, cluster, low_mem)
            fast = quiet_simulator.run(w, 10_000, cluster, GOOD)
            ratios[w.name] = slow.effective_runtime() / fast.effective_runtime()
        assert ratios["pagerank"] > ratios["wordcount"]

    def test_mlfit_cpu_bound(self, cluster, simulator):
        r = simulator.run(MLFit(iterations=3), 5_000, cluster, GOOD, seed=1)
        assert r.total_cpu_s > 3 * (r.total_io_s + r.total_net_s)


class TestVariants:
    def test_variant_scales_runtime(self, cluster, quiet_simulator):
        base = Wordcount()
        heavy = variant_of(base, cpu_scale=3.0)
        a = quiet_simulator.run(base, 10_000, cluster, GOOD)
        b = quiet_simulator.run(heavy, 10_000, cluster, GOOD)
        assert b.runtime_s > a.runtime_s

    def test_variant_rename(self):
        v = variant_of(Wordcount(), name="wc-clone", cpu_scale=1.5)
        assert v.name == "wc-clone"
        assert v.category == "micro"

    def test_variant_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            variant_of(Wordcount(), cpu_scale=0)

    def test_workload_family_distinct(self, rng):
        fam = workload_family(PageRank, 4, rng)
        assert len({w.name for w in fam}) == 4
        assert all(isinstance(w, PageRank) for w in fam)
