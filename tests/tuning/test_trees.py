"""Tests for CART trees and random forests."""

import numpy as np
import pytest

from repro.tuning import DecisionTreeRegressor, RandomForestRegressor


class TestDecisionTree:
    def test_fits_step_function_exactly(self):
        X = np.linspace(0, 1, 50)[:, None]
        y = (X[:, 0] > 0.5).astype(float)
        tree = DecisionTreeRegressor(max_depth=3).fit(X, y)
        pred = tree.predict(X)
        assert np.allclose(pred, y)

    def test_constant_target_single_leaf(self):
        X = np.random.default_rng(0).random((20, 3))
        tree = DecisionTreeRegressor().fit(X, np.full(20, 5.0))
        assert tree.depth() == 0
        assert np.allclose(tree.predict(X), 5.0)

    def test_max_depth_respected(self, rng):
        X = rng.random((200, 4))
        y = rng.normal(size=200)
        tree = DecisionTreeRegressor(max_depth=3, min_samples_leaf=1).fit(X, y)
        assert tree.depth() <= 3

    def test_min_samples_leaf(self, rng):
        X = rng.random((50, 2))
        y = rng.normal(size=50)
        tree = DecisionTreeRegressor(max_depth=20, min_samples_leaf=10).fit(X, y)

        def check(node):
            if node.is_leaf:
                assert node.n_samples >= 10
            else:
                check(node.left)
                check(node.right)

        check(tree._root)

    def test_feature_importances_find_signal(self, rng):
        X = rng.random((300, 5))
        y = 10 * X[:, 2] + 0.01 * rng.normal(size=300)  # only feature 2 matters
        tree = DecisionTreeRegressor(max_depth=6).fit(X, y)
        assert np.argmax(tree.feature_importances_) == 2
        assert tree.feature_importances_.sum() == pytest.approx(1.0)

    def test_generalizes_smooth_function(self, rng):
        X = rng.random((400, 2))
        y = np.sin(4 * X[:, 0])
        tree = DecisionTreeRegressor(max_depth=8).fit(X, y)
        Xt = rng.random((100, 2))
        rmse = np.sqrt(np.mean((tree.predict(Xt) - np.sin(4 * Xt[:, 0])) ** 2))
        assert rmse < 0.2

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor().fit(np.zeros((0, 2)), np.zeros(0))

    def test_predict_before_fit(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor().predict(np.zeros((1, 2)))

    def test_invalid_hyperparams(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor(max_depth=0)
        with pytest.raises(ValueError):
            DecisionTreeRegressor(min_samples_leaf=0)


class TestRandomForest:
    def test_better_than_single_tree_on_noise(self, rng):
        X = rng.random((300, 3))
        y = 3 * X[:, 0] + np.sin(5 * X[:, 1]) + 0.3 * rng.normal(size=300)
        Xt = rng.random((100, 3))
        yt = 3 * Xt[:, 0] + np.sin(5 * Xt[:, 1])
        tree = DecisionTreeRegressor(max_depth=10, min_samples_leaf=1, seed=0).fit(X, y)
        forest = RandomForestRegressor(n_trees=30, seed=0).fit(X, y)
        rmse_tree = np.sqrt(np.mean((tree.predict(Xt) - yt) ** 2))
        rmse_forest = np.sqrt(np.mean((forest.predict(Xt) - yt) ** 2))
        assert rmse_forest < rmse_tree

    def test_std_reflects_uncertainty(self, rng):
        X = np.concatenate([rng.random((100, 1)) * 0.4, np.array([[0.95]])])
        y = X[:, 0] + 0.05 * rng.normal(size=101)
        forest = RandomForestRegressor(n_trees=20, seed=1).fit(X, y)
        _, std = forest.predict(np.array([[0.2], [0.99]]), return_std=True)
        assert std.shape == (2,)
        assert (std >= 0).all()

    def test_deterministic_by_seed(self, rng):
        X = rng.random((50, 2))
        y = rng.normal(size=50)
        a = RandomForestRegressor(n_trees=5, seed=9).fit(X, y).predict(X)
        b = RandomForestRegressor(n_trees=5, seed=9).fit(X, y).predict(X)
        assert np.allclose(a, b)

    def test_feature_importances_aggregate(self, rng):
        X = rng.random((200, 4))
        y = 5 * X[:, 1]
        forest = RandomForestRegressor(n_trees=10, seed=2).fit(X, y)
        assert np.argmax(forest.feature_importances_) == 1

    def test_requires_fit(self):
        with pytest.raises(ValueError):
            RandomForestRegressor().predict(np.zeros((1, 2)))
        with pytest.raises(ValueError):
            _ = RandomForestRegressor().feature_importances_

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            RandomForestRegressor(n_trees=0)
