"""Identity suite: incremental BayesOpt surrogate state vs. rebuild.

``BayesOptTuner(incremental=True)`` — the default — encodes each
observation once into append-only buffers and tracks EI's incumbent as
a running minimum; ``incremental=False`` is the old rebuild-everything
reference.  Whole campaigns must be *bit-identical* between the two:
same suggestion stream, same EI values, same posteriors.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.cloud_params import cloud_space
from repro.config.spark_params import spark_core_space
from repro.tuning.bo.bayesopt import BayesOptTuner


def _campaign(space, seed, cost_seed, n_steps, log_costs=True,
              refit_every=4, warm=None, incremental=True):
    tuner = BayesOptTuner(
        space, seed=seed, n_init=4, n_candidates=48, log_costs=log_costs,
        refit_every=refit_every, warm_start=warm, incremental=incremental,
    )
    costs = np.random.default_rng(cost_seed)
    trail = []
    for _ in range(n_steps):
        config = tuner.suggest()
        cost = float(5.0 + 500.0 * costs.random())
        tuner.observe(config, cost)
        trail.append((config, tuner.last_max_ei))
    return tuner, trail


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 2**31 - 1), st.integers(0, 2**31 - 1),
       st.integers(5, 16), st.booleans(), st.integers(1, 6))
def test_campaigns_bit_identical(seed, cost_seed, n_steps, log_costs,
                                 refit_every):
    space = cloud_space("aws")
    t_inc, trail_inc = _campaign(
        space, seed, cost_seed, n_steps, log_costs, refit_every,
        incremental=True)
    t_ref, trail_ref = _campaign(
        space, seed, cost_seed, n_steps, log_costs, refit_every,
        incremental=False)
    for (c_a, ei_a), (c_b, ei_b) in zip(trail_inc, trail_ref):
        assert c_a == c_b
        assert ei_a == ei_b        # bitwise: same incumbent, same posterior
    assert t_inc.best.config == t_ref.best.config
    assert t_inc.best.cost == t_ref.best.cost
    assert t_inc.should_stop() == t_ref.should_stop()


@settings(max_examples=8, deadline=None)
@given(st.integers(0, 2**31 - 1), st.integers(3, 10))
def test_warm_started_campaigns_bit_identical(seed, n_steps):
    space = spark_core_space()
    rng = np.random.default_rng(seed)
    warm = [(space.decode(rng.random(space.dimension)),
             float(10.0 + 100.0 * rng.random())) for _ in range(3)]
    _, trail_inc = _campaign(space, seed, seed ^ 0x5bf, n_steps,
                             warm=list(warm), incremental=True)
    _, trail_ref = _campaign(space, seed, seed ^ 0x5bf, n_steps,
                             warm=list(warm), incremental=False)
    assert [c for c, _ in trail_inc] == [c for c, _ in trail_ref]
    assert [ei for _, ei in trail_inc] == [ei for _, ei in trail_ref]


def test_buffers_match_training_data_rebuild():
    """The append-only buffers must equal ``_training_data()`` bitwise."""
    space = cloud_space("aws")
    tuner, _ = _campaign(space, 11, 13, 12, incremental=True)
    X_ref, y_ref = tuner._training_data()
    X_buf, y_buf = tuner._model_data()
    assert np.array_equal(X_buf, X_ref)
    assert np.array_equal(y_buf, y_ref)
    assert float(tuner._y_model_min) == float(y_ref.min())


def test_design_matrix_tracks_rebuild_between_refits():
    """With hyperparameter re-optimization pushed far out (refit_every
    huge), the surrogate grows by rank-1 updates only — its training
    views must still match the from-scratch design matrix bitwise."""
    space = cloud_space("aws")
    tuner, _ = _campaign(space, 3, 7, 14, refit_every=50, incremental=True)
    tuner._refit()
    X, y = tuner._training_data()
    yn = (y - tuner._gp._y_mean) / tuner._gp._y_std
    assert np.array_equal(tuner._gp._X, X)
    assert np.array_equal(tuner._gp._y, yn)


def test_failed_observations_enter_model_like_reference():
    space = cloud_space("aws")

    def run(incremental):
        t = BayesOptTuner(space, seed=5, n_init=3, n_candidates=32,
                          incremental=incremental)
        rng = np.random.default_rng(21)
        for i in range(10):
            c = t.suggest()
            t.observe(c, float(50 + 400 * rng.random()),
                      succeeded=(i % 3 != 0))
        return t

    a, b = run(True), run(False)
    assert [o.config for o in a.history] == [o.config for o in b.history]
    assert a.best.config == b.best.config and a.best.cost == b.best.cost
