"""Tests for the from-scratch Gaussian process and kernels."""

import numpy as np
import pytest

from repro.tuning.bo import AdditiveKernel, GaussianProcess, Matern52, RBF
from repro.tuning.bo.acquisition import (
    expected_improvement,
    lower_confidence_bound,
    probability_of_improvement,
)


class TestKernels:
    @pytest.mark.parametrize("kernel", [RBF(), Matern52()])
    def test_psd_and_symmetric(self, kernel, rng):
        X = rng.random((20, 3))
        K = kernel(X, X, kernel.default_theta())
        assert np.allclose(K, K.T)
        eig = np.linalg.eigvalsh(K)
        assert eig.min() > -1e-8

    @pytest.mark.parametrize("kernel", [RBF(), Matern52()])
    def test_diagonal_is_variance(self, kernel, rng):
        X = rng.random((5, 2))
        theta = kernel.default_theta()
        assert np.allclose(kernel.diag(X, theta), np.diag(kernel(X, X, theta)))

    def test_correlation_decays_with_distance(self):
        k = Matern52()
        theta = k.default_theta()
        near = k(np.array([[0.0]]), np.array([[0.1]]), theta)[0, 0]
        far = k(np.array([[0.0]]), np.array([[0.9]]), theta)[0, 0]
        assert near > far

    def test_additive_kernel_sums_groups(self, rng):
        k = AdditiveKernel(dim=3)
        X = rng.random((8, 3))
        theta = k.default_theta()
        total = k(X, X, theta)
        parts = sum(k.component(g, X, X, theta) for g in range(3))
        assert np.allclose(total, parts)

    def test_additive_kernel_validates_groups(self):
        with pytest.raises(ValueError):
            AdditiveKernel(dim=2, groups=[[0], [0]])
        with pytest.raises(ValueError):
            AdditiveKernel(dim=2, groups=[[0], [5]])

    def test_additive_group_variances(self):
        k = AdditiveKernel(dim=2)
        theta = np.array([0.0, np.log(3.0), 0.0, np.log(1.0)])
        assert np.allclose(k.group_variances(theta), [3.0, 1.0])


class TestGaussianProcess:
    def test_interpolates_noise_free_data(self, rng):
        X = rng.random((15, 2))
        y = np.sin(3 * X[:, 0]) + X[:, 1]
        gp = GaussianProcess(noise=1e-5).fit(X, y)
        mean, std = gp.predict(X)
        assert np.allclose(mean, y, atol=0.05)

    def test_uncertainty_grows_away_from_data(self, rng):
        X = rng.random((10, 1)) * 0.4  # data only in [0, 0.4]
        y = X[:, 0] ** 2
        gp = GaussianProcess().fit(X, y)
        _, std_near = gp.predict(np.array([[0.2]]))
        _, std_far = gp.predict(np.array([[0.95]]))
        assert std_far[0] > std_near[0]

    def test_learns_reasonable_fit(self, rng):
        X = rng.random((40, 2))
        y = 5 * (X[:, 0] - 0.5) ** 2 + 0.1 * rng.normal(size=40)
        gp = GaussianProcess(seed=1).fit(X, y)
        Xt = rng.random((20, 2))
        yt = 5 * (Xt[:, 0] - 0.5) ** 2
        mean, _ = gp.predict(Xt)
        rmse = np.sqrt(np.mean((mean - yt) ** 2))
        assert rmse < 0.3

    def test_handles_single_point(self):
        gp = GaussianProcess().fit(np.array([[0.5]]), np.array([2.0]))
        mean, std = gp.predict(np.array([[0.5]]))
        assert mean[0] == pytest.approx(2.0, abs=0.3)

    def test_handles_constant_targets(self, rng):
        X = rng.random((10, 2))
        gp = GaussianProcess().fit(X, np.full(10, 3.0))
        mean, _ = gp.predict(X[:3])
        assert np.allclose(mean, 3.0, atol=1e-6)

    def test_rejects_mismatched_shapes(self):
        with pytest.raises(ValueError):
            GaussianProcess().fit(np.zeros((3, 2)), np.zeros(4))

    def test_predict_before_fit_raises(self):
        with pytest.raises(ValueError):
            GaussianProcess().predict(np.zeros((1, 2)))

    def test_log_marginal_likelihood_finite(self, rng):
        X = rng.random((12, 2))
        y = rng.normal(size=12)
        gp = GaussianProcess().fit(X, y)
        assert np.isfinite(gp.log_marginal_likelihood())

    def test_duplicate_points_no_crash(self):
        X = np.array([[0.5, 0.5]] * 6)
        y = np.array([1.0, 1.1, 0.9, 1.0, 1.05, 0.95])
        gp = GaussianProcess().fit(X, y)
        mean, _ = gp.predict(X[:1])
        assert mean[0] == pytest.approx(1.0, abs=0.2)


class TestAcquisitions:
    def test_ei_zero_when_hopeless(self):
        ei = expected_improvement(np.array([10.0]), np.array([1e-9]), best=1.0)
        assert ei[0] == pytest.approx(0.0, abs=1e-6)

    def test_ei_positive_when_promising(self):
        ei = expected_improvement(np.array([0.5]), np.array([0.1]), best=1.0)
        assert ei[0] > 0.4

    def test_ei_rewards_uncertainty(self):
        low = expected_improvement(np.array([1.0]), np.array([0.01]), best=1.0)
        high = expected_improvement(np.array([1.0]), np.array([1.0]), best=1.0)
        assert high[0] > low[0]

    def test_pi_bounded(self):
        pi = probability_of_improvement(np.array([0.5, 2.0]), np.array([0.3, 0.3]), 1.0)
        assert ((pi >= 0) & (pi <= 1)).all()

    def test_lcb_kappa_zero_is_mean(self):
        m = np.array([1.0, 2.0])
        assert np.allclose(lower_confidence_bound(m, np.ones(2), kappa=0.0), m)

    def test_lcb_rejects_negative_kappa(self):
        with pytest.raises(ValueError):
            lower_confidence_bound(np.ones(1), np.ones(1), kappa=-1)


class TestIncrementalUpdate:
    """`update()` must match an exact refactorization at frozen theta."""

    def _posterior_reference(self, gp, X_all, y_all, X_query):
        # Exact GP posterior at the incremental model's frozen
        # hyperparameters and y-normalization constants.
        theta = gp.theta
        noise = np.exp(theta[-1]) + 1e-10
        yn = (y_all - gp._y_mean) / gp._y_std
        K = gp.kernel(X_all, X_all, theta[:-1])
        K[np.diag_indices_from(K)] += noise
        L = np.linalg.cholesky(K)
        alpha = np.linalg.solve(K, yn)
        Ks = gp.kernel(X_query, X_all, theta[:-1])
        mean = Ks @ alpha
        v = np.linalg.solve(L, Ks.T)
        var = np.maximum(gp.kernel.diag(X_query, theta[:-1]) - (v**2).sum(0), 1e-12)
        return mean * gp._y_std + gp._y_mean, np.sqrt(var) * gp._y_std

    def test_update_matches_full_refactorization(self, rng):
        def f(X):
            return np.sin(3 * X[:, 0]) + X[:, 1] ** 2

        X0, X1 = rng.random((12, 2)), rng.random((7, 2))
        y0, y1 = f(X0), f(X1)
        gp = GaussianProcess(kernel=Matern52(), seed=0).fit(X0, y0)
        gp.update(X1, y1)
        assert gp.n_observations == 19

        Xq = rng.random((25, 2))
        mean, std = gp.predict(Xq)
        ref_mean, ref_std = self._posterior_reference(
            gp, np.vstack([X0, X1]), np.append(y0, y1), Xq
        )
        assert np.allclose(mean, ref_mean, atol=1e-8)
        assert np.allclose(std, ref_std, atol=1e-6)

    def test_update_one_at_a_time_matches_batch_update(self, rng):
        X0 = rng.random((10, 2))
        y0 = X0.sum(axis=1)
        X1 = rng.random((5, 2))
        y1 = X1.sum(axis=1)
        a = GaussianProcess(kernel=RBF(), seed=1).fit(X0, y0).update(X1, y1)
        b = GaussianProcess(kernel=RBF(), seed=1).fit(X0, y0)
        for x, yv in zip(X1, y1):
            b.update(x[None, :], [yv])
        Xq = rng.random((8, 2))
        for (ma, sa), (mb, sb) in [(a.predict(Xq), b.predict(Xq))]:
            assert np.allclose(ma, mb) and np.allclose(sa, sb)

    def test_update_requires_fit(self):
        with pytest.raises(ValueError):
            GaussianProcess().update(np.zeros((1, 2)), [0.0])

    def test_update_rejects_length_mismatch(self, rng):
        gp = GaussianProcess().fit(rng.random((4, 2)), rng.random(4))
        with pytest.raises(ValueError):
            gp.update(rng.random((2, 2)), [1.0])
