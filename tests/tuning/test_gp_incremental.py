"""Identity suite: pre-allocated GP Cholesky growth vs. rebuild.

``GaussianProcess.update`` now writes appended points into
capacity-doubled backing buffers instead of building an (n+1)² zero
matrix per point.  Pure performance: the published ``_L``/``_X``/``_y``
views — and therefore every posterior — must be bit-identical to the
old rebuild-per-point behaviour, across buffer growth boundaries and
across re-fits that shrink the training set inside a large buffer.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tuning.bo import GaussianProcess, Matern52


def _reference_update(gp, X_new, y_new):
    """The pre-buffer update: rebuild (n+1)-sized arrays per point."""
    theta = gp._theta
    noise = np.exp(theta[-1]) + 1e-10
    from scipy.linalg import solve_triangular
    X, y, L = gp._X.copy(), gp._y.copy(), gp._L.copy()
    for x, yv in zip(np.atleast_2d(X_new), np.ravel(y_new)):
        yn = (yv - gp._y_mean) / gp._y_std
        k_vec = gp.kernel(x[None, :], X, theta[:-1]).ravel()
        b = solve_triangular(L, k_vec, lower=True)
        d = float(gp.kernel.diag(x[None, :], theta[:-1])[0] + noise - b @ b)
        n = len(X)
        L_next = np.zeros((n + 1, n + 1))
        L_next[:n, :n] = L
        L_next[n, :n] = b
        L_next[n, n] = np.sqrt(max(d, 1e-10))
        L = L_next
        X = np.vstack([X, x[None, :]])
        y = np.append(y, yn)
    alpha = solve_triangular(
        L.T, solve_triangular(L, y, lower=True), lower=False)
    return X, y, L, alpha


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 2**31 - 1), st.integers(2, 10), st.integers(1, 40),
       st.integers(1, 4))
def test_buffered_update_bit_identical_to_rebuild(seed, n_fit, n_new, dim):
    rng = np.random.default_rng(seed)
    X = rng.random((n_fit + n_new, dim))
    y = rng.random(n_fit + n_new)
    gp = GaussianProcess(kernel=Matern52(), seed=0)
    gp.fit(X[:n_fit], y[:n_fit], optimize_hyperparams=False)
    X_ref, y_ref, L_ref, alpha_ref = _reference_update(
        gp, X[n_fit:], y[n_fit:])
    # n_new up to 40 from a 16-row initial buffer: crosses at least one
    # capacity-doubling boundary.
    for i in range(n_fit, n_fit + n_new):
        gp.update(X[i:i + 1], y[i:i + 1])
    assert np.array_equal(gp._X, X_ref)
    assert np.array_equal(gp._y, y_ref)
    assert np.array_equal(gp._L, L_ref)
    assert np.array_equal(gp._alpha, alpha_ref)
    Xs = rng.random((8, dim))
    mean, std = gp.predict(Xs)
    gp_ref = GaussianProcess(kernel=Matern52(), seed=0)
    gp_ref.fit(X[:n_fit], y[:n_fit], optimize_hyperparams=False)
    gp_ref.update(X[n_fit:], y[n_fit:])
    mean_ref, std_ref = gp_ref.predict(Xs)
    assert np.array_equal(mean, mean_ref)
    assert np.array_equal(std, std_ref)


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_refit_smaller_inside_big_buffer_leaves_no_stale_state(seed):
    """A big fit then a small fit must not leak old rows into updates."""
    rng = np.random.default_rng(seed)
    X_big = rng.random((30, 3))
    y_big = rng.random(30)
    gp = GaussianProcess(seed=0)
    gp.fit(X_big, y_big, optimize_hyperparams=False)        # 32-row buffer
    X_small = rng.random((4, 3))
    y_small = rng.random(4)
    gp.fit(X_small, y_small, optimize_hyperparams=False)    # reuses buffer
    X_upd = rng.random((3, 3))
    y_upd = rng.random(3)
    gp.update(X_upd, y_upd)
    fresh = GaussianProcess(seed=0)                          # clean buffers
    fresh.fit(X_small, y_small, optimize_hyperparams=False)
    fresh.update(X_upd, y_upd)
    assert np.array_equal(gp._L, fresh._L)
    Xs = rng.random((6, 3))
    assert np.array_equal(gp.predict(Xs)[0], fresh.predict(Xs)[0])
    assert np.array_equal(gp.predict(Xs)[1], fresh.predict(Xs)[1])


def test_views_track_buffer_growth():
    rng = np.random.default_rng(0)
    gp = GaussianProcess(seed=0)
    gp.fit(rng.random((2, 2)), rng.random(2), optimize_hyperparams=False)
    caps = {gp._capacity}
    for _ in range(40):
        gp.update(rng.random((1, 2)), rng.random(1))
        caps.add(gp._capacity)
        assert len(gp._X) == gp.n_observations
        assert gp._L.shape == (gp.n_observations, gp.n_observations)
        # the published views must alias the buffers, not copies
        assert gp._X.base is gp._X_buf
        assert gp._L.base is gp._L_buf
    assert len(caps) > 1          # growth actually crossed a boundary
    assert gp.n_observations == 42
