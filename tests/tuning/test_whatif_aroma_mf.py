"""Tests for the Starfish what-if engine, AROMA, and successive halving."""

import numpy as np
import pytest

from repro.config import Configuration, SPARK_DEFAULTS, spark_core_space
from repro.cloud import Cluster
from repro.core import probe_configuration, signature
from repro.sparksim import SparkSimulator
from repro.tuning import (
    AromaTuner,
    JobProfile,
    KernelRidgeRegressor,
    SimulationObjective,
    WhatIfEngine,
    WorkloadCorpus,
    successive_halving,
    whatif_tune,
)
from repro.workloads import PageRank, Sort, Wordcount


@pytest.fixture
def profile(cluster, simulator):
    config = probe_configuration()
    result = simulator.run(Sort(), 10_000, cluster, config, seed=1)
    return JobProfile.from_execution(result, config, cluster)


class TestWhatIfEngine:
    def test_profile_requires_success(self, cluster, simulator):
        bad = Configuration({**SPARK_DEFAULTS, "spark.executor.memory": 65536})
        result = simulator.run(Wordcount(), 1000, cluster, bad)
        with pytest.raises(ValueError):
            JobProfile.from_execution(result, bad, cluster)

    def test_predicts_profile_point_well(self, cluster, simulator, profile):
        engine = WhatIfEngine(profile)
        predicted = engine.predict(profile.config)
        assert predicted == pytest.approx(profile.runtime_s, rel=0.35)

    def test_data_scaling_roughly_linear(self, profile):
        engine = WhatIfEngine(profile)
        small = engine.predict(profile.config, input_mb=5_000)
        big = engine.predict(profile.config, input_mb=20_000)
        assert 1.5 < big / small < 4.5

    def test_more_slots_predicts_faster(self, profile):
        engine = WhatIfEngine(profile)
        more = profile.config.replace(**{"spark.executor.instances": 16,
                                         "spark.executor.cores": 4})
        assert engine.predict(more) < engine.predict(
            profile.config.replace(**{"spark.executor.instances": 2,
                                      "spark.executor.cores": 2})
        )

    def test_infeasible_config_predicts_inf(self, profile):
        bad = profile.config.replace(**{"spark.executor.memory": 65536})
        assert WhatIfEngine(profile).predict(bad) == float("inf")

    def test_cross_cluster_prediction(self, profile):
        engine = WhatIfEngine(profile)
        bigger = Cluster.of("h1.4xlarge", 8)
        assert engine.predict(profile.config, cluster=bigger) < engine.predict(
            profile.config
        )

    def test_misses_regime_changes(self, cluster, simulator, profile):
        """The documented Starfish weakness: spill cliffs are invisible."""
        engine = WhatIfEngine(profile)
        # Coarse partitions at 5x data: true execution spills massively.
        cliff = profile.config.replace(**{"spark.default.parallelism": 8})
        predicted = engine.predict(cliff, input_mb=50_000)
        actual = simulator.run(Sort(), 50_000, cluster, cliff, seed=3)
        if actual.success:
            # Prediction underestimates the true (spilling) runtime.
            assert predicted < actual.runtime_s

    def test_whatif_tune_executes_few_but_finds_decent(self, cluster):
        objective = SimulationObjective(Sort(), 10_000, cluster=cluster, seed=5)
        space = spark_core_space()
        result = whatif_tune(objective, space, cluster, budget=5, seed=0)
        assert result.n_evaluations == 5
        default_cost = SimulationObjective(Sort(), 10_000, cluster=cluster,
                                           seed=9)(space.default_configuration())
        assert result.best_cost < default_cost


class TestKernelRidge:
    def test_fits_smooth_function(self, rng):
        X = rng.random((80, 2))
        y = np.sin(4 * X[:, 0]) + X[:, 1]
        model = KernelRidgeRegressor(lengthscale=0.4, alpha=1e-3).fit(X, y)
        Xt = rng.random((30, 2))
        rmse = np.sqrt(np.mean((model.predict(Xt) - (np.sin(4 * Xt[:, 0]) + Xt[:, 1])) ** 2))
        assert rmse < 0.15

    def test_validates_params(self):
        with pytest.raises(ValueError):
            KernelRidgeRegressor(lengthscale=0)
        with pytest.raises(ValueError):
            KernelRidgeRegressor(alpha=-1)

    def test_predict_requires_fit(self):
        with pytest.raises(ValueError):
            KernelRidgeRegressor().predict(np.zeros((1, 2)))


class TestAroma:
    def _corpus(self, cluster, simulator):
        """Two graph jobs and one scan job with random-config histories."""
        space = spark_core_space()
        corpus = WorkloadCorpus()
        rng = np.random.default_rng(0)
        for workload, mb in [(PageRank(), 5_000),
                             (PageRank(cpu_scale=1.3), 6_000),
                             (Wordcount(), 20_000)]:
            probe = simulator.run(workload, mb, cluster, probe_configuration(), seed=0)
            history = []
            for i, cfg in enumerate(space.sample_configurations(12, rng)):
                full = probe_configuration().replace(**dict(cfg))
                r = simulator.run(workload, mb, cluster, full, seed=i)
                history.append((Configuration(dict(cfg)), r.effective_runtime()))
            corpus.add(signature(probe), history)
        return corpus

    def test_assigns_target_to_graph_cluster(self, cluster, simulator):
        corpus = self._corpus(cluster, simulator)
        space = spark_core_space()
        target = simulator.run(PageRank(cpu_scale=0.8), 5_000, cluster,
                               probe_configuration(), seed=9)
        tuner = AromaTuner(space, corpus, signature(target), k=2, seed=1)
        # The two pagerank corpus entries share a cluster; wordcount is
        # alone — the target inherits the graph cluster's observations.
        assert tuner.transferred_observations >= 12

    def test_empty_corpus_rejected(self, rng):
        with pytest.raises(ValueError):
            AromaTuner(spark_core_space(), WorkloadCorpus(), np.zeros(11))

    def test_tunes_better_than_start(self, cluster, simulator):
        corpus = self._corpus(cluster, simulator)
        space = spark_core_space()
        target_workload = PageRank(cpu_scale=0.8)
        probe = simulator.run(target_workload, 5_000, cluster,
                              probe_configuration(), seed=9)
        tuner = AromaTuner(space, corpus, signature(probe), k=2, seed=1)
        objective = SimulationObjective(target_workload, 5_000, cluster=cluster, seed=30)
        from repro.tuning import run_tuner

        result = run_tuner(tuner, objective, budget=12)
        assert result.best_cost < probe.runtime_s


class TestSuccessiveHalving:
    @staticmethod
    def _objective(cluster):
        simulator = SparkSimulator()
        calls = {"n": 0}

        def objective_at(config, fidelity):
            calls["n"] += 1
            iterations = max(1, int(round(6 * fidelity)))
            workload = PageRank(iterations=iterations)
            full = Configuration({**SPARK_DEFAULTS, **dict(config)})
            result = simulator.run(workload, 5_000, cluster, full,
                                   seed=calls["n"])
            return result.effective_runtime()

        return objective_at

    def test_promotes_and_finds_good_config(self, cluster):
        space = spark_core_space()
        result = successive_halving(self._objective(cluster), space,
                                    n_configs=18, eta=3, seed=0)
        assert result.rung_trace[0][1] == 18
        assert result.rung_trace[-1][1] < 18
        # Winner beats the default config at full fidelity.
        default_cost = self._objective(cluster)(
            space.default_configuration(), 1.0
        )
        assert result.best_cost < default_cost

    def test_spends_most_executions_cheaply(self, cluster):
        space = spark_core_space()
        result = successive_halving(self._objective(cluster), space,
                                    n_configs=18, eta=3, min_fidelity=0.25, seed=1)
        # 18 at the lowest rung vs ~2-6 at the top.
        assert result.rung_trace[0][1] >= 3 * result.rung_trace[-1][1]
        assert result.total_executions >= 24

    def test_validates_inputs(self, cluster):
        space = spark_core_space()
        obj = self._objective(cluster)
        with pytest.raises(ValueError):
            successive_halving(obj, space, n_configs=2, eta=3)
        with pytest.raises(ValueError):
            successive_halving(obj, space, eta=1)
        with pytest.raises(ValueError):
            successive_halving(obj, space, min_fidelity=0)
