"""Tests for SimulationObjective: resolution, metrics, repair, ledger."""

import pytest

from repro.cloud import Cluster, CostLedger, InterferenceModel
from repro.config import Configuration, cloud_space, joint_space, spark_core_space
from repro.tuning import SimulationObjective
from repro.workloads import Sort, Wordcount


class TestResolve:
    def test_disc_space_uses_fixed_cluster(self, cluster):
        obj = SimulationObjective(Wordcount(), 20_000, cluster=cluster)
        resolved_cluster, config = obj.resolve(
            spark_core_space().default_configuration()
        )
        assert resolved_cluster is cluster
        # Missing parameters are filled from Spark defaults.
        assert "spark.io.compression.codec" in config

    def test_cloud_params_build_cluster(self):
        obj = SimulationObjective(Wordcount(), 20_000)
        space = cloud_space("aws")
        cfg = Configuration({"cloud.instance_type": "m5.xlarge",
                             "cloud.cluster_size": 6})
        resolved, spark_config = obj.resolve(cfg)
        assert resolved.instance.name == "m5.xlarge"
        assert resolved.count == 6
        # Cloud keys never leak into the Spark configuration.
        assert "cloud.instance_type" not in spark_config

    def test_joint_space_resolves_both(self, cluster):
        obj = SimulationObjective(Wordcount(), 20_000)
        joint = joint_space(spark_core_space(), provider="aws")
        cfg = joint.default_configuration()
        resolved, spark_config = obj.resolve(cfg)
        assert resolved.count == cfg["cloud.cluster_size"]
        assert spark_config["spark.executor.memory"] == cfg["spark.executor.memory"]

    def test_no_cluster_no_cloud_params_raises(self):
        obj = SimulationObjective(Wordcount(), 20_000)
        with pytest.raises(ValueError):
            obj(spark_core_space().default_configuration())

    def test_base_config_overrides_defaults(self, cluster):
        obj = SimulationObjective(
            Wordcount(), 20_000, cluster=cluster,
            base_config={"spark.serializer": "kryo"},
        )
        _, config = obj.resolve(Configuration({"spark.executor.cores": 2}))
        assert config["spark.serializer"] == "kryo"
        assert config["spark.executor.cores"] == 2


class TestEvaluation:
    def test_fresh_seed_per_call(self, cluster):
        obj = SimulationObjective(Sort(), 5_000, cluster=cluster, seed=3)
        cfg = spark_core_space().default_configuration()
        assert obj(cfg) != obj(cfg)

    def test_price_metric_scales_with_cluster_cost(self):
        big = Cluster.of("m5.4xlarge", 16)
        small = Cluster.of("m5.xlarge", 4)
        cfg = spark_core_space().default_configuration()
        cost_big = SimulationObjective(Wordcount(), 20_000, cluster=big,
                                       metric="price", seed=1)(cfg)
        runtime_big = SimulationObjective(Wordcount(), 20_000, cluster=big,
                                          seed=1)(cfg)
        assert cost_big == pytest.approx(big.cost_of(runtime_big), rel=1e-6)
        cost_small = SimulationObjective(Wordcount(), 20_000, cluster=small,
                                         metric="price", seed=1)(cfg)
        # Default config wastes the big cluster: small is cheaper per run.
        assert cost_small < cost_big

    def test_invalid_metric_rejected(self, cluster):
        with pytest.raises(ValueError):
            SimulationObjective(Wordcount(), 100, cluster=cluster, metric="joy")

    def test_ledger_charged_per_call(self, cluster):
        ledger = CostLedger()
        obj = SimulationObjective(Wordcount(), 20_000, cluster=cluster, ledger=ledger)
        cfg = spark_core_space().default_configuration()
        obj(cfg)
        obj(cfg)
        assert ledger.tuning_runs == 2
        assert ledger.tuning_cost > 0

    def test_interference_slows_runs(self, cluster):
        calm = SimulationObjective(Sort(), 10_000, cluster=cluster, seed=5)
        noisy = SimulationObjective(
            Sort(), 10_000, cluster=cluster, seed=5,
            interference=InterferenceModel(level=5.0, seed=1),
        )
        cfg = spark_core_space().default_configuration()
        calm_costs = [calm(cfg) for _ in range(5)]
        noisy_costs = [noisy(cfg) for _ in range(5)]
        assert sum(noisy_costs) > sum(calm_costs)

    def test_last_result_exposed(self, cluster):
        obj = SimulationObjective(Wordcount(), 20_000, cluster=cluster)
        assert obj.last_result is None
        obj(spark_core_space().default_configuration())
        assert obj.last_result is not None
        assert obj.last_result.workload == "wordcount"


class TestRepair:
    def test_repair_rescues_unsatisfiable_sizing(self):
        tiny_nodes = Cluster.of("m5.large", 4)  # 2 vCPU / 8 GiB nodes
        oversized = Configuration({
            "spark.executor.instances": 4, "spark.executor.cores": 8,
            "spark.executor.memory": 32768,
        })
        raw = SimulationObjective(Wordcount(), 5_000, cluster=tiny_nodes, seed=1)
        raw(oversized)
        assert not raw.last_result.success

        repaired = SimulationObjective(Wordcount(), 5_000, cluster=tiny_nodes,
                                       repair=True, seed=1)
        repaired(oversized)
        assert repaired.last_result.success

    def test_repair_leaves_feasible_configs_alone(self, cluster):
        obj = SimulationObjective(Wordcount(), 5_000, cluster=cluster, repair=True)
        cfg = spark_core_space().default_configuration()
        _, resolved = obj.resolve(cfg)
        for name in cfg:
            assert resolved[name] == cfg[name]
