"""Behavioural tests for every tuner against synthetic objectives.

Synthetic objectives are cheap and have known optima, so we can assert
convergence behaviour without simulator noise.
"""

import numpy as np
import pytest

from repro.config import (
    CategoricalParameter,
    ConfigurationSpace,
    FloatParameter,
    IntParameter,
    cloud_space,
)
from repro.tuning import (
    AdditiveGPTuner,
    BayesOptTuner,
    BestConfigTuner,
    DACTuner,
    ErnestModel,
    ErnestTuner,
    GeneticTuner,
    GridSearchTuner,
    HillClimbTuner,
    LatinHypercubeTuner,
    QLearningTuner,
    RandomSearchTuner,
    TreeTuner,
    TuningRule,
    run_tuner,
)


@pytest.fixture
def toy_space():
    return ConfigurationSpace([
        FloatParameter("x", 0.0, 1.0, default=0.1),
        FloatParameter("y", 0.0, 1.0, default=0.1),
        IntParameter("n", 1, 100, default=10),
        CategoricalParameter("mode", ["slow", "fast"]),
    ], name="toy")


def quadratic(config) -> float:
    """Min at x=0.7, y=0.3, n=50, mode=fast; optimum = 1.0."""
    penalty = 0.0 if config["mode"] == "fast" else 0.5
    return (
        1.0
        + 5 * (config["x"] - 0.7) ** 2
        + 5 * (config["y"] - 0.3) ** 2
        + ((config["n"] - 50) / 50) ** 2
        + penalty
    )


ALL_TUNERS = [
    lambda s: RandomSearchTuner(s, seed=3),
    lambda s: GridSearchTuner(s, resolution=3, seed=3),
    lambda s: LatinHypercubeTuner(s, batch_size=8, seed=3),
    lambda s: HillClimbTuner(s, seed=3),
    lambda s: BayesOptTuner(s, seed=3, n_init=6),
    lambda s: AdditiveGPTuner(s, seed=3, n_init=6),
    lambda s: GeneticTuner(s, seed=3, population_size=8),
    lambda s: DACTuner(s, seed=3, n_init=6, ga_generations=4, n_trees=8),
    lambda s: TreeTuner(s, seed=3, n_init=6, n_trees=8),
    lambda s: BestConfigTuner(s, seed=3, samples_per_round=8),
    lambda s: QLearningTuner(s, seed=3),
]


class TestTunerContracts:
    @pytest.mark.parametrize("factory", ALL_TUNERS)
    def test_suggestions_are_valid(self, factory, toy_space):
        tuner = factory(toy_space)
        for _ in range(25):
            config = tuner.suggest()
            toy_space.validate(config)
            tuner.observe(config, quadratic(config))

    @pytest.mark.parametrize("factory", ALL_TUNERS)
    def test_best_tracks_minimum(self, factory, toy_space):
        tuner = factory(toy_space)
        result = run_tuner(tuner, quadratic, budget=20)
        assert result.best_cost == min(o.cost for o in result.history)
        assert quadratic(result.best_config) == pytest.approx(result.best_cost)

    @pytest.mark.parametrize("factory", ALL_TUNERS)
    def test_reproducible_by_seed(self, factory, toy_space):
        r1 = run_tuner(factory(toy_space), quadratic, budget=15)
        r2 = run_tuner(factory(toy_space), quadratic, budget=15)
        assert [o.cost for o in r1.history] == [o.cost for o in r2.history]

    def test_observe_rejects_nan(self, toy_space):
        tuner = RandomSearchTuner(toy_space)
        with pytest.raises(ValueError):
            tuner.observe(toy_space.default_configuration(), float("nan"))

    def test_run_tuner_rejects_zero_budget(self, toy_space):
        with pytest.raises(ValueError):
            run_tuner(RandomSearchTuner(toy_space), quadratic, budget=0)


class TestConvergence:
    def test_bo_beats_random_on_budget(self, toy_space):
        budget = 35
        random_best = np.mean([
            run_tuner(RandomSearchTuner(toy_space, seed=s), quadratic, budget).best_cost
            for s in range(5)
        ])
        bo_best = np.mean([
            run_tuner(BayesOptTuner(toy_space, seed=s, n_init=8), quadratic, budget).best_cost
            for s in range(5)
        ])
        assert bo_best < random_best

    def test_bo_near_optimum(self, toy_space):
        result = run_tuner(BayesOptTuner(toy_space, seed=0, n_init=8), quadratic, 40)
        assert result.best_cost < 1.15  # optimum is 1.0

    def test_hillclimb_improves_over_start(self, toy_space):
        tuner = HillClimbTuner(toy_space, seed=0)
        result = run_tuner(tuner, quadratic, budget=60)
        start_cost = quadratic(toy_space.default_configuration())
        assert result.best_cost < start_cost

    def test_genetic_improves_over_generations(self, toy_space):
        result = run_tuner(GeneticTuner(toy_space, seed=1, population_size=10),
                           quadratic, budget=60)
        gen1 = min(o.cost for o in result.history[:10])
        assert result.best_cost <= gen1

    def test_bestconfig_shrinks_radius_on_improvement(self, toy_space):
        tuner = BestConfigTuner(toy_space, seed=0, samples_per_round=8)
        run_tuner(tuner, quadratic, budget=32)
        assert tuner.current_radius < 1.0

    def test_incumbent_curve_monotone(self, toy_space):
        result = run_tuner(RandomSearchTuner(toy_space, seed=2), quadratic, 30)
        curve = result.incumbent_curve()
        assert all(a >= b for a, b in zip(curve, curve[1:]))

    def test_evaluations_to_within(self, toy_space):
        result = run_tuner(BayesOptTuner(toy_space, seed=0, n_init=8), quadratic, 40)
        n = result.evaluations_to_within(0.2, reference_best=1.0)
        assert n is not None and n <= 40
        assert result.evaluations_to_within(1e-9, reference_best=0.0) is None


class TestHillClimbRules:
    def test_rules_respected(self, toy_space):
        rules = (TuningRule("x", low=0.5),)
        tuner = HillClimbTuner(toy_space, seed=1, rules=rules)
        # After the start point, every proposal keeps x in the allowed band.
        tuner.observe(tuner.suggest(), 5.0)
        for _ in range(30):
            config = tuner.suggest()
            tuner.observe(config, quadratic(config))
        xs = [o.config["x"] for o in tuner.history[1:]]
        # Moves along x never go below the rule bound (restarts excepted:
        # restart points are random samples, so filter to near-default walks).
        assert any(x >= 0.5 for x in xs)

    def test_unknown_rule_parameter_rejected(self, toy_space):
        with pytest.raises(ValueError):
            HillClimbTuner(toy_space, rules=(TuningRule("zz", low=0.1),))

    def test_rule_validates_range(self):
        with pytest.raises(ValueError):
            TuningRule("x", low=0.9, high=0.1)


class TestGridSearch:
    def test_grid_size(self, toy_space):
        tuner = GridSearchTuner(toy_space, resolution=3)
        # 3 floats x 3 ints x 2 cats... x:3, y:3, n:3, mode:2
        assert tuner.grid_size() == 3 * 3 * 3 * 2

    def test_exhausts_then_falls_back_to_random(self, toy_space):
        tuner = GridSearchTuner(toy_space, resolution=2)
        size = tuner.grid_size()
        seen = [tuner.suggest() for _ in range(size + 5)]
        assert len(set(seen[:size])) == size  # distinct grid points


class TestQLearning:
    def test_learns_to_avoid_bad_direction(self, toy_space):
        # On a smooth bowl, Q-learning should at least improve on default.
        result = run_tuner(QLearningTuner(toy_space, seed=4, epsilon=0.3),
                           quadratic, budget=50)
        assert result.best_cost < quadratic(toy_space.default_configuration())


class TestAdditiveGP:
    def test_importances_identify_dominant_parameter(self, toy_space):
        def x_only(config):
            return 10 * (config["x"] - 0.5) ** 2 + 1.0

        tuner = AdditiveGPTuner(toy_space, seed=0, n_init=10, log_costs=False)
        run_tuner(tuner, x_only, budget=30)
        imp = tuner.parameter_importances()
        assert imp["x"] == max(imp.values())
        assert sum(imp.values()) == pytest.approx(1.0)

    def test_effect_curve_shape(self, toy_space):
        tuner = AdditiveGPTuner(toy_space, seed=0, n_init=10, log_costs=False)
        run_tuner(tuner, quadratic, budget=30)
        values, costs = tuner.effect_curve("x", resolution=9)
        assert len(values) == len(costs) == 9
        # The fitted effect should dip near the optimum x=0.7.
        assert costs[np.abs(np.array(values) - 0.7).argmin()] <= costs[0] + 0.5


class TestErnest:
    def test_model_recovers_scaling_law(self):
        rng = np.random.default_rng(0)
        machines = rng.integers(2, 20, 40).astype(float)
        data = rng.uniform(1000, 10000, 40)
        runtimes = 5 + 0.02 * data / machines + 3 * np.log2(machines) + 0.5 * machines
        model = ErnestModel().fit(machines, data, runtimes)
        pred = model.predict([10.0], [5000.0])
        truth = 5 + 0.02 * 500 + 3 * np.log2(10) + 5
        assert pred[0] == pytest.approx(truth, rel=0.05)

    def test_model_needs_two_samples(self):
        with pytest.raises(ValueError):
            ErnestModel().fit([4.0], [100.0], [10.0])

    def test_predict_before_fit(self):
        with pytest.raises(ValueError):
            ErnestModel().predict([4.0], [100.0])

    def test_tuner_requires_cloud_space(self, toy_space):
        with pytest.raises(ValueError):
            ErnestTuner(toy_space, input_mb=1000)

    def test_tuner_runs_plan_then_exploits(self):
        space = cloud_space("aws")

        def objective(config):
            # Runtime improves with cluster size but with machine overhead.
            n = config["cloud.cluster_size"]
            return 1000.0 / n + 8.0 * n

        tuner = ErnestTuner(space, input_mb=5000, seed=0,
                            n_instance_types=2, sizes_per_type=3)
        result = run_tuner(tuner, objective, budget=15)
        # optimum at n ~ sqrt(1000/8) ~ 11 -> cost ~ 179
        assert result.best_cost < 250
