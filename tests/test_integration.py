"""Cross-module integration scenarios."""

import numpy as np
import pytest

from repro.cloud import Cluster
from repro.config import joint_space, spark_core_space
from repro.core import (
    SLOMetric,
    TuningService,
    TuningSLO,
    load_history,
    probe_configuration,
    save_history,
    signature,
)
from repro.tuning import BayesOptTuner, SimulationObjective, run_tuner
from repro.workloads import Aggregation, PageRank, Scan, get_workload


class TestJointTuning:
    def test_joint_space_end_to_end(self):
        """Tuning cloud + DISC dimensions in one model (Section I)."""
        space = joint_space(spark_core_space(), provider="aws",
                            min_nodes=2, max_nodes=10)
        objective = SimulationObjective(Aggregation(), 8_000, metric="price",
                                        seed=3)
        result = run_tuner(BayesOptTuner(space, seed=3, n_init=10),
                           objective, budget=25)
        best = result.best_config
        assert "cloud.instance_type" in best
        assert best["spark.executor.memory"] >= 512
        # A joint optimum respects the vCPU / executor-core interaction.
        cluster, config = objective.resolve(best)
        assert config["spark.executor.cores"] <= cluster.instance.vcpus * 2

    def test_price_vs_runtime_tradeoff(self):
        """Section IV.D: 'results quickly no matter the cost, or wait?'"""
        workload = get_workload("sort")
        space = joint_space(spark_core_space(), provider="aws",
                            min_nodes=2, max_nodes=12)
        outcomes = {}
        for metric in ("price", "runtime"):
            objective = SimulationObjective(workload, 15_000, metric=metric, seed=8)
            result = run_tuner(BayesOptTuner(space, seed=8, n_init=10),
                               objective, budget=20)
            cluster, config = objective.resolve(result.best_config)
            runtime_obj = SimulationObjective(workload, 15_000, cluster=cluster, seed=99)
            runtime = runtime_obj(config)
            outcomes[metric] = {
                "cost": cluster.cost_of(runtime),
                "runtime": runtime,
                "nodes": cluster.count,
            }
        # The runtime-optimized deployment is at least as fast; the
        # price-optimized one at least as cheap.
        assert outcomes["runtime"]["runtime"] <= outcomes["price"]["runtime"] * 1.3
        assert outcomes["price"]["cost"] <= outcomes["runtime"]["cost"] * 1.3


class TestServiceScenarios:
    def test_cloud_metric_runtime_picks_faster_cluster(self):
        fast = TuningService(provider="aws", seed=5)
        dep_fast = fast.submit("t", get_workload("sort"), 15_000,
                               cloud_budget=8, disc_budget=8,
                               cloud_metric="runtime")
        cheap = TuningService(provider="aws", seed=5)
        dep_cheap = cheap.submit("t", get_workload("sort"), 15_000,
                                 cloud_budget=8, disc_budget=8,
                                 cloud_metric="price")
        assert dep_fast.cluster.price_per_hour >= dep_cheap.cluster.price_per_hour * 0.8

    def test_history_survives_service_restart(self, tmp_path):
        """The provider story: history persists across sessions."""
        service = TuningService(provider="aws", seed=13)
        service.submit("acme", PageRank(), 5_000, cloud_budget=6, disc_budget=10)
        path = tmp_path / "provider.json"
        save_history(service.store, path)

        reborn = TuningService(provider="aws", seed=14)
        reborn.store = load_history(path)
        dep = reborn.submit("newco", PageRank(cpu_scale=1.2), 5_000,
                            cloud_budget=6, disc_budget=8)
        # Transfer found acme's history through the persisted store.
        assert any("acme" in s for s in dep.transferred_from)

    def test_slo_within_best_similar(self):
        service = TuningService(provider="aws", seed=21)
        service.submit("a", Scan(), 15_000, cloud_budget=6, disc_budget=8)
        slo = TuningSLO(SLOMetric.WITHIN_BEST_SIMILAR, target_fraction=50.0)
        dep = service.submit("b", Scan(cpu_scale=1.1), 15_000, slo=slo,
                             cloud_budget=6, disc_budget=8)
        assert dep.slo_report is not None
        assert dep.slo_report.reference_runtime_s > 0


class TestCharacterizationPipeline:
    def test_new_workloads_characterize_distinctly(self, cluster, simulator):
        """Scan (IO-bound) and Aggregation (shuffle-bound) separate."""
        scan_sig = signature(simulator.run(Scan(), 15_000, cluster,
                                           probe_configuration(), seed=1))
        agg_sig = signature(simulator.run(Aggregation(), 8_000, cluster,
                                          probe_configuration(), seed=1))
        from repro.core import FEATURE_NAMES

        idx = FEATURE_NAMES.index("shuffle_ratio")
        assert agg_sig[idx] > 5 * max(scan_sig[idx], 1e-9)
