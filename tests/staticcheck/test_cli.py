"""CLI behaviour: exit codes, JSON output, rule filtering, domain toggle."""

import json
from pathlib import Path

from repro.staticcheck.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]
PACKAGE = REPO_ROOT / "src" / "repro"
FIXTURES = Path(__file__).parent / "fixtures"


def test_clean_package_exits_zero(capsys):
    assert main([str(PACKAGE)]) == 0
    out = capsys.readouterr().out
    assert "clean" in out


def test_fixture_exits_nonzero_with_rule_id(capsys):
    code = main(["--no-domain", str(FIXTURES / "rs001_unseeded_rng.py")])
    assert code == 1
    out = capsys.readouterr().out
    assert "RS001" in out


def test_every_fixture_fails_the_cli(capsys):
    for fixture in sorted(FIXTURES.glob("*.py")):
        assert main(["--no-domain", str(fixture)]) == 1, fixture.name
        out = capsys.readouterr().out
        assert fixture.stem[:5].upper() in out


def test_json_format_is_machine_readable(capsys):
    code = main(["--no-domain", "--format", "json",
                 str(FIXTURES / "rs004_float_eq.py")])
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["clean"] is False
    assert payload["errors"] == 3
    assert {f["rule"] for f in payload["findings"]} == {"RS004"}
    assert [f["line"] for f in payload["findings"]] == [5, 6, 7]


def test_json_suppressions_carry_rule_counts_and_locations(capsys):
    """The suppression audit trail survives serialization: per-rule
    counts plus the exact silenced locations, not just an aggregate."""
    code = main(["--no-domain", "--format", "json",
                 str(FIXTURES / "rs004_float_eq.py")])
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    suppressed = payload["suppressed"]
    assert suppressed["total"] == 1
    assert suppressed["by_rule"] == {"RS004": 1}
    assert len(suppressed["locations"]) == 1
    loc = suppressed["locations"][0]
    assert loc["rule"] == "RS004"
    assert loc["path"].endswith("rs004_float_eq.py")
    assert isinstance(loc["line"], int)


def test_rule_filter(capsys):
    code = main(["--no-domain", "--rules", "RS002",
                 str(FIXTURES / "rs001_unseeded_rng.py")])
    assert code == 0
    capsys.readouterr()


def test_unknown_rule_exits_two(capsys):
    assert main(["--rules", "RS999", str(PACKAGE)]) == 2
    assert "RS999" in capsys.readouterr().err


def test_missing_path_exits_two(capsys):
    assert main(["definitely/not/a/path"]) == 2
    capsys.readouterr()


def test_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("RS001", "RS002", "RS003", "RS004", "RS005", "RS006"):
        assert rule_id in out


def test_list_rules_covers_every_family(capsys):
    """The unified registry serves all five catalogues in one listing."""
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("RS001", "RD001", "RD007", "RF001", "RF005",
                    "RC001", "RC005", "RA001", "RA006"):
        assert rule_id in out, rule_id
    assert "interprocedural (call graph + inferred lock model)" in out
    assert "interprocedural (call graph + hot-path table)" in out


def test_concurrency_flag_runs_the_rc_pass(capsys):
    code = main(["--no-domain", "--concurrency", "--no-cache",
                 str(FIXTURES / "rc001_pkg")])
    assert code == 1
    out = capsys.readouterr().out
    assert "RC001" in out
    assert "lock model: 1 lock(s)" in out


def test_rc_rule_id_implicitly_enables_the_concurrency_pass(capsys):
    code = main(["--no-domain", "--rules", "RC005", "--no-cache",
                 str(FIXTURES / "rc005_pkg")])
    assert code == 1
    out = capsys.readouterr().out
    assert "RC005" in out
    # and a narrowed RC set really narrows: RC001 sees nothing there
    code = main(["--no-domain", "--rules", "RC001", "--no-cache",
                 str(FIXTURES / "rc005_pkg")])
    assert code == 0
    capsys.readouterr()


def test_arrays_flag_runs_the_ra_pass(capsys):
    code = main(["--no-domain", "--arrays", "--no-cache",
                 str(FIXTURES / "ra001_pkg")])
    assert code == 1
    out = capsys.readouterr().out
    assert "RA001" in out
    assert "array interp:" in out


def test_ra_rule_id_implicitly_enables_the_arrays_pass(capsys):
    code = main(["--no-domain", "--rules", "RA002", "--no-cache",
                 str(FIXTURES / "ra002_pkg")])
    assert code == 1
    out = capsys.readouterr().out
    assert "RA002" in out
    # and a narrowed RA set really narrows: RA001 sees nothing there
    code = main(["--no-domain", "--rules", "RA001", "--no-cache",
                 str(FIXTURES / "ra002_pkg")])
    assert code == 0
    capsys.readouterr()


def test_sarif_format_from_the_cli(capsys):
    code = main(["--no-domain", "--arrays", "--no-cache",
                 "--format", "sarif", str(FIXTURES / "ra001_pkg")])
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == "2.1.0"
    results = payload["runs"][0]["results"]
    assert {row["ruleId"] for row in results} == {"RA001"}


def test_mixed_family_rule_spec(capsys):
    """One --rules spec can name ids from several families at once."""
    code = main(["--no-domain", "--rules", "RS001,RC001", "--no-cache",
                 str(FIXTURES / "rc001_pkg")])
    assert code == 1
    out = capsys.readouterr().out
    assert "RC001" in out


def test_unknown_rc_rule_exits_two(capsys):
    assert main(["--rules", "RC999", str(PACKAGE)]) == 2
    assert "RC999" in capsys.readouterr().err


def test_domain_validation_runs_by_default(capsys):
    """Linting the clean package with domain checks on still exits 0."""
    assert main([str(PACKAGE)]) == 0
    capsys.readouterr()
