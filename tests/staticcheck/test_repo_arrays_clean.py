"""The array-program gate: ``src/repro`` is clean under RA001-RA006.

Same contract as the flow/concurrency gates: every genuine finding the
pass surfaced on arrival was either fixed or carries a per-line
``# staticcheck: ignore[RAxxx]`` marker backed by a reasoned row in
:mod:`repro.staticcheck.waivers` — this gate reads its expected counts
from that single inventory, so the markers, the reasons, and the pins
cannot drift apart.

The health checks pin the hot-path table's resolution and the
interpreter's coverage, because a rename that empties the hot set (or
an interpreter regression that stops producing facts) would make the
perf rules silently vacuous while the gate still shows green.
"""

from pathlib import Path

from repro.staticcheck import (
    build_call_graph,
    expected_by_rule,
    lint_arrays,
    reason_for,
    resolve_hot_functions,
)

REPO_ROOT = Path(__file__).resolve().parents[2]
PACKAGE = REPO_ROOT / "src" / "repro"


def _report():
    return lint_arrays([str(PACKAGE)])


def test_repo_arrays_clean():
    report = _report()
    pretty = "\n".join(f.format() for f in report.result.sorted_findings())
    assert report.result.findings == [], f"array violations:\n{pretty}"


def test_suppressions_match_the_waiver_inventory():
    report = _report()
    assert report.result.suppressed_by_rule() == expected_by_rule("RA"), (
        "the RA suppression inventory changed; update "
        "repro/staticcheck/waivers.py only alongside a justified "
        "per-line ignore"
    )
    for finding in report.result.suppressed:
        assert reason_for(finding.rule_id, finding.path) is not None, (
            f"suppressed {finding.rule_id} at {finding.path}:"
            f"{finding.line} has no waiver inventory row"
        )


def test_hot_path_table_resolves_the_profiled_surfaces():
    graph = build_call_graph([str(PACKAGE)])
    hot, roots = resolve_hot_functions(graph)
    # every declared surface must still match a real function: a rename
    # that drops a root would quietly stop linting that phase
    assert len(roots) >= 16, sorted(roots)
    for fragment in (
        "BayesOptTuner.suggest", "SparkSimulator.run_batch",
        "compute_stage_cost_batch", "SignatureIndex.find_similar",
        "shm.encode_configs", "shm.decode_configs",
    ):
        assert any(q.endswith(fragment) for q in roots), (fragment,
                                                          sorted(roots))
    # the closure must reach well beyond the roots — the helpers the
    # hot functions call are where hidden copies actually hide
    assert len(hot) > len(roots) * 3, (len(hot), len(roots))
    phases = set(hot.values())
    assert phases == {"suggest", "evaluate", "similarity", "shm-codec"}


def test_interpreter_covers_the_package():
    report = _report()
    arr = report.stats["arrays"]
    assert arr["functions_interpreted"] > 500, arr
    assert arr["hot_functions"] >= 50, arr
    assert arr["hot_roots"] >= 16, arr
