"""Entry-point module (segment "engine" puts it in RF001 scope)."""

from .noise import sample_noise


def evaluate(n):
    return float(sum(sample_noise(n)))
