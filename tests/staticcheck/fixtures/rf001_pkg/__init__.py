"""RF001 fixture: an unseeded RNG two calls deep behind an entry point."""
