"""Helper layer: the RNG construction the entry point reaches."""

import numpy as np


def _make_generator():
    return np.random.default_rng()


def sample_noise(n):
    gen = _make_generator()
    return gen.normal(size=n)
