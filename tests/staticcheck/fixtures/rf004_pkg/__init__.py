"""RF004 fixture: a swallowed exception inside engine dispatch."""
