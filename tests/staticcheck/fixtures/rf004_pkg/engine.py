"""Dispatch module (segment "engine" puts its handlers in RF004 scope)."""


def dispatch(jobs):
    out = []
    for job in jobs:
        out.append(_attempt(job))
    return out


def _attempt(job):
    try:
        return job()
    except Exception:
        pass
    return None
