"""Segment lifecycles: never-released, exception-exposed, and unbound."""

from multiprocessing import shared_memory


def _digest(payload):
    return sum(payload) % 251


def stage_payload(payload):
    shm = shared_memory.SharedMemory(create=True, size=len(payload))
    shm.buf[: len(payload)] = payload
    return shm.name


def publish(payload):
    seg = shared_memory.SharedMemory(create=True, size=1024)
    checksum = _digest(payload)
    seg.close()
    return checksum


def warm_cache():
    shared_memory.SharedMemory(create=True, size=64)


def roundtrip(payload):
    seg = shared_memory.SharedMemory(create=True, size=len(payload))
    try:
        seg.buf[: len(payload)] = payload
        return bytes(seg.buf[: len(payload)])
    finally:
        seg.close()
        seg.unlink()


def _fresh_segment(size):
    seg = shared_memory.SharedMemory(create=True, size=size)
    return seg


def borrow(size):
    seg = _fresh_segment(size)
    seg.buf[0] = 1
    return seg.name
