"""RC004 fixture: shared-memory segments leaking on some or all paths."""
