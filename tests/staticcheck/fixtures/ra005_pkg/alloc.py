"""RA005 fixture: loop-invariant allocation and quadratic growth."""

import numpy as np


def repeated_scratch(n: int) -> float:
    acc = 0.0
    for _ in range(n):
        scratch = np.zeros(16)
        acc = acc + float(scratch[0])
    return acc


def growing(n: int, noise: np.ndarray) -> np.ndarray:
    acc = np.zeros(1)
    for _ in range(n):
        acc = np.concatenate([acc, noise])
    return acc


def per_step(n: int) -> float:
    acc = 0.0
    for i in range(n):
        row = np.full(4, float(i))
        acc = acc + float(row[0])
    return acc
