"""Two locks taken in both orders, and a non-reentrant re-acquisition."""

import threading


class Transfer:
    def __init__(self):
        self._incoming = threading.Lock()
        self._outgoing = threading.Lock()
        self.moved = 0

    def debit(self, amount):
        with self._incoming:
            with self._outgoing:
                self.moved += amount

    def audit_sweep(self):
        with self._outgoing:
            with self._incoming:
                return self.moved

    def reconcile(self):
        with self._incoming:
            with self._incoming:
                return self.moved


class Recount:
    def __init__(self):
        self._guard = threading.RLock()
        self.n = 0

    def bump(self):
        with self._guard:
            with self._guard:
                self.n += 1
