"""RC005 fixture: an AB/BA lock inversion plus a self-deadlock."""
