"""Known-bad fixture for RS006: cache-key completeness and purity."""

from dataclasses import dataclass
from typing import ClassVar


@dataclass(frozen=True)
class BadRequest:
    workload: str
    size: float
    seed: int
    attempt: int = 0

    _cache_key_excluded: ClassVar[tuple[str, ...]] = ("attempt", "ghost")

    def cache_key(self) -> tuple:
        return (self.workload, self.seed, self.attempt)


@dataclass(frozen=True)
class GoodRequest:
    workload: str
    seed: int
    attempt: int = 0

    _cache_key_excluded: ClassVar[tuple[str, ...]] = ("attempt",)

    def cache_key(self) -> tuple:
        return (self.workload, self.seed)


@dataclass(frozen=True)
class SuppressedRequest:
    workload: str
    debug_note: str = ""  # staticcheck: ignore[RS006] -- fixture: display-only field

    def cache_key(self) -> tuple:
        return (self.workload,)
