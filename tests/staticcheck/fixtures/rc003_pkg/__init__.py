"""RC003 fixture: blocking calls reachable from an async entry point."""
