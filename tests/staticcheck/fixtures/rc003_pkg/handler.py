"""An async front door that blocks the loop two helpers down."""

import asyncio
import threading
import time

_LOCK = threading.Lock()


async def handle(payload):
    await asyncio.sleep(0)
    loop = asyncio.get_running_loop()
    await loop.run_in_executor(None, lambda: time.sleep(0.01))
    _stage(payload)
    return _finish(payload)


def _stage(payload):
    time.sleep(0.01)
    _LOCK.acquire()
    try:
        return payload
    finally:
        _LOCK.release()


def _finish(payload):
    with open("/tmp/rc003.txt", "w") as fh:
        fh.write(str(payload))
    return payload
