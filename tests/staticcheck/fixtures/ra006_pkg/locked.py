"""RA006 fixture: expensive array work and IO under a held lock."""

import threading

import numpy as np


class Index:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._block = np.zeros((8, 4))

    def ranked(self) -> np.ndarray:
        with self._lock:
            return np.argsort(self._block.sum(axis=1))

    def snapshot(self, path: str) -> None:
        with self._lock:
            with open(path, "w") as fh:
                fh.write("ok")
