"""RF005 fixture: a scalar/batch pair whose leaf sets diverge."""
