"""Whitelisted cost/effect leaves the paired implementations share."""


def gc_fraction(occupancy):
    return min(0.3, occupancy * 0.1)


def spill_outcome(data_mb, budget_mb):
    return max(0.0, data_mb - budget_mb)
