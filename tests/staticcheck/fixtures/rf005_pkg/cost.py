"""The batch twin forgets the spill leaf the scalar path applies."""

from .leaves import gc_fraction, spill_outcome


def compute_stage_cost(data_mb, budget_mb, occupancy):
    base = data_mb + spill_outcome(data_mb, budget_mb)
    return base * (1.0 + gc_fraction(occupancy))


def compute_stage_cost_batch(data_mb_list, budget_mb, occupancy):
    factor = 1.0 + gc_fraction(occupancy)
    return [mb * factor for mb in data_mb_list]
