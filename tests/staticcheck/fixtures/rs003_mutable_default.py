"""Known-bad fixture for RS003: mutable default arguments."""

from collections import OrderedDict


def bad_list(items=[]):
    return items


def bad_dict(mapping={}):
    return mapping


def bad_call(bag=set()):
    return bag


def bad_ordered(table=OrderedDict()):
    return table


def bad_kwonly(*, acc=list()):
    return acc


bad_lambda = lambda cache={}: cache


def ok(items=None, count=0, name="x", pair=(1, 2)):
    return items, count, name, pair


def sup(log=[]):  # staticcheck: ignore[RS003] -- fixture: suppression demo
    return log
