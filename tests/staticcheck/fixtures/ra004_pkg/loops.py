"""RA004 fixture: python-level element loops over ndarrays."""

import numpy as np


def total(xs: np.ndarray) -> float:
    acc = 0.0
    for x in xs:
        acc = acc + x
    return acc


def squares(xs: np.ndarray) -> np.ndarray:
    return np.array([v * v for v in xs])


def first_items(xs: np.ndarray, n: int) -> list:
    out = []
    for i in range(n):
        out.append(xs[i].item())
    return out


def collect(n: int) -> np.ndarray:
    parts = []
    for i in range(n):
        parts.append(float(i))
    return np.array(parts)
