"""Synthetic package for call-graph resolution tests (not shipped code).

Exercises every resolution path the builder supports: bare names,
imports (absolute and relative), self-dispatch on slotted classes,
inherited methods, attribute-typed receivers, annotated parameters,
locals typed from constructors, super(), and classmethod cls() calls.
"""
