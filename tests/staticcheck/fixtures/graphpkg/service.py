"""Composition layer: attribute types, annotated params, typed locals."""

from .models import Base, Impl
from .util import combine, scale


class Service:
    __slots__ = ("impl", "spare")

    def __init__(self, impl: Impl | None = None):
        self.impl = impl or Impl(0.25)
        self.spare = Impl.fresh()

    def tick(self):
        first = self.impl.ping()
        second = self.spare.bump(0.1)
        return combine(len(first), len(second))

    def renorm(self, base: Base):
        return scale(base.ping(), 2.0)


def drive(service: Service):
    local = Impl(0.75)
    return service.tick() + service.renorm(local) + local.bump(0.0)
