"""Leaf helpers: free functions the rest of the package resolves into."""


def clamp(value, lo, hi):
    return max(lo, min(hi, value))


def scale(value, factor):
    return clamp(value * factor, 0.0, 1.0)


def combine(a, b):
    return scale(a, 0.5) + scale(b, 0.5)
