"""Slotted class hierarchy: self-dispatch and inherited-method lookup."""

from .util import clamp


class Base:
    __slots__ = ("value",)

    def __init__(self, value):
        self.value = clamp(value, 0.0, 1.0)

    def ping(self):
        return self.describe()

    def describe(self):
        return f"base={self.value}"


class Impl(Base):
    __slots__ = ()

    def describe(self):
        return f"impl={self.value}"

    def bump(self, delta):
        self.value = clamp(self.value + delta, 0.0, 1.0)
        return super().describe()

    @classmethod
    def fresh(cls):
        return cls(0.5)
