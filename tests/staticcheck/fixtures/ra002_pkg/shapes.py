"""RA002 fixture: provably incompatible shapes."""

import numpy as np


def bad_broadcast() -> np.ndarray:
    a = np.zeros((3, 8))
    b = np.ones(4)
    return a + b


def bad_axis() -> np.ndarray:
    m = np.zeros((3, 8))
    return m.sum(axis=2)


def bad_matmul() -> np.ndarray:
    a = np.zeros((3, 8))
    b = np.zeros((5, 2))
    return a @ b
