"""A ``_locked`` name in a module that owns no inferable lock at all."""


def _merge_locked(rows):
    return sorted(rows)
