"""RC002 fixture: ``_locked`` helpers entered without their lock."""
