"""A journal whose eviction path calls the locked helper lock-free."""

import threading


class Journal:
    def __init__(self):
        self._lock = threading.Lock()
        self.entries = []

    def save(self, entry):
        with self._lock:
            self._append_locked(entry)

    def shrink(self):
        self._evict()

    def _evict(self):
        self._append_locked(None)

    def _append_locked(self, entry):
        self.entries.append(entry)
