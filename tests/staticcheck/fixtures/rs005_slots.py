"""Known-bad fixture for RS005: writes outside __slots__."""


class Slotted:
    __slots__ = ("a", "b")

    def __init__(self):
        self.a = 1
        self.b = 2
        self.c = 3

    def mutate(self):
        self.d = 4
        self.e = 5  # staticcheck: ignore[RS005] -- fixture: suppression demo

    @property
    def total(self):
        return self.a + self.b


class Unslotted:
    def __init__(self):
        self.anything = 1


class DynamicSlots:
    __slots__ = tuple("xy")  # not a literal: statically uncheckable, skipped

    def __init__(self):
        self.z = 1
