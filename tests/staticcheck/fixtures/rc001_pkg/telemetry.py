"""A telemetry sink whose reset path forgets the lock its writers take."""

import threading


class Telemetry:
    def __init__(self):
        self._lock = threading.Lock()
        self.n_events = 0
        self.n_drops = 0
        self.pending = []

    def record(self):
        with self._lock:
            self.n_events += 1

    def drop(self):
        with self._lock:
            self.n_drops += 1

    def enqueue(self, item):
        with self._lock:
            self.pending.append(item)

    def requeue(self, item):
        self.pending.append(item)

    def reset(self):
        self.n_events = 0
        with self._lock:
            self.n_drops = 0
