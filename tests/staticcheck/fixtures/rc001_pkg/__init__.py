"""RC001 fixture: counters guarded on some write paths, bare on others."""
