"""The cache-key root whose closure must be pure (and is not)."""

from .hashing import digest_parts, stamp


class Request:
    def __init__(self, payload):
        self.payload = payload

    def cache_key(self):
        return digest_parts(self.payload) ^ int(stamp())
