"""RF002 fixture: impurity one call below a cache_key root."""
