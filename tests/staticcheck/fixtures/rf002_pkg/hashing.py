"""Helper layer: writes a module-level memo inside the key path."""

import time

_MEMO = {}


def digest_parts(parts):
    key = tuple(parts)
    _MEMO[key] = len(parts)
    return hash(key)


def stamp():
    return time.time()
