"""Known-bad fixture for RS001: unseeded / process-global randomness."""

import random

import numpy as np
from numpy.random import default_rng


def draw():
    a = random.random()
    b = np.random.rand(3)
    c = np.random.default_rng()
    d = default_rng()
    e = default_rng(None)
    ok = np.random.default_rng(42)
    also_ok = default_rng(7).normal()
    sup = random.choice([1, 2])  # staticcheck: ignore[RS001] -- fixture: suppression demo
    return a, b, c, d, e, ok, also_ok, sup
