"""Ships a worker task that writes and reads module-level state."""

from concurrent.futures import ProcessPoolExecutor

_RESULTS = {}
_LIMIT = 4


def _record(key, value):
    _RESULTS[key] = value
    return value


def _work(item):
    if len(_RESULTS) < _LIMIT:
        return _record(item, item * 2)
    return item


def reset():
    global _LIMIT
    _LIMIT = 8


def run_all(items):
    futures = []
    with ProcessPoolExecutor() as pool:
        for item in items:
            futures.append(pool.submit(_work, item))
    return [f.result() for f in futures]
