"""RF003 fixture: a task function racing on module state in workers."""
