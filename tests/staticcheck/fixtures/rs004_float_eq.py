"""Known-bad fixture for RS004: float equality in bit-identity modules."""


def compare(x, sigma):
    a = x == 1.5
    b = sigma != 0.25
    c = 0.0 == x
    ok_int = x == 1
    ok_order = x >= 1.5
    ok_chain = 0 < x < 2
    sup = x == 2.5  # staticcheck: ignore[RS004] -- fixture: suppression demo
    return a, b, c, ok_int, ok_order, ok_chain, sup
