"""RA001 fixture: dtype drift in a bit-identity-style kernel."""

import numpy as np


def make_weights(n: int) -> np.ndarray:
    return np.zeros(n, dtype=np.float32)


def make_index(n: int) -> np.ndarray:
    return np.arange(n, dtype=np.int_)


def mix(n: int) -> np.ndarray:
    hi = np.ones(n)
    lo = np.empty(n, dtype="float32")
    return hi + lo


def ratio(n: int) -> np.ndarray:
    counts = np.arange(n)
    totals = np.arange(n)
    return counts / totals


def shrink(a: np.ndarray) -> np.ndarray:
    return a.astype(np.float32)
