"""Known-bad fixture for RS002: wall-clock reads in a hot path."""

import time
from datetime import datetime
from time import time as now


def stamp():
    a = time.time()
    b = datetime.now()
    c = now()
    ok = time.perf_counter()
    ok2 = time.monotonic()
    sup = time.time()  # staticcheck: ignore[RS002] -- fixture: suppression demo
    return a, b, c, ok, ok2, sup
