"""RA003 fixture: hidden copies on a hot-table path.

The module rides the ``engine.shm`` suffix in the hot-path table, so
``decode_configs`` is a root and the helpers are hot via the closure —
their findings carry call chains back to the root.
"""

import numpy as np


def _reduce(block: np.ndarray) -> np.ndarray:
    flat = block.flatten()
    return np.array(flat)


def _project(mat: np.ndarray, vec: np.ndarray) -> np.ndarray:
    return mat.T @ vec


def decode_configs(block: np.ndarray, rows: np.ndarray, n: int) -> list:
    out = []
    for _ in range(n):
        picked = block[rows]
        out.append(_reduce(picked))
        out.append(_project(block, rows))
    return out
