"""Flow rules RF001-RF005: exact findings, exact call chains, suppression.

Each RF rule has a dedicated multi-module fixture *package* under
``fixtures/`` and the tests pin the full reported chain — the
``path:line caller -> callee`` hop sequence — not just the rule id, so
a resolver regression that silently shortens or reroutes a chain fails
loudly here.
"""

from pathlib import Path

import pytest

from repro.staticcheck.flow import (
    ALL_FLOW_RULES,
    flow_rule_catalogue,
    get_flow_rules,
    lint_flow,
)

FIXTURES = Path(__file__).parent / "fixtures"


def _findings(pkg, rules=ALL_FLOW_RULES):
    report = lint_flow([str(FIXTURES / pkg)], rules=rules)
    return report


# --- RF001 ----------------------------------------------------------------

def test_rf001_unseeded_rng_reports_full_chain():
    report = _findings("rf001_pkg")
    assert [f.rule_id for f in report.result.findings] == ["RF001"]
    finding = report.result.findings[0]
    noise = str(FIXTURES / "rf001_pkg" / "noise.py")
    engine = str(FIXTURES / "rf001_pkg" / "engine.py")
    assert finding.path == noise
    assert (finding.line, finding.col) == (7, 11)
    assert "numpy.random.default_rng" in finding.message
    assert "no seed argument" in finding.message
    assert finding.chain == (
        f"{engine}:7 rf001_pkg.engine.evaluate -> "
        f"rf001_pkg.noise.sample_noise",
        f"{noise}:11 rf001_pkg.noise.sample_noise -> "
        f"rf001_pkg.noise._make_generator",
    )


def test_rf001_seeded_construction_passes(tmp_path):
    pkg = tmp_path / "ok_pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "engine.py").write_text(
        "import numpy as np\n"
        "def evaluate(seed):\n"
        "    rng = np.random.default_rng(seed)\n"
        "    return rng.normal()\n"
        "def derived(base_seed, i):\n"
        "    s = base_seed + i\n"
        "    return np.random.default_rng(s).normal()\n"
    )
    report = lint_flow([str(pkg)], rules=get_flow_rules(["RF001"]))
    assert report.result.findings == []


# --- RF002 ----------------------------------------------------------------

def test_rf002_impure_cache_key_closure_reports_both_sins():
    report = _findings("rf002_pkg", rules=get_flow_rules(["RF002"]))
    hashing = str(FIXTURES / "rf002_pkg" / "hashing.py")
    request = str(FIXTURES / "rf002_pkg" / "request.py")
    found = [(f.line, f.col, f.rule_id) for f in report.result.findings]
    assert found == [(10, 4, "RF002"), (15, 11, "RF002")]
    memo_write, clock_read = report.result.findings
    assert "_MEMO" in memo_write.message
    assert memo_write.chain == (
        f"{request}:11 rf002_pkg.request.Request.cache_key -> "
        f"rf002_pkg.hashing.digest_parts",
    )
    assert "time.time" in clock_read.message
    assert clock_read.chain == (
        f"{request}:11 rf002_pkg.request.Request.cache_key -> "
        f"rf002_pkg.hashing.stamp",
    )
    assert all(f.path == hashing for f in report.result.findings)


# --- RF003 ----------------------------------------------------------------

def test_rf003_worker_task_races_on_module_state():
    report = _findings("rf003_pkg", rules=get_flow_rules(["RF003"]))
    pool = str(FIXTURES / "rf003_pkg" / "pool.py")
    by_line = {(f.line, f.col): f for f in report.result.findings}
    assert set(by_line) == {(10, 4), (15, 11), (15, 23)}
    write = by_line[(10, 4)]
    assert "mutates module-level `_RESULTS`" in write.message
    assert write.chain == (
        f"{pool}:16 rf003_pkg.pool._work -> rf003_pkg.pool._record",
    )
    stale_read = by_line[(15, 11)]
    assert "reads module-level mutable `_RESULTS`" in stale_read.message
    assert stale_read.chain == ()       # _work is itself the shipped root
    limit_read = by_line[(15, 23)]
    assert "`_LIMIT`" in limit_read.message
    assert "rf003_pkg.pool.reset" in limit_read.message


def test_rf003_initializer_pattern_is_sanctioned(tmp_path):
    """Per-worker state installed by the pool initializer (the
    _WORKER_SIMULATOR pattern) must stay allowed."""
    pkg = tmp_path / "init_pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "pool.py").write_text(
        "from concurrent.futures import ProcessPoolExecutor\n"
        "_STATE = None\n"
        "def _init_worker(payload):\n"
        "    global _STATE\n"
        "    _STATE = payload\n"
        "def _work(item):\n"
        "    return (_STATE, item)\n"
        "def run_all(items, payload):\n"
        "    with ProcessPoolExecutor(initializer=_init_worker,\n"
        "                             initargs=(payload,)) as pool:\n"
        "        futs = [pool.submit(_work, i) for i in items]\n"
        "    return [f.result() for f in futs]\n"
    )
    report = lint_flow([str(pkg)], rules=get_flow_rules(["RF003"]))
    assert report.result.findings == []


# --- RF004 ----------------------------------------------------------------

def test_rf004_swallowed_exception_in_dispatch():
    report = _findings("rf004_pkg", rules=get_flow_rules(["RF004"]))
    engine = str(FIXTURES / "rf004_pkg" / "engine.py")
    assert [f.rule_id for f in report.result.findings] == ["RF004"]
    finding = report.result.findings[0]
    assert (finding.path, finding.line, finding.col) == (engine, 14, 4)
    assert finding.chain == (
        f"{engine}:7 rf004_pkg.engine.dispatch -> rf004_pkg.engine._attempt",
    )


@pytest.mark.parametrize("body, ok", [
    ("        raise\n", True),
    ("        return None\n", True),
    ("        counters.n_failures += 1\n", True),
    ("        pass\n", False),
    ("        x = 1\n", False),
])
def test_rf004_handler_shapes(tmp_path, body, ok):
    pkg = tmp_path / "h_pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "engine.py").write_text(
        "def dispatch(job, counters):\n"
        "    try:\n"
        "        return job()\n"
        "    except Exception:\n"
        f"{body}"
        "    return 0\n"
    )
    report = lint_flow([str(pkg)], rules=get_flow_rules(["RF004"]))
    assert (report.result.findings == []) is ok


# --- RF005 ----------------------------------------------------------------

def test_rf005_divergent_leaf_sets_flag_the_batch_twin():
    report = _findings("rf005_pkg", rules=get_flow_rules(["RF005"]))
    cost = str(FIXTURES / "rf005_pkg" / "cost.py")
    assert [f.rule_id for f in report.result.findings] == ["RF005"]
    finding = report.result.findings[0]
    assert finding.path == cost
    assert finding.line == 11           # the batch def line
    assert "scalar-only leaves: spill_outcome" in finding.message
    # the chain walks the scalar half down to the leaf the batch lost
    assert finding.chain == (
        f"{cost}:7 rf005_pkg.cost.compute_stage_cost -> "
        f"rf005_pkg.leaves.spill_outcome",
    )


def test_rf005_matching_pairs_and_non_cost_pairs_stay_silent(tmp_path):
    pkg = tmp_path / "ok5_pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "cost.py").write_text(
        "def gc_fraction(x):\n"
        "    return x * 0.1\n"
        "def compute_stage_cost(x):\n"
        "    return x + gc_fraction(x)\n"
        "def compute_stage_cost_batch(xs):\n"
        "    return [x + gc_fraction(x) for x in xs]\n"
        # a pair with no cost/effect leaves at all: out of scope
        "def suggest(x):\n"
        "    return x\n"
        "def suggest_batch(xs):\n"
        "    return xs\n"
    )
    report = lint_flow([str(pkg)], rules=get_flow_rules(["RF005"]))
    assert report.result.findings == []


# --- suppression mechanics ------------------------------------------------

def test_suppression_on_callee_line_silences_interprocedural_finding(tmp_path):
    """The marker lives where the finding lands — the callee's line deep
    in the helper module, not at the entry point."""
    pkg = tmp_path / "sup_pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "noise.py").write_text(
        "import numpy as np\n"
        "def make_generator():\n"
        "    return np.random.default_rng()  "
        "# staticcheck: ignore[RF001] -- test fixture\n"
    )
    (pkg / "engine.py").write_text(
        "from .noise import make_generator\n"
        "def evaluate(n):\n"
        "    return make_generator().normal(size=n)\n"
    )
    report = lint_flow([str(pkg)], rules=get_flow_rules(["RF001"]))
    assert report.result.findings == []
    assert report.result.suppressed_by_rule() == {"RF001": 1}
    (suppressed,) = report.result.sorted_suppressed()
    assert suppressed.path.endswith("noise.py")
    assert suppressed.line == 3
    assert suppressed.chain != ()       # the chain survives into the audit


def test_suppression_on_entry_point_line_does_not_silence(tmp_path):
    """A waiver at the call site upstream must NOT hide the callee's
    violation — the finding belongs to the code that commits it."""
    pkg = tmp_path / "nosup_pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "noise.py").write_text(
        "import numpy as np\n"
        "def make_generator():\n"
        "    return np.random.default_rng()\n"
    )
    (pkg / "engine.py").write_text(
        "from .noise import make_generator\n"
        "def evaluate(n):\n"
        "    return make_generator().normal(size=n)  "
        "# staticcheck: ignore[RF001] -- wrong place\n"
    )
    report = lint_flow([str(pkg)], rules=get_flow_rules(["RF001"]))
    assert [f.rule_id for f in report.result.findings] == ["RF001"]
    assert report.result.suppressed_by_rule() == {}


# --- registry -------------------------------------------------------------

def test_flow_rule_registry():
    ids = [r.rule_id for r in ALL_FLOW_RULES]
    assert ids == ["RF001", "RF002", "RF003", "RF004", "RF005"]
    assert [r["rule"] for r in flow_rule_catalogue()] == ids
    assert [r.rule_id for r in get_flow_rules(["rf003"])] == ["RF003"]
    with pytest.raises(ValueError):
        get_flow_rules(["RF999"])


def test_flow_report_carries_graph_stats():
    report = _findings("graphpkg")
    assert report.result.findings == []
    assert report.stats["resolution_rate"] >= 0.9
    assert report.stats["files"] == 4
