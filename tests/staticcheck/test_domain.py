"""Domain validator: well-formed spaces pass, malformed spaces are rejected."""

import numpy as np
import pytest

from repro.cloud.cluster import Cluster
from repro.config.cloud_params import cloud_space, joint_space
from repro.config.space import (
    CategoricalParameter,
    ConfigurationSpace,
    FloatParameter,
    IntParameter,
    Parameter,
)
from repro.config.spark_params import spark_core_space, spark_space
from repro.staticcheck import (
    RESOURCE_PACKING,
    ConstraintSpec,
    validate_default_domain,
    validate_space,
    validate_workloads,
)
from repro.workloads.suite import SUITE

CLUSTERS = [Cluster.of("m5.xlarge", 4)]


def rule_ids(findings):
    return sorted({f.rule_id for f in findings})


# --- the repo's own domain is clean --------------------------------------

def test_default_domain_is_clean():
    assert validate_default_domain() == []


@pytest.mark.parametrize("factory", [spark_space, spark_core_space, cloud_space],
                         ids=["spark", "spark-core", "cloud"])
def test_shipped_spaces_validate(factory):
    assert validate_space(factory(), constraints=[RESOURCE_PACKING],
                          clusters=CLUSTERS) == []


def test_joint_space_validates():
    space = joint_space(spark_core_space())
    assert validate_space(space, constraints=[RESOURCE_PACKING],
                          clusters=CLUSTERS) == []


# --- RD001: default out of bounds ----------------------------------------

def test_default_out_of_bounds_rejected():
    param = IntParameter("knob", 1, 10, default=5)
    param.default = 99        # simulate post-construction drift
    findings = validate_space(ConfigurationSpace([param], name="bad"))
    assert rule_ids(findings) == ["RD001"]
    assert "99" in findings[0].message


# --- RD002: encoding does not round-trip ----------------------------------

class _BrokenEncoding(Parameter):
    """to_unit/from_unit disagree by one — the drift RD002 exists for."""

    def __init__(self):
        super().__init__("broken", default=5)

    def sample(self, rng: np.random.Generator):
        return 5

    def to_unit(self, value):
        return value / 10.0

    def from_unit(self, u):
        return int(round(u * 10.0)) + 1

    def grid(self, resolution):
        return [5]

    def validate(self, value):
        if not 0 <= value <= 10:
            raise ValueError("out of range")


def test_non_roundtripping_encoding_rejected():
    findings = validate_space(ConfigurationSpace([_BrokenEncoding()], name="bad"))
    assert rule_ids(findings) == ["RD002"]


# --- RD003: dangling constraint parameter ---------------------------------

def test_dangling_constraint_param_rejected():
    space = ConfigurationSpace(
        [IntParameter("spark.executor.memory", 512, 4096, default=1024)],
        name="partial",
    )
    dangling = ConstraintSpec(
        name="packing",
        params=("spark.executor.memory", "spark.executor.does_not_exist"),
    )
    findings = validate_space(space, constraints=[dangling])
    assert rule_ids(findings) == ["RD003"]
    assert "spark.executor.does_not_exist" in findings[0].message


def test_unanchored_constraint_is_ignored():
    """A DISC constraint is not dangling on a pure cloud space."""
    assert validate_space(cloud_space(), constraints=[RESOURCE_PACKING]) == []


# --- RD004: no feasible grid corner ---------------------------------------

def test_infeasible_space_rejected():
    space = ConfigurationSpace(
        [
            IntParameter("spark.executor.instances", 1, 4, default=2),
            # every corner demands more cores than any node has
            IntParameter("spark.executor.cores", 64, 128, default=64),
            IntParameter("spark.executor.memory", 512, 1024, default=512),
        ],
        name="infeasible",
    )
    findings = validate_space(space, constraints=[RESOURCE_PACKING],
                              clusters=CLUSTERS)
    assert rule_ids(findings) == ["RD004"]
    assert "no feasible grid corner" in findings[0].message


def test_feasibility_probe_needs_clusters():
    """Without reference clusters the probe is skipped, not failed."""
    space = ConfigurationSpace(
        [
            IntParameter("spark.executor.instances", 1, 4, default=2),
            IntParameter("spark.executor.cores", 64, 128, default=64),
            IntParameter("spark.executor.memory", 512, 1024, default=512),
        ],
        name="infeasible",
    )
    assert validate_space(space, constraints=[RESOURCE_PACKING]) == []


# --- RD005: wide range without log scaling --------------------------------

def test_wide_linear_range_warned():
    space = ConfigurationSpace(
        [FloatParameter("window", 0.001, 10.0, default=1.0)],
        name="wide",
    )
    findings = validate_space(space)
    assert rule_ids(findings) == ["RD005"]
    assert findings[0].severity.value == "warning"


# --- RD006: categorical integrity ------------------------------------------

def test_mutated_categorical_rejected():
    param = CategoricalParameter("codec", ["lz4", "snappy"], default="lz4")
    param.choices = ["lz4", "lz4"]        # post-construction drift
    findings = validate_space(ConfigurationSpace([param], name="bad"))
    assert "RD006" in rule_ids(findings)


# --- RD007: workload registry ----------------------------------------------

def test_shipped_workloads_validate():
    assert validate_workloads(SUITE) == []


def test_empty_job_list_rejected():
    class Hollow:
        name = "hollow"
        category = "micro"

        def __init__(self):
            from repro.workloads.base import EvolvingInput
            self.inputs = EvolvingInput(100.0, 200.0, 400.0)

        def jobs(self, input_mb):
            return []

    findings = validate_workloads({"hollow": Hollow})
    assert rule_ids(findings) == ["RD007"]
    assert "empty job list" in findings[0].message


def test_duplicate_workload_names_rejected():
    wordcount = SUITE["wordcount"]

    findings = validate_workloads({"wc-a": wordcount, "wc-b": wordcount})
    assert rule_ids(findings) == ["RD007"]
    assert "registered under both" in findings[0].message
