"""Call-graph builder: module naming, edge resolution, stats.

The acceptance bar lives here: the synthetic ``graphpkg`` fixture
exercises every supported resolution path (imports, self-dispatch on
slotted classes, inheritance, attribute types, annotated params, typed
locals, super(), classmethod factories) and the builder must resolve at
least 90% of its non-external call sites.
"""

from pathlib import Path

import pytest

from repro.staticcheck.graph import build_call_graph, module_name_for

FIXTURES = Path(__file__).parent / "fixtures"
GRAPHPKG = FIXTURES / "graphpkg"


@pytest.fixture(scope="module")
def graph():
    return build_call_graph([GRAPHPKG])


def test_module_names_anchor_at_topmost_package():
    assert module_name_for(GRAPHPKG / "util.py") == "graphpkg.util"
    assert module_name_for(GRAPHPKG / "__init__.py") == "graphpkg"
    repo_root = Path(__file__).resolve().parents[2]
    assert module_name_for(
        repo_root / "src" / "repro" / "engine" / "engine.py"
    ) == "repro.engine.engine"


def test_fixture_package_resolution_rate_meets_the_bar(graph):
    stats = graph.resolution_stats()
    assert stats["resolution_rate"] >= 0.90, stats
    assert stats["files"] == 4
    assert stats["unresolved"] == 0, [
        (s.caller, s.text) for s in graph.unresolved_sites()
    ]


def _edges(graph, caller):
    return {s.callee for s in graph.sites_of(caller) if s.kind == "internal"}


def test_bare_name_and_import_resolution(graph):
    assert "graphpkg.util.clamp" in _edges(graph, "graphpkg.util.scale")
    # relative import: models.py pulls clamp from .util
    assert "graphpkg.util.clamp" in _edges(
        graph, "graphpkg.models.Base.__init__"
    )


def test_self_dispatch_prefers_the_subclass_override(graph):
    # Base.ping calls self.describe() — resolved against Base itself
    # (per-class static dispatch, not a virtual call)
    assert "graphpkg.models.Base.describe" in _edges(
        graph, "graphpkg.models.Base.ping"
    )


def test_super_call_skips_the_defining_class(graph):
    assert "graphpkg.models.Base.describe" in _edges(
        graph, "graphpkg.models.Impl.bump"
    )


def test_classmethod_cls_call_resolves_to_inherited_init(graph):
    # Impl has no __init__; cls(0.5) lands on Base.__init__ via the MRO
    assert "graphpkg.models.Base.__init__" in _edges(
        graph, "graphpkg.models.Impl.fresh"
    )


def test_attr_types_inferred_from_init_assignments(graph):
    service = graph.classes["graphpkg.service.Service"]
    assert service.attr_types["impl"] == "graphpkg.models.Impl"
    # classmethod-factory heuristic: Impl.fresh() yields an Impl
    assert service.attr_types["spare"] == "graphpkg.models.Impl"
    assert "graphpkg.models.Impl.describe" not in _edges(
        graph, "graphpkg.service.Service.__init__"
    )


def test_attr_receiver_dispatch(graph):
    edges = _edges(graph, "graphpkg.service.Service.tick")
    assert "graphpkg.models.Base.ping" in edges        # self.impl.ping()
    assert "graphpkg.models.Impl.bump" in edges        # self.spare.bump()


def test_annotated_param_receiver_dispatch(graph):
    assert "graphpkg.models.Base.ping" in _edges(
        graph, "graphpkg.service.Service.renorm"
    )
    drive_edges = _edges(graph, "graphpkg.service.drive")
    assert "graphpkg.service.Service.tick" in drive_edges
    assert "graphpkg.models.Impl.bump" in drive_edges  # typed local


def test_builtins_classify_external_not_unresolved(graph):
    base_init = graph.sites_of("graphpkg.models.Base.__init__")
    # clamp's max/min usage lives in util; Base.__init__ only calls clamp
    util_clamp = graph.sites_of("graphpkg.util.clamp")
    externals = {s.external for s in util_clamp if s.kind == "external"}
    assert "builtins.max" in externals
    assert "builtins.min" in externals
    assert all(s.kind != "unresolved" for s in base_init + util_clamp)


def test_closure_and_chain_rendering(graph):
    closure = graph.closure(["graphpkg.service.drive"])
    assert "graphpkg.util.clamp" in closure
    parents = graph.reach_parents(["graphpkg.service.drive"])
    chain = graph.chain_to(parents, "graphpkg.util.combine")
    assert len(chain) == 2
    assert chain[0].endswith(
        "graphpkg.service.drive -> graphpkg.service.Service.tick"
    )
    assert chain[1].endswith(
        "graphpkg.service.Service.tick -> graphpkg.util.combine"
    )
    # hops carry clickable path:line prefixes
    assert all(":" in hop.split(" ")[0] for hop in chain)


def test_global_writer_tracking(tmp_path):
    pkg = tmp_path / "wpkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "state.py").write_text(
        "COUNTS = {}\n"
        "TOTAL = 0\n"
        "def bump(key):\n"
        "    COUNTS[key] = COUNTS.get(key, 0) + 1\n"
        "def reset():\n"
        "    global TOTAL\n"
        "    TOTAL = 0\n"
    )
    graph = build_call_graph([pkg])
    assert graph.global_writers[("wpkg.state", "COUNTS")] == {
        "wpkg.state.bump"
    }
    assert graph.global_writers[("wpkg.state", "TOTAL")] == {
        "wpkg.state.reset"
    }
    assert graph.modules["wpkg.state"].global_kinds["COUNTS"] == "mutable"
    assert graph.modules["wpkg.state"].global_kinds["TOTAL"] == "immutable"


def test_syntax_error_files_are_skipped_not_fatal(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("def broken(:\n")
    graph = build_call_graph([bad])
    assert graph.resolution_stats()["files"] == 0
