"""Array rules RA001-RA006: exact findings, chains, hot paths, domain.

Each RA rule has a dedicated fixture package under ``fixtures/`` and
the tests pin exact (line, col) positions and message content — the
inferred shapes and dtypes appear verbatim in the messages, so an
interpreter regression that degrades inference changes the report and
fails here.  ``ra003_pkg`` nests its module as ``engine/shm.py`` so its
qnames suffix-match the hot-path table and the findings carry chains.
"""

from pathlib import Path

import pytest

from repro.staticcheck.arrays import (
    ALL_ARRAY_RULES,
    AV,
    _broadcast,
    _matmul_shape,
    _merge,
    _pair_dtype,
    array_rule_catalogue,
    get_array_rules,
    lint_arrays,
)
from repro.staticcheck.graph import build_call_graph
from repro.staticcheck.hotpaths import HOT_PATHS, resolve_hot_functions
from repro.staticcheck.model import Severity

FIXTURES = Path(__file__).parent / "fixtures"


def _report(pkg, rules=ALL_ARRAY_RULES):
    return lint_arrays([str(FIXTURES / pkg)], rules=rules)


# --- the abstract domain --------------------------------------------------

def test_broadcast_symbolic_dims_never_conflict():
    shape, conflict = _broadcast((3, "n"), ("m",))
    assert conflict is None
    assert shape == (3, "?")


def test_broadcast_int_conflict_is_reported():
    shape, conflict = _broadcast((3, 8), (4,))
    assert conflict == (8, 4)


def test_broadcast_ones_expand():
    shape, conflict = _broadcast((5, 1), (1, 7))
    assert conflict is None
    assert shape == (5, 7)


def test_matmul_shapes():
    assert _matmul_shape((3, 8), (8, 2)) == ((3, 2), None)
    assert _matmul_shape((3, 8), (5, 2)) == ((3, 2), (8, 5))
    assert _matmul_shape((8,), (8, 2)) == ((2,), None)
    assert _matmul_shape((3, 8), (8,)) == ((3,), None)
    assert _matmul_shape((8,), (8,)) == ((), None)


def test_pair_dtype_weak_scalars_follow_nep50():
    assert _pair_dtype("float64", "weak-int") == "float64"
    assert _pair_dtype("int64", "weak-float") == "float64"
    assert _pair_dtype("float32", "weak-float") == "float32"
    assert _pair_dtype("float32", "float64") == "float64"


def test_merge_degrades_disagreeing_dims():
    a = AV("array", (3, 8), "float64")
    b = AV("array", (3, 9), "float64")
    merged = _merge(a, b)
    assert merged.shape == (3, "?")
    assert merged.dtype == "float64"
    assert _merge(a, AV("int")).kind == "unknown"


# --- RA001 ----------------------------------------------------------------

def test_ra001_exact_findings():
    report = _report("ra001_pkg")
    kernel = str(FIXTURES / "ra001_pkg" / "kernel.py")
    rows = [
        (f.path, f.line, f.col, f.rule_id) for f in report.result.findings
    ]
    assert rows == [
        (kernel, 7, 11, "RA001"),
        (kernel, 11, 11, "RA001"),
        (kernel, 16, 9, "RA001"),
        (kernel, 17, 11, "RA001"),
        (kernel, 23, 11, "RA001"),
        (kernel, 27, 11, "RA001"),
    ]
    messages = [f.message for f in report.result.findings]
    assert "dtype 'float32' narrows the float64 bit-identity" in messages[0]
    assert "platform-dependent dtype 'int_'" in messages[1]
    assert "dtype 'float32' narrows" in messages[2]
    assert ("mixed-precision operation (float64 with float32) promotes "
            "silently to float64") in messages[3]
    assert ("true division of integer operands (int64 / int64) yields "
            "float64 implicitly") in messages[4]
    assert all(f.severity is Severity.ERROR for f in report.result.findings)


def test_ra001_scoped_out_inside_repro_package(tmp_path):
    # the same float32 literal inside a repro module that is NOT in the
    # bit-identity scope must not fire
    pkg = tmp_path / "repro"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "reporting.py").write_text(
        "import numpy as np\n"
        "def render(n: int):\n"
        "    return np.zeros(n, dtype=np.float32)\n"
    )
    report = lint_arrays([str(pkg)])
    assert report.result.findings == []


# --- RA002 ----------------------------------------------------------------

def test_ra002_exact_findings():
    report = _report("ra002_pkg")
    shapes = str(FIXTURES / "ra002_pkg" / "shapes.py")
    rows = [
        (f.path, f.line, f.col, f.rule_id) for f in report.result.findings
    ]
    assert rows == [
        (shapes, 9, 11, "RA002"),
        (shapes, 14, 11, "RA002"),
        (shapes, 20, 11, "RA002"),
    ]
    messages = [f.message for f in report.result.findings]
    assert ("incompatible shapes (3, 8) and (4,): dimension 8 vs 4 "
            "cannot broadcast") in messages[0]
    assert "axis=2 out of range for inferred shape (3, 8) (rank 2)" \
        in messages[1]
    assert "matmul of (3, 8) @ (5, 2): inner dimensions 8 and 5 differ" \
        in messages[2]


# --- RA003 ----------------------------------------------------------------

def test_ra003_hot_helpers_carry_chains():
    report = _report("ra003_pkg")
    shm = str(FIXTURES / "ra003_pkg" / "engine" / "shm.py")
    rows = [
        (f.line, f.col, f.rule_id) for f in report.result.findings
    ]
    assert rows == [
        (12, 11, "RA003"),
        (13, 11, "RA003"),
        (17, 11, "RA003"),
        (23, 17, "RA003"),
    ]
    flatten, recopy, matmul, fancy = report.result.findings
    assert "ndarray.flatten() always copies" in flatten.message
    assert flatten.chain == (
        f"{shm}:24 ra003_pkg.engine.shm.decode_configs -> "
        f"ra003_pkg.engine.shm._reduce",
    )
    assert "np.array() over an existing ndarray" in recopy.message
    assert recopy.chain == flatten.chain
    assert "non-contiguous view" in matmul.message
    assert matmul.chain == (
        f"{shm}:25 ra003_pkg.engine.shm.decode_configs -> "
        f"ra003_pkg.engine.shm._project",
    )
    # the root function's own finding needs no chain
    assert "fancy indexing" in fancy.message
    assert fancy.chain == ()


def test_ra003_hot_closure_resolves_table_root():
    graph = build_call_graph([str(FIXTURES / "ra003_pkg")])
    hot, roots = resolve_hot_functions(graph)
    assert roots == {"ra003_pkg.engine.shm.decode_configs"}
    assert set(hot) == {
        "ra003_pkg.engine.shm.decode_configs",
        "ra003_pkg.engine.shm._reduce",
        "ra003_pkg.engine.shm._project",
    }
    assert hot["ra003_pkg.engine.shm._reduce"] == "shm-codec"


# --- RA004 ----------------------------------------------------------------

def test_ra004_exact_findings():
    report = _report("ra004_pkg")
    loops = str(FIXTURES / "ra004_pkg" / "loops.py")
    rows = [
        (f.path, f.line, f.col, f.rule_id) for f in report.result.findings
    ]
    assert rows == [
        (loops, 8, 4, "RA004"),
        (loops, 14, 20, "RA004"),
        (loops, 20, 19, "RA004"),
        (loops, 28, 11, "RA004"),
    ]
    messages = [f.message for f in report.result.findings]
    assert "python-level loop over ndarray" in messages[0]
    assert "comprehension over ndarray" in messages[1]
    assert ".item() per element inside a loop" in messages[2]
    assert "np.array() over the list 'parts' grown by .append()" \
        in messages[3]


# --- RA005 ----------------------------------------------------------------

def test_ra005_exact_findings_and_negative_case():
    report = _report("ra005_pkg")
    alloc = str(FIXTURES / "ra005_pkg" / "alloc.py")
    rows = [
        (f.path, f.line, f.col, f.rule_id) for f in report.result.findings
    ]
    # per_step's np.full(4, float(i)) is loop-variant: no third finding
    assert rows == [
        (alloc, 9, 18, "RA005"),
        (alloc, 17, 14, "RA005"),
    ]
    hoist, growth = report.result.findings
    assert "np.zeros(...) has no loop-carried operand" in hoist.message
    assert "concatenate onto its own accumulator 'acc'" in growth.message
    assert "grows quadratically" in growth.message


# --- RA006 ----------------------------------------------------------------

def test_ra006_exact_findings():
    report = _report("ra006_pkg")
    locked = str(FIXTURES / "ra006_pkg" / "locked.py")
    rows = [
        (f.path, f.line, f.col, f.rule_id) for f in report.result.findings
    ]
    assert rows == [
        (locked, 15, 19, "RA006"),
        (locked, 19, 17, "RA006"),
    ]
    argsort, io = report.result.findings
    assert "expensive call numpy.argsort while holding " \
        "ra006_pkg.locked.Index._lock" in argsort.message
    assert "expensive call builtins.open (blocking IO) while holding" \
        in io.message


# --- suppressions, driver, catalogue --------------------------------------

def test_ra_suppression_marker_silences_a_finding(tmp_path):
    pkg = tmp_path / "sup_pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "mod.py").write_text(
        "import numpy as np\n"
        "def weights(n: int):\n"
        "    return np.zeros(n, dtype=np.float32)"
        "  # staticcheck: ignore[RA001] -- fixture\n"
    )
    report = lint_arrays([str(pkg)])
    assert report.result.findings == []
    assert [f.rule_id for f in report.result.suppressed] == ["RA001"]


def test_rule_subset_runs_only_requested_ids():
    report = _report("ra001_pkg", rules=get_array_rules(["RA002"]))
    assert report.result.findings == []


def test_get_array_rules_rejects_unknown_ids():
    with pytest.raises(ValueError, match="unknown array rule id"):
        get_array_rules(["RA001", "RA999"])


def test_catalogue_covers_all_rules_with_rationales():
    rows = array_rule_catalogue()
    assert [r["rule"] for r in rows] == [
        "RA001", "RA002", "RA003", "RA004", "RA005", "RA006",
    ]
    assert all(r["summary"] and r["rationale"] for r in rows)
    assert rows[0]["severity"] == "error"
    assert rows[2]["severity"] == "warning"


def test_stats_report_interpreter_coverage():
    report = _report("ra003_pkg")
    arr = report.stats["arrays"]
    assert arr["functions_interpreted"] == 3
    assert arr["hot_functions"] == 3
    assert arr["hot_roots"] == 1
    assert arr["facts"] == 4
    assert report.stats["resolution_rate"] == 1.0


def test_hot_path_table_is_well_formed():
    phases = [entry.phase for entry in HOT_PATHS]
    assert phases == ["suggest", "evaluate", "similarity", "shm-codec"]
    for entry in HOT_PATHS:
        assert entry.roots and entry.reason
