"""Incremental cache: warm reuse, precise invalidation, byte-identity.

The ≥5x warm-speedup acceptance criterion is pinned here with a
deterministic proxy instead of flaky wall-clock ratios: a fully warm run
performs **zero** ``ast.parse`` calls (the cold run does one per file,
plus the graph pass), and its rendered JSON is byte-identical to the
cold run's.
"""

import ast
import json
from pathlib import Path

import pytest

from repro.staticcheck.flow import ALL_FLOW_RULES
from repro.staticcheck.incremental import incremental_check
from repro.staticcheck.reporter import render_json

FIXTURES = Path(__file__).parent / "fixtures"


def _make_pkg(tmp_path):
    pkg = tmp_path / "inc_pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "noise.py").write_text(
        "import numpy as np\n"
        "def make_generator():\n"
        "    return np.random.default_rng()\n"
    )
    (pkg / "engine.py").write_text(
        "from .noise import make_generator\n"
        "def evaluate(n):\n"
        "    return make_generator().normal(size=n)\n"
    )
    return pkg


def _check(pkg, cache, **kwargs):
    # per-file rules off: these tests isolate the flow/tree cache paths
    return incremental_check(
        [str(pkg)], per_file_rules=[], flow_rules=list(ALL_FLOW_RULES),
        cache_path=cache, **kwargs,
    )


def test_warm_run_reuses_everything_and_renders_identically(tmp_path):
    pkg = _make_pkg(tmp_path)
    cache = tmp_path / "cache.json"
    cold = _check(pkg, cache)
    assert cold.n_reanalyzed == 3
    assert not cold.tree_cached
    assert [f.rule_id for f in cold.result.findings] == ["RF001"]

    warm = _check(pkg, cache)
    assert warm.n_reanalyzed == 0
    assert warm.tree_cached
    assert warm.result.findings == cold.result.findings
    assert warm.result.suppressed == cold.result.suppressed
    cold_json = render_json(cold.result, stats=cold.stats)
    warm_json = render_json(warm.result, stats=warm.stats)
    assert warm_json == cold_json      # byte-identical, chains included


def test_warm_run_parses_nothing(tmp_path, monkeypatch):
    """The speedup proxy: zero ast.parse calls on an unchanged tree."""
    pkg = _make_pkg(tmp_path)
    cache = tmp_path / "cache.json"
    _check(pkg, cache)

    calls = {"n": 0}
    real_parse = ast.parse

    def counting_parse(*args, **kwargs):
        calls["n"] += 1
        return real_parse(*args, **kwargs)

    monkeypatch.setattr(ast, "parse", counting_parse)
    warm = _check(pkg, cache)
    assert warm.n_reanalyzed == 0
    assert calls["n"] == 0


def test_editing_one_file_reanalyzes_only_that_file(tmp_path):
    pkg = _make_pkg(tmp_path)
    cache = tmp_path / "cache.json"
    _check(pkg, cache)

    noise = pkg / "noise.py"
    noise.write_text(
        "import numpy as np\n"
        "def make_generator(seed):\n"
        "    return np.random.default_rng(seed)\n"
    )
    after = _check(pkg, cache)
    assert after.n_reanalyzed == 1      # only noise.py re-parsed per-file
    assert not after.tree_cached        # flow pass re-ran (tree changed)
    assert after.result.findings == []  # the fix is visible immediately


def test_no_cache_escape_hatch(tmp_path):
    pkg = _make_pkg(tmp_path)
    cache = tmp_path / "cache.json"
    out = _check(pkg, cache, use_cache=False)
    assert out.n_reanalyzed == 3
    assert not cache.exists()           # --no-cache never writes


def test_rule_set_change_invalidates_the_signature(tmp_path):
    pkg = _make_pkg(tmp_path)
    cache = tmp_path / "cache.json"
    _check(pkg, cache)
    narrowed = incremental_check(
        [str(pkg)], per_file_rules=[], flow_rules=[ALL_FLOW_RULES[0]],
        cache_path=cache,
    )
    assert narrowed.n_reanalyzed == 3   # different signature: full rerun
    assert not narrowed.tree_cached


def test_corrupt_cache_degrades_to_cold_run(tmp_path):
    pkg = _make_pkg(tmp_path)
    cache = tmp_path / "cache.json"
    cache.write_text("{not json")
    out = _check(pkg, cache)
    assert out.n_reanalyzed == 3
    assert [f.rule_id for f in out.result.findings] == ["RF001"]
    # and the broken file was replaced with a valid one
    json.loads(cache.read_text())


def test_cache_payload_shape_is_stable(tmp_path):
    pkg = _make_pkg(tmp_path)
    cache = tmp_path / "cache.json"
    _check(pkg, cache)
    payload = json.loads(cache.read_text())
    assert set(payload) == {"signature", "files", "tree"}
    assert all("hash" in entry for entry in payload["files"].values())
    assert "flow" in payload["tree"]
    assert payload["tree"]["flow"]["stats"]["files"] == 3


def test_cli_cold_and_warm_json_byte_identical(tmp_path, capsys, monkeypatch):
    """End-to-end through the CLI: the acceptance criterion itself."""
    from repro.staticcheck.cli import main

    monkeypatch.chdir(tmp_path)
    pkg = _make_pkg(tmp_path)
    argv = ["--no-domain", "--flow", "--format", "json", str(pkg)]
    assert main(argv) == 1
    cold = capsys.readouterr().out
    assert main(argv) == 1
    warm = capsys.readouterr().out
    assert warm == cold
    payload = json.loads(warm)
    assert payload["findings"][0]["rule"] == "RF001"
    assert payload["findings"][0]["chain"]  # chains survive the round-trip
    assert (tmp_path / ".staticcheck_cache.json").exists()
