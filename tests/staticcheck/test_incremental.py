"""Incremental cache: warm reuse, precise invalidation, byte-identity.

The ≥5x warm-speedup acceptance criterion is pinned here with a
deterministic proxy instead of flaky wall-clock ratios: a fully warm run
performs **zero** ``ast.parse`` calls (the cold run does one per file,
plus the graph pass), and its rendered JSON is byte-identical to the
cold run's.
"""

import ast
import json
from pathlib import Path

import pytest

from repro.staticcheck.concurrency import ALL_CONCURRENCY_RULES
from repro.staticcheck.flow import ALL_FLOW_RULES
from repro.staticcheck.incremental import incremental_check
from repro.staticcheck.reporter import render_json

FIXTURES = Path(__file__).parent / "fixtures"


def _make_pkg(tmp_path):
    pkg = tmp_path / "inc_pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "noise.py").write_text(
        "import numpy as np\n"
        "def make_generator():\n"
        "    return np.random.default_rng()\n"
    )
    (pkg / "engine.py").write_text(
        "from .noise import make_generator\n"
        "def evaluate(n):\n"
        "    return make_generator().normal(size=n)\n"
    )
    return pkg


def _check(pkg, cache, **kwargs):
    # per-file rules off: these tests isolate the flow/tree cache paths
    return incremental_check(
        [str(pkg)], per_file_rules=[], flow_rules=list(ALL_FLOW_RULES),
        cache_path=cache, **kwargs,
    )


def test_warm_run_reuses_everything_and_renders_identically(tmp_path):
    pkg = _make_pkg(tmp_path)
    cache = tmp_path / "cache.json"
    cold = _check(pkg, cache)
    assert cold.n_reanalyzed == 3
    assert not cold.tree_cached
    assert [f.rule_id for f in cold.result.findings] == ["RF001"]

    warm = _check(pkg, cache)
    assert warm.n_reanalyzed == 0
    assert warm.tree_cached
    assert warm.result.findings == cold.result.findings
    assert warm.result.suppressed == cold.result.suppressed
    cold_json = render_json(cold.result, stats=cold.stats)
    warm_json = render_json(warm.result, stats=warm.stats)
    assert warm_json == cold_json      # byte-identical, chains included


def test_warm_run_parses_nothing(tmp_path, monkeypatch):
    """The speedup proxy: zero ast.parse calls on an unchanged tree."""
    pkg = _make_pkg(tmp_path)
    cache = tmp_path / "cache.json"
    _check(pkg, cache)

    calls = {"n": 0}
    real_parse = ast.parse

    def counting_parse(*args, **kwargs):
        calls["n"] += 1
        return real_parse(*args, **kwargs)

    monkeypatch.setattr(ast, "parse", counting_parse)
    warm = _check(pkg, cache)
    assert warm.n_reanalyzed == 0
    assert calls["n"] == 0


def test_editing_one_file_reanalyzes_only_that_file(tmp_path):
    pkg = _make_pkg(tmp_path)
    cache = tmp_path / "cache.json"
    _check(pkg, cache)

    noise = pkg / "noise.py"
    noise.write_text(
        "import numpy as np\n"
        "def make_generator(seed):\n"
        "    return np.random.default_rng(seed)\n"
    )
    after = _check(pkg, cache)
    assert after.n_reanalyzed == 1      # only noise.py re-parsed per-file
    assert not after.tree_cached        # flow pass re-ran (tree changed)
    assert after.result.findings == []  # the fix is visible immediately


def test_no_cache_escape_hatch(tmp_path):
    pkg = _make_pkg(tmp_path)
    cache = tmp_path / "cache.json"
    out = _check(pkg, cache, use_cache=False)
    assert out.n_reanalyzed == 3
    assert not cache.exists()           # --no-cache never writes


def test_rule_set_change_invalidates_the_signature(tmp_path):
    pkg = _make_pkg(tmp_path)
    cache = tmp_path / "cache.json"
    _check(pkg, cache)
    narrowed = incremental_check(
        [str(pkg)], per_file_rules=[], flow_rules=[ALL_FLOW_RULES[0]],
        cache_path=cache,
    )
    assert narrowed.n_reanalyzed == 3   # different signature: full rerun
    assert not narrowed.tree_cached


def test_corrupt_cache_degrades_to_cold_run(tmp_path):
    pkg = _make_pkg(tmp_path)
    cache = tmp_path / "cache.json"
    cache.write_text("{not json")
    out = _check(pkg, cache)
    assert out.n_reanalyzed == 3
    assert [f.rule_id for f in out.result.findings] == ["RF001"]
    # and the broken file was replaced with a valid one
    json.loads(cache.read_text())


def test_cache_payload_shape_is_stable(tmp_path):
    pkg = _make_pkg(tmp_path)
    cache = tmp_path / "cache.json"
    _check(pkg, cache)
    payload = json.loads(cache.read_text())
    assert set(payload) == {"signature", "files", "tree"}
    assert all("hash" in entry for entry in payload["files"].values())
    assert "flow" in payload["tree"]
    assert payload["tree"]["flow"]["stats"]["files"] == 3


def _make_conc_pkg(tmp_path):
    pkg = tmp_path / "conc_pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "counter.py").write_text(
        "import threading\n"
        "class Counter:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self.n = 0\n"
        "    def bump(self):\n"
        "        with self._lock:\n"
        "            self.n += 1\n"
        "    def reset(self):\n"
        "        self.n = 0\n"
    )
    return pkg


def _conc_check(pkg, cache, **kwargs):
    return incremental_check(
        [str(pkg)], per_file_rules=[],
        concurrency_rules=list(ALL_CONCURRENCY_RULES),
        cache_path=cache, **kwargs,
    )


def test_concurrency_warm_run_parses_nothing_and_renders_identically(
        tmp_path, monkeypatch):
    pkg = _make_conc_pkg(tmp_path)
    cache = tmp_path / "cache.json"
    cold = _conc_check(pkg, cache)
    assert [f.rule_id for f in cold.result.findings] == ["RC001"]
    assert not cold.tree_cached
    assert isinstance(cold.stats["concurrency"], dict)

    calls = {"n": 0}
    real_parse = ast.parse

    def counting_parse(*args, **kwargs):
        calls["n"] += 1
        return real_parse(*args, **kwargs)

    monkeypatch.setattr(ast, "parse", counting_parse)
    warm = _conc_check(pkg, cache)
    assert warm.n_reanalyzed == 0
    assert warm.tree_cached
    assert calls["n"] == 0
    cold_json = render_json(cold.result, stats=cold.stats)
    warm_json = render_json(warm.result, stats=warm.stats)
    assert warm_json == cold_json   # lock-model stats round-trip too
    payload = json.loads(cache.read_text())
    assert set(payload) == {"signature", "files", "tree"}
    conc_section = payload["tree"]["concurrency"]
    assert set(conc_section) == {"findings", "suppressed", "stats"}
    assert conc_section["stats"]["concurrency"]["locks"] == 1


def test_concurrency_rule_set_change_invalidates_the_signature(tmp_path):
    pkg = _make_conc_pkg(tmp_path)
    cache = tmp_path / "cache.json"
    _conc_check(pkg, cache)
    narrowed = incremental_check(
        [str(pkg)], per_file_rules=[],
        concurrency_rules=[ALL_CONCURRENCY_RULES[4]],
        cache_path=cache,
    )
    assert narrowed.n_reanalyzed == 2   # different signature: full rerun
    assert not narrowed.tree_cached
    assert narrowed.result.findings == []   # RC005 alone: counter is clean


def test_flow_and_concurrency_share_one_graph_build(tmp_path, monkeypatch):
    """When both tree passes miss the cache, exactly one call graph is
    built and handed to both."""
    from repro.staticcheck import concurrency, flow, graph, incremental

    builds = {"n": 0}
    real_build = graph.build_call_graph

    def counting_build(paths):
        builds["n"] += 1
        return real_build(paths)

    for module in (incremental, flow, concurrency):
        monkeypatch.setattr(module, "build_call_graph", counting_build)
    pkg = _make_conc_pkg(tmp_path)
    out = incremental_check(
        [str(pkg)], per_file_rules=[],
        flow_rules=list(ALL_FLOW_RULES),
        concurrency_rules=list(ALL_CONCURRENCY_RULES),
        cache_path=tmp_path / "cache.json", use_cache=False,
    )
    assert builds["n"] == 1
    assert [f.rule_id for f in out.result.findings] == ["RC001"]


def test_all_three_tree_passes_share_one_graph_build(tmp_path, monkeypatch):
    """Flow + concurrency + arrays all missing the cache still build
    exactly one call graph between them."""
    from repro.staticcheck import arrays, concurrency, flow, graph, incremental
    from repro.staticcheck.arrays import ALL_ARRAY_RULES

    builds = {"n": 0}
    real_build = graph.build_call_graph

    def counting_build(paths):
        builds["n"] += 1
        return real_build(paths)

    for module in (incremental, flow, concurrency, arrays):
        monkeypatch.setattr(module, "build_call_graph", counting_build)
    pkg = _make_conc_pkg(tmp_path)
    out = incremental_check(
        [str(pkg)], per_file_rules=[],
        flow_rules=list(ALL_FLOW_RULES),
        concurrency_rules=list(ALL_CONCURRENCY_RULES),
        array_rules=list(ALL_ARRAY_RULES),
        cache_path=tmp_path / "cache.json", use_cache=False,
    )
    assert builds["n"] == 1
    assert [f.rule_id for f in out.result.findings] == ["RC001"]


def test_arrays_warm_run_parses_nothing_and_renders_identically(
        tmp_path, monkeypatch):
    from repro.staticcheck.arrays import ALL_ARRAY_RULES

    pkg = tmp_path / "arr_pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "kernel.py").write_text(
        "import numpy as np\n"
        "def weights(n: int):\n"
        "    return np.zeros(n, dtype=np.float32)\n"
    )
    cache = tmp_path / "cache.json"

    def _arr_check(**kwargs):
        return incremental_check(
            [str(pkg)], per_file_rules=[],
            array_rules=list(ALL_ARRAY_RULES),
            cache_path=cache, **kwargs,
        )

    cold = _arr_check()
    assert [f.rule_id for f in cold.result.findings] == ["RA001"]
    assert not cold.tree_cached
    assert isinstance(cold.stats["arrays"], dict)

    calls = {"n": 0}
    real_parse = ast.parse

    def counting_parse(*args, **kwargs):
        calls["n"] += 1
        return real_parse(*args, **kwargs)

    monkeypatch.setattr(ast, "parse", counting_parse)
    warm = _arr_check()
    assert warm.n_reanalyzed == 0
    assert warm.tree_cached
    assert calls["n"] == 0
    cold_json = render_json(cold.result, stats=cold.stats)
    warm_json = render_json(warm.result, stats=warm.stats)
    assert warm_json == cold_json   # interpreter stats round-trip too
    payload = json.loads(cache.read_text())
    arr_section = payload["tree"]["arrays"]
    assert set(arr_section) == {"findings", "suppressed", "stats"}
    assert arr_section["stats"]["arrays"]["functions_interpreted"] == 1


def test_combined_warm_run_is_byte_identical_with_zero_parses(
        tmp_path, capsys, monkeypatch):
    """The acceptance criterion, end-to-end through the CLI with all
    three tree passes on: cold vs warm JSON byte-identity and zero
    ``ast.parse`` calls on the warm run."""
    from repro.staticcheck.cli import main

    monkeypatch.chdir(tmp_path)
    pkg = _make_conc_pkg(tmp_path)
    (pkg / "kernel.py").write_text(
        "import numpy as np\n"
        "def weights(n: int):\n"
        "    return np.zeros(n, dtype=np.float32)\n"
    )
    argv = ["--no-domain", "--flow", "--concurrency", "--arrays",
            "--format", "json", str(pkg)]
    assert main(argv) == 1
    cold = capsys.readouterr().out

    calls = {"n": 0}
    real_parse = ast.parse

    def counting_parse(*args, **kwargs):
        calls["n"] += 1
        return real_parse(*args, **kwargs)

    monkeypatch.setattr(ast, "parse", counting_parse)
    assert main(argv) == 1
    warm = capsys.readouterr().out
    assert warm == cold
    assert calls["n"] == 0
    payload = json.loads(warm)
    rules = {f["rule"] for f in payload["findings"]}
    assert rules == {"RC001", "RA001"}
    assert payload["call_graph"]["arrays"]["hot_functions"] == 0


def test_cli_cold_and_warm_json_byte_identical(tmp_path, capsys, monkeypatch):
    """End-to-end through the CLI: the acceptance criterion itself."""
    from repro.staticcheck.cli import main

    monkeypatch.chdir(tmp_path)
    pkg = _make_pkg(tmp_path)
    argv = ["--no-domain", "--flow", "--format", "json", str(pkg)]
    assert main(argv) == 1
    cold = capsys.readouterr().out
    assert main(argv) == 1
    warm = capsys.readouterr().out
    assert warm == cold
    payload = json.loads(warm)
    assert payload["findings"][0]["rule"] == "RF001"
    assert payload["findings"][0]["chain"]  # chains survive the round-trip
    assert (tmp_path / ".staticcheck_cache.json").exists()


def test_cli_concurrency_cold_and_warm_json_byte_identical(
        tmp_path, capsys, monkeypatch):
    from repro.staticcheck.cli import main

    monkeypatch.chdir(tmp_path)
    pkg = _make_conc_pkg(tmp_path)
    argv = ["--no-domain", "--concurrency", "--format", "json", str(pkg)]
    assert main(argv) == 1
    cold = capsys.readouterr().out
    assert main(argv) == 1
    warm = capsys.readouterr().out
    assert warm == cold
    payload = json.loads(warm)
    assert payload["findings"][0]["rule"] == "RC001"
    assert payload["call_graph"]["concurrency"]["locks"] == 1
