"""Concurrency rules RC001-RC005: exact findings, chains, suppression.

Each RC rule has a dedicated fixture *package* under ``fixtures/`` and
the tests pin the exact reported line, column, and message — plus the
``via`` chain where the rule emits one — so a lock-model or resolver
regression fails loudly here.  Every package is also run under the
**full** RC rule set, pinning the absence of cross-rule false positives.
"""

from pathlib import Path

import pytest

from repro.staticcheck.concurrency import (
    ALL_CONCURRENCY_RULES,
    build_lock_model,
    concurrency_rule_catalogue,
    get_concurrency_rules,
    lint_concurrency,
)
from repro.staticcheck.graph import build_call_graph

FIXTURES = Path(__file__).parent / "fixtures"


def _report(pkg, rules=ALL_CONCURRENCY_RULES):
    return lint_concurrency([str(FIXTURES / pkg)], rules=rules)


def _write_pkg(tmp_path, name, **modules):
    pkg = tmp_path / name
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    for mod, source in modules.items():
        (pkg / f"{mod}.py").write_text(source)
    return pkg


# --- RC001 ----------------------------------------------------------------

def test_rc001_lock_free_writers_of_guarded_attributes():
    report = _report("rc001_pkg")
    telemetry = str(FIXTURES / "rc001_pkg" / "telemetry.py")
    found = [(f.path, f.line, f.col, f.rule_id)
             for f in report.result.sorted_findings()]
    # requeue's mutator call and reset's bare assignment, nothing else:
    # the guarded writers, the __init__ seeds, and the lock attribute
    # itself all stay silent
    assert found == [
        (telemetry, 26, 8, "RC001"),
        (telemetry, 29, 8, "RC001"),
    ]
    mutator, assign = report.result.sorted_findings()
    assert mutator.message == (
        "attribute `pending` of rc001_pkg.telemetry.Telemetry is written "
        "under rc001_pkg.telemetry.Telemetry._lock elsewhere but "
        "lock-free in rc001_pkg.telemetry.Telemetry.requeue"
    )
    assert assign.message == (
        "attribute `n_events` of rc001_pkg.telemetry.Telemetry is "
        "written under rc001_pkg.telemetry.Telemetry._lock elsewhere "
        "but lock-free in rc001_pkg.telemetry.Telemetry.reset"
    )


def test_rc001_assumed_locked_helper_is_not_flagged(tmp_path):
    """The ``_evaluate_batch_locked -> _dispatch`` idiom: a private
    helper only ever entered under the lock inherits held status."""
    pkg = _write_pkg(tmp_path, "ok1_pkg", engine=(
        "import threading\n"
        "class Engine:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self.n = 0\n"
        "    def run(self):\n"
        "        with self._lock:\n"
        "            self._bump()\n"
        "    def tick(self):\n"
        "        with self._lock:\n"
        "            self.n += 1\n"
        "    def _bump(self):\n"
        "        self.n += 1\n"
    ))
    report = lint_concurrency([str(pkg)])
    assert report.result.findings == []
    conc = report.stats["concurrency"]
    assert conc["assumed_locked_methods"] == 1


def test_rc001_one_lock_free_call_site_revokes_assumed_status(tmp_path):
    """The fixpoint is sound: a single unlocked path into the helper
    strips its assumed-locked status, and the write gets flagged."""
    pkg = _write_pkg(tmp_path, "bad1_pkg", engine=(
        "import threading\n"
        "class Engine:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self.n = 0\n"
        "    def run(self):\n"
        "        with self._lock:\n"
        "            self._bump()\n"
        "    def tick(self):\n"
        "        with self._lock:\n"
        "            self.n += 1\n"
        "    def sneak(self):\n"
        "        self._bump()\n"
        "    def _bump(self):\n"
        "        self.n += 1\n"
    ))
    report = lint_concurrency([str(pkg)])
    assert [(f.rule_id, f.line) for f in report.result.findings] == \
        [("RC001", 15)]
    assert "_bump" in report.result.findings[0].message


# --- RC002 ----------------------------------------------------------------

def test_rc002_lock_free_call_site_reports_chain_to_entry_point():
    report = _report("rc002_pkg", rules=get_concurrency_rules(["RC002"]))
    journal = str(FIXTURES / "rc002_pkg" / "journal.py")
    orphan = str(FIXTURES / "rc002_pkg" / "orphan.py")
    site, no_owner = report.result.sorted_findings()
    assert (site.path, site.line, site.col) == (journal, 19, 8)
    assert site.message == (
        "rc002_pkg.journal.Journal._evict calls "
        "rc002_pkg.journal.Journal._append_locked without holding "
        "rc002_pkg.journal.Journal._lock"
    )
    # the chain walks back to the public entry point that reaches the
    # lock-free caller
    assert site.chain == (
        f"{journal}:16 rc002_pkg.journal.Journal.shrink -> "
        f"rc002_pkg.journal.Journal._evict",
    )
    assert (no_owner.path, no_owner.line, no_owner.col) == (orphan, 4, 0)
    assert no_owner.message == (
        "rc002_pkg.orphan._merge_locked follows the `_locked` naming "
        "convention but no owning lock could be inferred for "
        "rc002_pkg.orphan"
    )


def test_rc002_init_and_locked_named_callers_are_exempt(tmp_path):
    pkg = _write_pkg(tmp_path, "ok2_pkg", store=(
        "import threading\n"
        "class Store:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self._reset_locked()\n"
        "    def refresh(self):\n"
        "        with self._lock:\n"
        "            self._sync_locked()\n"
        "    def _sync_locked(self):\n"
        "        self._reset_locked()\n"
        "    def _reset_locked(self):\n"
        "        self.rows = []\n"
    ))
    report = lint_concurrency([str(pkg)])
    assert report.result.findings == []


# --- RC003 ----------------------------------------------------------------

def test_rc003_blocking_calls_reachable_from_async_root():
    report = _report("rc003_pkg", rules=get_concurrency_rules(["RC003"]))
    handler = str(FIXTURES / "rc003_pkg" / "handler.py")
    found = [(f.line, f.col) for f in report.result.sorted_findings()]
    assert found == [(19, 4), (20, 4), (28, 9)]
    sleep, acquire, opened = report.result.sorted_findings()
    assert sleep.message == (
        "blocking call `time.sleep(...)` (time.sleep) is reachable from "
        "async rc003_pkg.handler.handle — hand it off via "
        "run_in_executor or use the async API"
    )
    assert sleep.chain == (
        f"{handler}:14 rc003_pkg.handler.handle -> "
        f"rc003_pkg.handler._stage",
    )
    # the bare Lock.acquire() resolves through the inferred module lock
    assert "acquires inferred lock rc003_pkg.handler._LOCK" \
        in acquire.message
    assert "builtins.open" in opened.message
    assert opened.chain == (
        f"{handler}:15 rc003_pkg.handler.handle -> "
        f"rc003_pkg.handler._finish",
    )


def test_rc003_awaited_and_executor_shipped_calls_stay_silent():
    """The fixture's own `await asyncio.sleep(0)` and the lambda handed
    to run_in_executor (a nested def: deferred work) are not flagged —
    pinned by the exact finding list above, re-asserted here by count."""
    report = _report("rc003_pkg")
    assert len(report.result.findings) == 3
    assert all(f.rule_id == "RC003" for f in report.result.findings)


# --- RC004 ----------------------------------------------------------------

def test_rc004_segment_lifecycle_findings():
    report = _report("rc004_pkg", rules=get_concurrency_rules(["RC004"]))
    segments = str(FIXTURES / "rc004_pkg" / "segments.py")
    never, exposed, unbound, wrapper = report.result.sorted_findings()
    assert (never.line, never.col) == (11, 10)
    assert never.message == (
        "segment `shm` created in rc004_pkg.segments.stage_payload is "
        "never closed, unlinked, or handed off"
    )
    assert (exposed.line, exposed.col) == (17, 10)
    assert exposed.message == (
        "segment `seg` created in rc004_pkg.segments.publish may leak: "
        "1 call(s) between creation (line 17) and first release/hand-off "
        "(line 19) can raise — add try/finally or an except-path close"
    )
    assert (unbound.line, unbound.col) == (24, 4)
    assert unbound.message == (
        "rc004_pkg.segments.warm_cache creates a SharedMemory segment "
        "without binding it — it can never be closed or unlinked"
    )
    # the creator-wrapper fixpoint: _fresh_segment itself is exempt, but
    # its caller owns the lifecycle and leaks
    assert (wrapper.line, wrapper.col) == (43, 10)
    assert "created in rc004_pkg.segments.borrow" in wrapper.message
    assert all(f.path == segments for f in report.result.findings)
    # roundtrip's try/finally close+unlink keeps it silent
    assert not any("roundtrip" in f.message for f in report.result.findings)


def test_rc004_handoff_as_call_argument_is_evidence(tmp_path):
    pkg = _write_pkg(tmp_path, "ok4_pkg", ship=(
        "from multiprocessing import shared_memory\n"
        "def _register(seg):\n"
        "    return seg\n"
        "def ship(size):\n"
        "    seg = shared_memory.SharedMemory(create=True, size=size)\n"
        "    _register(seg)\n"
        "    return size\n"
    ))
    report = lint_concurrency(
        [str(pkg)], rules=get_concurrency_rules(["RC004"])
    )
    assert report.result.findings == []


# --- RC005 ----------------------------------------------------------------

def test_rc005_inversion_and_reacquisition():
    report = _report("rc005_pkg", rules=get_concurrency_rules(["RC005"]))
    transfer = str(FIXTURES / "rc005_pkg" / "transfer.py")
    cycle, reacquire = report.result.sorted_findings()
    # the cycle is anchored at its first edge (debit's inner with)
    assert (cycle.path, cycle.line, cycle.col) == (transfer, 14, 17)
    assert cycle.message == (
        "lock-order cycle among "
        "{rc005_pkg.transfer.Transfer._incoming, "
        "rc005_pkg.transfer.Transfer._outgoing}: "
        "rc005_pkg.transfer.Transfer._incoming -> "
        "rc005_pkg.transfer.Transfer._outgoing "
        f"(at {transfer}:14, rc005_pkg.transfer.Transfer.debit); "
        "rc005_pkg.transfer.Transfer._outgoing -> "
        "rc005_pkg.transfer.Transfer._incoming "
        f"(at {transfer}:19, rc005_pkg.transfer.Transfer.audit_sweep) "
        "— pick one global order"
    )
    assert (reacquire.path, reacquire.line, reacquire.col) == \
        (transfer, 24, 17)
    assert reacquire.message == (
        "rc005_pkg.transfer.Transfer.reconcile re-acquires non-reentrant "
        "lock rc005_pkg.transfer.Transfer._incoming it already holds — "
        "guaranteed deadlock"
    )
    # Recount's nested RLock re-acquisition is legal and unreported
    assert not any("Recount" in f.message for f in report.result.findings)


def test_rc005_transitive_reacquisition_through_a_callee(tmp_path):
    pkg = _write_pkg(tmp_path, "bad5_pkg", drain=(
        "import threading\n"
        "class Drain:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self.n = 0\n"
        "    def run(self):\n"
        "        with self._lock:\n"
        "            self.flush()\n"
        "    def flush(self):\n"
        "        with self._lock:\n"
        "            self.n = 0\n"
    ))
    report = lint_concurrency(
        [str(pkg)], rules=get_concurrency_rules(["RC005"])
    )
    assert [(f.rule_id, f.line) for f in report.result.findings] == \
        [("RC005", 8)]
    finding = report.result.findings[0]
    assert "holds" in finding.message
    assert "re-acquires it (transitively) — deadlock" in finding.message


def test_rc005_consistent_global_order_is_clean(tmp_path):
    pkg = _write_pkg(tmp_path, "ok5_pkg", transfer=(
        "import threading\n"
        "class Transfer:\n"
        "    def __init__(self):\n"
        "        self._a = threading.Lock()\n"
        "        self._b = threading.Lock()\n"
        "        self.n = 0\n"
        "    def debit(self):\n"
        "        with self._a:\n"
        "            with self._b:\n"
        "                self.n += 1\n"
        "    def credit(self):\n"
        "        with self._a:\n"
        "            with self._b:\n"
        "                self.n -= 1\n"
    ))
    report = lint_concurrency(
        [str(pkg)], rules=get_concurrency_rules(["RC005"])
    )
    assert report.result.findings == []


# --- suppression mechanics ------------------------------------------------

def test_suppression_on_the_offending_line(tmp_path):
    pkg = _write_pkg(tmp_path, "sup_pkg", counter=(
        "import threading\n"
        "class Counter:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self.n = 0\n"
        "    def bump(self):\n"
        "        with self._lock:\n"
        "            self.n += 1\n"
        "    def reset(self):\n"
        "        self.n = 0  "
        "# staticcheck: ignore[RC001] -- rebound before threads start\n"
    ))
    report = lint_concurrency([str(pkg)])
    assert report.result.findings == []
    assert report.result.suppressed_by_rule() == {"RC001": 1}
    (suppressed,) = report.result.sorted_suppressed()
    assert suppressed.line == 10


# --- the lock model -------------------------------------------------------

def test_lock_model_discovers_all_three_declaration_styles(tmp_path):
    pkg = _write_pkg(tmp_path, "locks_pkg", styles=(
        "import threading\n"
        "from dataclasses import dataclass, field\n"
        "_GLOBAL = threading.Lock()\n"
        "class Plain:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.RLock()\n"
        "@dataclass\n"
        "class Budget:\n"
        "    _lock: threading.Lock = field(default_factory=threading.Lock)\n"
    ))
    graph = build_call_graph([str(pkg)])
    model = build_lock_model(graph)
    assert model.module_locks["locks_pkg.styles"] == {
        "_GLOBAL": "locks_pkg.styles._GLOBAL",
    }
    assert model.class_locks["locks_pkg.styles.Plain"] == {
        "_lock": "locks_pkg.styles.Plain._lock",
    }
    assert model.class_locks["locks_pkg.styles.Budget"] == {
        "_lock": "locks_pkg.styles.Budget._lock",
    }
    assert model.lock_kinds["locks_pkg.styles.Plain._lock"] == "rlock"
    assert model.lock_kinds["locks_pkg.styles._GLOBAL"] == "lock"
    stats = model.stats()
    assert stats["locks"] == 3
    assert stats["classes_with_locks"] == 2
    assert stats["module_locks"] == 1


def test_report_carries_lock_model_stats():
    report = _report("rc001_pkg")
    conc = report.stats["concurrency"]
    assert conc["locks"] == 1
    assert conc["lock_map"] == {
        "rc001_pkg.telemetry.Telemetry":
            ["rc001_pkg.telemetry.Telemetry._lock"],
    }
    # graph resolution stats ride alongside, like the flow report
    assert report.stats["resolution_rate"] == 1.0


# --- registry -------------------------------------------------------------

def test_concurrency_rule_registry():
    ids = [r.rule_id for r in ALL_CONCURRENCY_RULES]
    assert ids == ["RC001", "RC002", "RC003", "RC004", "RC005"]
    assert [r["rule"] for r in concurrency_rule_catalogue()] == ids
    assert [r.rule_id for r in get_concurrency_rules(["rc003"])] == ["RC003"]
    with pytest.raises(ValueError):
        get_concurrency_rules(["RC999"])
