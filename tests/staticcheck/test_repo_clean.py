"""The repo gate: ``src/repro`` lints clean and its domain validates.

This is the test CI and every future PR runs — any new violation of the
determinism/cache-purity invariants fails here with the rule ID and
location, instead of surfacing later as a flaky hypothesis failure.
"""

from pathlib import Path

from repro.staticcheck import (
    expected_by_rule,
    lint_concurrency,
    lint_flow,
    lint_paths,
    reason_for,
    validate_default_domain,
)

REPO_ROOT = Path(__file__).resolve().parents[2]
PACKAGE = REPO_ROOT / "src" / "repro"


def test_package_source_is_present():
    assert (PACKAGE / "__init__.py").is_file()


def test_repo_lints_clean():
    result = lint_paths([PACKAGE])
    assert result.n_files > 80, "package walk looks truncated"
    pretty = "\n".join(f.format() for f in result.sorted_findings())
    assert result.findings == [], f"invariant violations:\n{pretty}"


def test_repo_flow_clean():
    """The interprocedural gate: RF001-RF005 over the whole call graph.

    Every genuine violation must be either fixed or carry a per-line
    ``# staticcheck: ignore[RFxxx]`` with a justifying comment AND a
    reasoned row in :mod:`repro.staticcheck.waivers` — the single
    inventory this gate reads its expectations from, so the marker,
    the reason, and the pin can never drift apart.
    """
    report = lint_flow([str(PACKAGE)])
    pretty = "\n".join(f.format() for f in report.result.sorted_findings())
    assert report.result.findings == [], f"flow violations:\n{pretty}"
    assert report.result.suppressed_by_rule() == expected_by_rule("RF"), (
        "the reviewed suppression inventory changed; update "
        "repro/staticcheck/waivers.py only alongside a justified "
        "per-line ignore"
    )
    for finding in report.result.suppressed:
        assert reason_for(finding.rule_id, finding.path) is not None, (
            f"suppressed {finding.rule_id} at {finding.path}:"
            f"{finding.line} has no waiver inventory row"
        )


def test_repo_concurrency_clean():
    """The concurrency gate: RC001-RC005 over the inferred lock model.

    The pass earned its keep on arrival by catching a real RC001 in
    ``SignatureIndex.find_similar`` (the ``n_lookups`` telemetry bump
    sat outside the ``with self._lock`` every other writer takes — a
    lost-update race under shard concurrency, since fixed).  The
    suppression inventory is pinned at **empty**: the first RC waiver
    must land in repro/staticcheck/waivers.py alongside its justified
    per-line ignore.
    """
    report = lint_concurrency([str(PACKAGE)])
    pretty = "\n".join(f.format() for f in report.result.sorted_findings())
    assert report.result.findings == [], f"concurrency violations:\n{pretty}"
    assert report.result.suppressed_by_rule() == expected_by_rule("RC"), (
        "the RC suppression inventory changed; update "
        "repro/staticcheck/waivers.py only alongside a justified "
        "per-line ignore"
    )
    assert expected_by_rule("RC") == {}


def test_repo_lock_model_covers_the_service_layer():
    """The inference must keep seeing the locks the service relies on —
    an inference regression would silently turn the gate vacuous."""
    report = lint_concurrency([str(PACKAGE)])
    conc = report.stats["concurrency"]
    assert conc["locks"] >= 10, conc
    lock_map = conc["lock_map"]
    for owner_fragment in (
        "HistoryLog", "SignatureIndex", "CostLedger", "TuningService",
        "EvaluationEngine",
    ):
        assert any(owner_fragment in owner for owner in lock_map), (
            owner_fragment, sorted(lock_map),
        )
    # the _*_locked helper discipline is actually exercised repo-wide
    assert conc["assumed_locked_methods"] >= 5, conc


def test_repo_call_graph_resolves_most_sites():
    """The soundness caveat stays quantified: the resolver must keep
    pinning down the bulk of non-external calls or flow findings lose
    their meaning."""
    report = lint_flow([str(PACKAGE)])
    assert report.stats["resolution_rate"] > 0.6, report.stats
    assert report.stats["functions"] > 500, report.stats


def test_domain_definitions_validate():
    findings = validate_default_domain()
    pretty = "\n".join(f.format() for f in findings)
    assert findings == [], f"domain violations:\n{pretty}"


def test_eval_request_exclusions_match_runtime_fields():
    """The declared cache-key exclusion names real EvalRequest fields."""
    import dataclasses

    from repro.engine.engine import EvalRequest

    field_names = {f.name for f in dataclasses.fields(EvalRequest)}
    assert set(EvalRequest._cache_key_excluded) <= field_names
    # And the runtime behaviour matches the declaration: attempt must not
    # influence the cache key.
    import dataclasses as dc

    from repro.cloud.cluster import Cluster
    from repro.config.spark_params import SPARK_DEFAULTS
    from repro.config.space import Configuration

    request = EvalRequest(
        workload="w", input_mb=100.0, cluster=Cluster.of("m5.xlarge", 2),
        config=Configuration(SPARK_DEFAULTS), seed=3,
    )
    retried = dc.replace(request, attempt=2)
    assert request.cache_key() == retried.cache_key()
