"""Per-rule coverage: every fixture trips exactly its rule, line-exactly.

Each file under ``fixtures/`` holds known-bad snippets for one rule plus
one suppressed line, so these tests pin (a) the rule IDs, (b) the exact
line numbers, and (c) that ``# staticcheck: ignore[...]`` works.
"""

from pathlib import Path

import pytest

from repro.staticcheck import lint_paths, lint_source
from repro.staticcheck.model import parse_suppressions
from repro.staticcheck.rules import ALL_RULES, get_rules

FIXTURES = Path(__file__).parent / "fixtures"

#: fixture file -> (expected rule, expected finding lines, expected suppressions)
EXPECTED = {
    "rs001_unseeded_rng.py": ("RS001", [10, 11, 12, 13, 14], 1),
    "rs002_wallclock.py": ("RS002", [9, 10, 11], 1),
    "rs003_mutable_default.py": ("RS003", [6, 10, 14, 18, 22, 26], 1),
    "rs004_float_eq.py": ("RS004", [5, 6, 7], 1),
    "rs005_slots.py": ("RS005", [10, 13], 1),
    "rs006_cache_key.py": ("RS006", [10, 14, 16], 1),
}


def test_every_rule_has_a_fixture():
    covered = {rule_id for rule_id, _, _ in EXPECTED.values()}
    assert covered == {rule.rule_id for rule in ALL_RULES}
    for name in EXPECTED:
        assert (FIXTURES / name).is_file(), f"missing fixture {name}"


@pytest.mark.parametrize("fixture,expected", sorted(EXPECTED.items()),
                         ids=sorted(EXPECTED))
def test_fixture_trips_exactly_its_rule(fixture, expected):
    rule_id, lines, _ = expected
    result = lint_paths([FIXTURES / fixture],
                        rules=get_rules([rule_id]))
    assert [f.rule_id for f in result.findings] == [rule_id] * len(lines)
    assert [f.line for f in result.sorted_findings()] == lines


@pytest.mark.parametrize("fixture,expected", sorted(EXPECTED.items()),
                         ids=sorted(EXPECTED))
def test_fixture_under_all_rules_only_reports_its_rule(fixture, expected):
    """No cross-contamination: other rules stay silent on each fixture."""
    rule_id, lines, _ = expected
    result = lint_paths([FIXTURES / fixture])
    assert {f.rule_id for f in result.findings} == {rule_id}
    assert len(result.findings) == len(lines)


@pytest.mark.parametrize("fixture,expected", sorted(EXPECTED.items()),
                         ids=sorted(EXPECTED))
def test_suppressions_are_counted_not_reported(fixture, expected):
    rule_id, _, n_suppressed = expected
    result = lint_paths([FIXTURES / fixture], rules=get_rules([rule_id]))
    assert result.n_suppressed >= 1
    source = (FIXTURES / fixture).read_text()
    unsuppressed = lint_source(
        source.replace("# staticcheck: ignore", "# was-ignored"),
        FIXTURES / fixture, rules=get_rules([rule_id]),
    )
    assert len(unsuppressed.findings) == len(result.findings) + n_suppressed
    assert unsuppressed.n_suppressed == 0


def test_scoped_rules_skip_out_of_scope_repro_files(tmp_path):
    """RS004 is contracted for simulator/costmodel/scheduler only."""
    bad = "def f(x):\n    return x == 1.5\n"
    root = tmp_path / "src" / "repro"
    package = root / "analysis"
    package.mkdir(parents=True)
    (root / "__init__.py").write_text("")   # scope anchors on the package dir
    out_of_scope = package / "stats.py"
    out_of_scope.write_text(bad)
    in_scope = root / "sparksim"
    in_scope.mkdir(parents=True)
    contracted = in_scope / "costmodel.py"
    contracted.write_text(bad)

    assert lint_paths([out_of_scope], rules=get_rules(["RS004"])).clean
    assert not lint_paths([contracted], rules=get_rules(["RS004"])).clean
    # --ignore-scopes applies the rule everywhere.
    assert not lint_paths([out_of_scope], rules=get_rules(["RS004"]),
                          respect_scopes=False).clean


def test_files_outside_repro_tree_get_full_strictness(tmp_path):
    """Scoping narrows enforcement inside the package, never outside it."""
    snippet = tmp_path / "scratch.py"
    snippet.write_text("import time\nstart = time.time()\n")
    result = lint_paths([snippet], rules=get_rules(["RS002"]))
    assert [f.rule_id for f in result.findings] == ["RS002"]


def test_syntax_error_reports_rs000(tmp_path):
    broken = tmp_path / "broken.py"
    broken.write_text("def f(:\n")
    result = lint_paths([broken])
    assert [f.rule_id for f in result.findings] == ["RS000"]


def test_unknown_rule_id_rejected():
    with pytest.raises(ValueError, match="RS999"):
        get_rules(["RS999"])


def test_suppression_parser_variants():
    source = (
        "a = 1  # staticcheck: ignore\n"
        "b = 2  # staticcheck: ignore[RS001, RS004]\n"
        "c = 3  # nothing here\n"
    )
    sup = parse_suppressions(source)
    assert sup.silences(1, "RS005")           # bare ignore silences all
    assert sup.silences(2, "RS001") and sup.silences(2, "RS004")
    assert not sup.silences(2, "RS002")
    assert not sup.silences(3, "RS001")
