"""Runtime lock-order sanitizer: inversions, reentrancy, reporting.

The closing test loads the RC005 fixture package and drives its two
methods under the sanitizer, proving the dynamic half catches at runtime
exactly the inversion the static pass flags — the seeded deadlock the
acceptance criteria call for.
"""

import importlib.util
import threading
from pathlib import Path

import pytest

from repro.staticcheck.concurrency import (
    get_concurrency_rules,
    lint_concurrency,
)
from repro.staticcheck.dynsan import (
    LockOrderSanitizer,
    LockOrderViolation,
    SanitizedLock,
    instrument_attr,
)

FIXTURES = Path(__file__).parent / "fixtures"


def test_inversion_raises_with_both_edges_named():
    san = LockOrderSanitizer()
    a = san.lock("A")
    b = san.lock("B")
    with a:
        with b:
            pass
    with b:
        with pytest.raises(LockOrderViolation) as exc:
            a.acquire()
    message = str(exc.value)
    assert "lock-order cycle: B -> A -> B" in message
    assert "edge B -> A just observed" in message


def test_failed_inversion_leaves_locks_releasable():
    """The violation fires *before* the underlying acquire, so the held
    stack stays truthful and the outer lock still releases cleanly."""
    san = LockOrderSanitizer()
    a = san.lock("A")
    b = san.lock("B")
    with a:
        with b:
            pass
    with pytest.raises(LockOrderViolation):
        with b:
            with a:
                pass
    # b was released by the with-exit; a was never acquired
    assert a.acquire(blocking=False)
    a.release()
    assert b.acquire(blocking=False)
    b.release()


def test_non_reentrant_reacquisition_raises():
    san = LockOrderSanitizer()
    lock = san.lock("L")
    with lock:
        with pytest.raises(LockOrderViolation, match="re-acquires"):
            lock.acquire()
    assert lock.acquire(blocking=False)
    lock.release()


def test_reentrant_lock_reacquisition_is_legal():
    san = LockOrderSanitizer()
    lock = san.lock("R", reentrant=True)
    with lock:
        with lock:
            pass
    wrapped = san.wrap(threading.RLock(), "W")
    assert wrapped.reentrant       # inferred from the wrapped type
    with wrapped:
        with wrapped:
            pass
    assert san.cycles() == []


def test_survey_mode_records_instead_of_raising():
    san = LockOrderSanitizer(raise_on_cycle=False)
    a = san.lock("A")
    b = san.lock("B")
    with a:
        with b:
            pass
    with b:
        with a:
            pass                   # no raise: survey mode
    assert san.cycles() == [["A", "B"]]
    edges = {(held, acquired) for held, acquired, _desc in san.edges()}
    assert edges == {("A", "B"), ("B", "A")}


def test_edges_record_first_observation_descriptions():
    san = LockOrderSanitizer()
    outer = san.lock("outer")
    inner = san.lock("inner")
    with outer:
        with inner:
            pass
    [(held, acquired, desc)] = san.edges()
    assert (held, acquired) == ("outer", "inner")
    assert "acquired inner while holding outer" in desc


def test_threads_contend_without_false_positives():
    """Consistent A-then-B ordering across many threads never trips the
    sanitizer; the graph stays a single edge."""
    san = LockOrderSanitizer()
    a = san.lock("A")
    b = san.lock("B")
    total = [0]

    def worker():
        for _ in range(200):
            with a:
                with b:
                    total[0] += 1

    threads = [threading.Thread(target=worker) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert total[0] == 800
    assert san.cycles() == []
    assert [(h, acq) for h, acq, _ in san.edges()] == [("A", "B")]


def test_failed_nonblocking_acquire_does_not_pollute_the_stack():
    san = LockOrderSanitizer()
    raw = threading.Lock()
    raw.acquire()                  # held elsewhere (simulated)
    wrapped = san.wrap(raw, "busy")
    other = san.lock("other")
    assert not wrapped.acquire(blocking=False)
    raw.release()
    # a failed acquire must not leave "busy" on the held stack: taking
    # another lock now must not record a busy -> other edge
    with other:
        pass
    assert san.edges() == []


def test_instrument_attr_swaps_in_place_and_labels():
    class Holder:
        def __init__(self):
            self._lock = threading.Lock()

        def poke(self):
            with self._lock:
                return True

    san = LockOrderSanitizer()
    holder = Holder()
    wrapped = instrument_attr(holder, "_lock", san)
    assert holder._lock is wrapped
    assert isinstance(wrapped, SanitizedLock)
    assert wrapped.name == "Holder._lock"
    assert holder.poke()


# --- the seeded deadlock: static finding, dynamic catch -------------------

def _load_transfer_module():
    path = FIXTURES / "rc005_pkg" / "transfer.py"
    spec = importlib.util.spec_from_file_location("rc005_transfer", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_dynsan_catches_the_inversion_the_static_pass_flags():
    """RC005 statically names the cycle in the rc005 fixture; driving the
    same two methods under the sanitizer reproduces it at runtime as a
    LockOrderViolation instead of a hung test."""
    report = lint_concurrency(
        [str(FIXTURES / "rc005_pkg")],
        rules=get_concurrency_rules(["RC005"]),
    )
    static_cycles = [
        f for f in report.result.findings if "lock-order cycle" in f.message
    ]
    assert len(static_cycles) == 1
    assert "Transfer._incoming" in static_cycles[0].message
    assert "Transfer._outgoing" in static_cycles[0].message

    module = _load_transfer_module()
    transfer = module.Transfer()
    san = LockOrderSanitizer()
    instrument_attr(transfer, "_incoming", san)
    instrument_attr(transfer, "_outgoing", san)
    transfer.debit(1)              # records incoming -> outgoing
    with pytest.raises(LockOrderViolation) as exc:
        transfer.audit_sweep()     # outgoing -> incoming closes the cycle
    message = str(exc.value)
    assert "Transfer._incoming" in message
    assert "Transfer._outgoing" in message
    # the runtime graph names the same SCC the static finding does
    survey = LockOrderSanitizer(raise_on_cycle=False)
    fresh = module.Transfer()
    instrument_attr(fresh, "_incoming", survey)
    instrument_attr(fresh, "_outgoing", survey)
    fresh.debit(1)
    fresh.audit_sweep()
    assert survey.cycles() == [["Transfer._incoming", "Transfer._outgoing"]]


def test_dynsan_catches_the_reacquisition_too():
    module = _load_transfer_module()
    transfer = module.Transfer()
    san = LockOrderSanitizer()
    instrument_attr(transfer, "_incoming", san)
    with pytest.raises(LockOrderViolation, match="re-acquires"):
        transfer.reconcile()
