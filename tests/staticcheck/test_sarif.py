"""SARIF renderer: schema shape, rule coverage, and exact round-trip."""

import json
from pathlib import Path

from repro.staticcheck import (
    get_concurrency_rules,
    get_flow_rules,
    incremental_check,
    lint_arrays,
    lint_paths,
    rule_registry,
)
from repro.staticcheck.sarif import findings_from_sarif, render_sarif

FIXTURES = Path(__file__).parent / "fixtures"


def _mixed_result(tmp_path):
    """One result with findings AND suppressions across families."""
    outcome = incremental_check(
        [
            str(FIXTURES / "rs001_unseeded_rng.py"),
            str(FIXTURES / "ra001_pkg"),
            str(FIXTURES / "rf001_pkg"),
            str(FIXTURES / "rc001_pkg"),
        ],
        flow_rules=get_flow_rules(),
        concurrency_rules=get_concurrency_rules(),
        array_rules=None,
        run_domain=False,
        cache_path=tmp_path / "cache.json",
    )
    return outcome.result


def test_sarif_document_shape(tmp_path):
    result = _mixed_result(tmp_path)
    payload = json.loads(render_sarif(result))
    assert payload["version"] == "2.1.0"
    assert "sarif-schema-2.1.0" in payload["$schema"]
    (run,) = payload["runs"]
    driver = run["tool"]["driver"]
    assert driver["name"] == "repro.staticcheck"
    # the tool component carries every family's rules, straight from
    # the registry that serves --list-rules
    ids = {rule["id"] for rule in driver["rules"]}
    for prefix in ("RS", "RD", "RF", "RC", "RA"):
        assert any(i.startswith(prefix) for i in ids), prefix
    assert len(run["results"]) >= 3
    for row in run["results"]:
        region = row["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] >= 1
        assert region["startColumn"] >= 1       # SARIF is 1-based
        assert row["ruleId"] == driver["rules"][row["ruleIndex"]]["id"]


def test_sarif_levels_match_registry():
    by_id = {e.rule_id: e.severity for e in rule_registry()}
    report = lint_arrays([str(FIXTURES / "ra001_pkg")])
    payload = json.loads(render_sarif(report.result))
    for row in payload["runs"][0]["results"]:
        assert row["level"] == by_id[row["ruleId"]]


def test_sarif_round_trip_is_exact(tmp_path):
    # include a suppressed finding so the inSource path round-trips too
    pkg = tmp_path / "sup_pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "mod.py").write_text(
        "import numpy as np\n"
        "def a(n: int):\n"
        "    return np.zeros(n, dtype=np.float32)\n"
        "def b(n: int):\n"
        "    return np.arange(n, dtype=np.int_)"
        "  # staticcheck: ignore[RA001] -- fixture\n"
    )
    report = lint_arrays([str(pkg)])
    assert report.result.findings and report.result.suppressed
    text = render_sarif(report.result, stats=report.stats)
    findings, suppressed = findings_from_sarif(text)
    assert findings == report.result.sorted_findings()
    assert suppressed == report.result.sorted_suppressed()


def test_sarif_round_trip_preserves_chains():
    report = lint_arrays([str(FIXTURES / "ra003_pkg")])
    chained = [f for f in report.result.findings if f.chain]
    assert chained, "ra003 fixture should produce chained findings"
    findings, _ = findings_from_sarif(render_sarif(report.result))
    assert findings == report.result.sorted_findings()


def test_sarif_output_is_deterministic():
    result = lint_paths([str(FIXTURES / "rs001_unseeded_rng.py")])
    assert render_sarif(result) == render_sarif(result)
