"""Tests for resource-grant packing and configuration repair."""

import pytest

from repro.cloud import Cluster
from repro.config import grant_resources, repair, spark_space


@pytest.fixture
def space():
    return spark_space()


def _config(space, **overrides):
    return space.default_configuration().replace(**overrides)


class TestGrantResources:
    def test_default_fits(self, space, cluster):
        grant = grant_resources(space.default_configuration(), cluster)
        assert grant.executors == 2
        assert grant.fully_granted

    def test_oversized_memory_rejected(self, space, cluster):
        # 128 GiB executors cannot fit 64 GiB nodes.
        cfg = _config(space, **{"spark.executor.memory": 65536,
                                "spark.executor.memoryOverheadFactor": 0.1})
        grant = grant_resources(cfg, cluster)
        assert grant.executors == 0

    def test_too_many_cores_rejected(self, space):
        small = Cluster.of("m5.large", 4)  # 2 vCPUs per node
        cfg = _config(space, **{"spark.executor.cores": 8})
        assert grant_resources(cfg, small).executors == 0

    def test_request_capped_by_capacity(self, space, cluster):
        # 48 executors x 8 cores = 384 cores requested; cluster has 64.
        cfg = _config(space, **{"spark.executor.instances": 48,
                                "spark.executor.cores": 8,
                                "spark.executor.memory": 2048})
        grant = grant_resources(cfg, cluster)
        assert 0 < grant.executors < 48
        assert not grant.fully_granted
        assert grant.total_slots <= cluster.total_vcpus

    def test_memory_overhead_counted(self, space, cluster):
        # 32 GiB heap + 40% overhead = 45 GiB container; one per 64 GiB node.
        cfg = _config(space, **{"spark.executor.instances": 48,
                                "spark.executor.cores": 1,
                                "spark.executor.memory": 32768,
                                "spark.executor.memoryOverheadFactor": 0.4})
        grant = grant_resources(cfg, cluster)
        assert grant.executors <= cluster.count

    def test_driver_reserves_resources(self, space, cluster):
        # Huge driver shrinks capacity on one node only.
        small_driver = _config(space, **{"spark.executor.instances": 48,
                                         "spark.executor.memory": 4096,
                                         "spark.driver.memory": 1024})
        big_driver = small_driver.replace(**{"spark.driver.memory": 16384})
        g_small = grant_resources(small_driver, cluster)
        g_big = grant_resources(big_driver, cluster)
        assert g_big.executors <= g_small.executors

    def test_grant_slots(self, space, cluster):
        cfg = _config(space, **{"spark.executor.instances": 4,
                                "spark.executor.cores": 4,
                                "spark.executor.memory": 4096})
        grant = grant_resources(cfg, cluster)
        assert grant.total_slots == 16


class TestRepair:
    def test_feasible_untouched(self, space, cluster):
        cfg = space.default_configuration()
        assert repair(cfg, cluster) is cfg

    def test_repairs_oversized_memory(self, space, cluster):
        cfg = _config(space, **{"spark.executor.memory": 65536})
        fixed = repair(cfg, cluster)
        assert grant_resources(fixed, cluster).executors >= 1

    def test_repairs_core_count(self, space):
        small = Cluster.of("m5.large", 2)
        cfg = _config(space, **{"spark.executor.cores": 16})
        fixed = repair(cfg, small)
        assert fixed["spark.executor.cores"] <= small.instance.vcpus
        assert grant_resources(fixed, small).executors >= 1
