"""Unit tests for parameter types and configuration spaces."""

import math

import numpy as np
import pytest

from repro.config import (
    BoolParameter,
    CategoricalParameter,
    Configuration,
    ConfigurationSpace,
    FloatParameter,
    IntParameter,
)


class TestIntParameter:
    def test_bounds_inclusive(self):
        p = IntParameter("x", 1, 10, default=5)
        p.validate(1)
        p.validate(10)

    def test_rejects_out_of_range(self):
        p = IntParameter("x", 1, 10)
        with pytest.raises(ValueError):
            p.validate(0)
        with pytest.raises(ValueError):
            p.validate(11)

    def test_rejects_non_int(self):
        p = IntParameter("x", 1, 10)
        with pytest.raises(ValueError):
            p.validate(2.5)
        with pytest.raises(ValueError):
            p.validate(True)

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            IntParameter("x", 10, 1)

    def test_unit_roundtrip(self):
        p = IntParameter("x", 1, 100)
        for v in [1, 7, 50, 100]:
            assert p.from_unit(p.to_unit(v)) == v

    def test_log_scale_midpoint(self):
        p = IntParameter("x", 1, 10000, log=True)
        assert p.from_unit(0.5) == 100  # geometric midpoint

    def test_log_scale_requires_positive_low(self):
        with pytest.raises(ValueError):
            IntParameter("x", 0, 10, log=True)

    def test_sample_within_bounds(self, rng):
        p = IntParameter("x", 3, 9)
        samples = [p.sample(rng) for _ in range(200)]
        assert all(3 <= s <= 9 for s in samples)
        assert len(set(samples)) > 3  # actually varied

    def test_grid_ordered_unique(self):
        p = IntParameter("x", 1, 5)
        grid = p.grid(10)
        assert grid == sorted(set(grid))
        assert len(grid) <= 5

    def test_cardinality(self):
        assert IntParameter("x", 1, 5).cardinality == 5

    def test_neighbor_stays_in_range(self, rng):
        p = IntParameter("x", 1, 10)
        for _ in range(50):
            assert 1 <= p.neighbor(5, rng) <= 10


class TestFloatParameter:
    def test_unit_roundtrip(self):
        p = FloatParameter("x", 0.1, 0.9)
        for v in [0.1, 0.5, 0.9]:
            assert p.from_unit(p.to_unit(v)) == pytest.approx(v)

    def test_clamps_out_of_unit(self):
        p = FloatParameter("x", 0.0, 1.0)
        assert p.from_unit(-0.5) == 0.0
        assert p.from_unit(1.5) == 1.0

    def test_rejects_bool(self):
        p = FloatParameter("x", 0.0, 1.0)
        with pytest.raises(ValueError):
            p.validate(True)

    def test_cardinality_infinite(self):
        assert math.isinf(FloatParameter("x", 0.0, 1.0).cardinality)

    def test_default_respects_bounds(self):
        p = FloatParameter("x", 2.0, 4.0)
        assert 2.0 <= p.default <= 4.0


class TestBoolParameter:
    def test_unit_mapping(self):
        p = BoolParameter("flag")
        assert p.to_unit(True) == 1.0
        assert p.to_unit(False) == 0.0
        assert p.from_unit(0.7) is True
        assert p.from_unit(0.3) is False

    def test_grid(self):
        assert BoolParameter("flag").grid(5) == [False, True]

    def test_rejects_non_bool(self):
        with pytest.raises(ValueError):
            BoolParameter("flag").validate(1)

    def test_neighbor_flips_sometimes(self, rng):
        p = BoolParameter("flag")
        flips = sum(p.neighbor(False, rng, scale=0.2) for _ in range(100))
        assert 0 < flips < 100


class TestCategoricalParameter:
    def test_requires_two_choices(self):
        with pytest.raises(ValueError):
            CategoricalParameter("c", ["only"])

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            CategoricalParameter("c", ["a", "a"])

    def test_unit_roundtrip(self):
        p = CategoricalParameter("c", ["a", "b", "c"])
        for v in ["a", "b", "c"]:
            assert p.from_unit(p.to_unit(v)) == v

    def test_validate_unknown(self):
        p = CategoricalParameter("c", ["a", "b"])
        with pytest.raises(ValueError):
            p.validate("z")

    def test_default_is_first_choice(self):
        assert CategoricalParameter("c", ["x", "y"]).default == "x"

    def test_grid_is_all_choices(self):
        p = CategoricalParameter("c", ["a", "b", "c"])
        assert p.grid(2) == ["a", "b", "c"]


class TestConfiguration:
    def test_mapping_interface(self):
        c = Configuration({"a": 1, "b": 2})
        assert c["a"] == 1
        assert len(c) == 2
        assert set(c) == {"a", "b"}

    def test_hashable_and_equal(self):
        c1 = Configuration({"a": 1, "b": 2})
        c2 = Configuration({"b": 2, "a": 1})
        assert c1 == c2
        assert hash(c1) == hash(c2)
        assert len({c1, c2}) == 1

    def test_replace_returns_new(self):
        c1 = Configuration({"a": 1})
        c2 = c1.replace(a=5)
        assert c1["a"] == 1
        assert c2["a"] == 5

    def test_equality_with_plain_dict(self):
        assert Configuration({"a": 1}) == {"a": 1}


class TestConfigurationSpace:
    def _space(self):
        return ConfigurationSpace([
            IntParameter("i", 1, 10, default=5),
            FloatParameter("f", 0.0, 1.0, default=0.5),
            BoolParameter("b"),
            CategoricalParameter("c", ["x", "y", "z"]),
        ])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ConfigurationSpace([])

    def test_rejects_duplicate_names(self):
        with pytest.raises(ValueError):
            ConfigurationSpace([IntParameter("i", 1, 2), IntParameter("i", 1, 3)])

    def test_default_configuration_valid(self):
        s = self._space()
        s.validate(s.default_configuration())

    def test_sample_valid(self, rng):
        s = self._space()
        for _ in range(50):
            s.validate(s.sample_configuration(rng))

    def test_validate_rejects_missing_and_extra(self):
        s = self._space()
        with pytest.raises(ValueError):
            s.validate({"i": 5})
        cfg = s.default_configuration().as_dict()
        cfg["extra"] = 1
        with pytest.raises(ValueError):
            s.validate(cfg)

    def test_encode_decode_roundtrip(self, rng):
        s = self._space()
        for _ in range(30):
            c = s.sample_configuration(rng)
            assert s.decode(s.encode(c)) == c

    def test_decode_rejects_wrong_shape(self):
        s = self._space()
        with pytest.raises(ValueError):
            s.decode(np.zeros(2))

    def test_subspace_preserves_order(self):
        s = self._space()
        sub = s.subspace(["f", "c"])
        assert sub.names == ["f", "c"]

    def test_subspace_unknown_raises(self):
        with pytest.raises(KeyError):
            self._space().subspace(["nope"])

    def test_neighbor_changes_few_params(self, rng):
        s = self._space()
        c = s.default_configuration()
        diffs = []
        for _ in range(100):
            n = s.neighbor(c, rng, n_moves=1)
            diffs.append(sum(1 for k in s.names if n[k] != c[k]))
        assert max(diffs) <= 1

    def test_latin_hypercube_stratified(self, rng):
        s = ConfigurationSpace([FloatParameter("f", 0.0, 1.0)])
        configs = s.latin_hypercube(10, rng)
        # One sample per decile.
        deciles = sorted(int(c["f"] * 10) % 10 for c in configs)
        assert deciles == list(range(10))

    def test_latin_hypercube_rejects_zero(self, rng):
        with pytest.raises(ValueError):
            self._space().latin_hypercube(0, rng)

    def test_log_cardinality_counts_dimensions(self):
        s = self._space()
        # 10 ints * 100 float levels * 2 bools * 3 cats
        expected = math.log10(10) + math.log10(100) + math.log10(2) + math.log10(3)
        assert s.log_cardinality() == pytest.approx(expected)

    def test_contains_and_getitem(self):
        s = self._space()
        assert "i" in s
        assert s["i"].name == "i"
        assert "missing" not in s
