"""Tests for unit and one-hot configuration encoders."""

import numpy as np
import pytest

from repro.config import (
    BoolParameter,
    CategoricalParameter,
    ConfigurationSpace,
    FloatParameter,
    IntParameter,
    OneHotEncoder,
    UnitEncoder,
)


@pytest.fixture
def mixed_space():
    return ConfigurationSpace([
        IntParameter("i", 1, 10, default=5),
        FloatParameter("f", 0.0, 1.0, default=0.5),
        BoolParameter("b", default=True),
        CategoricalParameter("c", ["x", "y", "z"]),
    ])


class TestUnitEncoder:
    def test_dimension(self, mixed_space):
        assert UnitEncoder(mixed_space).dimension == 4

    def test_values_in_unit_interval(self, mixed_space, rng):
        enc = UnitEncoder(mixed_space)
        X = enc.encode_many(mixed_space.sample_configurations(20, rng))
        assert X.shape == (20, 4)
        assert (X >= 0).all() and (X <= 1).all()

    def test_invertible(self, mixed_space, rng):
        enc = UnitEncoder(mixed_space)
        c = mixed_space.sample_configuration(rng)
        assert enc.decode(enc.encode(c)) == c


class TestOneHotEncoder:
    def test_dimension_expands_categoricals(self, mixed_space):
        # i, f, b are single columns; c expands into 3.
        assert OneHotEncoder(mixed_space).dimension == 3 + 3

    def test_feature_names(self, mixed_space):
        names = OneHotEncoder(mixed_space).feature_names
        assert "c=x" in names and "c=y" in names and "c=z" in names
        assert "i" in names

    def test_one_hot_is_exclusive(self, mixed_space, rng):
        enc = OneHotEncoder(mixed_space)
        names = enc.feature_names
        cat_cols = [j for j, n in enumerate(names) if n.startswith("c=")]
        for c in mixed_space.sample_configurations(20, rng):
            row = enc.encode(c)
            assert row[cat_cols].sum() == 1.0

    def test_bool_encoded_as_indicator(self, mixed_space):
        enc = OneHotEncoder(mixed_space)
        j = enc.feature_names.index("b")
        cfg = mixed_space.default_configuration()
        assert enc.encode(cfg)[j] == 1.0
        assert enc.encode(cfg.replace(b=False))[j] == 0.0

    def test_numeric_in_unit_scale(self, mixed_space):
        enc = OneHotEncoder(mixed_space)
        j = enc.feature_names.index("f")
        cfg = mixed_space.default_configuration().replace(f=1.0)
        assert enc.encode(cfg)[j] == 1.0

    def test_encode_many_shape(self, mixed_space, rng):
        enc = OneHotEncoder(mixed_space)
        X = enc.encode_many(mixed_space.sample_configurations(7, rng))
        assert X.shape == (7, enc.dimension)
        assert np.isfinite(X).all()
