"""Tests for the Spark parameter catalogue."""

import pytest

from repro.config import (
    SPARK_DEFAULTS,
    TUNED_BY_PROTOTYPE,
    spark_core_space,
    spark_space,
)


class TestSparkSpace:
    def test_has_32_parameters(self):
        assert spark_space().dimension == 32

    def test_defaults_match_spark_docs(self):
        d = SPARK_DEFAULTS
        assert d["spark.executor.memory"] == 1024
        assert d["spark.memory.fraction"] == 0.6
        assert d["spark.memory.storageFraction"] == 0.5
        assert d["spark.serializer"] == "java"
        assert d["spark.shuffle.compress"] is True
        assert d["spark.speculation"] is False
        assert d["spark.reducer.maxSizeInFlight"] == 48

    def test_default_configuration_is_valid(self):
        s = spark_space()
        s.validate(s.default_configuration())

    def test_search_space_exceeds_10_40(self):
        # The paper: tuning 30 parameters exceeds 10^40 configurations.
        assert spark_space().log_cardinality() > 40

    def test_core_space_subset(self):
        core = spark_core_space()
        assert core.dimension == len(TUNED_BY_PROTOTYPE)
        full = spark_space()
        for name in core.names:
            assert name in full

    def test_core_space_has_the_heavy_hitters(self):
        core = spark_core_space()
        for name in ["spark.executor.instances", "spark.executor.memory",
                     "spark.default.parallelism", "spark.serializer"]:
            assert name in core

    def test_samples_are_valid(self, rng):
        s = spark_space()
        for _ in range(20):
            s.validate(s.sample_configuration(rng))

    def test_parallelism_is_log_scaled(self, rng):
        # Log scaling: half the unit range covers [8, ~126].
        p = spark_space()["spark.default.parallelism"]
        assert p.from_unit(0.5) < (8 + 2000) / 2


class TestCloudSpace:
    def test_provider_filter(self):
        from repro.config import cloud_space

        s = cloud_space("aws")
        types = s["cloud.instance_type"].choices
        assert all(t.split(".")[0] in ("m5", "c5", "r5", "h1", "i3") for t in types)

    def test_unknown_provider_empty(self):
        from repro.config import cloud_space

        with pytest.raises(ValueError):
            cloud_space("nonexistent-cloud")

    def test_joint_space_combines(self):
        from repro.config import cloud_space, joint_space

        disc = spark_core_space()
        joint = joint_space(disc, provider="aws")
        assert joint.dimension == disc.dimension + 2
        assert "cloud.instance_type" in joint
        assert "spark.executor.memory" in joint

    def test_cluster_size_range_matches_paper(self):
        from repro.config import cloud_space

        p = cloud_space("aws")["cloud.cluster_size"]
        assert p.low == 2 and p.high == 20  # "from 4 VMs to 20 VMs"
