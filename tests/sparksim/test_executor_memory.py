"""Tests for executor memory regions, cache planning, spill and GC."""

import pytest

from repro.config import Configuration, SPARK_DEFAULTS
from repro.sparksim import ExecutorModel, gc_fraction, plan_cache, spill_outcome


def _config(**overrides):
    cfg = dict(SPARK_DEFAULTS)
    cfg.update(overrides)
    return Configuration(cfg)


class TestExecutorModel:
    def test_unified_memory_formula(self):
        # Spark: (heap - 300) * memory.fraction
        ex = ExecutorModel.from_config(_config(**{
            "spark.executor.memory": 4096,
            "spark.memory.fraction": 0.6,
            "spark.memory.storageFraction": 0.5,
        }))
        assert ex.unified_mb == pytest.approx((4096 - 300) * 0.6)
        assert ex.storage_immune_mb == pytest.approx(ex.unified_mb * 0.5)

    def test_concurrent_tasks_from_cores(self):
        ex = ExecutorModel.from_config(_config(**{
            "spark.executor.cores": 8, "spark.task.cpus": 2,
        }))
        assert ex.concurrent_tasks == 4

    def test_execution_borrows_from_storage(self):
        ex = ExecutorModel.from_config(_config(**{
            "spark.executor.memory": 4096,
        }))
        # With nothing cached, execution gets the full unified pool.
        assert ex.execution_capacity_mb(0.0) == pytest.approx(ex.unified_mb)
        # With a big cache, execution is pushed down to the immune boundary.
        full = ex.execution_capacity_mb(ex.unified_mb)
        assert full == pytest.approx(ex.unified_mb - ex.storage_immune_mb)

    def test_offheap_extends_execution(self):
        base = ExecutorModel.from_config(_config())
        off = ExecutorModel.from_config(_config(**{
            "spark.memory.offHeap.enabled": True,
            "spark.memory.offHeap.size": 2048,
        }))
        assert off.execution_capacity_mb(0) == pytest.approx(
            base.execution_capacity_mb(0) + 2048
        )

    def test_tiny_heap_has_no_usable_memory(self):
        ex = ExecutorModel.from_config(_config(**{"spark.executor.memory": 512}))
        assert ex.unified_mb < 300


class TestCachePlan:
    def _executor(self, memory=8192):
        return ExecutorModel.from_config(_config(**{"spark.executor.memory": memory}))

    def test_fits_fully(self):
        plan = plan_cache(100, executors=8, executor=self._executor(), config=_config())
        assert plan.hit_fraction == 1.0

    def test_partial_fit(self):
        plan = plan_cache(100_000, executors=2, executor=self._executor(),
                          config=_config())
        assert 0 < plan.hit_fraction < 1

    def test_memory_only_footprint_is_expanded(self):
        plan = plan_cache(1000, 4, self._executor(), _config(**{
            "spark.storage.level": "MEMORY_ONLY", "spark.serializer": "java",
        }))
        assert plan.footprint_per_mb > 2.0  # deserialized java objects
        assert plan.read_cpu_s_per_mb == 0.0

    def test_serialized_level_denser_but_costs_cpu(self):
        raw = plan_cache(1000, 4, self._executor(), _config(**{
            "spark.storage.level": "MEMORY_ONLY",
        }))
        ser = plan_cache(1000, 4, self._executor(), _config(**{
            "spark.storage.level": "MEMORY_ONLY_SER",
        }))
        assert ser.footprint_per_mb < raw.footprint_per_mb
        assert ser.read_cpu_s_per_mb > 0

    def test_rdd_compress_shrinks_serialized_cache(self):
        plain = plan_cache(1000, 4, self._executor(), _config(**{
            "spark.storage.level": "MEMORY_ONLY_SER",
        }))
        compressed = plan_cache(1000, 4, self._executor(), _config(**{
            "spark.storage.level": "MEMORY_ONLY_SER", "spark.rdd.compress": True,
        }))
        assert compressed.footprint_per_mb < plain.footprint_per_mb
        assert compressed.read_cpu_s_per_mb > plain.read_cpu_s_per_mb

    def test_memory_and_disk_misses_hit_disk(self):
        plan = plan_cache(1000, 4, self._executor(), _config(**{
            "spark.storage.level": "MEMORY_AND_DISK",
        }))
        assert plan.miss_to_disk

    def test_kryo_shrinks_everything(self):
        java = plan_cache(1000, 4, self._executor(), _config())
        kryo = plan_cache(1000, 4, self._executor(), _config(**{
            "spark.serializer": "kryo",
        }))
        assert kryo.footprint_per_mb < java.footprint_per_mb

    def test_zero_cache_full_hit(self):
        plan = plan_cache(0, 4, self._executor(), _config())
        assert plan.hit_fraction == 1.0

    def test_negative_cache_rejected(self):
        with pytest.raises(ValueError):
            plan_cache(-1, 4, self._executor(), _config())


class TestSpillOutcome:
    def test_fits_no_spill(self):
        out = spill_outcome(100, 200, unspillable_fraction=0.1)
        assert out.spilled_mb == 0 and not out.oom

    def test_spills_the_overflow(self):
        out = spill_outcome(500, 200, unspillable_fraction=0.1)
        assert out.spilled_mb == pytest.approx(300)
        assert out.merge_passes >= 2
        assert not out.oom

    def test_oom_when_floor_exceeds_memory(self):
        # 30% of 1000 MB = 300 MB unspillable > 100 MB available.
        out = spill_outcome(1000, 100, unspillable_fraction=0.3)
        assert out.oom

    def test_bigger_memory_avoids_oom(self):
        assert not spill_outcome(1000, 400, unspillable_fraction=0.3).oom

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            spill_outcome(-1, 100, 0.1)


class TestGCFraction:
    def test_low_occupancy_cheap(self):
        assert gc_fraction(0.2) < 0.03

    def test_monotone_increasing(self):
        values = [gc_fraction(o) for o in [0.0, 0.3, 0.6, 0.9, 1.1]]
        assert values == sorted(values)

    def test_capped(self):
        assert gc_fraction(10.0) <= 0.45
