"""Edge-case and stress tests for the simulator."""

import pytest

from repro.cloud import Cluster
from repro.config import Configuration, SPARK_DEFAULTS
from repro.sparksim import RDD, SparkSimulator, compile_job
from repro.workloads import PageRank, Sort, Wordcount


def _config(**overrides):
    return Configuration({**SPARK_DEFAULTS, **overrides})


GOOD = _config(**{
    "spark.executor.instances": 4, "spark.executor.cores": 2,
    "spark.executor.memory": 4096, "spark.default.parallelism": 32,
})


class TestExtremeClusters:
    def test_single_tiny_node(self, simulator):
        cluster = Cluster.of("m5.large", 1)  # 2 vCPU, 8 GiB
        cfg = _config(**{"spark.executor.instances": 1,
                         "spark.executor.cores": 1,
                         "spark.executor.memory": 2048})
        result = simulator.run(Wordcount(), 1_000, cluster, cfg, seed=1)
        assert result.success
        assert result.total_slots == 1

    def test_huge_cluster(self, simulator):
        cluster = Cluster.of("m5.4xlarge", 64)
        cfg = _config(**{"spark.executor.instances": 48,
                         "spark.executor.cores": 8,
                         "spark.executor.memory": 16384,
                         "spark.default.parallelism": 2000})
        result = simulator.run(Sort(), 50_000, cluster, cfg, seed=1)
        assert result.success

    def test_driver_heavier_than_node(self, simulator):
        cluster = Cluster.of("m5.large", 2)
        cfg = _config(**{"spark.driver.memory": 16384})
        result = simulator.run(Wordcount(), 1_000, cluster, cfg, seed=1)
        # Driver does not fit its node's memory, but the non-driver node
        # can still host executors.
        assert result.executors_granted >= 1


class TestExtremeInputs:
    def test_tiny_input_single_partition(self, simulator, cluster):
        result = simulator.run(Wordcount(), 1.0, cluster, GOOD, seed=1)
        assert result.success
        # Source partitioning floors at one task.
        assert all(s.num_tasks >= 1 for s in result.stages)

    def test_fractional_megabytes(self, simulator, cluster):
        result = simulator.run(Wordcount(), 0.5, cluster, GOOD, seed=1)
        assert result.success

    def test_very_large_input_completes(self, simulator, cluster):
        cfg = _config(**{
            "spark.executor.instances": 8, "spark.executor.cores": 8,
            "spark.executor.memory": 24576, "spark.default.parallelism": 1500,
            "spark.serializer": "kryo",
        })
        result = simulator.run(Sort(), 500_000, cluster, cfg, seed=1)
        assert result.success
        assert result.runtime_s > 100


class TestExtremeConfigs:
    def test_parallelism_one_floor(self, simulator, cluster):
        # Parallelism below the space minimum via direct construction.
        cfg = GOOD.replace(**{"spark.default.parallelism": 8})
        result = simulator.run(Sort(), 2_000, cluster, cfg, seed=1)
        assert result.success

    def test_memory_fraction_extremes(self, simulator, cluster):
        for fraction in (0.3, 0.9):
            cfg = GOOD.replace(**{"spark.memory.fraction": fraction})
            result = simulator.run(Wordcount(), 5_000, cluster, cfg, seed=1)
            assert result.success

    def test_zero_iteration_floor(self):
        with pytest.raises(ValueError):
            PageRank(iterations=0)

    def test_all_compression_off(self, simulator, cluster):
        cfg = GOOD.replace(**{
            "spark.shuffle.compress": False,
            "spark.shuffle.spill.compress": False,
            "spark.rdd.compress": False,
        })
        result = simulator.run(Sort(), 10_000, cluster, cfg, seed=1)
        assert result.success


class TestLineageEdgeCases:
    def test_self_join(self):
        base = RDD.source("d", 1_000).map()
        plan = compile_job(base.join(base).count())
        # The shared parent stage is built once and feeds both sides.
        assert plan.num_stages == 2
        reduce_stage = plan.topological()[-1]
        assert reduce_stage.shuffle_read_mb == pytest.approx(2_000)

    def test_deep_narrow_chain_single_stage(self):
        rdd = RDD.source("d", 1_000)
        for _ in range(30):
            rdd = rdd.map(cpu_s_per_mb=0.001)
        plan = compile_job(rdd.count())
        assert plan.num_stages == 1
        assert plan.stages[0].cpu_s > 0

    def test_chained_shuffles(self):
        rdd = RDD.source("d", 1_000)
        for i in range(4):
            rdd = rdd.reduce_by_key(f"rbk{i}", size_ratio=0.5)
        plan = compile_job(rdd.count())
        assert plan.num_stages == 5

    def test_cache_without_materialization_recomputes(self, simulator, cluster):
        # A cached RDD only helps after its first materialization; a
        # single-job workload touching it once still succeeds.
        cached = RDD.source("d", 1_000).map().cache()
        job = cached.filter().count()
        result = simulator.run_jobs("adhoc", 1_000, [job], cluster, GOOD, seed=1)
        assert result.success


class TestDeterminismAcrossRuns:
    def test_full_workload_bitwise_stable(self, cluster):
        sims = [SparkSimulator() for _ in range(2)]
        results = [
            s.run(PageRank(iterations=3), 5_000, cluster, GOOD, seed=99)
            for s in sims
        ]
        assert results[0].runtime_s == results[1].runtime_s
        for a, b in zip(results[0].stages, results[1].stages):
            assert a.duration_s == b.duration_s
