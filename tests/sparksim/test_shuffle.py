"""Tests for serialization/compression tables and shuffle cost functions."""

import pytest

from repro.config import Configuration, SPARK_DEFAULTS
from repro.sparksim import CODECS, SERIALIZERS, shuffle_read, shuffle_write


def _config(**overrides):
    cfg = dict(SPARK_DEFAULTS)
    cfg.update(overrides)
    return Configuration(cfg)


class TestTables:
    def test_kryo_faster_and_denser_than_java(self):
        assert SERIALIZERS["kryo"].serialize_s_per_mb < SERIALIZERS["java"].serialize_s_per_mb
        assert SERIALIZERS["kryo"].expansion < SERIALIZERS["java"].expansion

    def test_zstd_denser_but_slower(self):
        assert CODECS["zstd"].ratio < CODECS["lz4"].ratio
        assert CODECS["zstd"].compress_s_per_mb > CODECS["lz4"].compress_s_per_mb


class TestShuffleWrite:
    def test_compression_trades_bytes_for_cpu(self):
        on = shuffle_write(100, _config(**{"spark.shuffle.compress": True}))
        off = shuffle_write(100, _config(**{"spark.shuffle.compress": False}))
        assert on.disk_mb < off.disk_mb
        assert on.cpu_s > off.cpu_s

    def test_small_buffer_inflates_disk_traffic(self):
        small = shuffle_write(100, _config(**{"spark.shuffle.file.buffer": 16}))
        large = shuffle_write(100, _config(**{"spark.shuffle.file.buffer": 512}))
        assert small.disk_mb > large.disk_mb

    def test_sort_path_costs_cpu_beyond_bypass_threshold(self):
        few = shuffle_write(100, _config(), num_reduce_tasks=100)   # bypass
        many = shuffle_write(100, _config(), num_reduce_tasks=500)  # sort
        assert many.cpu_s > few.cpu_s

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            shuffle_write(-1, _config())

    def test_zero_data_zero_cost(self):
        cost = shuffle_write(0, _config())
        assert cost.cpu_s == 0 and cost.disk_mb == 0


class TestShuffleRead:
    def test_remote_fraction_splits_traffic(self):
        cost, _ = shuffle_read(100, _config(**{"spark.shuffle.compress": False}),
                               num_map_tasks=10, remote_fraction=0.75)
        assert cost.net_mb == pytest.approx(75)
        assert cost.disk_mb == pytest.approx(25)

    def test_small_inflight_hurts_fetch_efficiency(self):
        _, eff_small = shuffle_read(100, _config(**{"spark.reducer.maxSizeInFlight": 8}),
                                    num_map_tasks=10)
        _, eff_large = shuffle_read(100, _config(**{"spark.reducer.maxSizeInFlight": 96}),
                                    num_map_tasks=10)
        assert eff_small < eff_large
        assert eff_large == 1.0

    def test_many_map_outputs_cost_connections(self):
        few, _ = shuffle_read(100, _config(), num_map_tasks=10)
        many, _ = shuffle_read(100, _config(), num_map_tasks=5000)
        assert many.cpu_s > few.cpu_s

    def test_connection_reuse_amortizes(self):
        base, _ = shuffle_read(100, _config(), num_map_tasks=5000)
        reused, _ = shuffle_read(
            100, _config(**{"spark.shuffle.io.numConnectionsPerPeer": 8}),
            num_map_tasks=5000,
        )
        assert reused.cpu_s < base.cpu_s

    def test_kryo_cheaper_deserialization(self):
        java, _ = shuffle_read(100, _config(**{"spark.serializer": "java"}), 10)
        kryo, _ = shuffle_read(100, _config(**{"spark.serializer": "kryo"}), 10)
        assert kryo.cpu_s < java.cpu_s

    def test_validates_remote_fraction(self):
        with pytest.raises(ValueError):
            shuffle_read(100, _config(), 10, remote_fraction=1.5)
