"""Tests for Spark-style event-log export/import."""

import json

import numpy as np
import pytest

from repro.core import probe_configuration, signature
from repro.sparksim import event_lines, read_event_log, write_event_log
from repro.workloads import PageRank, Wordcount


@pytest.fixture
def result(cluster, simulator):
    return simulator.run(PageRank(iterations=2), 3_000, cluster,
                         probe_configuration(), seed=4)


class TestEventLog:
    def test_lines_are_json_events(self, result):
        lines = event_lines(result)
        events = [json.loads(line) for line in lines]
        assert events[0]["Event"] == "SparkListenerApplicationStart"
        assert events[-1]["Event"] == "SparkListenerApplicationEnd"
        stage_events = [e for e in events
                        if e["Event"] == "SparkListenerStageCompleted"]
        assert len(stage_events) == result.num_stages

    def test_roundtrip_preserves_metrics(self, result, tmp_path):
        path = tmp_path / "app.jsonl"
        write_event_log(result, path)
        loaded = read_event_log(path)
        assert loaded.workload == result.workload
        assert loaded.runtime_s == pytest.approx(result.runtime_s)
        assert loaded.success == result.success
        assert loaded.num_stages == result.num_stages
        assert loaded.total_shuffle_mb == pytest.approx(result.total_shuffle_mb)
        assert loaded.total_cpu_s == pytest.approx(result.total_cpu_s)

    def test_characterization_from_log_matches(self, result, tmp_path):
        """The provider pipeline works from logs alone."""
        path = tmp_path / "app.jsonl"
        write_event_log(result, path)
        loaded = read_event_log(path)
        assert np.allclose(signature(loaded), signature(result))

    def test_failed_run_roundtrip(self, cluster, simulator, tmp_path):
        bad = probe_configuration().replace(**{"spark.executor.memory": 65536})
        result = simulator.run(Wordcount(), 1000, cluster, bad)
        assert not result.success
        path = tmp_path / "failed.jsonl"
        write_event_log(result, path)
        loaded = read_event_log(path)
        assert not loaded.success
        assert loaded.failure_reason == result.failure_reason

    def test_task_metrics_preserved(self, result, tmp_path):
        path = tmp_path / "app.jsonl"
        write_event_log(result, path)
        loaded = read_event_log(path)
        for a, b in zip(result.stages, loaded.stages):
            if a.task_metrics is None:
                assert b.task_metrics is None
            else:
                assert b.task_metrics.p95_s == pytest.approx(a.task_metrics.p95_s)
