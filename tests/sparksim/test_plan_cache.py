"""The compiled-plan cache: hits, misses, LRU bounds, aliasing guard.

Stage DAGs are config-independent, so the simulator compiles each
``(workload, input_mb)`` once and replays the immutable plan for every
candidate.  The cache must never change results — and in particular two
workloads that share ``name``/``input_mb`` but run different job lists
must never collide (the content fingerprint is part of the key).
"""

import numpy as np

from repro.cloud import Cluster
from repro.config.spark_params import spark_space
from repro.sparksim import SparkSimulator
from repro.workloads import Sort, Wordcount

CLUSTER = Cluster.of("m5.2xlarge", 4)


def _config():
    rng = np.random.default_rng(0)
    space = spark_space()
    for _ in range(50):
        c = space.sample_configuration(rng)
        sim = SparkSimulator()
        if sim.run(Sort(), 512.0, CLUSTER, c, seed=0).success:
            return c
    raise AssertionError("no feasible sampled config")


class _Renamed:
    """A workload masquerading under another workload's name."""

    def __init__(self, name, inner):
        self.name = name
        self._inner = inner

    def jobs(self, input_mb):
        return self._inner.jobs(input_mb)


class TestCounters:
    def test_same_object_hits_identity_tier(self):
        sim = SparkSimulator()
        w = Sort()
        config = _config()
        sim.run(w, 512.0, CLUSTER, config, seed=1)
        assert (sim.plan_cache_hits, sim.plan_cache_misses) == (0, 1)
        sim.run(w, 512.0, CLUSTER, config, seed=2)
        assert (sim.plan_cache_hits, sim.plan_cache_misses) == (1, 1)

    def test_equal_content_objects_share_one_plan(self):
        sim = SparkSimulator()
        a = sim.compile_workload(Sort(), 512.0)
        b = sim.compile_workload(Sort(), 512.0)   # distinct object, same jobs
        assert a is b
        assert sim.plan_cache_hits == 1 and sim.plan_cache_misses == 1

    def test_distinct_input_sizes_compile_separately(self):
        sim = SparkSimulator()
        w = Sort()
        assert sim.compile_workload(w, 512.0) is not sim.compile_workload(w, 1024.0)
        assert sim.plan_cache_misses == 2


class TestAliasingGuard:
    def test_same_name_different_jobs_do_not_collide(self):
        sim = SparkSimulator()
        genuine = sim.compile_workload(Sort(), 512.0)
        impostor = sim.compile_workload(_Renamed("sort", Wordcount()), 512.0)
        assert impostor is not genuine
        assert sim.plan_cache_misses == 2

    def test_impostor_results_differ_from_genuine(self):
        config = _config()
        sim = SparkSimulator()
        genuine = sim.run(Sort(), 512.0, CLUSTER, config, seed=3)
        impostor = sim.run(_Renamed("sort", Wordcount()), 512.0, CLUSTER,
                           config, seed=3)
        # A name/input_mb-keyed cache would replay sort's plan here.
        fresh = SparkSimulator().run(Wordcount(), 512.0, CLUSTER, config, seed=3)
        assert impostor.runtime_s == fresh.runtime_s
        assert impostor.runtime_s != genuine.runtime_s


class TestBoundsAndDisabling:
    def test_lru_eviction_respects_capacity(self):
        sim = SparkSimulator(plan_cache_size=2)
        w = Sort()
        for mb in (256.0, 512.0, 1024.0, 2048.0):
            sim.compile_workload(w, mb)
        assert len(sim._plan_cache_by_id) <= 2
        assert len(sim._plan_cache_by_content) <= 2
        # The oldest entry was evicted: recompiling it is a miss again.
        misses = sim.plan_cache_misses
        sim.compile_workload(w, 256.0)
        assert sim.plan_cache_misses == misses + 1

    def test_size_zero_disables_caching(self):
        sim = SparkSimulator(plan_cache_size=0)
        w = Sort()
        a = sim.compile_workload(w, 512.0)
        b = sim.compile_workload(w, 512.0)
        assert a is not b
        assert sim.plan_cache_misses == 2 and sim.plan_cache_hits == 0
        assert not sim._plan_cache_by_id and not sim._plan_cache_by_content

    def test_negative_size_rejected(self):
        try:
            SparkSimulator(plan_cache_size=-1)
        except ValueError:
            pass
        else:
            raise AssertionError("plan_cache_size=-1 must raise")

    def test_caching_never_changes_results(self):
        config = _config()
        cached = SparkSimulator()
        uncached = SparkSimulator(plan_cache_size=0)
        for seed in range(4):
            a = cached.run(Sort(), 512.0, CLUSTER, config, seed=seed)
            b = uncached.run(Sort(), 512.0, CLUSTER, config, seed=seed)
            assert a == b

    def test_run_jobs_bypasses_the_cache(self):
        sim = SparkSimulator()
        jobs = Sort().jobs(512.0)
        config = _config()
        sim.run_jobs("adhoc", 512.0, jobs, CLUSTER, config, seed=1)
        assert sim.plan_cache_misses == 0 and sim.plan_cache_hits == 0
