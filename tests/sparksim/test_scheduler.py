"""Tests for the task scheduler (makespan, stragglers, speculation)."""

import numpy as np
import pytest

from repro.config import Configuration, SPARK_DEFAULTS
from repro.sparksim import schedule_stage
from repro.sparksim.scheduler import _list_schedule


def _config(**overrides):
    cfg = dict(SPARK_DEFAULTS)
    cfg.update(overrides)
    return Configuration(cfg)


class TestListSchedule:
    def test_fewer_tasks_than_slots(self):
        assert _list_schedule(np.array([3.0, 1.0, 2.0]), slots=8) == 3.0

    def test_perfect_packing(self):
        assert _list_schedule(np.full(8, 1.0), slots=4) == pytest.approx(2.0)

    def test_greedy_bound(self):
        # Makespan is between work/slots and work/slots + max task.
        rng = np.random.default_rng(0)
        d = rng.uniform(0.5, 2.0, 100)
        m = _list_schedule(d, slots=7)
        assert d.sum() / 7 <= m <= d.sum() / 7 + d.max()


class TestScheduleStage:
    def test_deterministic_without_noise(self, rng):
        s = schedule_stage(64, 2.0, slots=16, config=_config(), rng=rng, noise=False)
        assert s.makespan_s == pytest.approx(8.0)

    def test_validates_inputs(self, rng):
        with pytest.raises(ValueError):
            schedule_stage(0, 1.0, 4, _config(), rng)
        with pytest.raises(ValueError):
            schedule_stage(4, 1.0, 0, _config(), rng)
        with pytest.raises(ValueError):
            schedule_stage(4, -1.0, 4, _config(), rng)

    def test_noise_reproducible_by_seed(self):
        a = schedule_stage(50, 1.0, 8, _config(), np.random.default_rng(5))
        b = schedule_stage(50, 1.0, 8, _config(), np.random.default_rng(5))
        assert a.makespan_s == b.makespan_s

    def test_more_slots_never_slower(self):
        m = []
        for slots in [4, 16, 64]:
            s = schedule_stage(128, 1.0, slots, _config(), np.random.default_rng(1))
            m.append(s.makespan_s)
        assert m[0] > m[1] > m[2]

    def test_task_metrics_sane(self):
        s = schedule_stage(200, 1.0, 16, _config(), np.random.default_rng(2))
        tm = s.task_metrics
        assert tm.count == 200
        assert tm.p50_s <= tm.p95_s <= tm.max_s
        assert tm.mean_s == pytest.approx(1.0, rel=0.2)

    def test_speculation_clips_tail(self):
        # With many tasks the straggler tail should shrink under speculation.
        base_cfg = _config(**{"spark.speculation": False})
        spec_cfg = _config(**{"spark.speculation": True,
                              "spark.speculation.multiplier": 1.5,
                              "spark.speculation.quantile": 0.75})
        base_max, spec_max = [], []
        for seed in range(20):
            base = schedule_stage(400, 1.0, 32, base_cfg, np.random.default_rng(seed))
            spec = schedule_stage(400, 1.0, 32, spec_cfg, np.random.default_rng(seed))
            base_max.append(base.task_metrics.max_s)
            spec_max.append(spec.task_metrics.max_s)
        assert np.mean(spec_max) < np.mean(base_max)

    def test_speculation_reports_waste(self):
        cfg = _config(**{"spark.speculation": True,
                         "spark.speculation.multiplier": 1.2,
                         "spark.speculation.quantile": 0.5})
        out = [schedule_stage(400, 1.0, 32, cfg, np.random.default_rng(s))
               for s in range(10)]
        assert any(o.speculated_tasks > 0 for o in out)
        assert all(o.wasted_task_seconds >= 0 for o in out)
