"""Fault injection: deterministic draws, per-kind effects, no-op equivalence."""

import pickle

import pytest

from repro.cloud import Cluster
from repro.cloud.interference import TYPICAL
from repro.config import spark_core_space
from repro.sparksim import (
    FaultPlan,
    FaultSpec,
    SparkSimulator,
    env_spike,
    executor_loss,
    oom_kill,
    straggler,
    worker_crash,
)
from repro.workloads import PageRank, Sort

CLUSTER = Cluster.of("h1.4xlarge", 4)
CONFIG = spark_core_space().default_configuration()


def run(sim, seed=7, workload=None, env=None):
    kwargs = {"env": env} if env is not None else {}
    return sim.run(workload or Sort(), 8192.0, CLUSTER, CONFIG, seed=seed, **kwargs)


class TestFaultSpecValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec("disk_fire", 0.5)

    def test_probability_bounds(self):
        with pytest.raises(ValueError):
            FaultSpec("oom_kill", 1.5)
        with pytest.raises(ValueError):
            FaultSpec("oom_kill", -0.1)

    def test_loss_fraction_must_be_fractional(self):
        with pytest.raises(ValueError):
            executor_loss(1.0, fraction=1.0)

    def test_slowdowns_must_be_at_least_one(self):
        with pytest.raises(ValueError):
            straggler(1.0, slowdown=0.5)
        with pytest.raises(ValueError):
            env_spike(1.0, multiplier=0.9)

    def test_span_must_be_positive(self):
        with pytest.raises(ValueError):
            oom_kill(1.0, span=0)


class TestDeterministicDraws:
    def test_same_seed_same_draw(self):
        plan = FaultPlan.of(straggler(0.5), oom_kill(0.3), worker_crash(0.2))
        for seed in range(50):
            assert plan.draw(seed) == plan.draw(seed)

    def test_draws_vary_across_seeds(self):
        plan = FaultPlan.of(oom_kill(0.5))
        draws = {plan.draw(seed).oom_stage for seed in range(64)}
        assert draws == {-1, 0}      # both outcomes occur at p=0.5

    def test_probability_zero_never_fires(self):
        plan = FaultPlan.of(
            executor_loss(0.0), straggler(0.0), oom_kill(0.0),
            env_spike(0.0), worker_crash(0.0),
        )
        assert not any(plan.draw(seed).any for seed in range(100))

    def test_probability_one_always_fires(self):
        plan = FaultPlan.of(oom_kill(1.0))
        assert all(plan.draw(seed).oom_stage == 0 for seed in range(100))

    def test_salt_changes_the_draws(self):
        a = FaultPlan.of(oom_kill(0.5), salt=1)
        b = FaultPlan.of(oom_kill(0.5), salt=2)
        assert any(a.draw(s) != b.draw(s) for s in range(64))

    def test_plan_is_hashable_and_picklable(self):
        plan = FaultPlan.of(straggler(0.3), worker_crash(0.1))
        assert hash(plan) == hash(pickle.loads(pickle.dumps(plan)))
        assert pickle.loads(pickle.dumps(plan)) == plan


class TestSimulatorIntegration:
    def test_non_firing_plan_is_bit_identical_to_no_plan(self):
        quiet = FaultPlan.of(oom_kill(0.0), straggler(0.0))
        for seed in range(5):
            base = run(SparkSimulator(), seed=seed)
            faulted = run(SparkSimulator(fault_plan=quiet), seed=seed)
            assert faulted.runtime_s == base.runtime_s
            assert faulted.success == base.success
            assert faulted.faults_injected == ()

    def test_empty_plan_is_bit_identical_to_no_plan(self):
        base = run(SparkSimulator(), seed=11)
        faulted = run(SparkSimulator(fault_plan=FaultPlan()), seed=11)
        assert faulted.runtime_s == base.runtime_s

    def test_oom_kill_fails_the_run(self):
        sim = SparkSimulator(fault_plan=FaultPlan.of(oom_kill(1.0)))
        result = run(sim)
        assert not result.success
        assert "fault-injected" in result.failure_reason
        assert any(f.startswith("oom_kill:") for f in result.faults_injected)
        assert result.runtime_s > 0

    def test_straggler_slows_the_run(self):
        base = run(SparkSimulator(noise=False), seed=3)
        sim = SparkSimulator(
            noise=False, fault_plan=FaultPlan.of(straggler(1.0, slowdown=5.0)),
        )
        slowed = run(sim, seed=3)
        assert slowed.success
        assert slowed.runtime_s > base.runtime_s
        assert any(f.startswith("straggler:") for f in slowed.faults_injected)

    def test_executor_loss_slows_but_survives(self):
        base = run(SparkSimulator(noise=False), seed=3)
        sim = SparkSimulator(
            noise=False,
            fault_plan=FaultPlan.of(executor_loss(1.0, fraction=0.5)),
        )
        degraded = run(sim, seed=3)
        assert degraded.success
        assert degraded.runtime_s > base.runtime_s
        assert any(
            f.startswith("executor_loss:") for f in degraded.faults_injected
        )

    def test_env_spike_raises_environment_factor(self):
        sim = SparkSimulator(
            noise=False, fault_plan=FaultPlan.of(env_spike(1.0, multiplier=1.4)),
        )
        spiked = run(sim, seed=3, env=TYPICAL)
        base = run(SparkSimulator(noise=False), seed=3, env=TYPICAL)
        assert spiked.environment_factor > base.environment_factor
        assert spiked.runtime_s > base.runtime_s

    def test_worker_crash_does_not_change_the_simulated_result(self):
        # worker_crash is an infrastructure fault: the simulator itself
        # (serial path) must produce the fault-free result.
        base = run(SparkSimulator(noise=False), seed=3)
        sim = SparkSimulator(
            noise=False, fault_plan=FaultPlan.of(worker_crash(1.0)),
        )
        assert run(sim, seed=3).runtime_s == base.runtime_s

    def test_faults_reproducible_across_simulator_instances(self):
        plan = FaultPlan.of(oom_kill(0.5), straggler(0.5, slowdown=2.0))
        for seed in range(6):
            a = run(SparkSimulator(noise=False, fault_plan=plan),
                    seed=seed, workload=PageRank())
            b = run(SparkSimulator(noise=False, fault_plan=plan),
                    seed=seed, workload=PageRank())
            assert a.runtime_s == b.runtime_s
            assert a.faults_injected == b.faults_injected

    def test_multi_stage_span_targets_later_stages(self):
        plan = FaultPlan.of(oom_kill(1.0, span=3))
        sim = SparkSimulator(fault_plan=plan)
        stages = set()
        for seed in range(30):
            result = run(sim, seed=seed, workload=PageRank())
            assert not result.success
            # A genuine OOM may pre-empt an injection drawn for a later
            # stage; only injected kills carry an audit tag.
            stages.update(f for f in result.faults_injected if "oom_kill" in f)
        assert len(stages) > 1       # the drawn stage actually varies
