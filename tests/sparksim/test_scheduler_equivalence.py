"""Property tests: the vectorized list scheduler is exact.

The chunked numpy `_list_schedule` must return bit-identical makespans to
the reference heap implementation for every input — it is a hot-path
optimisation, not an approximation.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparksim.scheduler import (
    _MIN_VECTOR_SLOTS,
    _list_schedule,
    _list_schedule_heap,
)

durations = st.lists(
    st.floats(min_value=1e-3, max_value=1e4, allow_nan=False,
              allow_infinity=False),
    min_size=1, max_size=400,
)


@settings(max_examples=200, deadline=None)
@given(durations, st.integers(min_value=1, max_value=300))
def test_vectorized_matches_heap_exactly(tasks, slots):
    d = np.asarray(tasks, dtype=float)
    assert _list_schedule(d, slots) == _list_schedule_heap(d, slots)


@settings(max_examples=100, deadline=None)
@given(
    st.integers(min_value=_MIN_VECTOR_SLOTS, max_value=256),
    st.integers(min_value=1, max_value=2000),
    st.integers(min_value=0, max_value=2**32 - 1),
)
def test_vectorized_path_matches_heap_at_scale(slots, n_tasks, seed):
    # Force the vectorized code path (slots >= _MIN_VECTOR_SLOTS) on
    # skewed workloads: a log-uniform body plus occasional stragglers.
    rng = np.random.default_rng(seed)
    d = np.exp(rng.uniform(-3, 3, n_tasks))
    stragglers = rng.random(n_tasks) < 0.02
    d[stragglers] *= 50.0
    assert _list_schedule(d, slots) == _list_schedule_heap(d, slots)


@settings(max_examples=100, deadline=None)
@given(durations, st.integers(min_value=1, max_value=300))
def test_greedy_makespan_bounds(tasks, slots):
    d = np.asarray(tasks, dtype=float)
    m = _list_schedule(d, slots)
    lower = max(float(d.max()), float(d.sum()) / slots)
    assert m >= lower - 1e-9 * max(1.0, lower)
    assert m <= float(d.sum()) / slots + float(d.max()) + 1e-9


def test_ties_and_equal_durations():
    d = np.full(500, 3.0)
    assert _list_schedule(d, 32) == _list_schedule_heap(d, 32)


def test_descending_and_ascending_orders():
    base = np.exp(np.linspace(-2, 2, 777))
    for d in (base, base[::-1].copy()):
        assert _list_schedule(d, 48) == _list_schedule_heap(d, 48)
