"""Direct unit tests for compute_stage_cost."""

import pytest

from repro.cloud import Cluster, NOISY, QUIET
from repro.config import Configuration, SPARK_DEFAULTS, grant_resources
from repro.sparksim import (
    Calibration,
    ExecutorModel,
    StageProfile,
    compute_stage_cost,
    plan_cache,
    with_overrides,
)


def _config(**overrides):
    cfg = dict(SPARK_DEFAULTS)
    cfg.update({
        "spark.executor.instances": 8, "spark.executor.cores": 4,
        "spark.executor.memory": 8192, "spark.default.parallelism": 64,
    })
    cfg.update(overrides)
    return Configuration(cfg)


@pytest.fixture
def setup(cluster):
    def make(stage, config=None, cached_mb=0.0):
        config = config or _config()
        grant = grant_resources(config, cluster)
        executor = ExecutorModel.from_config(config)
        cache = plan_cache(cached_mb, grant.executors, executor, config)
        return stage, config, cluster, grant, executor, cache

    return make


def _scan_stage(input_mb=12800.0):
    return StageProfile(stage_id=0, name="scan", num_tasks_hint=100,
                        input_mb=input_mb, cpu_s=input_mb * 0.01,
                        output_mb=input_mb)


def _shuffle_stage(read_mb=6400.0):
    return StageProfile(stage_id=1, name="reduce", num_tasks_hint=None,
                        shuffle_read_mb=read_mb, cpu_s=read_mb * 0.01,
                        output_mb=read_mb, depends_on=[0])


class TestStageCost:
    def test_uses_parallelism_when_no_hint(self, setup):
        args = setup(_shuffle_stage())
        cost = compute_stage_cost(*args, QUIET, num_map_tasks=100)
        assert cost.num_tasks == 64

    def test_uses_hint_when_present(self, setup):
        args = setup(_scan_stage())
        cost = compute_stage_cost(*args, QUIET)
        assert cost.num_tasks == 100

    def test_components_nonnegative_and_task_total(self, setup):
        args = setup(_scan_stage())
        cost = compute_stage_cost(*args, QUIET)
        t = cost.task
        assert min(t.cpu_s, t.disk_s, t.net_s, t.gc_s, t.launch_s, t.idle_s) >= 0
        assert t.total_s == pytest.approx(
            t.cpu_s + t.disk_s + t.net_s + t.gc_s + t.launch_s + t.idle_s
        )

    def test_cpu_splits_across_tasks(self, setup):
        small = _scan_stage()
        args = setup(small)
        few = compute_stage_cost(*args, QUIET)
        many_stage = _scan_stage()
        many_stage.num_tasks_hint = 400
        args2 = setup(many_stage)
        many = compute_stage_cost(*args2, QUIET)
        assert many.task.cpu_s < few.task.cpu_s

    def test_interference_inflates_costs(self, setup):
        args = setup(_scan_stage())
        quiet = compute_stage_cost(*args, QUIET)
        noisy = compute_stage_cost(*args, NOISY)
        assert noisy.task.cpu_s > quiet.task.cpu_s
        assert noisy.task.disk_s > quiet.task.disk_s

    def test_fast_cores_reduce_cpu(self, setup):
        stage = _scan_stage()
        args_slow = setup(stage)
        slow = compute_stage_cost(*args_slow, QUIET)
        fast_cluster = Cluster.of("c5.4xlarge", 4)  # cpu_speed 1.18
        config = _config()
        grant = grant_resources(config, fast_cluster)
        executor = ExecutorModel.from_config(config)
        cache = plan_cache(0, grant.executors, executor, config)
        fast = compute_stage_cost(stage, config, fast_cluster, grant,
                                  executor, cache, QUIET)
        assert fast.task.cpu_s < slow.task.cpu_s

    def test_oom_flag_on_starved_memory(self, setup):
        stage = _shuffle_stage(read_mb=64_000.0)
        stage.num_tasks_hint = 8            # 8 GB logical per task
        stage.unspillable_fraction = 0.3
        config = _config(**{"spark.executor.memory": 1024})
        args = setup(stage, config=config)
        cost = compute_stage_cost(*args, QUIET, num_map_tasks=100)
        assert cost.task.oom

    def test_spill_reported_in_totals(self, setup):
        stage = _shuffle_stage(read_mb=64_000.0)
        stage.num_tasks_hint = 32
        config = _config(**{"spark.executor.memory": 4096})
        args = setup(stage, config=config)
        cost = compute_stage_cost(*args, QUIET, num_map_tasks=100)
        assert not cost.task.oom
        assert cost.task.spilled_mb > 0
        assert cost.spill_mb_total == pytest.approx(
            cost.task.spilled_mb * cost.num_tasks
        )

    def test_driver_overhead_scales_with_tasks(self, setup):
        small = _scan_stage()
        args = setup(small)
        a = compute_stage_cost(*args, QUIET)
        big = _scan_stage()
        big.num_tasks_hint = 2000
        args2 = setup(big)
        b = compute_stage_cost(*args2, QUIET)
        assert b.driver_s > a.driver_s

    def test_collect_charged_to_driver(self, setup):
        stage = _scan_stage()
        stage.collect_mb = 100.0
        args = setup(stage)
        with_collect = compute_stage_cost(*args, QUIET)
        stage2 = _scan_stage()
        args2 = setup(stage2)
        without = compute_stage_cost(*args2, QUIET)
        assert with_collect.driver_s > without.driver_s

    def test_zero_granted_executors_rejected(self, cluster):
        stage = _scan_stage()
        config = _config(**{"spark.executor.memory": 65536})
        grant = grant_resources(config, cluster)
        executor = ExecutorModel.from_config(config)
        cache = plan_cache(0, 1, executor, config)
        with pytest.raises(ValueError):
            compute_stage_cost(stage, config, cluster, grant, executor,
                               cache, QUIET)

    def test_calibration_override_changes_cost(self, setup):
        args = setup(_scan_stage())
        base = compute_stage_cost(*args, QUIET)
        slow_launch = with_overrides(Calibration(), task_launch_s=1.0)
        slower = compute_stage_cost(*args, QUIET, calib=slow_launch)
        assert slower.task.launch_s == 1.0
        assert slower.task.total_s > base.task.total_s

    def test_cache_miss_costs_recompute(self, setup, cluster):
        stage = StageProfile(stage_id=0, name="iter", num_tasks_hint=100,
                             cached_read_mb=10_000.0, cpu_s=50.0,
                             output_mb=100.0)
        config = _config(**{"spark.executor.memory": 1024})  # cache won't fit
        grant = grant_resources(config, cluster)
        executor = ExecutorModel.from_config(config)
        miss_cache = plan_cache(10_000.0, grant.executors, executor, config,
                                recompute_cpu_s_per_mb=0.05,
                                recompute_io_mb_per_mb=1.0)
        assert miss_cache.hit_fraction < 1.0
        cost_miss = compute_stage_cost(stage, config, cluster, grant,
                                       executor, miss_cache, QUIET)
        big_config = _config(**{"spark.executor.memory": 32768})
        grant2 = grant_resources(big_config, cluster)
        executor2 = ExecutorModel.from_config(big_config)
        hit_cache = plan_cache(10_000.0, grant2.executors, executor2, big_config)
        cost_hit = compute_stage_cost(stage, big_config, cluster, grant2,
                                      executor2, hit_cache, QUIET)
        assert cost_miss.task.total_s > cost_hit.task.total_s
