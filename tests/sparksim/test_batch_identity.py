"""Property tests: ``run_batch`` is bit-identical to a loop of ``run()``.

The candidate-batched fast path (plan cache + struct-of-arrays stage
costing) is an optimisation, not an approximation: every
:class:`ExecutionResult` it produces must equal, field for field, what
the scalar path returns for the same (config, env, seed).  These tests
drive the contract across workloads, seeds, environments, batch sizes,
fault plans, and candidate mixes that include cluster-manager rejections
and OOM-failing configurations.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloud import Cluster
from repro.cloud.interference import NOISY, QUIET, TYPICAL
from repro.config.spark_params import spark_space
from repro.sparksim import SparkSimulator
from repro.sparksim.faults import (
    FaultPlan,
    env_spike,
    executor_loss,
    oom_kill,
    straggler,
)
from repro.workloads import KMeans, Sort, Wordcount

CLUSTER = Cluster.of("m5.2xlarge", 4)
SPACE = spark_space()
ENVS = (QUIET, TYPICAL, NOISY)
WORKLOADS = (
    (Sort(), 1024.0),
    (Wordcount(), 768.0),
    (KMeans(), 512.0),
)
PLANS = (
    None,
    FaultPlan(),                      # a plan with no specs never fires
    FaultPlan((executor_loss(0.5, fraction=0.4, span=2),
               straggler(0.4, slowdown=4.0, span=2))),
    FaultPlan((oom_kill(0.5, span=2), env_spike(0.4, multiplier=2.0))),
)

#: forces the cluster-manager rejection path: no node fits the container
REJECT = {"spark.executor.memory": 262144}
#: forces the OOM path: minimal per-task execution memory (512 MiB heap
#: split across 8 concurrent tasks leaves less than the 32 MiB floor),
#: so a task's working set cannot even spill
OOM = {
    "spark.executor.memory": 512,
    "spark.executor.cores": 8,
    "spark.task.cpus": 1,
    "spark.executor.instances": 4,
    "spark.memory.fraction": 0.3,
    "spark.memory.storageFraction": 0.9,
    "spark.memory.offHeap.enabled": False,
    "spark.memory.offHeap.size": 0,
    "spark.default.parallelism": 8,
}


def _candidates(rng, n, include_failures):
    configs = [SPACE.sample_configuration(rng) for _ in range(n)]
    if include_failures and n >= 2:
        configs[-1] = configs[-1].replace(**REJECT)
        configs[-2] = configs[-2].replace(**OOM)
    return configs


def _assert_batch_identity(sim, workload, input_mb, configs, envs, seeds):
    batch = sim.run_batch(workload, input_mb, CLUSTER, configs,
                          envs=envs, seeds=seeds)
    scalar = [
        sim.run(workload, input_mb, CLUSTER, c, env=e, seed=s)
        for c, e, s in zip(configs, envs, seeds)
    ]
    assert batch == scalar
    return batch


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=0, max_value=len(WORKLOADS) - 1),
    st.integers(min_value=0, max_value=len(PLANS) - 1),
    st.integers(min_value=2, max_value=8),
    st.integers(min_value=0, max_value=2**31 - 1),
    st.booleans(),
)
def test_run_batch_matches_scalar_loop(w_idx, plan_idx, batch_size, seed,
                                       include_failures):
    workload, input_mb = WORKLOADS[w_idx]
    rng = np.random.default_rng(seed)
    configs = _candidates(rng, batch_size, include_failures)
    envs = [ENVS[i % len(ENVS)] for i in range(batch_size)]
    seeds = [seed + 17 * i for i in range(batch_size)]
    sim = SparkSimulator(fault_plan=PLANS[plan_idx])
    _assert_batch_identity(sim, workload, input_mb, configs, envs, seeds)


def test_failure_paths_are_exercised_and_identical():
    """The deterministic mix really hits reject, OOM, and fault aborts."""
    rng = np.random.default_rng(7)
    configs = _candidates(rng, 6, include_failures=True)
    envs = [ENVS[i % len(ENVS)] for i in range(6)]
    seeds = list(range(6))
    sim = SparkSimulator(fault_plan=FaultPlan((straggler(1.0, slowdown=3.0),)))
    batch = _assert_batch_identity(sim, Sort(), 1024.0, configs, envs, seeds)

    reasons = [r.failure_reason for r in batch if not r.success]
    assert any("does not fit" in (m or "") for m in reasons), reasons
    assert any("OOM in stage" in (m or "") for m in reasons), reasons
    assert any(r.faults_injected for r in batch)


def test_noise_off_batch_identity():
    rng = np.random.default_rng(3)
    configs = _candidates(rng, 5, include_failures=True)
    sim = SparkSimulator(noise=False)
    _assert_batch_identity(sim, Sort(), 1024.0, configs,
                           [QUIET] * 5, [0] * 5)


def test_large_batch_identity():
    """The joint (stages x candidates) program holds at production widths.

    512 candidates is past every chunking/vectorization threshold in the
    batch path (plan arrays, pooled seeding, fused cost sweep), so this
    is the regime where a broadcasting or accumulation-order bug would
    surface; includes reject/OOM rows and repeated seeds.
    """
    n = 512
    rng = np.random.default_rng(21)
    configs = _candidates(rng, n, include_failures=True)
    envs = [ENVS[i % len(ENVS)] for i in range(n)]
    seeds = [(31 * i) % 97 for i in range(n)]       # many duplicate streams
    sim = SparkSimulator()
    _assert_batch_identity(sim, Sort(), 1024.0, configs, envs, seeds)


def test_mixed_envs_and_duplicate_seeds():
    """Candidates sharing a seed under different envs stay independent."""
    rng = np.random.default_rng(13)
    configs = _candidates(rng, 9, include_failures=True)
    envs = [ENVS[i % len(ENVS)] for i in range(9)]
    seeds = [5, 5, 5, 2**63 - 1, 0, 0, 7, 5, 2**63 - 1]
    for workload, input_mb in WORKLOADS:
        sim = SparkSimulator()
        _assert_batch_identity(sim, workload, input_mb, configs, envs, seeds)


def test_batch_of_one_and_empty():
    rng = np.random.default_rng(4)
    (config,) = _candidates(rng, 1, include_failures=False)
    sim = SparkSimulator()
    assert sim.run_batch(Sort(), 512.0, CLUSTER, []) == []
    _assert_batch_identity(sim, Sort(), 512.0, [config], [TYPICAL], [9])


def test_batch_arrays_keep_stable_dtypes():
    """The batch path's internal arrays stay float64/int64/bool end to
    end (the runtime counterpart of staticcheck's RA001): bit-identity
    with the scalar model must not rest on accidental promotion, so a
    column quietly landing in float32 or a platform-dependent int is a
    bug even while the identity tests above still pass on this machine.
    """
    from repro.config.constraints import grant_resources
    from repro.sparksim.costmodel import (
        build_batch_inputs,
        build_plan_arrays,
        compute_plan_cost_batch,
    )
    from repro.sparksim.executor import ExecutorModel

    rng = np.random.default_rng(11)
    configs, grants = [], []
    while len(configs) < 4:      # granted candidates only, like run_batch
        config = SPACE.sample_configuration(rng)
        grant = grant_resources(config, CLUSTER)
        if grant.executors >= 1:
            configs.append(config)
            grants.append(grant)
    executors = [ExecutorModel.from_config(c) for c in configs]
    envs = [ENVS[i % len(ENVS)] for i in range(4)]

    sim = SparkSimulator()
    compiled = sim.compile_workload(Sort(), 1024.0)
    b = build_batch_inputs(configs, CLUSTER, grants, executors, envs)
    plan = build_plan_arrays(compiled)
    cost = compute_plan_cost_batch(plan, b, sim.calibration)

    for name in ("locality_wait", "remote_frac", "flush_base",
                 "fetch_efficiency", "per_block_s", "heap_mb",
                 "unified_mb", "immune_mb", "offheap_mb", "disk_share",
                 "net_share", "env_cpu", "cache_footprint",
                 "cache_read_cpu", "cache_capacity"):
        assert getattr(b, name).dtype == np.float64, name
    for name in ("parallelism", "executors", "requested", "concurrent",
                 "bypass_threshold"):
        assert getattr(b, name).dtype == np.int64, name
    for name in ("shuffle_compress", "spill_compress", "speculation",
                 "cache_miss_to_disk"):
        assert getattr(b, name).dtype == np.bool_, name

    assert plan.hint.dtype == np.int64
    for name in ("input_mb", "cached_read_mb", "shuffle_read_mb",
                 "shuffle_write_mb", "output_mb_eff", "cpu_s",
                 "unspillable", "collect_mb", "cached_mb",
                 "recompute_cpu", "recompute_io"):
        assert getattr(plan, name).dtype == np.float64, name
    for name in ("has_input", "has_cached", "has_shuffle_read",
                 "has_shuffle_write", "has_output"):
        assert getattr(plan, name).dtype == np.bool_, name

    assert cost.num_tasks.dtype == np.int64
    assert cost.oom.dtype == np.bool_
    for name in ("cpu_s", "disk_s", "net_s", "gc_s", "idle_s", "total_s",
                 "driver_s", "spilled_mb", "spill_mb_total"):
        assert getattr(cost, name).dtype == np.float64, name


def test_histories_identical_under_engine_batching():
    """End to end: identical observation histories through the engine."""
    from repro.engine import EngineObjective, EvaluationEngine
    from repro.engine.executors import SerialExecutor
    from repro.tuning import RandomSearchTuner, run_tuner_batched

    def campaign(simulator, executor):
        with EvaluationEngine(simulator=simulator, executor=executor) as eng:
            objective = EngineObjective(eng, Sort(), 1024.0, cluster=CLUSTER,
                                        repair=True, seed=5)
            return run_tuner_batched(
                RandomSearchTuner(spark_space(), seed=11), objective,
                budget=24, batch_size=8,
            )

    sim_a = SparkSimulator()
    batched = campaign(sim_a, SerialExecutor(sim_a, group_batches=True))
    sim_b = SparkSimulator()
    scalar = campaign(sim_b, SerialExecutor(sim_b, group_batches=False))
    assert [o.cost for o in batched.history] == \
           [o.cost for o in scalar.history]
    assert [o.config for o in batched.history] == \
           [o.config for o in scalar.history]
