"""PlanStore: the cross-process on-disk tier of the plan cache."""

from __future__ import annotations

import pickle

import numpy as np

from repro.cloud import Cluster
from repro.config.spark_params import spark_space
from repro.sparksim import SparkSimulator
from repro.sparksim.dag import CompiledWorkload, fingerprint_jobs
from repro.sparksim.planstore import PlanStore
from repro.workloads import Sort, Wordcount

CLUSTER = Cluster.of("m5.2xlarge", 4)
SPACE = spark_space()


def _compiled(workload, input_mb):
    sim = SparkSimulator()
    return sim.compile_workload(workload, input_mb)


class TestStore:
    def test_put_then_get(self, tmp_path):
        store = PlanStore(tmp_path)
        workload = Sort()
        fp = fingerprint_jobs(workload.jobs(1024.0))
        assert store.get(workload.name, 1024.0, fp) is None
        compiled = _compiled(workload, 1024.0)
        store.put(workload.name, 1024.0, fp, compiled)
        loaded = store.get(workload.name, 1024.0, fp)
        assert isinstance(loaded, CompiledWorkload)
        assert loaded.name == compiled.name
        assert loaded.input_mb == compiled.input_mb
        assert store.counters() == {"hits": 1, "misses": 1, "writes": 1}

    def test_distinct_keys_do_not_collide(self, tmp_path):
        store = PlanStore(tmp_path)
        sort, wc = Sort(), Wordcount()
        fp_sort = fingerprint_jobs(sort.jobs(1024.0))
        fp_wc = fingerprint_jobs(wc.jobs(1024.0))
        store.put(sort.name, 1024.0, fp_sort, _compiled(sort, 1024.0))
        store.put(wc.name, 1024.0, fp_wc, _compiled(wc, 1024.0))
        assert store.get(sort.name, 1024.0, fp_sort).name == sort.name
        assert store.get(wc.name, 1024.0, fp_wc).name == wc.name
        assert store.get(sort.name, 2048.0, fp_sort) is None

    def test_corrupt_entry_is_a_miss_and_healed(self, tmp_path):
        store = PlanStore(tmp_path)
        workload = Sort()
        fp = fingerprint_jobs(workload.jobs(1024.0))
        compiled = _compiled(workload, 1024.0)
        store.put(workload.name, 1024.0, fp, compiled)
        path = store._path_for(workload.name, 1024.0, fp)
        path.write_bytes(b"torn write garbage")
        assert store.get(workload.name, 1024.0, fp) is None
        assert not path.exists()      # corrupt entry deleted
        store.put(workload.name, 1024.0, fp, compiled)
        assert store.get(workload.name, 1024.0, fp) is not None

    def test_wrong_type_entry_is_a_miss(self, tmp_path):
        store = PlanStore(tmp_path)
        path = store._path_for("sort", 1024.0, "fp")
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(pickle.dumps({"not": "a plan"}))
        assert store.get("sort", 1024.0, "fp") is None

    def test_source_digest_invalidates(self, tmp_path, monkeypatch):
        from repro.sparksim import planstore as module

        store = PlanStore(tmp_path)
        workload = Sort()
        fp = fingerprint_jobs(workload.jobs(1024.0))
        store.put(workload.name, 1024.0, fp, _compiled(workload, 1024.0))
        monkeypatch.setattr(module, "_SOURCE_DIGEST", "different-sources")
        assert store.get(workload.name, 1024.0, fp) is None

    def test_unwritable_directory_degrades_gracefully(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("a file where the store dir should be")
        store = PlanStore(blocker / "nested")
        workload = Sort()
        fp = fingerprint_jobs(workload.jobs(1024.0))
        store.put(workload.name, 1024.0, fp, _compiled(workload, 1024.0))
        assert store.get(workload.name, 1024.0, fp) is None


class TestSimulatorIntegration:
    def test_second_simulator_loads_instead_of_compiling(self, tmp_path):
        store_a = PlanStore(tmp_path)
        sim_a = SparkSimulator(plan_store=store_a)
        sim_a.compile_workload(Sort(), 1024.0)
        assert store_a.writes == 1

        # A different process would construct its own store on the same
        # directory; a fresh simulator models exactly that.
        store_b = PlanStore(tmp_path)
        sim_b = SparkSimulator(plan_store=store_b)
        sim_b.compile_workload(Sort(), 1024.0)
        assert store_b.hits == 1
        assert store_b.writes == 0
        assert sim_b.plan_cache_misses == 1   # content tier still missed

    def test_results_identical_with_and_without_store(self, tmp_path):
        rng = np.random.default_rng(5)
        configs = [SPACE.sample_configuration(rng) for _ in range(4)]
        plain = SparkSimulator()
        stored = SparkSimulator(plan_store=PlanStore(tmp_path))
        warmed = SparkSimulator(plan_store=PlanStore(tmp_path))
        for config in configs:
            want = plain.run(Sort(), 1024.0, CLUSTER, config, seed=7)
            assert stored.run(Sort(), 1024.0, CLUSTER, config, seed=7) == want
            assert warmed.run(Sort(), 1024.0, CLUSTER, config, seed=7) == want

    def test_store_only_consulted_on_content_miss(self, tmp_path):
        store = PlanStore(tmp_path)
        sim = SparkSimulator(plan_store=store)
        workload = Sort()
        sim.compile_workload(workload, 1024.0)
        sim.compile_workload(workload, 1024.0)    # identity-tier hit
        sim.compile_workload(Sort(), 1024.0)      # content-tier hit
        assert store.misses == 1
        assert store.hits == 0
