"""GeneratorPool: batch-seeded generators must equal ``default_rng``."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparksim import rngpool
from repro.sparksim.rngpool import FAST_SEEDING, GeneratorPool


def _drain(gen: np.random.Generator) -> tuple:
    """A draw sequence shaped like one batch candidate's consumption."""
    return (
        gen.lognormal(mean=0.0, sigma=0.25, size=7).tolist(),
        gen.random(7).tolist(),
        gen.exponential(scale=0.5, size=3).tolist(),
        float(gen.lognormal(mean=-0.01, sigma=0.14)),
    )


class TestFastSeeding:
    def test_verified_on_this_numpy(self):
        # The arithmetic replica must hold on the pinned toolchain; if
        # numpy ever changes its seeding this becomes the loud signal
        # that the pool silently fell back (still correct, just slower).
        assert FAST_SEEDING

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_state_matches_pcg64(self, seed):
        cols = [w.tolist() for w in rngpool._seed_words_vec([seed])]
        fast = rngpool._srandom(cols[0][0], cols[1][0], cols[2][0],
                                cols[3][0])
        assert fast == np.random.PCG64(seed).state

    def test_pool_draws_equal_default_rng(self):
        seeds = [0, 1, 17, 2**31, 2**63 - 1, 2**64 - 1, 42, 42]
        pool = GeneratorPool()
        got = [_drain(g) for g in pool.generators(seeds)]
        want = [_drain(np.random.default_rng(s)) for s in seeds]
        assert got == want

    def test_pool_is_reusable_across_batches(self):
        pool = GeneratorPool()
        for batch in ([3, 5, 7], [11], [13, 3, 5, 7, 999]):
            got = [_drain(g) for g in pool.generators(batch)]
            want = [_drain(np.random.default_rng(s)) for s in batch]
            assert got == want

    def test_out_of_range_seeds_fall_back(self):
        seeds = [2**64, 2**70 + 123, 5]
        got = [_drain(g) for g in GeneratorPool().generators(seeds)]
        want = [_drain(np.random.default_rng(s)) for s in seeds]
        assert got == want

    def test_fallback_when_fast_seeding_disabled(self, monkeypatch):
        monkeypatch.setattr(rngpool, "FAST_SEEDING", False)
        seeds = [1, 2, 3]
        got = [_drain(g) for g in GeneratorPool().generators(seeds)]
        want = [_drain(np.random.default_rng(s)) for s in seeds]
        assert got == want
