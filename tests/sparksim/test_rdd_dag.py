"""Tests for the RDD lineage API and the DAG compiler."""

import pytest

from repro.sparksim import CacheRegistry, RDD, compile_job


class TestRDDLineage:
    def test_source_default_partitioning(self):
        src = RDD.source("data", 1280)
        assert src.partitions == 10  # 128 MB splits

    def test_source_rejects_empty(self):
        with pytest.raises(ValueError):
            RDD.source("data", 0)

    def test_narrow_preserves_partitions(self):
        src = RDD.source("data", 1280, partitions=7)
        assert src.map().partitions == 7
        assert src.filter(keep=0.5).partitions == 7

    def test_size_flows_through_ratios(self):
        src = RDD.source("data", 1000)
        out = src.flat_map(size_ratio=1.5).filter(keep=0.5)
        assert out.size_mb == pytest.approx(750)

    def test_filter_validates_keep(self):
        with pytest.raises(ValueError):
            RDD.source("d", 100).filter(keep=0.0)

    def test_wide_ops_take_explicit_or_default_partitions(self):
        src = RDD.source("data", 1000)
        assert src.reduce_by_key(partitions=33).partitions == 33
        assert src.reduce_by_key().partitions is None  # spark.default.parallelism

    def test_group_by_key_shuffles_everything(self):
        src = RDD.source("data", 1000)
        grouped = src.group_by_key()
        assert grouped.input_mb == pytest.approx(1000)
        assert grouped.op.size_ratio == 1.0
        assert grouped.unspillable_fraction > src.unspillable_fraction

    def test_join_merges_parents(self):
        a = RDD.source("a", 600)
        b = RDD.source("b", 400)
        j = a.join(b)
        assert j.input_mb == pytest.approx(1000)
        assert len(j.parents) == 2

    def test_lineage_topological_and_deduped(self):
        a = RDD.source("a", 100)
        b = a.map()
        c = b.join(b.filter())
        lineage = c.lineage()
        ids = [r.id for r in lineage]
        assert len(ids) == len(set(ids))
        assert ids.index(a.id) < ids.index(b.id) < ids.index(c.id)

    def test_cache_marks(self):
        r = RDD.source("a", 100).map().cache()
        assert r.cached


class TestDAGCompiler:
    def test_map_only_job_single_stage(self):
        job = RDD.source("d", 1000).map().filter().count()
        plan = compile_job(job)
        assert plan.num_stages == 1
        stage = plan.stages[0]
        assert stage.input_mb == pytest.approx(1000)
        assert stage.shuffle_read_mb == 0

    def test_shuffle_cuts_two_stages(self):
        job = RDD.source("d", 1000).map().reduce_by_key(size_ratio=0.3).count()
        plan = compile_job(job)
        assert plan.num_stages == 2
        topo = plan.topological()
        map_stage, reduce_stage = topo[0], topo[1]
        assert map_stage.shuffle_write_mb == pytest.approx(300)
        assert reduce_stage.shuffle_read_mb == pytest.approx(300)
        assert reduce_stage.depends_on == [map_stage.stage_id]

    def test_join_produces_three_stages(self):
        a = RDD.source("a", 600).map()
        b = RDD.source("b", 400).map()
        plan = compile_job(a.join(b).count())
        assert plan.num_stages == 3
        reduce_stage = [s for s in plan.stages if s.shuffle_read_mb > 0]
        assert len(reduce_stage) == 1
        assert reduce_stage[0].shuffle_read_mb == pytest.approx(1000)
        assert len(reduce_stage[0].depends_on) == 2

    def test_shuffle_write_split_by_parent_share(self):
        a = RDD.source("a", 600)
        b = RDD.source("b", 400)
        plan = compile_job(a.join(b).count())
        writes = sorted(s.shuffle_write_mb for s in plan.stages if s.shuffle_write_mb > 0)
        assert writes == [pytest.approx(400), pytest.approx(600)]

    def test_cached_rdd_materialized_then_truncates(self):
        cached = RDD.source("d", 1000).map().cache()
        registry = CacheRegistry()
        plan1 = compile_job(cached.count(), registry)
        assert plan1.stages[0].materializes
        rdd_id, mb, _ = plan1.stages[0].materializes[0]
        registry.materialize(rdd_id, mb, 100.0)

        # Second job over the same cached RDD reads the cache, not the source.
        plan2 = compile_job(cached.map().count(), registry, first_stage_id=10)
        stage = plan2.stages[0]
        assert stage.cached_read_mb == pytest.approx(1000)
        assert stage.input_mb == 0

    def test_uncached_second_job_recomputes(self):
        base = RDD.source("d", 1000).map()
        registry = CacheRegistry()
        compile_job(base.count(), registry)
        plan2 = compile_job(base.filter().count(), registry)
        assert plan2.stages[0].input_mb == pytest.approx(1000)

    def test_recompute_hints_filled(self):
        cached = RDD.source("d", 1000).map(cpu_s_per_mb=0.02).group_by_key().cache()
        plan = compile_job(cached.count())
        producing = [s for s in plan.stages if s.materializes][0]
        assert producing.recompute_cpu_s_per_mb > 0
        # Grouped data re-fetches its shuffle input: ~1 byte per byte.
        assert producing.recompute_io_mb_per_mb == pytest.approx(1.0, rel=0.1)

    def test_stage_ids_offset(self):
        job = RDD.source("d", 100).reduce_by_key().count()
        plan = compile_job(job, first_stage_id=5)
        assert {s.stage_id for s in plan.stages} == {5, 6}

    def test_collect_lands_on_final_stage(self):
        job = RDD.source("d", 100).map().collect(result_fraction=0.1)
        plan = compile_job(job)
        assert plan.stages[0].collect_mb == pytest.approx(10)

    def test_save_marks_output(self):
        job = RDD.source("d", 100).sort_by().save()
        plan = compile_job(job)
        final = plan.topological()[-1]
        assert final.writes_output
        assert final.output_mb == pytest.approx(100)

    def test_graph_is_acyclic_dag(self):
        import networkx as nx

        a = RDD.source("a", 500).map()
        plan = compile_job(a.join(a.filter()).reduce_by_key().count())
        assert nx.is_directed_acyclic_graph(plan.graph())


class TestCacheRegistry:
    def test_evict_idempotent(self):
        reg = CacheRegistry()
        reg.materialize(1, 100, 50)
        reg.evict(1)
        reg.evict(1)  # no error
        assert not reg.is_materialized(1)
        assert reg.total_cached_mb == 0

    def test_weighted_recompute_means(self):
        reg = CacheRegistry()
        reg.materialize(1, 100, 50, recompute_cpu_s_per_mb=0.1, recompute_io_mb_per_mb=2.0)
        reg.materialize(2, 300, 50, recompute_cpu_s_per_mb=0.02, recompute_io_mb_per_mb=1.0)
        assert reg.mean_recompute_cpu_s_per_mb() == pytest.approx(0.04)
        assert reg.mean_recompute_io_mb_per_mb() == pytest.approx(1.25)

    def test_empty_registry_defaults(self):
        reg = CacheRegistry()
        assert reg.mean_recompute_cpu_s_per_mb() == pytest.approx(0.02)
        assert reg.mean_recompute_io_mb_per_mb() == pytest.approx(1.0)
