"""Integration tests for the end-to-end Spark simulator.

These assert the *directional* behaviours the tuning literature measures:
more resources help, bad memory sizing spills or crashes, caching helps
iterative workloads, compression trades CPU for bytes.
"""

import pytest

from repro.cloud import Cluster, NOISY, QUIET
from repro.config import SPARK_DEFAULTS, Configuration, spark_space
from repro.sparksim import SparkSimulator
from repro.workloads import KMeans, PageRank, Sort, Wordcount


def _config(**overrides):
    cfg = dict(SPARK_DEFAULTS)
    cfg.update(overrides)
    return Configuration(cfg)


GOOD = _config(**{
    "spark.executor.instances": 8,
    "spark.executor.cores": 8,
    "spark.executor.memory": 24576,
    "spark.default.parallelism": 256,
    "spark.serializer": "kryo",
})


class TestBasicExecution:
    def test_successful_run_has_metrics(self, cluster, simulator):
        r = simulator.run(Wordcount(), 5000, cluster, GOOD, seed=1)
        assert r.success
        assert r.runtime_s > 0
        assert r.num_stages == 2
        assert r.total_input_mb > 0
        assert all(s.num_tasks >= 1 for s in r.stages)

    def test_deterministic_given_seed(self, cluster, simulator):
        a = simulator.run(Sort(), 5000, cluster, GOOD, seed=7)
        b = simulator.run(Sort(), 5000, cluster, GOOD, seed=7)
        assert a.runtime_s == b.runtime_s

    def test_different_seeds_differ(self, cluster, simulator):
        a = simulator.run(Sort(), 5000, cluster, GOOD, seed=1)
        b = simulator.run(Sort(), 5000, cluster, GOOD, seed=2)
        assert a.runtime_s != b.runtime_s

    def test_noise_off_removes_run_variance(self, cluster, quiet_simulator):
        a = quiet_simulator.run(Sort(), 5000, cluster, GOOD, seed=1)
        b = quiet_simulator.run(Sort(), 5000, cluster, GOOD, seed=2)
        assert a.runtime_s == pytest.approx(b.runtime_s)

    def test_runtime_grows_with_input(self, cluster, simulator):
        small = simulator.run(Wordcount(), 5_000, cluster, GOOD, seed=1)
        big = simulator.run(Wordcount(), 50_000, cluster, GOOD, seed=1)
        assert big.runtime_s > 2 * small.runtime_s


class TestResourceSensitivity:
    def test_more_slots_faster(self, cluster, quiet_simulator):
        one = quiet_simulator.run(Sort(), 10_000, cluster, _config(**{
            "spark.executor.instances": 2, "spark.executor.cores": 2,
            "spark.executor.memory": 8192, "spark.default.parallelism": 128,
        }))
        many = quiet_simulator.run(Sort(), 10_000, cluster, _config(**{
            "spark.executor.instances": 16, "spark.executor.cores": 4,
            "spark.executor.memory": 8192, "spark.default.parallelism": 128,
        }))
        assert many.runtime_s < one.runtime_s

    def test_default_config_much_slower_than_tuned(self, cluster, simulator):
        # The 10-89x claims: default requests 2 executors x 1 core.
        default = simulator.run(PageRank(), 5_000, cluster,
                                Configuration(SPARK_DEFAULTS), seed=1)
        tuned = simulator.run(PageRank(), 5_000, cluster, GOOD, seed=1)
        assert default.effective_runtime() > 5 * tuned.effective_runtime()

    def test_bigger_cluster_faster(self, simulator):
        small = Cluster.of("h1.4xlarge", 2)
        big = Cluster.of("h1.4xlarge", 8)
        cfg = GOOD.replace(**{"spark.executor.instances": 32})
        a = simulator.run(Sort(), 20_000, small, cfg, seed=3)
        b = simulator.run(Sort(), 20_000, big, cfg, seed=3)
        assert b.runtime_s < a.runtime_s


class TestFailureModes:
    def test_unsatisfiable_request_fails_fast(self, cluster, simulator):
        cfg = _config(**{"spark.executor.memory": 65536,
                         "spark.executor.memoryOverheadFactor": 0.2})
        r = simulator.run(Wordcount(), 1000, cluster, cfg)
        assert not r.success
        assert r.executors_granted == 0
        assert "does not fit" in r.failure_reason

    def test_oom_on_starved_executors(self, cluster, simulator):
        # Big shuffle partitions + tiny heap + many concurrent tasks = OOM.
        cfg = _config(**{
            "spark.executor.instances": 8, "spark.executor.cores": 8,
            "spark.executor.memory": 1024, "spark.default.parallelism": 8,
            "spark.memory.fraction": 0.3,
        })
        r = simulator.run(Sort(), 50_000, cluster, cfg)
        assert not r.success
        assert "OOM" in r.failure_reason
        assert any(s.failed for s in r.stages)

    def test_failure_penalty_floor(self, cluster, simulator):
        cfg = _config(**{"spark.executor.memory": 65536})
        r = simulator.run(Wordcount(), 1000, cluster, cfg)
        assert r.effective_runtime() >= 3600.0
        assert r.effective_runtime(failure_floor_s=100.0) < 3600.0


class TestMemoryBehaviour:
    def test_spill_with_coarse_partitions(self, cluster, quiet_simulator):
        # 50 GB shuffle over 16 partitions = ~3 GB/task working sets.
        spilling = quiet_simulator.run(Sort(), 50_000, cluster, _config(**{
            "spark.executor.instances": 8, "spark.executor.cores": 4,
            "spark.executor.memory": 8192, "spark.default.parallelism": 16,
        }))
        fine = quiet_simulator.run(Sort(), 50_000, cluster, _config(**{
            "spark.executor.instances": 8, "spark.executor.cores": 4,
            "spark.executor.memory": 8192, "spark.default.parallelism": 512,
        }))
        assert spilling.total_spill_mb > 0
        assert fine.total_spill_mb == 0
        assert fine.runtime_s < spilling.runtime_s

    def test_caching_pays_off_for_iterative(self, cluster, quiet_simulator):
        # KMeans re-scans its point set; more memory -> cache fits -> faster.
        small_mem = quiet_simulator.run(KMeans(), 30_000, cluster, _config(**{
            "spark.executor.instances": 8, "spark.executor.cores": 4,
            "spark.executor.memory": 2048, "spark.default.parallelism": 256,
        }))
        big_mem = quiet_simulator.run(KMeans(), 30_000, cluster, _config(**{
            "spark.executor.instances": 8, "spark.executor.cores": 4,
            "spark.executor.memory": 24576, "spark.default.parallelism": 256,
        }))
        assert big_mem.runtime_s < small_mem.runtime_s

    def test_cached_reads_recorded(self, cluster, simulator):
        r = simulator.run(PageRank(iterations=2), 3000, cluster, GOOD, seed=1)
        assert sum(s.cached_read_mb for s in r.stages) > 0


class TestEnvironment:
    def test_interference_slows_execution(self, cluster, quiet_simulator):
        calm = quiet_simulator.run(Sort(), 20_000, cluster, GOOD, env=QUIET)
        noisy = quiet_simulator.run(Sort(), 20_000, cluster, GOOD, env=NOISY)
        assert noisy.runtime_s > calm.runtime_s
        assert noisy.environment_factor > 1.0


class TestConfigKnobs:
    def test_kryo_beats_java_on_shuffle_heavy(self, cluster, quiet_simulator):
        java = quiet_simulator.run(Sort(), 30_000, cluster,
                                   GOOD.replace(**{"spark.serializer": "java"}))
        kryo = quiet_simulator.run(Sort(), 30_000, cluster,
                                   GOOD.replace(**{"spark.serializer": "kryo"}))
        assert kryo.runtime_s < java.runtime_s

    def test_excessive_parallelism_costs_overhead(self, cluster, quiet_simulator):
        moderate = quiet_simulator.run(Wordcount(), 5_000, cluster,
                                       GOOD.replace(**{"spark.default.parallelism": 64}))
        excessive = quiet_simulator.run(Wordcount(), 5_000, cluster,
                                        GOOD.replace(**{"spark.default.parallelism": 2000}))
        assert excessive.runtime_s > moderate.runtime_s

    def test_irrelevant_knob_changes_nothing(self, cluster, quiet_simulator):
        a = quiet_simulator.run(Sort(), 10_000, cluster, GOOD)
        b = quiet_simulator.run(Sort(), 10_000, cluster,
                                GOOD.replace(**{"spark.network.timeout": 600}))
        assert a.runtime_s == pytest.approx(b.runtime_s)
