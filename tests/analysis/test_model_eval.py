"""Tests for cross-validated model evaluation."""

import numpy as np
import pytest

from repro.analysis import PredictionScore, cross_validate
from repro.tuning import GaussianProcess, KernelRidgeRegressor, RandomForestRegressor


@pytest.fixture
def dataset(rng):
    X = rng.random((60, 4))
    y = np.exp(1.0 + 2.0 * X[:, 0] + 0.5 * np.sin(6 * X[:, 1]))
    return X, y


class TestCrossValidate:
    def test_good_model_scores_well(self, dataset):
        X, y = dataset
        score = cross_validate(lambda: RandomForestRegressor(n_trees=20, seed=0),
                               X, y, k=5, seed=0)
        assert score.spearman > 0.7
        assert score.mape < 0.5

    def test_gp_tuple_predictions_handled(self, dataset):
        X, y = dataset
        score = cross_validate(lambda: GaussianProcess(n_restarts=1, seed=0),
                               X, y, k=5, seed=0)
        assert np.isfinite(score.rmse)
        assert score.spearman > 0.5

    def test_useless_model_near_zero_rank(self, rng):
        X = rng.random((60, 4))
        y = rng.random(60) * 100 + 1

        class Constant:
            def fit(self, X, y):
                self.v = float(np.mean(y))
                return self

            def predict(self, X):
                return np.full(len(X), self.v)

        score = cross_validate(Constant, X, y, k=5, seed=0)
        assert abs(score.spearman) < 0.3

    def test_log_targets_off(self, dataset):
        X, y = dataset
        score = cross_validate(lambda: KernelRidgeRegressor(lengthscale=0.5),
                               X, y, k=5, seed=0, log_targets=False)
        assert np.isfinite(score.rmse)

    def test_validates_inputs(self, rng):
        with pytest.raises(ValueError):
            cross_validate(lambda: KernelRidgeRegressor(), rng.random((5, 2)),
                           rng.random(5), k=5)
        with pytest.raises(ValueError):
            cross_validate(lambda: KernelRidgeRegressor(), rng.random((10, 2)),
                           rng.random(9), k=2)

    def test_describe(self):
        s = PredictionScore(rmse=1.0, mape=0.25, spearman=0.8)
        assert "25" in s.describe()
