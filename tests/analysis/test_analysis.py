"""Tests for statistics, regret curves and report rendering."""

import numpy as np
import pytest

from repro.analysis import (
    bootstrap_ci,
    evaluations_to_target,
    geometric_mean,
    mean_incumbent_curve,
    normalized_regret_curve,
    render_table,
    summarize,
)
from repro.config import Configuration
from repro.tuning import Observation, TuningResult


def _result(costs):
    r = TuningResult()
    for i, c in enumerate(costs):
        r.history.append(Observation(Configuration({"i": i}), c))
    return r


class TestStats:
    def test_bootstrap_brackets_mean(self):
        rng = np.random.default_rng(0)
        data = rng.normal(10, 1, 100)
        point, lo, hi = bootstrap_ci(data, seed=1)
        assert lo <= point <= hi
        assert point == pytest.approx(10, abs=0.5)
        assert hi - lo < 1.0

    def test_bootstrap_single_value(self):
        assert bootstrap_ci([5.0]) == (5.0, 5.0, 5.0)

    def test_bootstrap_empty_rejected(self):
        with pytest.raises(ValueError):
            bootstrap_ci([])

    def test_geometric_mean(self):
        assert geometric_mean([1, 100]) == pytest.approx(10.0)
        with pytest.raises(ValueError):
            geometric_mean([1, -1])

    def test_summarize_keys(self):
        s = summarize([1, 2, 3, 4, 100])
        assert s["min"] == 1 and s["max"] == 100
        assert s["p50"] == 3


class TestRegret:
    def test_normalized_regret(self):
        r = _result([10.0, 6.0, 8.0, 5.0])
        regret = normalized_regret_curve(r, optimum=5.0)
        assert regret[0] == pytest.approx(1.0)
        assert regret[-1] == pytest.approx(0.0)
        assert (np.diff(regret) <= 0).all()

    def test_regret_requires_positive_optimum(self):
        with pytest.raises(ValueError):
            normalized_regret_curve(_result([1.0]), optimum=0)

    def test_mean_incumbent_pads_short_runs(self):
        curve = mean_incumbent_curve([_result([4.0, 2.0]), _result([3.0])])
        assert len(curve) == 2
        assert curve[1] == pytest.approx((2.0 + 3.0) / 2)

    def test_evaluations_to_target(self):
        results = [_result([10.0, 5.5, 5.0]), _result([20.0, 20.0, 20.0])]
        out = evaluations_to_target(results, optimum=5.0, fraction=0.2)
        assert out == [2, None]


class TestReporting:
    def test_render_contains_data(self):
        table = render_table("T", ["name", "value"], [["a", 1.5], ["b", 1234.0]])
        assert "=== T ===" in table
        assert "a" in table and "1,234" in table

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            render_table("T", ["a", "b"], [["only-one"]])

    def test_nan_rendered_as_dash(self):
        table = render_table("T", ["x"], [[float("nan")]])
        assert "-" in table.splitlines()[-1]
