"""Cloud providers and their managed DISC-deployment services.

The paper names Amazon EMR, Azure HDInsight and Google Dataproc as the
"native" deployment services through which tuned workloads are launched
(Section II.A).  A :class:`Provider` groups an instance catalogue slice
with such a service name and a billing model.
"""

from __future__ import annotations

from dataclasses import dataclass

from .instances import InstanceType, list_instances

__all__ = ["Provider", "PROVIDERS", "get_provider"]


@dataclass(frozen=True)
class Provider:
    """A public cloud offering instances and a managed DISC service."""

    name: str
    deployment_service: str
    #: fractional discount applied to long-running usage (GCP-style
    #: sustained-use discounts; 0 for the others).
    sustained_use_discount: float = 0.0

    def instances(self) -> list[InstanceType]:
        return list_instances(provider=self.name)

    def families(self) -> list[str]:
        return sorted({t.family for t in self.instances()})

    def effective_hourly_price(self, instance: InstanceType, hours: float) -> float:
        """Hourly price after sustained-use discount kicks in past 25% of a month."""
        if instance.provider != self.name:
            raise ValueError(
                f"instance {instance.name} belongs to {instance.provider}, not {self.name}"
            )
        if hours < 0:
            raise ValueError("hours must be non-negative")
        if self.sustained_use_discount and hours > 730 * 0.25:
            return instance.price_per_hour * (1 - self.sustained_use_discount)
        return instance.price_per_hour


PROVIDERS: dict[str, Provider] = {
    "aws": Provider("aws", deployment_service="EMR"),
    "azure": Provider("azure", deployment_service="HDInsight"),
    "gcp": Provider("gcp", deployment_service="Dataproc", sustained_use_discount=0.2),
}


def get_provider(name: str) -> Provider:
    """Look up a provider by name ("aws", "azure", "gcp")."""
    try:
        return PROVIDERS[name]
    except KeyError:
        raise KeyError(f"unknown provider {name!r}; known: {sorted(PROVIDERS)}") from None
