"""Managed-deployment facade (EMR / HDInsight / Dataproc analogue).

The tuning service of the paper's Fig. 1 hands a chosen cloud
configuration to a "native DISC-deployment service"; this module is that
service: it validates requests against the provider catalogue, provisions
:class:`~repro.cloud.cluster.Cluster` objects, and keeps a provisioning
log (which the provider-side tuning service can mine).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .cluster import Cluster
from .instances import get_instance
from .providers import Provider, get_provider

__all__ = ["DeploymentService", "ProvisionRecord"]


@dataclass(frozen=True)
class ProvisionRecord:
    """One provisioning event in the service log."""

    instance_name: str
    count: int
    tenant: str


@dataclass
class DeploymentService:
    """Provision virtual clusters for a single cloud provider."""

    provider: Provider
    max_cluster_size: int = 64
    _log: list[ProvisionRecord] = field(default_factory=list)

    @classmethod
    def for_provider(cls, name: str) -> "DeploymentService":
        return cls(get_provider(name))

    def provision(self, instance_name: str, count: int, tenant: str = "default") -> Cluster:
        """Create a cluster of ``count`` nodes of ``instance_name``.

        Raises ``ValueError`` for cross-provider requests or oversized
        clusters (providers enforce per-account instance quotas).
        """
        instance = get_instance(instance_name)
        if instance.provider != self.provider.name:
            raise ValueError(
                f"{instance_name} is a {instance.provider} type; "
                f"this service deploys to {self.provider.name}"
            )
        if not 1 <= count <= self.max_cluster_size:
            raise ValueError(
                f"cluster size {count} outside quota [1, {self.max_cluster_size}]"
            )
        self._log.append(ProvisionRecord(instance_name, count, tenant))
        return Cluster(instance, count)

    def provisioning_log(self) -> list[ProvisionRecord]:
        return list(self._log)
