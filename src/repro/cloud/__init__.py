"""Cloud substrate: instance catalogues, clusters, pricing, interference."""

from .cluster import Cluster
from .deployment import DeploymentService, ProvisionRecord
from .instances import CATALOGUE, FAMILIES, InstanceFamily, InstanceType, get_instance, list_instances
from .interference import NOISY, QUIET, TYPICAL, Environment, InterferenceModel
from .pricing import CostLedger, execution_cost
from .providers import PROVIDERS, Provider, get_provider

__all__ = [
    "InstanceType",
    "InstanceFamily",
    "CATALOGUE",
    "FAMILIES",
    "get_instance",
    "list_instances",
    "Cluster",
    "Provider",
    "PROVIDERS",
    "get_provider",
    "DeploymentService",
    "ProvisionRecord",
    "CostLedger",
    "execution_cost",
    "Environment",
    "InterferenceModel",
    "QUIET",
    "TYPICAL",
    "NOISY",
]
