"""Co-location interference model.

Section IV.B of the paper argues that one-shot ("static") cloud-config
choices are biased by *transient* co-location with other tenants: a test
run may land next to a noisy neighbour, or in an atypically quiet slot.
We model this as a slowly varying multiplicative contention process per
resource (CPU, disk, network): an AR(1) mean-reverting series sampled at
execution time, so two executions close in time see correlated
interference while executions far apart are nearly independent.

An :class:`Environment` instance is the "cloud weather" a simulated
execution experiences; tuners never observe it directly — only its effect
on runtime — exactly like real cloud tenants.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["InterferenceModel", "Environment", "QUIET", "TYPICAL", "NOISY"]


@dataclass(frozen=True)
class Environment:
    """Per-resource slowdown factors (>= 1.0) for one execution."""

    cpu_factor: float = 1.0
    disk_factor: float = 1.0
    network_factor: float = 1.0

    def __post_init__(self):
        for f in (self.cpu_factor, self.disk_factor, self.network_factor):
            if f < 1.0:
                raise ValueError("interference factors are slowdowns (>= 1.0)")

    def combined(self) -> float:
        """Scalar summary used in reports (geometric mean of the factors)."""
        return float(
            (self.cpu_factor * self.disk_factor * self.network_factor) ** (1 / 3)
        )


QUIET = Environment(1.0, 1.0, 1.0)
TYPICAL = Environment(1.03, 1.05, 1.08)
NOISY = Environment(1.15, 1.35, 1.50)


class InterferenceModel:
    """Mean-reverting contention process over (virtual) time.

    ``level`` controls the average severity: 0 disables interference
    entirely (dedicated hosts), 1.0 reproduces the contention swings we
    observed in shared-tenancy measurements (up to ~1.5x on network).
    """

    #: long-run mean excess contention per resource at level=1.0
    _MEANS = {"cpu": 0.04, "disk": 0.08, "network": 0.12}
    #: process volatility per resource at level=1.0
    _SIGMAS = {"cpu": 0.03, "disk": 0.07, "network": 0.10}

    def __init__(self, level: float = 1.0, correlation: float = 0.8,
                 seed: int | np.random.Generator = 0):
        if level < 0:
            raise ValueError("level must be non-negative")
        if not 0.0 <= correlation < 1.0:
            raise ValueError("correlation must be in [0, 1)")
        self.level = level
        self.correlation = correlation
        self._rng = np.random.default_rng(seed)
        self._state = {k: 0.0 for k in self._MEANS}

    def step(self) -> Environment:
        """Advance the process one execution and return the environment."""
        factors = {}
        for key in self._MEANS:
            mean = self._MEANS[key] * self.level
            sigma = self._SIGMAS[key] * self.level
            prev = self._state[key]
            nxt = (
                self.correlation * prev
                + (1 - self.correlation) * mean
                + sigma * np.sqrt(1 - self.correlation**2) * self._rng.normal()
            )
            self._state[key] = max(0.0, nxt)
            factors[key] = 1.0 + self._state[key]
        return Environment(
            cpu_factor=factors["cpu"],
            disk_factor=factors["disk"],
            network_factor=factors["network"],
        )

    def burst(self, multiplier: float = 3.0) -> None:
        """Inject a contention burst (a noisy neighbour arriving).

        Used by the re-tuning benches (E6/E7) to create environment drift.
        """
        if multiplier < 0:
            raise ValueError("multiplier must be non-negative")
        for key in self._state:
            self._state[key] = max(
                self._state[key], self._MEANS[key] * self.level * multiplier
            )
