"""Virtual clusters: a count of identical instances plus derived resources."""

from __future__ import annotations

from dataclasses import dataclass

from .instances import InstanceType, get_instance

__all__ = ["Cluster"]


@dataclass(frozen=True)
class Cluster:
    """A homogeneous virtual cluster (the shape EMR/Dataproc provision).

    One node is reserved conceptually for the driver/master, matching
    managed-Hadoop deployments, but all nodes contribute worker resources
    (Spark's driver coexists with executors on small clusters).
    """

    instance: InstanceType
    count: int

    def __post_init__(self):
        if self.count < 1:
            raise ValueError("cluster needs at least one node")

    @classmethod
    def of(cls, instance_name: str, count: int) -> "Cluster":
        return cls(get_instance(instance_name), count)

    # --- aggregate resources ------------------------------------------
    @property
    def total_vcpus(self) -> int:
        return self.instance.vcpus * self.count

    @property
    def total_memory_mb(self) -> int:
        return self.instance.memory_mb * self.count

    @property
    def node_disk_mb_s(self) -> float:
        return self.instance.disk_mb_s

    @property
    def node_network_mb_s(self) -> float:
        return self.instance.network_mb_s

    @property
    def price_per_hour(self) -> float:
        return self.instance.price_per_hour * self.count

    def cost_of(self, runtime_s: float) -> float:
        """On-demand cost (USD) of holding the cluster for ``runtime_s``.

        Per-second billing (the 2018+ cloud norm), so cost is linear in
        runtime rather than rounded up to whole hours.
        """
        if runtime_s < 0:
            raise ValueError("runtime must be non-negative")
        return self.price_per_hour * runtime_s / 3600.0

    def describe(self) -> str:
        return f"{self.count}x {self.instance.name} ({self.instance.provider})"
