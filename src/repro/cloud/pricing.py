"""Cost accounting for executions and tuning campaigns.

Supports the paper's amortization arguments (Section IV.C): the cost of a
tuning campaign is the summed cost of every exploratory execution, and it
only pays off if the per-run savings of the tuned configuration amortize
it before re-tuning is needed.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from .cluster import Cluster

__all__ = ["CostLedger", "execution_cost"]


def execution_cost(cluster: Cluster, runtime_s: float) -> float:
    """USD cost of one workload execution on ``cluster``."""
    return cluster.cost_of(runtime_s)


@dataclass
class CostLedger:
    """Accumulates the cost of a sequence of executions.

    Separates *tuning* executions (exploration) from *production*
    executions so amortization can be computed: the paper's example is
    BestConfig's 500 tuning runs versus 90 production runs in 3 months.

    Charges are atomic: one ledger is the provider's billing record and
    may be shared by every shard of the concurrent service front end,
    where a lost read-modify-write update is a billing error.
    """

    tuning_cost: float = 0.0
    tuning_runs: int = 0
    tuning_seconds: float = 0.0
    production_cost: float = 0.0
    production_runs: int = 0
    production_seconds: float = 0.0
    _history: list[tuple[str, float, float]] = field(default_factory=list)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False,
    )

    def charge_tuning(self, cluster: Cluster, runtime_s: float) -> float:
        cost = execution_cost(cluster, runtime_s)
        with self._lock:
            self.tuning_cost += cost
            self.tuning_runs += 1
            self.tuning_seconds += runtime_s
            self._history.append(("tuning", runtime_s, cost))
        return cost

    def charge_production(self, cluster: Cluster, runtime_s: float) -> float:
        cost = execution_cost(cluster, runtime_s)
        with self._lock:
            self.production_cost += cost
            self.production_runs += 1
            self.production_seconds += runtime_s
            self._history.append(("production", runtime_s, cost))
        return cost

    @property
    def total_cost(self) -> float:
        return self.tuning_cost + self.production_cost

    def history(self) -> list[tuple[str, float, float]]:
        """(kind, runtime_s, cost) per execution, in order."""
        with self._lock:
            return list(self._history)

    def breakeven_runs(self, cost_default_run: float, cost_tuned_run: float) -> float:
        """Production runs needed for tuned-config savings to repay tuning.

        Returns ``inf`` when the tuned configuration saves nothing.
        """
        saving = cost_default_run - cost_tuned_run
        if saving <= 0:
            return float("inf")
        return self.tuning_cost / saving
