"""Cloud instance-type catalogue.

Models the discrete cloud configuration space of Section II.A: three
providers (EC2-, Azure- and GCE-like), each with several instance
*families* (general purpose, compute-, memory-, storage-optimized) and
several sizes per family.  Specs and on-demand prices follow the public
2018-era price lists, which is what CherryPick/PARIS searched over and
what the paper's experiment used (h1.4xlarge on Amazon EMR).

All rates are in MB/s, memory in MiB, prices in USD per hour.
``cpu_speed`` is a relative per-core throughput factor (1.0 = baseline
m5-class core); compute-optimized families run slightly faster cores,
storage-optimized slightly slower.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["InstanceType", "InstanceFamily", "CATALOGUE", "get_instance", "list_instances"]


@dataclass(frozen=True)
class InstanceType:
    """A purchasable VM shape."""

    name: str
    provider: str
    family: str
    vcpus: int
    memory_mb: int
    disk_mb_s: float          # aggregate local-disk bandwidth
    network_mb_s: float       # NIC bandwidth
    price_per_hour: float
    cpu_speed: float = 1.0    # relative per-core throughput

    def __post_init__(self):
        if self.vcpus < 1:
            raise ValueError(f"{self.name}: vcpus must be >= 1")
        if self.memory_mb < 512:
            raise ValueError(f"{self.name}: memory_mb must be >= 512")
        if self.price_per_hour <= 0:
            raise ValueError(f"{self.name}: price must be positive")

    @property
    def memory_per_core_mb(self) -> float:
        return self.memory_mb / self.vcpus


@dataclass(frozen=True)
class InstanceFamily:
    """A family of instance sizes sharing a hardware profile."""

    name: str
    provider: str
    description: str
    sizes: tuple[InstanceType, ...] = field(default_factory=tuple)


def _family(provider, family, description, cpu_speed, mem_per_vcpu_gb,
            disk_base, net_base, price_per_vcpu, sizes):
    """Build a family whose sizes scale linearly in vCPU count."""
    types = []
    for label, vcpus in sizes:
        types.append(
            InstanceType(
                name=f"{family}.{label}",
                provider=provider,
                family=family,
                vcpus=vcpus,
                memory_mb=int(mem_per_vcpu_gb * 1024 * vcpus),
                disk_mb_s=disk_base * (vcpus / 4) ** 0.8,
                network_mb_s=net_base * (vcpus / 4) ** 0.7,
                price_per_hour=round(price_per_vcpu * vcpus, 4),
                cpu_speed=cpu_speed,
            )
        )
    return InstanceFamily(family, provider, description, tuple(types))


_SIZES = (("large", 2), ("xlarge", 4), ("2xlarge", 8), ("4xlarge", 16))

_FAMILIES = [
    # --- EC2-like -------------------------------------------------------
    _family("aws", "m5", "general purpose (EBS)", 1.00, 4, 120, 150, 0.048, _SIZES),
    _family("aws", "c5", "compute optimized", 1.18, 2, 110, 170, 0.0425, _SIZES),
    _family("aws", "r5", "memory optimized", 1.00, 8, 120, 150, 0.063, _SIZES),
    _family("aws", "h1", "HDD-storage optimized", 0.92, 4, 210, 200, 0.0585,
            (("2xlarge", 8), ("4xlarge", 16), ("8xlarge", 32))),
    _family("aws", "i3", "NVMe-storage optimized", 1.00, 7.6, 1000, 180, 0.078, _SIZES),
    # --- Azure-like -----------------------------------------------------
    _family("azure", "D2v3", "general purpose", 0.98, 4, 115, 140, 0.050,
            (("s2", 2), ("s4", 4), ("s8", 8), ("s16", 16))),
    _family("azure", "F2v2", "compute optimized", 1.15, 2, 105, 160, 0.0423,
            (("s2", 2), ("s4", 4), ("s8", 8), ("s16", 16))),
    _family("azure", "E2v3", "memory optimized", 0.98, 8, 115, 140, 0.0633,
            (("s2", 2), ("s4", 4), ("s8", 8), ("s16", 16))),
    _family("azure", "L2v2", "storage optimized", 0.95, 8, 800, 170, 0.0687,
            (("s2", 2), ("s4", 4), ("s8", 8), ("s16", 16))),
    # --- GCE-like --------------------------------------------------------
    _family("gcp", "n1-standard", "general purpose", 1.00, 3.75, 120, 150, 0.0475, _SIZES),
    _family("gcp", "n1-highcpu", "compute optimized", 1.12, 0.9, 110, 160, 0.0354, _SIZES),
    _family("gcp", "n1-highmem", "memory optimized", 1.00, 6.5, 120, 150, 0.0592, _SIZES),
]

CATALOGUE: dict[str, InstanceType] = {
    t.name: t for fam in _FAMILIES for t in fam.sizes
}

FAMILIES: dict[str, InstanceFamily] = {f.name: f for f in _FAMILIES}


def get_instance(name: str) -> InstanceType:
    """Look up an instance type by name (e.g. ``"h1.4xlarge"``)."""
    try:
        return CATALOGUE[name]
    except KeyError:
        raise KeyError(
            f"unknown instance type {name!r}; known: {sorted(CATALOGUE)}"
        ) from None


def list_instances(provider: str | None = None, family: str | None = None):
    """All instance types, optionally filtered by provider and/or family."""
    types = list(CATALOGUE.values())
    if provider is not None:
        types = [t for t in types if t.provider == provider]
    if family is not None:
        types = [t for t in types if t.family == family]
    return types
