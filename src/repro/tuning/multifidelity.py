"""Multi-fidelity tuning: successive halving over truncated workloads.

An extension beyond the paper's survey (in the spirit of its "minimum
number of executions" goal): iterative analytics jobs admit cheap
low-fidelity proxies — run PageRank for 2 iterations instead of 6, or
over a data sample — and most of a configuration's quality is already
visible there.  Successive halving spends most executions at low
fidelity and promotes only survivors, cutting tuning cost further than
any full-fidelity strategy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..config.space import Configuration, ConfigurationSpace

__all__ = ["FidelityRung", "SuccessiveHalvingResult", "successive_halving"]


@dataclass(frozen=True)
class FidelityRung:
    """One rung of the ladder: a fidelity level and its survivor count."""

    fidelity: float
    n_survivors: int


@dataclass
class SuccessiveHalvingResult:
    """Trace of a successive-halving campaign."""

    best_config: Configuration
    best_cost: float                  # at full fidelity
    total_executions: int = 0
    total_simulated_seconds: float = 0.0
    rung_trace: list[tuple[float, int]] = field(default_factory=list)


def successive_halving(
    objective_at: Callable[[Configuration, float], float],
    space: ConfigurationSpace,
    n_configs: int = 27,
    eta: int = 3,
    min_fidelity: float = 0.2,
    seed: int = 0,
) -> SuccessiveHalvingResult:
    """Classic successive halving (Jamieson & Talwalkar).

    ``objective_at(config, fidelity)`` evaluates a configuration at a
    fidelity in (0, 1] — e.g. the fraction of workload iterations — and
    returns its cost (which is also the simulated time spent).  Starts
    with ``n_configs`` at ``min_fidelity`` and keeps the best ``1/eta``
    fraction at each rung, geometrically raising fidelity to 1.0.
    """
    if n_configs < eta:
        raise ValueError("n_configs must be >= eta")
    if eta < 2:
        raise ValueError("eta must be >= 2")
    if not 0 < min_fidelity <= 1:
        raise ValueError("min_fidelity must be in (0, 1]")

    rng = np.random.default_rng(seed)
    survivors = space.latin_hypercube(n_configs, rng)

    n_rungs = max(1, int(np.ceil(np.log(n_configs) / np.log(eta))))
    fidelities = np.geomspace(min_fidelity, 1.0, n_rungs + 1)[1:]
    fidelities = np.concatenate([[min_fidelity], fidelities])

    result = SuccessiveHalvingResult(best_config=survivors[0], best_cost=np.inf)
    costs = None
    for rung, fidelity in enumerate(fidelities):
        costs = []
        for config in survivors:
            cost = objective_at(config, float(fidelity))
            result.total_executions += 1
            result.total_simulated_seconds += cost
            costs.append(cost)
        result.rung_trace.append((float(fidelity), len(survivors)))
        order = np.argsort(costs)
        keep = max(1, len(survivors) // eta)
        survivors = [survivors[i] for i in order[:keep]]
        if len(survivors) == 1 and fidelity >= 1.0:
            break

    # Final full-fidelity measurement of the winner (if the last rung was
    # below 1.0, pay one more execution).
    winner = survivors[0]
    if fidelities[-1] < 1.0 or len(result.rung_trace) == 0:
        final_cost = objective_at(winner, 1.0)
        result.total_executions += 1
        result.total_simulated_seconds += final_cost
    else:
        final_cost = float(np.min(costs)) if costs else np.inf
    result.best_config = winner
    result.best_cost = float(final_cost)
    return result
