"""Starfish-style what-if engine (Herodotou et al., CIDR'11).

Starfish profiles a job once, then answers questions like "given the
profile of job A, input data x, cluster c1 — what will the performance
be with input y and cluster c2, under configuration c2?" by analytically
scaling the profile.  The paper notes it "showed less accuracy when
tried with heterogeneous applications and cloud workloads" — our engine
reproduces both the mechanism and that failure mode: predictions scale a
*measured* profile linearly per cost channel, so they are good near the
profiled operating point and degrade for configurations that change the
execution regime (spill onset, cache overflow, serializer switches),
which the profile cannot see.

``WhatIfTuner`` searches configurations entirely on predictions and only
executes the predicted winner — very cheap, accuracy-limited.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cloud.cluster import Cluster
from ..config.constraints import grant_resources
from ..config.space import Configuration, ConfigurationSpace
from ..sparksim.executor import ExecutorModel
from ..sparksim.metrics import ExecutionResult
from ..sparksim.shuffle import codec_of, serializer_of
from .base import Tuner

__all__ = ["JobProfile", "WhatIfEngine", "WhatIfTuner"]


@dataclass(frozen=True)
class JobProfile:
    """Per-channel cost rates measured from one profiled execution."""

    workload: str
    input_mb: float
    config: Configuration
    cluster: Cluster
    # channel totals (task-seconds) and data volumes from the profile run
    cpu_s: float
    disk_s: float
    net_s: float
    gc_s: float
    input_bytes_mb: float
    shuffle_mb: float
    num_tasks: int
    num_stages: int
    runtime_s: float
    slots: int

    @classmethod
    def from_execution(cls, result: ExecutionResult, config: Configuration,
                       cluster: Cluster) -> "JobProfile":
        if not result.success:
            raise ValueError("cannot profile a failed execution")
        grant = grant_resources(config, cluster)
        executor = ExecutorModel.from_config(config)
        slots = max(1, grant.executors * executor.concurrent_tasks)
        return cls(
            workload=result.workload,
            input_mb=result.input_mb,
            config=config,
            cluster=cluster,
            cpu_s=result.total_cpu_s,
            disk_s=result.total_io_s,
            net_s=result.total_net_s,
            gc_s=result.total_gc_s,
            input_bytes_mb=result.total_input_mb,
            shuffle_mb=result.total_shuffle_mb,
            num_tasks=result.num_tasks,
            num_stages=result.num_stages,
            runtime_s=result.runtime_s,
            slots=slots,
        )


class WhatIfEngine:
    """Analytic profile scaling: the Starfish prediction mechanism."""

    def __init__(self, profile: JobProfile):
        self.profile = profile

    def predict(self, config: Configuration, cluster: Cluster | None = None,
                input_mb: float | None = None) -> float:
        """Predict the runtime of the profiled job under new conditions.

        Scales each cost channel by first-order ratios: data volume,
        per-core speed, per-task bandwidth shares, serializer/codec CPU
        rates, and slot-count wave effects.  Regime changes (spill,
        cache overflow, OOM) are invisible to the profile — the source of
        Starfish's documented inaccuracy.
        """
        p = self.profile
        cluster = cluster or p.cluster
        input_mb = input_mb if input_mb is not None else p.input_mb

        grant = grant_resources(config, cluster)
        if grant.executors < 1:
            return float("inf")
        executor = ExecutorModel.from_config(config)
        slots = max(1, grant.executors * executor.concurrent_tasks)

        data_ratio = input_mb / p.input_mb
        cpu_ratio = p.cluster.instance.cpu_speed / cluster.instance.cpu_speed

        # Serializer / codec CPU adjustments relative to the profile.
        ser_old, ser_new = serializer_of(p.config), serializer_of(config)
        codec_old, codec_new = codec_of(p.config), codec_of(config)
        ser_scale = ser_new.serialize_s_per_mb / ser_old.serialize_s_per_mb
        # Shuffle-related CPU is roughly the serializer+codec share: apply
        # to the fraction of CPU proportional to shuffle volume.
        shuffle_cpu_share = min(
            0.6, p.shuffle_mb / max(p.input_bytes_mb + p.shuffle_mb, 1.0)
        )
        cpu = p.cpu_s * data_ratio * cpu_ratio * (
            (1 - shuffle_cpu_share) + shuffle_cpu_share * ser_scale
        )

        # Bandwidth shares: per-task disk/net scale with contention.
        tasks_per_node_old = p.slots / p.cluster.count
        tasks_per_node_new = slots / cluster.count
        disk_scale = (
            (p.cluster.node_disk_mb_s / tasks_per_node_old)
            / (cluster.node_disk_mb_s / tasks_per_node_new)
        )
        net_scale = (
            (p.cluster.node_network_mb_s / tasks_per_node_old)
            / (cluster.node_network_mb_s / tasks_per_node_new)
        )
        wire_scale = codec_new.ratio / codec_old.ratio if p.shuffle_mb > 0 else 1.0
        disk = p.disk_s * data_ratio * disk_scale
        net = p.net_s * data_ratio * net_scale * wire_scale
        gc = p.gc_s * data_ratio * cpu_ratio

        task_seconds = cpu + disk + net + gc
        # Wave model: work spreads over slots; stage barriers add latency.
        makespan = task_seconds / slots
        overhead = p.runtime_s - (p.cpu_s + p.disk_s + p.net_s + p.gc_s) / p.slots
        return max(0.1, makespan + max(0.0, overhead))


class WhatIfTuner(Tuner):
    """Search on what-if predictions; execute only predicted winners.

    The profile comes from the first observed execution; thereafter each
    ``suggest`` returns the configuration minimizing the engine's
    prediction over a random candidate pool (skipping already-run
    configurations).
    """

    def __init__(self, space: ConfigurationSpace, cluster: Cluster,
                 seed: int = 0, n_candidates: int = 800):
        super().__init__(space, seed)
        self.cluster = cluster
        self.n_candidates = n_candidates
        self._engine: WhatIfEngine | None = None
        self._pending_profile: Configuration | None = None

    def attach_profile(self, profile: JobProfile) -> None:
        self._engine = WhatIfEngine(profile)

    def register_profile_run(self, result: ExecutionResult,
                             config: Configuration) -> None:
        """Feed the profiling execution (done by the caller) to the engine."""
        self._engine = WhatIfEngine(
            JobProfile.from_execution(result, config, self.cluster)
        )

    def suggest(self) -> Configuration:
        if self._engine is None:
            # First execution doubles as the profiling run.
            return self.space.default_configuration()
        seen = {o.config for o in self.history}
        candidates = [
            c for c in self.space.sample_configurations(self.n_candidates, self.rng)
            if c not in seen
        ]
        predictions = np.array([
            self._engine.predict(c, cluster=self.cluster) for c in candidates
        ])
        return candidates[int(np.argmin(predictions))]

    def predicted_runtime(self, config: Configuration) -> float:
        if self._engine is None:
            raise ValueError("no profile attached yet")
        return self._engine.predict(config, cluster=self.cluster)


def whatif_tune(objective, space: ConfigurationSpace, cluster: Cluster,
                budget: int, seed: int = 0):
    """Drive a WhatIfTuner against a SimulationObjective.

    Handles the profile plumbing the generic ``run_tuner`` cannot: the
    first execution's full metrics feed the engine.  Returns a
    :class:`~repro.tuning.base.TuningResult`.
    """
    from .base import Observation, TuningResult

    if budget < 1:
        raise ValueError("budget must be >= 1")
    tuner = WhatIfTuner(space, cluster, seed=seed)
    result = TuningResult()
    for _ in range(budget):
        config = tuner.suggest()
        cost = objective(config)
        tuner.observe(config, cost)
        result.history.append(Observation(config, cost))
        if tuner._engine is None and objective.last_result.success:
            tuner.register_profile_run(
                objective.last_result, objective.resolve(config)[1]
            )
    return result
