"""Grid search — the exhaustive strategy whose cost explosion motivates
everything else (30 parameters exceed 10^40 combinations, Section III.B)."""

from __future__ import annotations

import itertools

from ..config.space import Configuration, ConfigurationSpace
from .base import Tuner

__all__ = ["GridSearchTuner"]


class GridSearchTuner(Tuner):
    """Cartesian product over per-parameter grids, visited in order.

    ``resolution`` bounds values per parameter; the full product is
    generated lazily, so only as many points as the budget allows are
    materialized.  When the grid is exhausted, falls back to random
    samples (so long campaigns do not crash).
    """

    def __init__(self, space: ConfigurationSpace, resolution: int = 3, seed: int = 0):
        super().__init__(space, seed)
        if resolution < 2:
            raise ValueError("resolution must be >= 2")
        self.resolution = resolution
        grids = [p.grid(resolution) for p in space.parameters]
        self._product = itertools.product(*grids)
        self._names = space.names

    def grid_size(self) -> int:
        size = 1
        for p in self.space.parameters:
            size *= len(p.grid(self.resolution))
        return size

    def suggest(self) -> Configuration:
        try:
            values = next(self._product)
        except StopIteration:
            return self.space.sample_configuration(self.rng)
        return Configuration(dict(zip(self._names, values)))

    def suggest_batch(self, k: int) -> list[Configuration]:
        """Native batch: the next ``k`` grid points in one slice."""
        if k < 1:
            raise ValueError("k must be >= 1")
        batch = [
            Configuration(dict(zip(self._names, values)))
            for values in itertools.islice(self._product, k)
        ]
        while len(batch) < k:  # grid exhausted: pad with random samples
            batch.append(self.space.sample_configuration(self.rng))
        return batch
