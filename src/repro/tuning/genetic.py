"""Genetic-algorithm tuners — direct GA and DAC (Yu et al., ASPLOS'18).

DAC tunes 41 Spark parameters datasize-aware: it builds a hierarchical
regression-tree model of execution time as a function of configuration
(and input size), then runs a genetic algorithm *on the model* to find
good configurations cheaply.  :class:`GeneticTuner` is the direct
(evaluate-every-individual) GA; :class:`DACTuner` is the model-assisted
variant that spends real executions only on GA winners.
"""

from __future__ import annotations

import numpy as np

from ..config.encoding import OneHotEncoder
from ..config.space import Configuration, ConfigurationSpace
from .base import Tuner
from .trees.random_forest import RandomForestRegressor

__all__ = ["GeneticTuner", "DACTuner"]


class GeneticTuner(Tuner):
    """Steady-generation GA over configurations.

    Individuals are configurations; crossover is per-parameter uniform;
    mutation resamples a parameter or perturbs it locally.
    """

    def __init__(self, space: ConfigurationSpace, seed: int = 0,
                 population_size: int = 16, elite: int = 2,
                 tournament: int = 3, mutation_rate: float = 0.15):
        super().__init__(space, seed)
        if population_size < 4:
            raise ValueError("population_size must be >= 4")
        if not 0 <= mutation_rate <= 1:
            raise ValueError("mutation_rate must be in [0, 1]")
        if elite >= population_size:
            raise ValueError("elite must be < population_size")
        self.population_size = population_size
        self.elite = elite
        self.tournament = tournament
        self.mutation_rate = mutation_rate
        self._population = space.latin_hypercube(population_size, self.rng)
        self._fitness: list[float] = []
        self._cursor = 0

    def _select(self) -> Configuration:
        """Tournament selection over the evaluated generation."""
        idx = self.rng.integers(0, len(self._fitness), size=self.tournament)
        winner = min(idx, key=lambda i: self._fitness[i])
        return self._population[winner]

    def _crossover(self, a: Configuration, b: Configuration) -> Configuration:
        values = {}
        for name in self.space.names:
            values[name] = a[name] if self.rng.random() < 0.5 else b[name]
        return Configuration(values)

    def _mutate(self, config: Configuration) -> Configuration:
        updates = {}
        for p in self.space.parameters:
            if self.rng.random() < self.mutation_rate:
                if self.rng.random() < 0.5:
                    updates[p.name] = p.sample(self.rng)
                else:
                    updates[p.name] = p.neighbor(config[p.name], self.rng, scale=0.2)
        return config.replace(**updates) if updates else config

    def _next_generation(self) -> None:
        order = np.argsort(self._fitness)
        elites = [self._population[i] for i in order[: self.elite]]
        children = list(elites)
        while len(children) < self.population_size:
            child = self._mutate(self._crossover(self._select(), self._select()))
            children.append(child)
        self._population = children
        self._fitness = []
        self._cursor = 0

    def suggest(self) -> Configuration:
        if self._cursor >= len(self._population):
            self._next_generation()
        return self._population[self._cursor]

    def suggest_batch(self, k: int) -> list[Configuration]:
        """The un-evaluated remainder of the current generation (≤ k).

        Stops at the generation boundary so the fitness of every
        individual is known before selection breeds the next one.
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        if self._cursor >= len(self._population):
            self._next_generation()
        end = min(len(self._population), self._cursor + k)
        return list(self._population[self._cursor:end])

    def observe(self, config: Configuration, cost: float,
                succeeded: bool = True):
        obs = super().observe(config, cost, succeeded=succeeded)
        self._fitness.append(float(cost))
        self._cursor += 1
        return obs


class DACTuner(Tuner):
    """Datasize-aware model-assisted GA.

    After a space-filling warm-up, each real execution goes to the winner
    of a GA run against a random-forest performance model (DAC's
    hierarchical-modelling + GA search, collapsed onto one input size;
    the datasize-aware variant feeds multi-size history through
    ``warm_start``).
    """

    def __init__(self, space: ConfigurationSpace, seed: int = 0,
                 n_init: int = 10, ga_population: int = 40,
                 ga_generations: int = 12, n_trees: int = 25,
                 log_costs: bool = True,
                 warm_start: list[tuple[Configuration, float]] | None = None):
        super().__init__(space, seed)
        if n_init < 2:
            raise ValueError("n_init must be >= 2")
        self.n_init = n_init
        self.ga_population = ga_population
        self.ga_generations = ga_generations
        self.n_trees = n_trees
        self.log_costs = log_costs
        self.encoder = OneHotEncoder(space)
        self._init_points = space.latin_hypercube(n_init, self.rng)
        self._warm = list(warm_start or [])

    def _fit_model(self) -> RandomForestRegressor:
        pairs = self._warm + [(o.config, o.cost) for o in self.history]
        X = self.encoder.encode_many([c for c, _ in pairs])
        y = np.array([cost for _, cost in pairs])
        if self.log_costs:
            y = np.log(np.maximum(y, 1e-9))
        model = RandomForestRegressor(n_trees=self.n_trees,
                                      seed=int(self.rng.integers(2**31)))
        model.fit(X, y)
        return model

    def _ga_on_model(self, model: RandomForestRegressor) -> Configuration:
        ga = GeneticTuner(
            self.space, seed=int(self.rng.integers(2**31)),
            population_size=self.ga_population,
        )
        for _ in range(self.ga_generations * self.ga_population):
            config = ga.suggest()
            pred = model.predict(self.encoder.encode(config)[None, :])
            ga.observe(config, float(pred[0]))
        return ga.best.config

    def suggest(self) -> Configuration:
        if len(self.history) < len(self._init_points):
            return self._init_points[len(self.history)]
        model = self._fit_model()
        winner = self._ga_on_model(model)
        if any(o.config == winner for o in self.history):
            # Model converged on an already-run point: explore around it.
            winner = self.space.neighbor(winner, self.rng, scale=0.1, n_moves=2)
        return winner
