"""Bayesian-optimization tuner — the CherryPick strategy.

CherryPick (Alipourfard et al., NSDI'17) finds near-optimal cloud
configurations with a GP performance model, EI acquisition, and a
stop-when-EI-small rule, needing an order of magnitude fewer executions
than search-based approaches.  This tuner implements the same loop over
any :class:`~repro.config.space.ConfigurationSpace` (cloud, DISC, or
joint), with costs modelled in log space (runtimes are positive and
heavy-tailed).
"""

from __future__ import annotations

import numpy as np

from ...config.space import Configuration, ConfigurationSpace
from ..base import Tuner
from .acquisition import expected_improvement, lower_confidence_bound
from .gp import GaussianProcess
from .kernels import Kernel, Matern52

__all__ = ["BayesOptTuner"]


class BayesOptTuner(Tuner):
    """GP + EI Bayesian optimization.

    Parameters
    ----------
    n_init:
        Latin-hypercube warm-up evaluations before the model kicks in.
    acquisition:
        ``"ei"`` (default, CherryPick) or ``"lcb"``.
    log_costs:
        Model ``log(cost)`` instead of cost; robust to the orders-of-
        magnitude spread misconfigurations produce.
    refit_every:
        Re-optimize GP hyperparameters every this many new observations.
        Between refits, new points enter the model through an O(n²)
        rank-1 Cholesky update instead of an O(n³) refactorization.
    warm_start:
        Optional list of ``(config, cost)`` pairs injected into the model
        before any suggestion — the transfer-learning hook used by the
        provider-side service (paper challenge V.B).
    """

    def __init__(self, space: ConfigurationSpace, seed: int = 0,
                 n_init: int = 8, acquisition: str = "ei",
                 kernel: Kernel | None = None,
                 n_candidates: int = 512, log_costs: bool = True,
                 refit_every: int = 4,
                 warm_start: list[tuple[Configuration, float]] | None = None):
        super().__init__(space, seed)
        if acquisition not in ("ei", "lcb"):
            raise ValueError("acquisition must be 'ei' or 'lcb'")
        if n_init < 2:
            raise ValueError("n_init must be >= 2")
        self.n_init = n_init
        self.acquisition = acquisition
        self.n_candidates = n_candidates
        self.log_costs = log_costs
        self.refit_every = max(1, refit_every)
        self._init_points = space.latin_hypercube(n_init, self.rng)
        self._gp = GaussianProcess(kernel=kernel or Matern52(), seed=seed)
        self._fitted_at = 0
        self._gp_rows = 0               # observations currently inside the GP
        self._warm: list[tuple[Configuration, float]] = list(warm_start or [])
        self.last_max_ei: float | None = None

    # --- data assembly -----------------------------------------------------
    def _training_data(self):
        pairs = self._warm + [(o.config, o.cost) for o in self.history]
        X = np.array([self.space.encode(c) for c, _ in pairs])
        y = np.array([cost for _, cost in pairs], dtype=float)
        if self.log_costs:
            y = np.log(np.maximum(y, 1e-9))
        return X, y

    def _refit(self) -> None:
        X, y = self._training_data()
        n = len(y)
        optimize = (n - self._fitted_at) >= self.refit_every or self._fitted_at == 0
        if optimize or self._gp_rows == 0 or self._gp_rows > n:
            # Full (re)fit: refactorize and, on schedule, re-optimize
            # hyperparameters.
            self._gp.fit(X, y, optimize_hyperparams=optimize)
            if optimize:
                self._fitted_at = n
        elif self._gp_rows < n:
            # Between refits, fold new observations in with a rank-1
            # Cholesky update (training pairs are append-only).
            self._gp.update(X[self._gp_rows:], y[self._gp_rows:])
        self._gp_rows = n

    def _candidates(self) -> np.ndarray:
        cands = [self.rng.random((self.n_candidates, self.space.dimension))]
        best = self.best
        if best is not None:
            # Local refinement around the incumbent.
            center = self.space.encode(best.config)
            local = center + self.rng.normal(0.0, 0.08, (self.n_candidates // 2, self.space.dimension))
            cands.append(np.clip(local, 0.0, 1.0))
        return np.vstack(cands)

    # --- Tuner interface -----------------------------------------------------
    def suggest(self) -> Configuration:
        n_observed = len(self.history) + len(self._warm)
        if len(self.history) < len(self._init_points) and n_observed < max(
            self.n_init, 3
        ):
            return self._init_points[len(self.history)]
        self._refit()
        X = self._candidates()
        mean, std = self._gp.predict(X)
        if self.acquisition == "ei":
            _, y = self._training_data()
            score = expected_improvement(mean, std, best=float(y.min()))
            self.last_max_ei = float(score.max())
            idx = int(np.argmax(score))
        else:
            score = lower_confidence_bound(mean, std)
            idx = int(np.argmin(score))
        return self.space.decode(X[idx])

    def should_stop(self, ei_fraction: float = 0.1) -> bool:
        """CherryPick's stopping rule: max EI below a fraction of the incumbent.

        Only meaningful once the model is active (after the initial design).
        """
        if self.last_max_ei is None or self.best is None:
            return False
        incumbent = (
            np.log(max(self.best.cost, 1e-9)) if self.log_costs else self.best.cost
        )
        return self.last_max_ei < ei_fraction * abs(incumbent)

    def surrogate_prediction(self, config: Configuration) -> tuple[float, float]:
        """Model's (mean, std) prediction for one configuration (cost scale)."""
        self._refit()
        mean, std = self._gp.predict(self.space.encode(config)[None, :])
        if self.log_costs:
            return float(np.exp(mean[0])), float(np.exp(mean[0]) * std[0])
        return float(mean[0]), float(std[0])
