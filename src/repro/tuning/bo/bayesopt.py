"""Bayesian-optimization tuner — the CherryPick strategy.

CherryPick (Alipourfard et al., NSDI'17) finds near-optimal cloud
configurations with a GP performance model, EI acquisition, and a
stop-when-EI-small rule, needing an order of magnitude fewer executions
than search-based approaches.  This tuner implements the same loop over
any :class:`~repro.config.space.ConfigurationSpace` (cloud, DISC, or
joint), with costs modelled in log space (runtimes are positive and
heavy-tailed).

Surrogate state is **incremental**: every observation is encoded once,
on arrival, into an append-only design matrix (grown by capacity
doubling), the log-cost transform is applied per point, and the model
incumbent (the EI baseline) is tracked as a running minimum.  A
``suggest()`` call therefore never re-encodes the history — the
rebuild-from-scratch path (``incremental=False``) is kept as the
reference implementation the identity suite and the
``suggest_throughput`` bench compare against.
"""

from __future__ import annotations

import numpy as np

from ...config.space import Configuration, ConfigurationSpace
from ..base import Observation, Tuner
from .acquisition import expected_improvement, lower_confidence_bound
from .gp import GaussianProcess
from .kernels import Kernel, Matern52

__all__ = ["BayesOptTuner"]


class BayesOptTuner(Tuner):
    """GP + EI Bayesian optimization.

    Parameters
    ----------
    n_init:
        Latin-hypercube warm-up evaluations before the model kicks in.
    acquisition:
        ``"ei"`` (default, CherryPick) or ``"lcb"``.
    log_costs:
        Model ``log(cost)`` instead of cost; robust to the orders-of-
        magnitude spread misconfigurations produce.
    refit_every:
        Re-optimize GP hyperparameters every this many new observations.
        Between refits, new points enter the model through an O(n²)
        rank-1 Cholesky update instead of an O(n³) refactorization.
    warm_start:
        Optional list of ``(config, cost)`` pairs injected into the model
        before any suggestion — the transfer-learning hook used by the
        provider-side service (paper challenge V.B).
    incremental:
        Keep the encoded design matrix and transformed costs in
        append-only buffers maintained at ``observe()`` time (default).
        ``False`` restores the per-``suggest`` rebuild — bit-identical
        by the identity suite, kept as reference and bench baseline.
    """

    def __init__(self, space: ConfigurationSpace, seed: int = 0,
                 n_init: int = 8, acquisition: str = "ei",
                 kernel: Kernel | None = None,
                 n_candidates: int = 512, log_costs: bool = True,
                 refit_every: int = 4,
                 warm_start: list[tuple[Configuration, float]] | None = None,
                 incremental: bool = True):
        super().__init__(space, seed)
        if acquisition not in ("ei", "lcb"):
            raise ValueError("acquisition must be 'ei' or 'lcb'")
        if n_init < 2:
            raise ValueError("n_init must be >= 2")
        self.n_init = n_init
        self.acquisition = acquisition
        self.n_candidates = n_candidates
        self.log_costs = log_costs
        self.refit_every = max(1, refit_every)
        self.incremental = incremental
        self._init_points = space.latin_hypercube(n_init, self.rng)
        self._gp = GaussianProcess(kernel=kernel or Matern52(), seed=seed)
        self._fitted_at = 0
        self._gp_rows = 0               # observations currently inside the GP
        self._warm: list[tuple[Configuration, float]] = list(warm_start or [])
        self.last_max_ei: float | None = None
        # --- incremental surrogate state ----------------------------------
        # Append-only encoded design matrix + transformed costs, grown by
        # capacity doubling; the running minimum of the transformed costs
        # is EI's incumbent, and the best raw observation backs ``best``.
        self._n_pairs = 0
        self._X_buf = np.zeros((0, space.dimension))
        self._y_buf = np.zeros(0)
        self._y_model_min = np.inf
        self._best_obs: Observation | None = None
        for config, cost in self._warm:
            self._append_pair(config, cost)

    # --- data assembly -----------------------------------------------------
    def _transform_cost(self, cost: float) -> float:
        return float(np.log(np.maximum(cost, 1e-9))) if self.log_costs \
            else float(cost)

    def _append_pair(self, config: Configuration, cost: float) -> None:
        """Encode one (config, cost) pair into the append-only buffers."""
        n = self._n_pairs
        if n >= len(self._X_buf):
            cap = max(16, 2 * len(self._X_buf))
            X_buf = np.zeros((cap, self.space.dimension))
            y_buf = np.zeros(cap)
            X_buf[:n] = self._X_buf[:n]
            y_buf[:n] = self._y_buf[:n]
            self._X_buf, self._y_buf = X_buf, y_buf
        self._X_buf[n] = self.space.encode(config)
        y = self._transform_cost(cost)
        self._y_buf[n] = y
        self._n_pairs = n + 1
        if y < self._y_model_min:
            self._y_model_min = y

    def observe(self, config: Configuration, cost: float,
                succeeded: bool = True) -> Observation:
        obs = super().observe(config, cost, succeeded=succeeded)
        self._append_pair(obs.config, obs.cost)
        # min() keeps the first of equal costs, so only a strictly
        # better observation replaces the incumbent.
        if self._best_obs is None or obs.cost < self._best_obs.cost:
            self._best_obs = obs
        return obs

    @property
    def best(self) -> Observation | None:
        if self.incremental:
            return self._best_obs
        return super().best

    def _training_data(self):
        """Rebuild the design matrix from scratch (reference path).

        The incremental buffers must stay bit-identical to this — the
        hypothesis identity suite drives both and compares.
        """
        pairs = self._warm + [(o.config, o.cost) for o in self.history]
        X = np.array([self.space.encode(c) for c, _ in pairs])
        y = np.array([cost for _, cost in pairs], dtype=float)
        if self.log_costs:
            y = np.log(np.maximum(y, 1e-9))
        return X, y

    def _model_data(self):
        if self.incremental:
            return self._X_buf[:self._n_pairs], self._y_buf[:self._n_pairs]
        return self._training_data()

    def _refit(self) -> None:
        X, y = self._model_data()
        n = len(y)
        optimize = (n - self._fitted_at) >= self.refit_every or self._fitted_at == 0
        if optimize or self._gp_rows == 0 or self._gp_rows > n:
            # Full (re)fit: refactorize and, on schedule, re-optimize
            # hyperparameters.
            self._gp.fit(X, y, optimize_hyperparams=optimize)
            if optimize:
                self._fitted_at = n
        elif self._gp_rows < n:
            # Between refits, fold new observations in with a rank-1
            # Cholesky update (training pairs are append-only).
            self._gp.update(X[self._gp_rows:], y[self._gp_rows:])
        self._gp_rows = n

    def _candidates(self) -> np.ndarray:
        cands = [self.rng.random((self.n_candidates, self.space.dimension))]
        best = self.best
        if best is not None:
            # Local refinement around the incumbent.
            center = self.space.encode(best.config)
            local = center + self.rng.normal(0.0, 0.08, (self.n_candidates // 2, self.space.dimension))
            cands.append(np.clip(local, 0.0, 1.0))
        return np.vstack(cands)

    def _incumbent_y(self) -> float:
        """EI's baseline: the minimum of the model-space costs.

        Tracked incrementally; the rebuild path recomputes it from the
        full design so both modes answer bit-identically.
        """
        if self.incremental:
            return float(self._y_model_min)
        _, y = self._training_data()
        return float(y.min())

    # --- Tuner interface -----------------------------------------------------
    def suggest(self) -> Configuration:
        n_observed = len(self.history) + len(self._warm)
        if len(self.history) < len(self._init_points) and n_observed < max(
            self.n_init, 3
        ):
            return self._init_points[len(self.history)]
        self._refit()
        X = self._candidates()
        mean, std = self._gp.predict(X)
        if self.acquisition == "ei":
            score = expected_improvement(mean, std, best=self._incumbent_y())
            self.last_max_ei = float(score.max())
            idx = int(np.argmax(score))
        else:
            score = lower_confidence_bound(mean, std)
            idx = int(np.argmin(score))
        return self.space.decode(X[idx])

    def should_stop(self, ei_fraction: float = 0.1) -> bool:
        """CherryPick's stopping rule: max EI below a fraction of the incumbent.

        Only meaningful once the model is active (after the initial design).
        """
        if self.last_max_ei is None or self.best is None:
            return False
        incumbent = (
            np.log(max(self.best.cost, 1e-9)) if self.log_costs else self.best.cost
        )
        return self.last_max_ei < ei_fraction * abs(incumbent)

    def surrogate_prediction(self, config: Configuration) -> tuple[float, float]:
        """Model's (mean, std) prediction for one configuration (cost scale)."""
        self._refit()
        mean, std = self._gp.predict(self.space.encode(config)[None, :])
        if self.log_costs:
            return float(np.exp(mean[0])), float(np.exp(mean[0]) * std[0])
        return float(mean[0]), float(std[0])
