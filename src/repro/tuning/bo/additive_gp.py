"""Additive-GP tuner — interpretable Bayesian optimization (challenge V.A).

Duvenaud et al.'s additive Gaussian processes decompose the model into a
sum of low-dimensional functions; the paper's Section V.A proposes them
as a way to *extract* tuning knowledge (which parameters matter, and
how) from an otherwise black-box GP.  :meth:`parameter_importances` and
:meth:`effect_curve` expose exactly that.
"""

from __future__ import annotations

import numpy as np

from ...config.space import Configuration, ConfigurationSpace
from .bayesopt import BayesOptTuner
from .kernels import AdditiveKernel

__all__ = ["AdditiveGPTuner"]


class AdditiveGPTuner(BayesOptTuner):
    """Bayesian optimization whose surrogate is a first-order additive GP."""

    def __init__(self, space: ConfigurationSpace, seed: int = 0, n_init: int = 8,
                 groups: list[list[str]] | None = None, **kwargs):
        index = {name: i for i, name in enumerate(space.names)}
        if groups is not None:
            idx_groups = [[index[name] for name in g] for g in groups]
        else:
            idx_groups = None
        kernel = AdditiveKernel(space.dimension, groups=idx_groups)
        super().__init__(space, seed=seed, n_init=n_init, kernel=kernel, **kwargs)
        self._additive_kernel = kernel

    def parameter_importances(self) -> dict[str, float]:
        """Normalized per-group signal variance — which knobs drive runtime.

        Requires a fitted model (at least ``n_init`` observations).
        """
        self._refit()
        variances = self._additive_kernel.group_variances(self._gp.theta[:-1])
        total = float(variances.sum()) or 1.0
        names = self.space.names
        out = {}
        for gi, group in enumerate(self._additive_kernel.groups):
            label = "+".join(names[i] for i in group)
            out[label] = float(variances[gi]) / total
        return out

    def effect_curve(self, parameter: str, resolution: int = 25,
                     base: Configuration | None = None) -> tuple[list, np.ndarray]:
        """Predicted cost while sweeping one parameter, others at ``base``.

        Returns ``(values, predicted_costs)`` — the 1-D slice the additive
        decomposition makes meaningful.
        """
        if parameter not in self.space:
            raise KeyError(parameter)
        self._refit()
        base = base or (self.best.config if self.best else self.space.default_configuration())
        param = self.space[parameter]
        values = param.grid(resolution)
        X = np.array([
            self.space.encode(base.replace(**{parameter: v})) for v in values
        ])
        mean, _ = self._gp.predict(X)
        if self.log_costs:
            mean = np.exp(mean)
        return values, mean
