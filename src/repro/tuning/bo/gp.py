"""Gaussian-process regression, built from scratch on numpy/scipy.

Supports marginal-likelihood hyperparameter fitting with multi-start
L-BFGS, Cholesky-based prediction with adaptive jitter, and y
normalization — everything CherryPick's performance model needs.
"""

from __future__ import annotations

import numpy as np
from scipy import optimize
from scipy.linalg import solve_triangular as _solve_triangular

from .kernels import Kernel, Matern52

__all__ = ["GaussianProcess"]


def solve_triangular(*args, **kwargs):
    """scipy's triangular solve without the finite-entry pre-scan.

    Every operand here is produced by our own kernel/Cholesky math from
    already-validated training data, so the O(n²) ``asarray_chkfinite``
    pass scipy runs by default is pure overhead on the hot suggest path
    (~10% of a rank-1 update + predict cycle).  Skipping it does not
    change the computation — same LAPACK routine, same operand layout,
    bit-identical results (asserted by the GP identity suite against
    the checked reference).
    """
    kwargs.setdefault("check_finite", False)
    return _solve_triangular(*args, **kwargs)


class GaussianProcess:
    """GP regressor with a learnable noise level.

    The noise variance is appended to the kernel hyperparameters in log
    space, so it is fitted jointly — important for cloud measurements
    where run-to-run variance is substantial (paper Section IV.B).
    """

    def __init__(self, kernel: Kernel | None = None, noise: float = 1e-2,
                 normalize_y: bool = True, n_restarts: int = 3, seed: int = 0):
        self.kernel = kernel or Matern52()
        self.initial_noise = noise
        self.normalize_y = normalize_y
        self.n_restarts = n_restarts
        self.rng = np.random.default_rng(seed)
        self._X: np.ndarray | None = None
        self._y: np.ndarray | None = None
        self._theta: np.ndarray | None = None
        self._L: np.ndarray | None = None
        self._alpha: np.ndarray | None = None
        self._y_mean = 0.0
        self._y_std = 1.0
        # Capacity-doubled backing buffers for the training state; the
        # public ``_X``/``_y``/``_L`` views slice the first n rows, so
        # :meth:`update` appends points by writing one row instead of
        # reallocating an (n+1)-sized copy per observation.
        self._capacity = 0
        self._X_buf: np.ndarray | None = None
        self._y_buf: np.ndarray | None = None
        self._L_buf: np.ndarray | None = None

    @property
    def theta(self) -> np.ndarray:
        if self._theta is None:
            raise ValueError("model is not fitted")
        return self._theta

    @property
    def noise(self) -> float:
        return float(np.exp(self.theta[-1]))

    def _chol(self, X: np.ndarray, theta: np.ndarray) -> np.ndarray:
        K = self.kernel(X, X, theta[:-1])
        K[np.diag_indices_from(K)] += np.exp(theta[-1]) + 1e-10
        jitter = 1e-10
        for _ in range(6):
            try:
                return np.linalg.cholesky(K)
            except np.linalg.LinAlgError:
                K[np.diag_indices_from(K)] += jitter
                jitter *= 10
        raise np.linalg.LinAlgError("kernel matrix is not positive definite")

    def _nll(self, theta: np.ndarray, X: np.ndarray, y: np.ndarray) -> float:
        try:
            L = self._chol(X, theta)
        except np.linalg.LinAlgError:
            return 1e10
        alpha = solve_triangular(L.T, solve_triangular(L, y, lower=True), lower=False)
        nll = (
            0.5 * y @ alpha
            + np.sum(np.log(np.diag(L)))
            + 0.5 * len(y) * np.log(2 * np.pi)
        )
        return float(nll) if np.isfinite(nll) else 1e10

    def fit(self, X: np.ndarray, y: np.ndarray, optimize_hyperparams: bool = True) -> "GaussianProcess":
        X = np.atleast_2d(np.asarray(X, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        if len(X) != len(y):
            raise ValueError("X and y lengths differ")
        if len(y) < 1:
            raise ValueError("need at least one observation")
        if self.normalize_y:
            self._y_mean = float(y.mean())
            self._y_std = float(y.std()) or 1.0
        else:
            self._y_mean, self._y_std = 0.0, 1.0
        yn = (y - self._y_mean) / self._y_std

        bounds = self.kernel.bounds() + [(np.log(1e-6), np.log(1.0))]
        theta0 = np.append(self.kernel.default_theta(), np.log(self.initial_noise))
        best_theta, best_nll = theta0, self._nll(theta0, X, yn)
        if optimize_hyperparams and len(y) >= 3:
            starts = [theta0]
            for _ in range(self.n_restarts):
                lo = np.array([b[0] for b in bounds])
                hi = np.array([b[1] for b in bounds])
                starts.append(lo + self.rng.random(len(bounds)) * (hi - lo))
            for start in starts:
                res = optimize.minimize(
                    self._nll, start, args=(X, yn), method="L-BFGS-B",
                    bounds=bounds, options={"maxiter": 80},
                )
                if res.fun < best_nll:
                    best_nll, best_theta = float(res.fun), res.x
        self._theta = best_theta
        L = self._chol(X, best_theta)
        self._adopt(X, yn, L)
        self._alpha = solve_triangular(
            L.T, solve_triangular(L, yn, lower=True), lower=False
        )
        return self

    # --- training-state buffers -------------------------------------------
    def _adopt(self, X: np.ndarray, yn: np.ndarray, L: np.ndarray) -> None:
        """Copy a freshly factorized training state into growable buffers."""
        n, d = X.shape
        self._reserve(n, d)
        self._X_buf[:n] = X
        self._y_buf[:n] = yn
        self._L_buf[:n, :n] = L
        self._publish(n)

    def _reserve(self, n: int, d: int) -> None:
        """Ensure buffer capacity for ``n`` rows of dimension ``d``.

        Growth doubles capacity, so a suggest loop appending one point
        per step amortizes to O(1) allocations per observation instead
        of one (n+1)² zero matrix each — the difference the
        ``suggest_throughput`` bench measures.
        """
        if (self._X_buf is not None and self._capacity >= n
                and self._X_buf.shape[1] == d):
            return
        cap = max(16, self._capacity)
        while cap < n:
            cap *= 2
        X_buf = np.zeros((cap, d))
        y_buf = np.zeros(cap)
        L_buf = np.zeros((cap, cap))
        if self._X is not None and self._X_buf is not None \
                and self._X.shape[1] == d:
            kept = len(self._X)
            X_buf[:kept] = self._X
            y_buf[:kept] = self._y
            L_buf[:kept, :kept] = self._L
        self._capacity = cap
        self._X_buf, self._y_buf, self._L_buf = X_buf, y_buf, L_buf

    def _publish(self, n: int) -> None:
        """Point the public training views at the first ``n`` buffer rows."""
        self._X = self._X_buf[:n]
        self._y = self._y_buf[:n]
        self._L = self._L_buf[:n, :n]

    def _L_contiguous(self) -> np.ndarray:
        """The Cholesky factor as a C-contiguous (n, n) matrix.

        ``_L`` is a strided view into the capacity-padded buffer, and
        scipy's triangular solves dispatch differently on strided vs.
        contiguous operands (trans tricks vs. copies), which perturbs
        results in the last ulp.  Every solve therefore goes through a
        contiguous factor — identical memory layout, and bit-identical
        numerics, to the pre-buffer implementation.  The O(n²) copy is
        dominated by the O(n²)–O(n³) solve it feeds.
        """
        return np.ascontiguousarray(self._L)

    @property
    def n_observations(self) -> int:
        return 0 if self._X is None else len(self._X)

    def update(self, X_new: np.ndarray, y_new: np.ndarray) -> "GaussianProcess":
        """Append observations with a rank-1 Cholesky extension.

        Each appended point costs O(n²) (two triangular solves) instead
        of the O(n³) full refactorization :meth:`fit` performs — the
        difference between refitting a tuning surrogate once per
        observation and once per batch.  Hyperparameters and the y
        normalization constants stay frozen at their last :meth:`fit`
        values; call :meth:`fit` periodically to re-optimize them.
        """
        if self._X is None:
            raise ValueError("model is not fitted; call fit() before update()")
        X_new = np.atleast_2d(np.asarray(X_new, dtype=float))
        y_new = np.asarray(y_new, dtype=float).ravel()
        if len(X_new) != len(y_new):
            raise ValueError("X_new and y_new lengths differ")
        if len(y_new) == 0:
            return self
        theta = self._theta
        noise = np.exp(theta[-1]) + 1e-10
        dim = self._X.shape[1]
        for x, yv in zip(X_new, y_new):
            yn = (yv - self._y_mean) / self._y_std
            k_vec = self.kernel(x[None, :], self._X, theta[:-1]).ravel()
            b = solve_triangular(self._L_contiguous(), k_vec, lower=True)
            d = float(self.kernel.diag(x[None, :], theta[:-1])[0] + noise - b @ b)
            n = len(self._X)
            # Grow in place: one row write into the pre-allocated buffers
            # instead of rebuilding an (n+1)² zero matrix per point.
            self._reserve(n + 1, dim)
            self._L_buf[:n, n] = 0.0      # clear any stale column values
            self._L_buf[n, :n] = b
            # Numerical floor mirrors the jitter the full factorization uses.
            self._L_buf[n, n] = np.sqrt(max(d, 1e-10))
            self._X_buf[n] = x
            self._y_buf[n] = yn
            self._publish(n + 1)
        L = self._L_contiguous()
        self._alpha = solve_triangular(
            L.T, solve_triangular(L, self._y, lower=True), lower=False
        )
        return self

    def predict(self, Xs: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Posterior mean and standard deviation at ``Xs`` (original y scale)."""
        if self._X is None:
            raise ValueError("model is not fitted")
        Xs = np.atleast_2d(np.asarray(Xs, dtype=float))
        Ks = self.kernel(Xs, self._X, self._theta[:-1])
        mean = Ks @ self._alpha
        v = solve_triangular(self._L_contiguous(), Ks.T, lower=True)
        var = self.kernel.diag(Xs, self._theta[:-1]) - np.sum(v**2, axis=0)
        var = np.maximum(var, 1e-12)
        return (
            mean * self._y_std + self._y_mean,
            np.sqrt(var) * self._y_std,
        )

    def log_marginal_likelihood(self) -> float:
        if self._X is None:
            raise ValueError("model is not fitted")
        return -self._nll(self._theta, self._X, self._y)
