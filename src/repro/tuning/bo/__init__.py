"""Bayesian optimization: GP regression, kernels, acquisitions, tuners."""

from .acquisition import expected_improvement, lower_confidence_bound, probability_of_improvement
from .additive_gp import AdditiveGPTuner
from .bayesopt import BayesOptTuner
from .gp import GaussianProcess
from .kernels import AdditiveKernel, Kernel, Matern52, RBF

__all__ = [
    "GaussianProcess",
    "Kernel",
    "RBF",
    "Matern52",
    "AdditiveKernel",
    "expected_improvement",
    "probability_of_improvement",
    "lower_confidence_bound",
    "BayesOptTuner",
    "AdditiveGPTuner",
]
