"""Covariance kernels for Gaussian-process surrogates.

Hyperparameters are handled in log space (``theta = log(params)``) so the
marginal-likelihood optimizer works unconstrained-ish within bounds.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

__all__ = ["Kernel", "RBF", "Matern52", "AdditiveKernel"]


def _sqdist(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Pairwise squared euclidean distances, clipped at zero."""
    aa = np.sum(a**2, axis=1)[:, None]
    bb = np.sum(b**2, axis=1)[None, :]
    return np.maximum(0.0, aa + bb - 2.0 * (a @ b.T))  # staticcheck: ignore[RA003] -- b.T feeds gemm's trans flag; BLAS reads the view without packing


class Kernel(ABC):
    """A covariance function with ``n_params`` log-space hyperparameters."""

    @property
    @abstractmethod
    def n_params(self) -> int: ...

    @abstractmethod
    def bounds(self) -> list[tuple[float, float]]:
        """Log-space box bounds per hyperparameter."""

    @abstractmethod
    def default_theta(self) -> np.ndarray: ...

    @abstractmethod
    def __call__(self, a: np.ndarray, b: np.ndarray, theta: np.ndarray) -> np.ndarray:
        """Covariance matrix K(a, b) under hyperparameters ``theta``."""

    def diag(self, a: np.ndarray, theta: np.ndarray) -> np.ndarray:
        return np.diag(self(a, a, theta))


class RBF(Kernel):
    """Squared-exponential kernel: theta = [log lengthscale, log variance]."""

    @property
    def n_params(self) -> int:
        return 2

    def bounds(self):
        return [(np.log(0.01), np.log(10.0)), (np.log(1e-3), np.log(1e3))]

    def default_theta(self) -> np.ndarray:
        return np.array([np.log(0.3), np.log(1.0)])

    def __call__(self, a, b, theta):
        ls, var = np.exp(theta[0]), np.exp(theta[1])
        return var * np.exp(-0.5 * _sqdist(a / ls, b / ls))

    def diag(self, a, theta):
        return np.full(len(a), np.exp(theta[1]))


class Matern52(Kernel):
    """Matern-5/2 — CherryPick's kernel choice (rougher than RBF).

    theta = [log lengthscale, log variance].
    """

    @property
    def n_params(self) -> int:
        return 2

    def bounds(self):
        return [(np.log(0.01), np.log(10.0)), (np.log(1e-3), np.log(1e3))]

    def default_theta(self) -> np.ndarray:
        return np.array([np.log(0.3), np.log(1.0)])

    def __call__(self, a, b, theta):
        ls, var = np.exp(theta[0]), np.exp(theta[1])
        r = np.sqrt(_sqdist(a / ls, b / ls))
        s5 = np.sqrt(5.0) * r
        return var * (1.0 + s5 + s5**2 / 3.0) * np.exp(-s5)

    def diag(self, a, theta):
        return np.full(len(a), np.exp(theta[1]))


class AdditiveKernel(Kernel):
    """First-order additive kernel (Duvenaud et al., NeurIPS'11).

    ``k(x, x') = sum_g var_g * rbf(x_g, x'_g; ls_g)`` over disjoint feature
    groups (default: one group per dimension).  The fitted per-group
    variances decompose the model into low-dimensional functions, giving
    the interpretability the paper's challenge V.A asks for.
    """

    def __init__(self, dim: int, groups: list[list[int]] | None = None):
        if dim < 1:
            raise ValueError("dim must be >= 1")
        self.dim = dim
        self.groups = groups if groups is not None else [[i] for i in range(dim)]
        flat = [i for g in self.groups for i in g]
        if sorted(flat) != sorted(set(flat)) or max(flat, default=0) >= dim:
            raise ValueError("groups must contain unique in-range indices")

    @property
    def n_params(self) -> int:
        return 2 * len(self.groups)  # per group: log lengthscale, log variance

    def bounds(self):
        return [(np.log(0.01), np.log(10.0)), (np.log(1e-4), np.log(1e3))] * len(self.groups)

    def default_theta(self) -> np.ndarray:
        return np.tile([np.log(0.3), np.log(1.0 / len(self.groups))], len(self.groups))

    def __call__(self, a, b, theta):
        out = np.zeros((len(a), len(b)))
        for gi, group in enumerate(self.groups):
            ls = np.exp(theta[2 * gi])
            var = np.exp(theta[2 * gi + 1])
            ag, bg = a[:, group], b[:, group]
            out += var * np.exp(-0.5 * _sqdist(ag / ls, bg / ls))
        return out

    def group_variances(self, theta: np.ndarray) -> np.ndarray:
        """Fitted signal variance per group — the importance decomposition."""
        return np.exp(theta[1::2])

    def component(self, gi: int, a, b, theta) -> np.ndarray:
        """Covariance contribution of group ``gi`` alone."""
        group = self.groups[gi]
        ls = np.exp(theta[2 * gi])
        var = np.exp(theta[2 * gi + 1])
        return var * np.exp(-0.5 * _sqdist(a[:, group] / ls, b[:, group] / ls))
