"""Acquisition functions for Bayesian optimization (minimization form)."""

from __future__ import annotations

import numpy as np
from scipy import stats

__all__ = ["expected_improvement", "probability_of_improvement", "lower_confidence_bound"]


def expected_improvement(mean: np.ndarray, std: np.ndarray, best: float,
                         xi: float = 0.0) -> np.ndarray:
    """EI for minimization: E[max(best - f - xi, 0)].

    CherryPick's acquisition; its stopping rule fires when the maximum EI
    falls below 10% of the incumbent.
    """
    std = np.maximum(np.asarray(std, dtype=float), 1e-12)
    improvement = best - np.asarray(mean, dtype=float) - xi
    z = improvement / std
    return improvement * stats.norm.cdf(z) + std * stats.norm.pdf(z)


def probability_of_improvement(mean: np.ndarray, std: np.ndarray, best: float,
                               xi: float = 0.0) -> np.ndarray:
    std = np.maximum(np.asarray(std, dtype=float), 1e-12)
    z = (best - np.asarray(mean, dtype=float) - xi) / std
    return stats.norm.cdf(z)


def lower_confidence_bound(mean: np.ndarray, std: np.ndarray,
                           kappa: float = 2.0) -> np.ndarray:
    """LCB (to be *minimized*): mean - kappa * std."""
    if kappa < 0:
        raise ValueError("kappa must be non-negative")
    return np.asarray(mean, dtype=float) - kappa * np.asarray(std, dtype=float)
