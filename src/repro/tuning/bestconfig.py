"""BestConfig (Zhu et al., SoCC'17): DDS sampling + recursive bound-and-search.

BestConfig tuned 30 Spark parameters with ~500 samples: it alternates
*divide-and-diverge sampling* (DDS — a stratified, LHS-like design that
covers every parameter's subranges) with *recursive bound-and-search*
(RBS — after each round, bound a shrinking box around the incumbent and
resample inside it; if a round fails to improve, re-diverge globally).
"""

from __future__ import annotations

import numpy as np

from ..config.space import Configuration, ConfigurationSpace
from .base import Tuner

__all__ = ["BestConfigTuner"]


class BestConfigTuner(Tuner):
    """DDS + RBS sequential tuner."""

    def __init__(self, space: ConfigurationSpace, seed: int = 0,
                 samples_per_round: int = 16, shrink: float = 0.5,
                 min_radius: float = 0.02):
        super().__init__(space, seed)
        if samples_per_round < 2:
            raise ValueError("samples_per_round must be >= 2")
        if not 0 < shrink < 1:
            raise ValueError("shrink must be in (0, 1)")
        self.samples_per_round = samples_per_round
        self.shrink = shrink
        self.min_radius = min_radius
        self._radius = 1.0          # current box half-width in unit space
        self._center = np.full(space.dimension, 0.5)
        self._pending: list[Configuration] = []
        self._round_start_best: float | None = None

    def _dds_batch(self) -> list[Configuration]:
        """Stratified batch within the current box (divide-and-diverge)."""
        n, d = self.samples_per_round, self.space.dimension
        strata = (
            self.rng.permuted(np.tile(np.arange(n), (d, 1)), axis=1).T
            + self.rng.random((n, d))
        ) / n
        lo = np.clip(self._center - self._radius, 0.0, 1.0)
        hi = np.clip(self._center + self._radius, 0.0, 1.0)
        points = lo + strata * (hi - lo)
        return [self.space.decode(p) for p in points]

    def _finish_round(self) -> None:
        best = self.best
        improved = (
            best is not None
            and self._round_start_best is not None
            and best.cost < self._round_start_best
        )
        if best is not None:
            self._center = self.space.encode(best.config)
        if self._round_start_best is None or improved:
            # Bound: shrink the box around the (new) incumbent.
            self._radius = max(self.min_radius, self._radius * self.shrink)
        else:
            # Re-diverge: widen back out to escape the local region.
            self._radius = 1.0
        self._round_start_best = best.cost if best is not None else None

    def suggest(self) -> Configuration:
        if not self._pending:
            if self.history:
                self._finish_round()
            self._pending = self._dds_batch()
        return self._pending.pop()

    def suggest_batch(self, k: int) -> list[Configuration]:
        """Native batch: the rest of the current DDS round (≤ k).

        Stops at the round boundary so every round's results are known
        before RBS decides whether to bound or re-diverge.
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        if not self._pending:
            if self.history:
                self._finish_round()
            self._pending = self._dds_batch()
        take = min(k, len(self._pending))
        return [self._pending.pop() for _ in range(take)]

    @property
    def current_radius(self) -> float:
        return self._radius
