"""Latin-hypercube sampling tuner — stratified space-filling batches.

The initial-design strategy CherryPick and BestConfig both rely on: LHS
guarantees each parameter's range is evenly covered even in few samples.
"""

from __future__ import annotations

from ..config.space import Configuration, ConfigurationSpace
from .base import Tuner

__all__ = ["LatinHypercubeTuner"]


class LatinHypercubeTuner(Tuner):
    """Draws stratified batches of ``batch_size`` configurations."""

    def __init__(self, space: ConfigurationSpace, batch_size: int = 16, seed: int = 0):
        super().__init__(space, seed)
        if batch_size < 2:
            raise ValueError("batch_size must be >= 2")
        self.batch_size = batch_size
        self._pending: list[Configuration] = []

    def suggest(self) -> Configuration:
        if not self._pending:
            self._pending = self.space.latin_hypercube(self.batch_size, self.rng)
        return self._pending.pop()

    def suggest_batch(self, k: int) -> list[Configuration]:
        """Native batch: one stratified design sized to the demand.

        When no samples are pending and ``k`` covers a whole design, the
        batch *is* a fresh ``k``-point Latin hypercube — better per-axis
        coverage than ``k`` pops from ``batch_size``-point designs.
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        if not self._pending and k >= self.batch_size:
            return self.space.latin_hypercube(k, self.rng)
        if not self._pending:
            self._pending = self.space.latin_hypercube(self.batch_size, self.rng)
        take = min(k, len(self._pending))
        return [self._pending.pop() for _ in range(take)]
