"""Latin-hypercube sampling tuner — stratified space-filling batches.

The initial-design strategy CherryPick and BestConfig both rely on: LHS
guarantees each parameter's range is evenly covered even in few samples.
"""

from __future__ import annotations

from ..config.space import Configuration, ConfigurationSpace
from .base import Tuner

__all__ = ["LatinHypercubeTuner"]


class LatinHypercubeTuner(Tuner):
    """Draws stratified batches of ``batch_size`` configurations."""

    def __init__(self, space: ConfigurationSpace, batch_size: int = 16, seed: int = 0):
        super().__init__(space, seed)
        if batch_size < 2:
            raise ValueError("batch_size must be >= 2")
        self.batch_size = batch_size
        self._pending: list[Configuration] = []

    def suggest(self) -> Configuration:
        if not self._pending:
            self._pending = self.space.latin_hypercube(self.batch_size, self.rng)
        return self._pending.pop()
