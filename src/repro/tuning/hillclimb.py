"""Hill climbing with tuning rules — MROnline (Li et al., HPDC'14).

MROnline tunes Hadoop parameters with a *modified* hill climbing that
(i) walks one parameter at a time with per-parameter step sizes, and
(ii) limits the search space with predefined tuning rules.  We implement
both: the climber proposes single-dimension moves of decaying step size,
and an optional rule set pins or bounds parameters.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config.space import Configuration, ConfigurationSpace
from .base import Tuner

__all__ = ["TuningRule", "HillClimbTuner", "DEFAULT_SPARK_RULES"]


@dataclass(frozen=True)
class TuningRule:
    """Clamp one parameter's unit-interval search range (domain knowledge)."""

    parameter: str
    low: float = 0.0
    high: float = 1.0

    def __post_init__(self):
        if not 0.0 <= self.low < self.high <= 1.0:
            raise ValueError("rule range must satisfy 0 <= low < high <= 1")


#: rules an expert would encode for Spark (never starve executors of
#: memory; keep parallelism at least moderate)
DEFAULT_SPARK_RULES = (
    TuningRule("spark.executor.memory", low=0.25),
    TuningRule("spark.default.parallelism", low=0.2),
    TuningRule("spark.memory.fraction", low=0.2, high=0.9),
)


class HillClimbTuner(Tuner):
    """Greedy single-dimension climber with decaying steps and restarts."""

    def __init__(self, space: ConfigurationSpace, seed: int = 0,
                 rules: tuple[TuningRule, ...] = (),
                 initial_step: float = 0.25, decay: float = 0.7,
                 min_step: float = 0.02,
                 start: Configuration | None = None):
        super().__init__(space, seed)
        if not 0 < decay < 1:
            raise ValueError("decay must be in (0, 1)")
        self.rules = {r.parameter: r for r in rules}
        unknown = set(self.rules) - set(space.names)
        if unknown:
            raise ValueError(f"rules reference unknown parameters: {sorted(unknown)}")
        self.initial_step = initial_step
        self.decay = decay
        self.min_step = min_step
        self._current = start or space.default_configuration()
        self._current_cost: float | None = None
        self._pending: Configuration | None = None
        self._dim = 0
        self._direction = 1.0
        self._step = initial_step
        self._tried_since_improvement = 0

    def _clamp(self, name: str, u: float) -> float:
        rule = self.rules.get(name)
        if rule is None:
            return min(1.0, max(0.0, u))
        return min(rule.high, max(rule.low, u))

    def _propose_move(self) -> Configuration:
        names = self.space.names
        name = names[self._dim % len(names)]
        param = self.space[name]
        u = param.to_unit(self._current[name])
        u2 = self._clamp(name, u + self._direction * self._step)
        return self._current.replace(**{name: param.from_unit(u2)})

    def suggest(self) -> Configuration:
        if self._current_cost is None:
            self._pending = self._current
            return self._current
        proposal = self._propose_move()
        attempts = 0
        # Skip no-op moves (rounding can leave discrete params unchanged).
        while proposal == self._current and attempts < 2 * self.space.dimension:
            self._advance_cursor(improved=False)
            proposal = self._propose_move()
            attempts += 1
        if proposal == self._current:
            proposal = self.space.neighbor(self._current, self.rng, scale=self._step)
        self._pending = proposal
        return proposal

    def observe(self, config: Configuration, cost: float,
                succeeded: bool = True):
        obs = super().observe(config, cost, succeeded=succeeded)
        if self._current_cost is None or (
            config != self._current and cost < self._current_cost
        ):
            improved = self._current_cost is not None
            self._current = config
            self._current_cost = cost
            if improved:
                self._tried_since_improvement = 0
                return obs
        else:
            self._advance_cursor(improved=False)
        return obs

    def _advance_cursor(self, improved: bool) -> None:
        if improved:
            return
        # Try the other direction first, then the next dimension.
        if self._direction > 0:
            self._direction = -1.0
        else:
            self._direction = 1.0
            self._dim += 1
        self._tried_since_improvement += 1
        if self._tried_since_improvement >= 2 * self.space.dimension:
            # Full sweep without improvement: shrink step or restart.
            self._tried_since_improvement = 0
            self._step *= self.decay
            if self._step < self.min_step:
                self._step = self.initial_step
                self._current = self.space.sample_configuration(self.rng)
                self._current_cost = None
