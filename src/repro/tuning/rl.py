"""Reinforcement-learning tuner — Bu et al. (ICDCS'09).

Bu et al. auto-configure web systems online with Q-learning: the state
is a coarse performance bucket, actions increase/decrease one parameter
by a step, and the reward is the relative performance change.  They
tuned 8 parameters in ~25 executions — the approach the paper notes
"fits systems with a limited number of configuration parameters".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config.space import Configuration, ConfigurationSpace
from .base import Tuner

__all__ = ["QLearningTuner"]


@dataclass(frozen=True)
class _Action:
    parameter: str
    direction: int  # +1 / -1


class QLearningTuner(Tuner):
    """Tabular Q-learning over (performance-bucket, parameter-step) pairs."""

    def __init__(self, space: ConfigurationSpace, seed: int = 0,
                 step: float = 0.15, n_buckets: int = 5,
                 epsilon: float = 0.25, alpha: float = 0.4, gamma: float = 0.8,
                 start: Configuration | None = None):
        super().__init__(space, seed)
        if not 0 <= epsilon <= 1:
            raise ValueError("epsilon must be in [0, 1]")
        if not 0 < alpha <= 1:
            raise ValueError("alpha must be in (0, 1]")
        self.step = step
        self.n_buckets = n_buckets
        self.epsilon = epsilon
        self.alpha = alpha
        self.gamma = gamma
        self._actions = [
            _Action(p.name, d) for p in space.parameters for d in (+1, -1)
        ]
        self._q = np.zeros((n_buckets, len(self._actions)))
        self._current = start or space.default_configuration()
        self._baseline_cost: float | None = None
        self._last_cost: float | None = None
        self._last_action: int | None = None
        self._last_state: int | None = None
        self._pending: Configuration | None = None

    def _state(self, cost: float) -> int:
        """Bucket by cost relative to the first (baseline) measurement."""
        if self._baseline_cost is None:
            return 0
        ratio = cost / self._baseline_cost
        edges = np.geomspace(0.25, 4.0, self.n_buckets - 1)
        return int(np.searchsorted(edges, ratio))

    def _apply(self, action: _Action, config: Configuration) -> Configuration:
        param = self.space[action.parameter]
        u = param.to_unit(config[action.parameter])
        u2 = min(1.0, max(0.0, u + action.direction * self.step))
        return config.replace(**{action.parameter: param.from_unit(u2)})

    def suggest(self) -> Configuration:
        if self._last_cost is None:
            self._pending = self._current
            return self._current
        state = self._state(self._last_cost)
        if self.rng.random() < self.epsilon:
            idx = int(self.rng.integers(len(self._actions)))
        else:
            idx = int(np.argmax(self._q[state]))
        self._last_state, self._last_action = state, idx
        proposal = self._apply(self._actions[idx], self._current)
        if proposal == self._current:
            proposal = self.space.neighbor(self._current, self.rng, scale=self.step)
            self._last_action = None
        self._pending = proposal
        return proposal

    def observe(self, config: Configuration, cost: float,
                succeeded: bool = True):
        obs = super().observe(config, cost, succeeded=succeeded)
        if self._baseline_cost is None:
            self._baseline_cost = cost
            self._last_cost = cost
            return obs
        reward = (self._last_cost - cost) / self._last_cost
        if self._last_action is not None and self._last_state is not None:
            next_state = self._state(cost)
            td_target = reward + self.gamma * float(self._q[next_state].max())
            q = self._q[self._last_state, self._last_action]
            self._q[self._last_state, self._last_action] = q + self.alpha * (td_target - q)
        # Greedy policy improvement on the actual configuration walk.
        if cost <= self._last_cost:
            self._current = config
            self._last_cost = cost
        else:
            self._last_cost = cost if self.rng.random() < 0.3 else self._last_cost
        return obs
