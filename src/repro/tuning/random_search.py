"""Uniform random search — the baseline the paper's Table I experiment used
("we ran the workload using 100 random configurations to find the best
configuration")."""

from __future__ import annotations

from ..config.space import Configuration, ConfigurationSpace
from .base import Tuner

__all__ = ["RandomSearchTuner"]


class RandomSearchTuner(Tuner):
    """Independent uniform samples from the space."""

    def __init__(self, space: ConfigurationSpace, seed: int = 0,
                 include_default: bool = True):
        super().__init__(space, seed)
        self._first = include_default

    def suggest(self) -> Configuration:
        if self._first:
            self._first = False
            return self.space.default_configuration()
        return self.space.sample_configuration(self.rng)

    def suggest_batch(self, k: int) -> list[Configuration]:
        """Native batch: the default (once) plus independent samples."""
        if k < 1:
            raise ValueError("k must be >= 1")
        batch: list[Configuration] = []
        if self._first:
            self._first = False
            batch.append(self.space.default_configuration())
        batch.extend(
            self.space.sample_configurations(k - len(batch), self.rng)
        )
        return batch
