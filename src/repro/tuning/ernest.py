"""Ernest (Venkataraman et al., NSDI'16): parametric performance modelling.

Ernest predicts large-scale runtimes of machine-learning jobs from a few
cheap training runs by fitting the structural model::

    runtime = a + b * (data / machines) + c * log2(machines) + d * machines

with non-negative least squares.  It excels for iterative compute-bound
jobs and adapts poorly elsewhere — the "poor adaptivity" limitation the
paper (and CherryPick) call out, which the E2 bench quantifies.
"""

from __future__ import annotations

import numpy as np
from scipy import optimize

from ..config.space import CategoricalParameter, Configuration, ConfigurationSpace
from .base import Tuner

__all__ = ["ErnestModel", "ErnestTuner"]


class ErnestModel:
    """The NNLS-fitted scaling model for one workload + instance type."""

    def __init__(self):
        self._coef: np.ndarray | None = None

    @staticmethod
    def _features(machines: np.ndarray, data_mb: np.ndarray) -> np.ndarray:
        machines = np.asarray(machines, dtype=float)
        data_mb = np.asarray(data_mb, dtype=float)
        return np.column_stack([
            np.ones_like(machines),
            data_mb / machines,
            np.log2(np.maximum(machines, 1.0)),
            machines,
        ])

    def fit(self, machines, data_mb, runtimes) -> "ErnestModel":
        runtimes = np.asarray(runtimes, dtype=float)
        X = self._features(machines, data_mb)
        if len(X) < 2:
            raise ValueError("need at least two training samples")
        coef, _ = optimize.nnls(X, runtimes)
        self._coef = coef
        return self

    @property
    def coefficients(self) -> np.ndarray:
        if self._coef is None:
            raise ValueError("model is not fitted")
        return self._coef

    def predict(self, machines, data_mb) -> np.ndarray:
        if self._coef is None:
            raise ValueError("model is not fitted")
        return self._features(np.atleast_1d(machines), np.atleast_1d(data_mb)) @ self._coef


class ErnestTuner(Tuner):
    """Cloud-configuration tuner built on per-instance-type Ernest models.

    Works over a cloud space (``cloud.instance_type`` x
    ``cloud.cluster_size``).  Phase 1 runs a fixed experiment design —
    for a few instance types, a sweep of cluster sizes.  Phase 2 fits one
    scaling model per instance type and exploits the predicted optimum
    (with occasional re-exploration to correct the model).
    """

    def __init__(self, space: ConfigurationSpace, input_mb: float, seed: int = 0,
                 n_instance_types: int = 4, sizes_per_type: int = 3):
        super().__init__(space, seed)
        if "cloud.instance_type" not in space or "cloud.cluster_size" not in space:
            raise ValueError(
                "ErnestTuner needs a cloud space with cloud.instance_type "
                "and cloud.cluster_size (it models cluster scaling, not "
                "DISC internals)"
            )
        self.input_mb = input_mb
        type_param = space["cloud.instance_type"]
        if not isinstance(type_param, CategoricalParameter):
            raise ValueError("cloud.instance_type must be categorical")
        choices = list(type_param.choices)
        self.rng.shuffle(choices)
        self._train_types = choices[: max(1, n_instance_types)]
        size_param = space["cloud.cluster_size"]
        sizes = sorted({
            size_param.from_unit(u)
            for u in np.linspace(0.0, 1.0, max(2, sizes_per_type))
        })
        self._plan = [
            Configuration({"cloud.instance_type": t, "cloud.cluster_size": s})
            for t in self._train_types for s in sizes
        ]
        self._models: dict[str, ErnestModel] = {}

    def _fit_models(self) -> None:
        by_type: dict[str, list] = {}
        for obs in self.history:
            by_type.setdefault(obs.config["cloud.instance_type"], []).append(obs)
        self._models = {}
        for itype, observations in by_type.items():
            if len(observations) < 2:
                continue
            machines = [o.config["cloud.cluster_size"] for o in observations]
            runtimes = [o.cost for o in observations]
            model = ErnestModel()
            model.fit(machines, [self.input_mb] * len(machines), runtimes)
            self._models[itype] = model

    def predicted_best(self) -> Configuration:
        """Grid-argmin over fitted models."""
        self._fit_models()
        if not self._models:
            raise ValueError("no fitted models yet")
        size_param = self.space["cloud.cluster_size"]
        sizes = np.array(size_param.grid(12))
        best_cfg, best_pred = None, np.inf
        for itype, model in self._models.items():
            preds = model.predict(sizes, np.full(len(sizes), self.input_mb))
            i = int(np.argmin(preds))
            if preds[i] < best_pred:
                best_pred = float(preds[i])
                best_cfg = Configuration({
                    "cloud.instance_type": itype,
                    "cloud.cluster_size": int(sizes[i]),
                })
        return best_cfg

    def suggest(self) -> Configuration:
        if len(self.history) < len(self._plan):
            return self._plan[len(self.history)]
        if self.rng.random() < 0.2:
            return self.space.sample_configuration(self.rng)
        candidate = self.predicted_best()
        if any(o.config == candidate for o in self.history):
            return self.space.neighbor(candidate, self.rng, scale=0.1)
        return candidate
