"""Configuration tuners: every strategy the paper surveys, one interface.

Submodules are imported lazily (PEP 562).  This keeps ``import
repro.tuning.base`` cheap — the abstract interface is a leaf — and breaks
the package-level cycle ``engine.engine -> tuning.base`` /
``tuning.aroma -> core.similarity -> core.service -> engine`` that an
eager ``__init__`` would otherwise close.
"""

_EXPORTS = {
    "Tuner": "base",
    "Observation": "base",
    "TuningResult": "base",
    "run_tuner": "base",
    "run_tuner_batched": "base",
    "SimulationObjective": "base",
    "RandomSearchTuner": "random_search",
    "GridSearchTuner": "grid_search",
    "LatinHypercubeTuner": "latin",
    "HillClimbTuner": "hillclimb",
    "TuningRule": "hillclimb",
    "DEFAULT_SPARK_RULES": "hillclimb",
    "BayesOptTuner": "bo",
    "AdditiveGPTuner": "bo",
    "GaussianProcess": "bo",
    "GeneticTuner": "genetic",
    "DACTuner": "genetic",
    "TreeTuner": "trees",
    "DecisionTreeRegressor": "trees",
    "RandomForestRegressor": "trees",
    "BestConfigTuner": "bestconfig",
    "QLearningTuner": "rl",
    "ErnestModel": "ernest",
    "ErnestTuner": "ernest",
    "JobProfile": "whatif",
    "WhatIfEngine": "whatif",
    "WhatIfTuner": "whatif",
    "whatif_tune": "whatif",
    "AromaTuner": "aroma",
    "WorkloadCorpus": "aroma",
    "KernelRidgeRegressor": "aroma",
    "successive_halving": "multifidelity",
    "SuccessiveHalvingResult": "multifidelity",
    "FidelityRung": "multifidelity",
}

__all__ = list(_EXPORTS)


def __getattr__(name):
    try:
        submodule = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    from importlib import import_module

    value = getattr(import_module(f".{submodule}", __name__), name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(__all__))
