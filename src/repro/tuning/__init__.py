"""Configuration tuners: every strategy the paper surveys, one interface."""

from .aroma import AromaTuner, KernelRidgeRegressor, WorkloadCorpus
from .base import (
    Observation,
    SimulationObjective,
    Tuner,
    TuningResult,
    run_tuner,
    run_tuner_batched,
)
from .bestconfig import BestConfigTuner
from .bo import AdditiveGPTuner, BayesOptTuner, GaussianProcess
from .ernest import ErnestModel, ErnestTuner
from .genetic import DACTuner, GeneticTuner
from .grid_search import GridSearchTuner
from .hillclimb import DEFAULT_SPARK_RULES, HillClimbTuner, TuningRule
from .latin import LatinHypercubeTuner
from .multifidelity import FidelityRung, SuccessiveHalvingResult, successive_halving
from .random_search import RandomSearchTuner
from .rl import QLearningTuner
from .trees import DecisionTreeRegressor, RandomForestRegressor, TreeTuner
from .whatif import JobProfile, WhatIfEngine, WhatIfTuner, whatif_tune

__all__ = [
    "Tuner",
    "Observation",
    "TuningResult",
    "run_tuner",
    "run_tuner_batched",
    "SimulationObjective",
    "RandomSearchTuner",
    "GridSearchTuner",
    "LatinHypercubeTuner",
    "HillClimbTuner",
    "TuningRule",
    "DEFAULT_SPARK_RULES",
    "BayesOptTuner",
    "AdditiveGPTuner",
    "GaussianProcess",
    "GeneticTuner",
    "DACTuner",
    "TreeTuner",
    "DecisionTreeRegressor",
    "RandomForestRegressor",
    "BestConfigTuner",
    "QLearningTuner",
    "ErnestModel",
    "ErnestTuner",
    "JobProfile",
    "WhatIfEngine",
    "WhatIfTuner",
    "whatif_tune",
    "AromaTuner",
    "WorkloadCorpus",
    "KernelRidgeRegressor",
    "successive_halving",
    "SuccessiveHalvingResult",
    "FidelityRung",
]
