"""Tree-based surrogate models and tuners (PARIS, Wang et al.)."""

from .decision_tree import DecisionTreeRegressor
from .random_forest import RandomForestRegressor
from .tree_tuner import TreeTuner

__all__ = ["DecisionTreeRegressor", "RandomForestRegressor", "TreeTuner"]
