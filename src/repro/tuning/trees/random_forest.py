"""Random-forest regressor — PARIS's performance model.

Bootstrap-aggregated CART trees with per-split feature subsampling.
PARIS (Yadwadkar et al., SoCC'17) uses exactly this to predict workload
performance on unseen VM types from offline fingerprints.
"""

from __future__ import annotations

import numpy as np

from .decision_tree import DecisionTreeRegressor

__all__ = ["RandomForestRegressor"]


class RandomForestRegressor:
    """Bagged regression trees with uncertainty from ensemble spread."""

    def __init__(self, n_trees: int = 30, max_depth: int = 9,
                 min_samples_leaf: int = 2, max_features: float = 0.6,
                 seed: int = 0):
        if n_trees < 1:
            raise ValueError("n_trees must be >= 1")
        self.n_trees = n_trees
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.rng = np.random.default_rng(seed)
        self._trees: list[DecisionTreeRegressor] = []

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestRegressor":
        X = np.atleast_2d(np.asarray(X, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        if len(X) != len(y) or len(y) == 0:
            raise ValueError("X and y must be non-empty with matching lengths")
        self._trees = []
        n = len(y)
        for i in range(self.n_trees):
            idx = self.rng.integers(0, n, size=n)  # bootstrap
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                seed=int(self.rng.integers(2**31)),
            )
            tree.fit(X[idx], y[idx])
            self._trees.append(tree)
        return self

    def predict(self, X: np.ndarray, return_std: bool = False):
        if not self._trees:
            raise ValueError("model is not fitted")
        preds = np.stack([t.predict(X) for t in self._trees])
        mean = preds.mean(axis=0)
        if return_std:
            return mean, preds.std(axis=0)
        return mean

    @property
    def feature_importances_(self) -> np.ndarray:
        if not self._trees:
            raise ValueError("model is not fitted")
        return np.mean([t.feature_importances_ for t in self._trees], axis=0)
