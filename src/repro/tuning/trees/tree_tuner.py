"""Regression-tree configuration tuner — Wang et al. (HPCC'16) / SMAC-style.

Wang et al. tune 16 Spark parameters by fitting tree models on executed
samples and searching the model for promising configurations.  The loop
here: random warm-up, then repeatedly fit a random forest on all
observations (one-hot encoded) and evaluate the candidate that minimizes
the model's optimistic prediction (mean - kappa * ensemble std).
"""

from __future__ import annotations

import numpy as np

from ...config.encoding import OneHotEncoder
from ...config.space import Configuration, ConfigurationSpace
from ..base import Tuner
from .random_forest import RandomForestRegressor

__all__ = ["TreeTuner"]


class TreeTuner(Tuner):
    """Random-forest surrogate tuner with optimistic candidate screening."""

    def __init__(self, space: ConfigurationSpace, seed: int = 0,
                 n_init: int = 10, n_candidates: int = 600,
                 kappa: float = 1.0, n_trees: int = 25, log_costs: bool = True):
        super().__init__(space, seed)
        if n_init < 2:
            raise ValueError("n_init must be >= 2")
        self.n_init = n_init
        self.n_candidates = n_candidates
        self.kappa = kappa
        self.n_trees = n_trees
        self.log_costs = log_costs
        self.encoder = OneHotEncoder(space)
        self._init_points = space.latin_hypercube(n_init, self.rng)
        self._model: RandomForestRegressor | None = None

    def _fit_model(self) -> RandomForestRegressor:
        X = self.encoder.encode_many([o.config for o in self.history])
        y = np.array([o.cost for o in self.history])
        if self.log_costs:
            y = np.log(np.maximum(y, 1e-9))
        model = RandomForestRegressor(
            n_trees=self.n_trees, seed=int(self.rng.integers(2**31))
        )
        model.fit(X, y)
        self._model = model
        return model

    def suggest(self) -> Configuration:
        if len(self.history) < len(self._init_points):
            return self._init_points[len(self.history)]
        model = self._fit_model()
        candidates = self.space.sample_configurations(self.n_candidates, self.rng)
        best = self.best
        if best is not None:
            # Mix in mutations of the incumbent (exploitation).
            candidates += [
                self.space.neighbor(best.config, self.rng, scale=0.1, n_moves=2)
                for _ in range(self.n_candidates // 3)
            ]
        X = self.encoder.encode_many(candidates)
        mean, std = model.predict(X, return_std=True)
        score = mean - self.kappa * std
        return candidates[int(np.argmin(score))]

    def parameter_importances(self) -> dict[str, float]:
        """Forest feature importances mapped back to parameter names."""
        if self._model is None:
            if len(self.history) < 2:
                raise ValueError("not enough observations to fit a model")
            self._fit_model()
        imp = self._model.feature_importances_
        out: dict[str, float] = {}
        for name, value in zip(self.encoder.feature_names, imp):
            base = name.split("=")[0]
            out[base] = out.get(base, 0.0) + float(value)
        return out
