"""CART regression tree, from scratch on numpy.

The building block for PARIS's random-forest performance model and Wang
et al.'s regression-tree Spark tuner.  Splits minimize weighted child
variance; prediction returns leaf means.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["DecisionTreeRegressor"]


@dataclass
class _Node:
    feature: int = -1
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None
    value: float = 0.0
    n_samples: int = 0
    impurity_decrease: float = 0.0

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class DecisionTreeRegressor:
    """Variance-reduction CART with depth/size regularization."""

    def __init__(self, max_depth: int = 8, min_samples_split: int = 4,
                 min_samples_leaf: int = 2, max_features: int | float | None = None,
                 seed: int = 0):
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if min_samples_leaf < 1 or min_samples_split < 2:
            raise ValueError("invalid min_samples settings")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.rng = np.random.default_rng(seed)
        self._root: _Node | None = None
        self._n_features = 0
        self.feature_importances_: np.ndarray | None = None

    def _n_candidate_features(self) -> int:
        if self.max_features is None:
            return self._n_features
        if isinstance(self.max_features, float):
            return max(1, int(self.max_features * self._n_features))
        return min(self._n_features, max(1, self.max_features))

    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeRegressor":
        X = np.atleast_2d(np.asarray(X, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        if len(X) != len(y) or len(y) == 0:
            raise ValueError("X and y must be non-empty with matching lengths")
        self._n_features = X.shape[1]
        importances = np.zeros(self._n_features)
        self._root = self._build(X, y, depth=0, importances=importances)
        total = importances.sum()
        self.feature_importances_ = importances / total if total > 0 else importances
        return self

    def _build(self, X, y, depth, importances) -> _Node:
        node = _Node(value=float(y.mean()), n_samples=len(y))
        if (
            depth >= self.max_depth
            or len(y) < self.min_samples_split
            or np.ptp(y) < 1e-12
        ):
            return node
        best = self._best_split(X, y)
        if best is None:
            return node
        feature, threshold, gain = best
        mask = X[:, feature] <= threshold
        importances[feature] += gain * len(y)
        node.feature, node.threshold, node.impurity_decrease = feature, threshold, gain
        node.left = self._build(X[mask], y[mask], depth + 1, importances)
        node.right = self._build(X[~mask], y[~mask], depth + 1, importances)
        return node

    def _best_split(self, X, y):
        n = len(y)
        parent_var = y.var()
        if parent_var <= 0:
            return None
        features = np.arange(self._n_features)
        k = self._n_candidate_features()
        if k < self._n_features:
            features = self.rng.choice(features, size=k, replace=False)
        best_gain, best = 0.0, None
        for f in features:
            order = np.argsort(X[:, f], kind="stable")
            xs, ys = X[order, f], y[order]
            # Prefix sums for O(n) variance of every split point.
            csum = np.cumsum(ys)
            csq = np.cumsum(ys**2)
            total, total_sq = csum[-1], csq[-1]
            idx = np.arange(1, n)
            valid = xs[1:] > xs[:-1]
            nl = idx
            nr = n - idx
            valid &= (nl >= self.min_samples_leaf) & (nr >= self.min_samples_leaf)
            if not valid.any():
                continue
            sl, sql = csum[:-1], csq[:-1]
            var_l = sql / nl - (sl / nl) ** 2
            var_r = (total_sq - sql) / nr - ((total - sl) / nr) ** 2
            weighted = (nl * var_l + nr * var_r) / n
            gain = parent_var - weighted
            gain[~valid] = -np.inf
            i = int(np.argmax(gain))
            if gain[i] > best_gain + 1e-15:
                best_gain = float(gain[i])
                best = (int(f), float((xs[i] + xs[i + 1]) / 2.0), best_gain)
        return best

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self._root is None:
            raise ValueError("model is not fitted")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        return np.array([self._predict_one(row) for row in X])

    def _predict_one(self, row: np.ndarray) -> float:
        node = self._root
        while not node.is_leaf:
            node = node.left if row[node.feature] <= node.threshold else node.right
        return node.value

    def depth(self) -> int:
        def d(node):
            if node is None or node.is_leaf:
                return 0
            return 1 + max(d(node.left), d(node.right))

        return d(self._root)
