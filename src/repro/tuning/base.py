"""Tuner interface, tuning loop, and simulation-backed objectives.

Every tuning strategy in the paper's survey (Section II) is implemented
against the same two-method interface — ``suggest`` a configuration,
``observe`` its cost — so the sample-efficiency comparisons of the E2
bench are apples-to-apples.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterable, Mapping, Sequence

import numpy as np

from ..cloud.cluster import Cluster
from ..cloud.interference import QUIET, InterferenceModel
from ..cloud.pricing import CostLedger
from ..config.constraints import repair as repair_config
from ..config.space import Configuration, ConfigurationSpace
from ..config.spark_params import SPARK_DEFAULTS
from ..sparksim.metrics import ExecutionResult
from ..sparksim.simulator import SparkSimulator

if TYPE_CHECKING:
    from ..workloads.base import Workload

__all__ = [
    "Observation",
    "TuningResult",
    "Tuner",
    "run_tuner",
    "run_tuner_batched",
    "SimulationObjective",
]


@dataclass(frozen=True)
class Observation:
    """One evaluated configuration."""

    config: Configuration
    cost: float
    succeeded: bool = True


@dataclass
class TuningResult:
    """The trace of one tuning campaign."""

    history: list[Observation] = field(default_factory=list)

    @property
    def n_evaluations(self) -> int:
        return len(self.history)

    @property
    def best(self) -> Observation:
        if not self.history:
            raise ValueError("no observations yet")
        return min(self.history, key=lambda o: o.cost)

    @property
    def best_config(self) -> Configuration:
        return self.best.config

    @property
    def best_cost(self) -> float:
        return self.best.cost

    def incumbent_curve(self) -> list[float]:
        """Best cost seen after each evaluation (the regret curve's numerator)."""
        curve, best = [], float("inf")
        for obs in self.history:
            best = min(best, obs.cost)
            curve.append(best)
        return curve

    def evaluations_to_within(self, fraction: float, reference_best: float) -> int | None:
        """Evaluations needed to get within ``fraction`` of ``reference_best``.

        The paper's proposed SLO metric ("jobs should run within X% of the
        optimal runtime", Section IV.D) applied to a tuning trace.  Returns
        ``None`` if the campaign never reached the target.
        """
        if fraction < 0:
            raise ValueError("fraction must be non-negative")
        target = reference_best * (1.0 + fraction)
        for i, cost in enumerate(self.incumbent_curve(), start=1):
            if cost <= target:
                return i
        return None


class Tuner(ABC):
    """Sequential configuration tuner."""

    def __init__(self, space: ConfigurationSpace, seed: int = 0):
        self.space = space
        self.rng = np.random.default_rng(seed)
        self.history: list[Observation] = []

    @abstractmethod
    def suggest(self) -> Configuration:
        """Propose the next configuration to evaluate."""

    def suggest_batch(self, k: int) -> list[Configuration]:
        """Propose up to ``k`` configurations to evaluate together.

        The default is ``k`` sequential :meth:`suggest` calls (correct
        for stateless samplers; model-based tuners will propose
        duplicates and should override).  Population tuners override
        this to return their natural batch — which may be *shorter*
        than ``k`` at a generation/round boundary, so the tuner sees
        the results it needs before committing to the next round.
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        return [self.suggest() for _ in range(k)]

    def observe(self, config: Configuration, cost: float,
                succeeded: bool = True) -> Observation:
        """Record the measured cost of ``config``; returns the record.

        The returned :class:`Observation` is the single source of truth
        shared with any :class:`TuningResult` tracking the campaign.
        """
        if not np.isfinite(cost):
            raise ValueError(f"cost must be finite, got {cost}")
        obs = Observation(config, float(cost), succeeded=bool(succeeded))
        self.history.append(obs)
        return obs

    def observe_batch(
        self, observations: Iterable[Sequence[Any]]
    ) -> list[Observation]:
        """Record a batch of ``(config, cost)`` or ``(config, cost, succeeded)``."""
        out: list[Observation] = []
        for entry in observations:
            config, cost, *rest = entry
            out.append(self.observe(config, cost, *rest))
        return out

    @property
    def best(self) -> Observation | None:
        if not self.history:
            return None
        return min(self.history, key=lambda o: o.cost)

    @property
    def name(self) -> str:
        return type(self).__name__


def _call_succeeded(objective: object) -> bool:
    """Success of the objective's most recent evaluation, if it exposes one."""
    result = getattr(objective, "last_result", None)
    return bool(getattr(result, "success", True))


def run_tuner(tuner: Tuner, objective: Callable[[Configuration], float],
              budget: int) -> TuningResult:
    """Drive ``tuner`` against ``objective`` for ``budget`` evaluations.

    The returned result shares its :class:`Observation` records with
    ``tuner.history`` — one source of truth, including the ``succeeded``
    flag when the objective exposes its last execution result.
    """
    if budget < 1:
        raise ValueError("budget must be >= 1")
    result = TuningResult()
    for _ in range(budget):
        config = tuner.suggest()
        cost = objective(config)
        obs = tuner.observe(config, cost, succeeded=_call_succeeded(objective))
        result.history.append(obs)
    return result


def run_tuner_batched(tuner: Tuner, objective: Callable[[Configuration], float],
                      budget: int, batch_size: int = 8) -> TuningResult:
    """Drive ``tuner`` in batches of up to ``batch_size`` suggestions.

    ``objective`` may be a plain callable or expose
    ``evaluate_batch(configs) -> list[(cost, succeeded)]`` (the
    :class:`repro.engine.EvaluationEngine` adapter protocol), in which
    case whole batches are dispatched at once — memoized, and optionally
    evaluated by parallel workers.
    """
    if budget < 1:
        raise ValueError("budget must be >= 1")
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    result = TuningResult()
    evaluate_batch = getattr(objective, "evaluate_batch", None)
    remaining = budget
    while remaining > 0:
        configs = tuner.suggest_batch(min(batch_size, remaining))
        if not configs:
            raise RuntimeError(f"{tuner.name}.suggest_batch returned no configurations")
        configs = configs[:remaining]
        if evaluate_batch is not None:
            outcomes = evaluate_batch(configs)
        else:
            outcomes = [
                (objective(c), _call_succeeded(objective)) for c in configs
            ]
        for config, (cost, succeeded) in zip(configs, outcomes):
            result.history.append(tuner.observe(config, cost, succeeded=succeeded))
        remaining -= len(configs)
    return result


class SimulationObjective:
    """Cost function backed by the Spark simulator.

    Evaluates configurations from either a DISC space (fixed cluster), a
    cloud space (instance type + cluster size; DISC config defaults or a
    caller-supplied base), or the joint space.  Each call uses a fresh
    noise seed and, optionally, steps an interference process — tuners
    face the same noisy, drifting measurements real ones do.
    """

    def __init__(self, workload: Workload, input_mb: float,
                 cluster: Cluster | None = None,
                 simulator: SparkSimulator | None = None,
                 base_config: Mapping[str, Any] | None = None,
                 interference: InterferenceModel | None = None,
                 ledger: CostLedger | None = None,
                 failure_penalty: float = 4.0,
                 failure_floor_s: float = 3600.0,
                 metric: str = "runtime",
                 repair: bool = False,
                 seed: int = 0):
        if metric not in ("runtime", "price"):
            raise ValueError("metric must be 'runtime' or 'price'")
        self.workload = workload
        self.input_mb = input_mb
        self.cluster = cluster
        self.simulator = simulator or SparkSimulator()
        self.base_config = dict(SPARK_DEFAULTS)
        if base_config:
            self.base_config.update(base_config)
        self.interference = interference
        self.ledger = ledger
        self.failure_penalty = failure_penalty
        self.failure_floor_s = failure_floor_s
        self.metric = metric
        #: clamp executor sizing to fit the cluster before running — what
        #: a cloud-configuration stage does when the DISC config is held
        #: fixed across clusters of very different node sizes.  DISC
        #: tuners should leave this off and face crashes, as real ones do.
        self.repair = repair
        self._seed = seed
        self.n_calls = 0
        self.last_result: ExecutionResult | None = None

    def resolve(self, config: Mapping[str, Any]) -> tuple[Cluster, Configuration]:
        """Split a (possibly joint) configuration into cluster + full Spark config."""
        # Copy the backing dict directly when the tuner hands us a
        # Configuration — dict(mapping) walks __iter__/__getitem__.
        backing = getattr(config, "_values", None)
        values = dict(backing) if backing is not None else dict(config)
        instance = values.pop("cloud.instance_type", None)
        size = values.pop("cloud.cluster_size", None)
        if instance is not None:
            cluster = Cluster.of(instance, int(size))
        elif self.cluster is not None:
            cluster = self.cluster
        else:
            raise ValueError(
                "objective needs either a fixed cluster or cloud.* parameters"
            )
        full = dict(self.base_config)
        full.update(values)
        config = Configuration(full)
        if self.repair:
            config = repair_config(config, cluster)
        return cluster, config

    def __call__(self, config: Mapping[str, Any]) -> float:
        cluster, spark_config = self.resolve(config)
        env = self.interference.step() if self.interference else QUIET
        self.n_calls += 1
        result = self.simulator.run(
            self.workload, self.input_mb, cluster, spark_config,
            env=env, seed=self._seed + self.n_calls,
        )
        self.last_result = result
        if self.ledger is not None:
            self.ledger.charge_tuning(cluster, result.runtime_s)
        runtime = result.effective_runtime(self.failure_penalty, self.failure_floor_s)
        if self.metric == "price":
            return cluster.cost_of(runtime)
        return runtime
