"""AROMA (Lama & Zhou, ICAC'12): signature clustering + SVR-style models.

AROMA clusters previously executed jobs by resource signature with
k-medoids and trains one performance model per cluster (they used
support-vector regression); a new job is profiled once, assigned to a
cluster, and tuned using that cluster's model.  We implement the same
two-phase design with an RBF kernel-ridge regressor (the closed-form
cousin of SVR) and the project's k-medoids.

This is the direct ancestor of the paper's challenge V.B machinery: the
difference is that AROMA reuses a *model* per cluster while
:mod:`repro.core.transfer` warm-starts a fresh model per workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config.encoding import OneHotEncoder
from ..config.space import Configuration, ConfigurationSpace
from ..core.similarity import KMedoids
from .base import Tuner

__all__ = ["KernelRidgeRegressor", "WorkloadCorpus", "AromaTuner"]


class KernelRidgeRegressor:
    """RBF kernel ridge regression (closed form) — the SVR stand-in."""

    def __init__(self, lengthscale: float = 0.5, alpha: float = 1e-2):
        if lengthscale <= 0 or alpha <= 0:
            raise ValueError("lengthscale and alpha must be positive")
        self.lengthscale = lengthscale
        self.alpha = alpha
        self._X: np.ndarray | None = None
        self._coef: np.ndarray | None = None
        self._y_mean = 0.0

    def _kernel(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        aa = np.sum(a**2, axis=1)[:, None]
        bb = np.sum(b**2, axis=1)[None, :]
        sq = np.maximum(0.0, aa + bb - 2 * a @ b.T)
        return np.exp(-0.5 * sq / self.lengthscale**2)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "KernelRidgeRegressor":
        X = np.atleast_2d(np.asarray(X, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        if len(X) != len(y) or len(y) == 0:
            raise ValueError("X and y must be non-empty with matching lengths")
        self._y_mean = float(y.mean())
        K = self._kernel(X, X)
        K[np.diag_indices_from(K)] += self.alpha
        self._coef = np.linalg.solve(K, y - self._y_mean)
        self._X = X
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self._X is None:
            raise ValueError("model is not fitted")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        return self._kernel(X, self._X) @ self._coef + self._y_mean


@dataclass
class WorkloadCorpus:
    """Executed-job corpus: signatures plus per-job configuration history."""

    signatures: list[np.ndarray] = field(default_factory=list)
    histories: list[list[tuple[Configuration, float]]] = field(default_factory=list)

    def add(self, signature: np.ndarray,
            history: list[tuple[Configuration, float]]) -> None:
        self.signatures.append(np.asarray(signature, dtype=float))
        self.histories.append(list(history))

    def __len__(self) -> int:
        return len(self.signatures)

    def cluster(self, k: int, seed: int = 0) -> tuple[KMedoids, np.ndarray]:
        """K-medoids over signatures; returns the model and labels."""
        if len(self) < k:
            raise ValueError(f"corpus has {len(self)} jobs; need >= k={k}")
        X = np.vstack(self.signatures)
        km = KMedoids(k=k, seed=seed).fit(X)
        return km, km.labels_

    def history_for_cluster(self, labels: np.ndarray, cluster_id: int):
        out = []
        for label, history in zip(labels, self.histories):
            if label == cluster_id:
                out.extend(history)
        return out


class AromaTuner(Tuner):
    """Two-phase AROMA tuning.

    Phase 1 (offline, at construction): cluster the corpus, train one
    kernel-ridge model per cluster.  Phase 2 (online): assign the target
    job's signature to a cluster, then alternate between exploiting the
    cluster model and refining it with the target's own observations.
    """

    def __init__(self, space: ConfigurationSpace, corpus: WorkloadCorpus,
                 target_signature: np.ndarray, k: int = 2, seed: int = 0,
                 n_candidates: int = 500, explore_every: int = 4,
                 log_costs: bool = True):
        super().__init__(space, seed)
        if len(corpus) == 0:
            raise ValueError("AROMA needs a non-empty corpus")
        self.encoder = OneHotEncoder(space)
        self.log_costs = log_costs
        self.n_candidates = n_candidates
        self.explore_every = explore_every

        k = min(k, len(corpus))
        km, labels = corpus.cluster(k, seed=seed)
        medoid_points = np.vstack(corpus.signatures)[km.medoid_indices_]
        assigned = int(km.predict(
            np.asarray(target_signature, dtype=float)[None, :], medoid_points
        )[0])
        self.assigned_cluster = assigned
        self._transferred = corpus.history_for_cluster(labels, assigned)
        self._model: KernelRidgeRegressor | None = None

    def _fit(self) -> KernelRidgeRegressor:
        pairs = self._transferred + [(o.config, o.cost) for o in self.history]
        X = self.encoder.encode_many([c for c, _ in pairs])
        y = np.array([cost for _, cost in pairs])
        if self.log_costs:
            y = np.log(np.maximum(y, 1e-9))
        model = KernelRidgeRegressor(lengthscale=0.8, alpha=5e-2)
        model.fit(X, y)
        self._model = model
        return model

    def suggest(self) -> Configuration:
        n = len(self.history)
        if self.explore_every and n % self.explore_every == self.explore_every - 1:
            return self.space.sample_configuration(self.rng)
        model = self._fit()
        seen = {o.config for o in self.history}
        candidates = [
            c for c in self.space.sample_configurations(self.n_candidates, self.rng)
            if c not in seen
        ]
        X = self.encoder.encode_many(candidates)
        predictions = model.predict(X)
        return candidates[int(np.argmin(predictions))]

    @property
    def transferred_observations(self) -> int:
        return len(self._transferred)
