"""Core data model of the invariant linter.

A :class:`Finding` is one rule violation at one source location; a
:class:`LintResult` aggregates the findings of a run together with the
bookkeeping (files checked, findings silenced by suppressions) that the
reporters and the CLI exit code are computed from.

Suppressions are per-line markers of the form::

    runtime = time.time()   # staticcheck: ignore[RS002] -- replaying a log

``ignore[RS002,RS004]`` silences several rules on one line and a bare
``ignore`` silences every rule on that line.  The runner counts what it
silenced, so a report always says how many findings were waved through.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from enum import Enum

__all__ = [
    "Severity",
    "Finding",
    "LintResult",
    "Suppressions",
    "parse_suppressions",
]


class Severity(Enum):
    """How bad a finding is; errors gate CI, warnings inform."""

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Interprocedural rules (the ``RF`` family) attach a ``chain``: the
    call edges from the analysis entry point down to the function the
    finding sits in, each rendered as ``"path:line caller -> callee"``.
    Per-file rules leave it empty.
    """

    path: str
    line: int
    col: int
    rule_id: str
    message: str
    severity: Severity = Severity.ERROR
    chain: tuple[str, ...] = ()

    def format(self) -> str:
        head = (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule_id} [{self.severity.value}] {self.message}"
        )
        if not self.chain:
            return head
        via = "\n".join(f"    via {hop}" for hop in self.chain)
        return f"{head}\n{via}"

    def to_dict(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "severity": self.severity.value,
            "message": self.message,
            "chain": list(self.chain),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Finding":
        return cls(
            path=payload["path"],
            line=int(payload["line"]),
            col=int(payload["col"]),
            rule_id=payload["rule"],
            message=payload["message"],
            severity=Severity(payload.get("severity", "error")),
            chain=tuple(payload.get("chain", ())),
        )

    def sort_key(self) -> tuple:
        """Stable report order: (path, line, rule), then the tie-breakers."""
        return (self.path, self.line, self.rule_id, self.col, self.message)


@dataclass
class LintResult:
    """Everything one linter run produced.

    Suppressed findings are kept as full :class:`Finding` records (not a
    bare count) so reports can say *which* rule was waved through
    *where* — an aggregate count alone hides exactly the audit trail a
    suppression is supposed to leave.
    """

    findings: list[Finding] = field(default_factory=list)
    n_files: int = 0
    suppressed: list[Finding] = field(default_factory=list)

    @property
    def n_suppressed(self) -> int:
        return len(self.suppressed)

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    @property
    def clean(self) -> bool:
        return not self.findings

    def extend(self, other: "LintResult") -> None:
        self.findings.extend(other.findings)
        self.n_files += other.n_files
        self.suppressed.extend(other.suppressed)

    def sorted_findings(self) -> list[Finding]:
        return sorted(self.findings, key=Finding.sort_key)

    def sorted_suppressed(self) -> list[Finding]:
        return sorted(self.suppressed, key=Finding.sort_key)

    def suppressed_by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in self.suppressed:
            counts[finding.rule_id] = counts.get(finding.rule_id, 0) + 1
        return dict(sorted(counts.items()))


#: ``# staticcheck: ignore`` or ``# staticcheck: ignore[RS001,RS002]``
_SUPPRESS_RE = re.compile(
    r"#\s*staticcheck:\s*ignore(?:\[\s*([A-Za-z0-9_,\s]+?)\s*\])?"
)


class Suppressions:
    """Per-line suppression markers parsed from one source file."""

    def __init__(self, by_line: dict[int, frozenset[str]]):
        self._by_line = by_line

    def silences(self, line: int, rule_id: str) -> bool:
        rules = self._by_line.get(line)
        if rules is None:
            return False
        return "*" in rules or rule_id in rules

    def __len__(self) -> int:
        return len(self._by_line)


def parse_suppressions(source: str) -> Suppressions:
    """Extract ``# staticcheck: ignore[...]`` markers, keyed by line number."""
    by_line: dict[int, frozenset[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        if "staticcheck" not in text:
            continue
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        spec = match.group(1)
        if spec is None:
            by_line[lineno] = frozenset({"*"})
        else:
            rules = frozenset(
                part.strip().upper() for part in spec.split(",") if part.strip()
            )
            by_line[lineno] = rules or frozenset({"*"})
    return Suppressions(by_line)
