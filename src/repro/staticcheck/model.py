"""Core data model of the invariant linter.

A :class:`Finding` is one rule violation at one source location; a
:class:`LintResult` aggregates the findings of a run together with the
bookkeeping (files checked, findings silenced by suppressions) that the
reporters and the CLI exit code are computed from.

Suppressions are per-line markers of the form::

    runtime = time.time()   # staticcheck: ignore[RS002] -- replaying a log

``ignore[RS002,RS004]`` silences several rules on one line and a bare
``ignore`` silences every rule on that line.  The runner counts what it
silenced, so a report always says how many findings were waved through.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from enum import Enum

__all__ = [
    "Severity",
    "Finding",
    "LintResult",
    "Suppressions",
    "parse_suppressions",
]


class Severity(Enum):
    """How bad a finding is; errors gate CI, warnings inform."""

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str
    severity: Severity = Severity.ERROR

    def format(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule_id} [{self.severity.value}] {self.message}"
        )

    def to_dict(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "severity": self.severity.value,
            "message": self.message,
        }


@dataclass
class LintResult:
    """Everything one linter run produced."""

    findings: list[Finding] = field(default_factory=list)
    n_files: int = 0
    n_suppressed: int = 0

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    @property
    def clean(self) -> bool:
        return not self.findings

    def extend(self, other: "LintResult") -> None:
        self.findings.extend(other.findings)
        self.n_files += other.n_files
        self.n_suppressed += other.n_suppressed

    def sorted_findings(self) -> list[Finding]:
        return sorted(self.findings)


#: ``# staticcheck: ignore`` or ``# staticcheck: ignore[RS001,RS002]``
_SUPPRESS_RE = re.compile(
    r"#\s*staticcheck:\s*ignore(?:\[\s*([A-Za-z0-9_,\s]+?)\s*\])?"
)


class Suppressions:
    """Per-line suppression markers parsed from one source file."""

    def __init__(self, by_line: dict[int, frozenset[str]]):
        self._by_line = by_line

    def silences(self, line: int, rule_id: str) -> bool:
        rules = self._by_line.get(line)
        if rules is None:
            return False
        return "*" in rules or rule_id in rules

    def __len__(self) -> int:
        return len(self._by_line)


def parse_suppressions(source: str) -> Suppressions:
    """Extract ``# staticcheck: ignore[...]`` markers, keyed by line number."""
    by_line: dict[int, frozenset[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        if "staticcheck" not in text:
            continue
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        spec = match.group(1)
        if spec is None:
            by_line[lineno] = frozenset({"*"})
        else:
            rules = frozenset(
                part.strip().upper() for part in spec.split(",") if part.strip()
            )
            by_line[lineno] = rules or frozenset({"*"})
    return Suppressions(by_line)
