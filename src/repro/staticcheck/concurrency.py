"""Concurrency invariant rules (``RC001``—``RC005``) over the call graph.

The service layer (threaded ``ShardPool``, asyncio ``ServiceFrontEnd``,
lock-disciplined ``HistoryLog``/``SignatureIndex``, ``/dev/shm`` segment
handoff) relies on conventions a reviewer has to *remember*: every
telemetry counter is written under its owner's lock, ``_*_locked``
helpers are only entered with the lock held, nothing blocks inside an
``async def``, every shared-memory segment reaches a close/unlink, and
locks nest in one global order.  This pass infers the repo's lock set
and enforces those conventions as RC-series rules:

* **RC001** lock-guard inference — an attribute written under
  ``with self._lock`` on some paths and lock-free on others.
* **RC002** ``_*_locked`` naming convention — such methods must only be
  reachable from callers that hold the owning lock (``via`` chains).
* **RC003** blocking calls (``time.sleep``, ``Lock.acquire``,
  ``Future.result``, file I/O) reachable from an ``async def`` without
  an executor hand-off.
* **RC004** shared-memory lifecycle — every ``SharedMemory`` creation
  must reach a close/unlink or a registered hand-off on all edges,
  including exception paths.
* **RC005** lock-acquisition-order cycles across the inferred lock set
  (potential deadlocks), plus non-reentrant re-acquisition.

Inference, not annotation: locks are discovered from
``self._x = threading.Lock()`` assignments, dataclass-style
``_x: threading.Lock = field(...)`` declarations, and module-level
``_X = threading.Lock()`` globals.  A method only ever called with a
lock held (directly under a ``with``, or transitively from such a
caller) is treated as *assumed-locked* — the ``_evaluate_batch_locked``
→ ``_dispatch`` idiom — computed as a decreasing fixpoint over call
sites.  ``__init__`` has exclusive access to the instance it is
constructing, so constructor writes are exempt and constructor call
sites count as holding every class lock.

Soundness mirrors the flow pass: only **resolved** edges are followed
and assumed-locked status is granted to private methods only, so the
verdict is "clean over the resolved surface", not a proof.  Suppressions
use the same ``# staticcheck: ignore[RCxxx]`` markers, applied at the
line the finding lands on.  The paired runtime half of this pass lives
in :mod:`repro.staticcheck.dynsan`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import ClassVar, Iterable, Sequence

from .graph import CallGraph, CallSite, FunctionInfo, ModuleInfo, \
    build_call_graph
from .model import Finding, LintResult, Severity, parse_suppressions

__all__ = [
    "ConcurrencyRule",
    "ConcurrencyReport",
    "LockModel",
    "build_lock_model",
    "ALL_CONCURRENCY_RULES",
    "get_concurrency_rules",
    "concurrency_rule_catalogue",
    "run_concurrency_rules",
    "lint_concurrency",
]

# --------------------------------------------------------------------------
# lock discovery
# --------------------------------------------------------------------------

#: lock constructors we model, by absolute dotted name
_LOCK_FACTORIES = {
    "threading.Lock": "lock",
    "threading.RLock": "rlock",
}

#: method names that mutate their receiver in place (``self.X.append(...)``
#: counts as a write to ``X`` for RC001)
_MUTATORS = frozenset({
    "append", "appendleft", "add", "discard", "remove", "clear", "extend",
    "insert", "pop", "popitem", "popleft", "update", "setdefault",
    "move_to_end", "sort", "reverse", "put", "put_nowait",
})


def _dotted_parts(node: ast.expr) -> list[str] | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return None


def _resolve_factory(mod: ModuleInfo, expr: ast.expr) -> str | None:
    """Absolute dotted name of a constructor expression, via imports."""
    parts = _dotted_parts(expr)
    if not parts:
        return None
    target = mod.imports.get(parts[0])
    if target is None:
        return None
    return ".".join([target, *parts[1:]])


def _lock_kind_of_value(mod: ModuleInfo, value: ast.expr) -> str | None:
    """``threading.Lock()`` / ``RLock()`` (imported) -> "lock"/"rlock"."""
    if not isinstance(value, ast.Call):
        return None
    full = _resolve_factory(mod, value.func)
    if full is None:
        return None
    return _LOCK_FACTORIES.get(full)


def _lock_kind_of_annotation(mod: ModuleInfo, ann: ast.expr | None) -> str | None:
    """Dataclass-style ``_x: threading.Lock = field(...)`` declarations."""
    if ann is None:
        return None
    full = _resolve_factory(mod, ann)
    if full is None:
        return None
    return _LOCK_FACTORIES.get(full)


# --------------------------------------------------------------------------
# per-function scan
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class _Write:
    attr: str
    line: int
    col: int
    held: frozenset[str]
    nested: bool


@dataclass(frozen=True)
class _Acquire:
    lock_id: str
    line: int
    col: int
    held_before: frozenset[str]
    nested: bool


@dataclass
class _FnScan:
    """Lock-relevant facts of one function body."""

    writes: list[_Write] = field(default_factory=list)
    acquires: list[_Acquire] = field(default_factory=list)
    #: (line, col) of every Call -> (locks lexically held, inside nested def)
    call_held: dict[tuple[int, int], tuple[frozenset[str], bool]] = \
        field(default_factory=dict)
    #: (line, col) of calls that are directly awaited
    awaited: set[tuple[int, int]] = field(default_factory=set)


class _Scanner:
    """One lexical walk of a function: held-lock tracking + write sites.

    Entering a nested ``def``/``lambda`` resets the held set (the closure
    runs later, in an unknown lock context) and marks everything inside
    it ``nested`` so interprocedural rules can treat it separately.
    """

    def __init__(self, model: "LockModel", graph: CallGraph,
                 info: FunctionInfo):
        self._model = model
        self._graph = graph
        self._info = info
        self._self_name = info.self_name
        self._module_locks = model.module_locks.get(info.module, {})
        self.scan = _FnScan()

    def run(self) -> _FnScan:
        for stmt in self._info.node.body:
            self._visit(stmt, frozenset(), False)
        return self.scan

    # -- lock matching -----------------------------------------------------
    def _lock_of(self, expr: ast.expr) -> str | None:
        if isinstance(expr, ast.Attribute) \
                and isinstance(expr.value, ast.Name) \
                and expr.value.id == self._self_name \
                and self._info.class_qname is not None:
            return self._model.lock_for_attr(self._info.class_qname, expr.attr)
        if isinstance(expr, ast.Name):
            return self._module_locks.get(expr.id)
        return None

    # -- write recording ---------------------------------------------------
    def _self_attr_of_target(self, target: ast.expr) -> str | None:
        """Innermost self-attribute of a write target.

        ``self._means[row] = ...`` writes ``_means``;
        ``self.failures.n_failures += 1`` writes ``failures``.
        """
        node = target
        while isinstance(node, (ast.Attribute, ast.Subscript)):
            if isinstance(node, ast.Attribute) \
                    and isinstance(node.value, ast.Name) \
                    and node.value.id == self._self_name:
                return node.attr
            node = node.value
        return None

    def _record_write_target(self, target: ast.expr,
                             held: frozenset[str], nested: bool) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._record_write_target(elt, held, nested)
            return
        if isinstance(target, ast.Starred):
            self._record_write_target(target.value, held, nested)
            return
        attr = self._self_attr_of_target(target)
        if attr is not None:
            self.scan.writes.append(_Write(
                attr, target.lineno, target.col_offset, held, nested,
            ))

    # -- traversal ---------------------------------------------------------
    def _visit_children(self, node: ast.AST,
                        held: frozenset[str], nested: bool) -> None:
        for child in ast.iter_child_nodes(node):
            self._visit(child, held, nested)

    def _visit(self, node: ast.AST, held: frozenset[str],
               nested: bool) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            self._visit_children(node, frozenset(), True)
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            cur = held
            for item in node.items:
                self._visit(item.context_expr, cur, nested)
                lock_id = self._lock_of(item.context_expr)
                if lock_id is not None:
                    self.scan.acquires.append(_Acquire(
                        lock_id, item.context_expr.lineno,
                        item.context_expr.col_offset, cur, nested,
                    ))
                    cur = cur | {lock_id}
                if item.optional_vars is not None:
                    self._visit(item.optional_vars, cur, nested)
            for stmt in node.body:
                self._visit(stmt, cur, nested)
            return
        if isinstance(node, ast.Assign):
            for target in node.targets:
                self._record_write_target(target, held, nested)
        elif isinstance(node, (ast.AugAssign,)):
            self._record_write_target(node.target, held, nested)
        elif isinstance(node, ast.AnnAssign):
            if node.value is not None:
                self._record_write_target(node.target, held, nested)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                self._record_write_target(target, held, nested)
        elif isinstance(node, ast.Await):
            if isinstance(node.value, ast.Call):
                self.scan.awaited.add(
                    (node.value.lineno, node.value.col_offset)
                )
        elif isinstance(node, ast.Call):
            self.scan.call_held[(node.lineno, node.col_offset)] = \
                (held, nested)
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in _MUTATORS \
                    and isinstance(func.value, ast.Attribute) \
                    and isinstance(func.value.value, ast.Name) \
                    and func.value.value.id == self._self_name:
                self.scan.writes.append(_Write(
                    func.value.attr, node.lineno, node.col_offset,
                    held, nested,
                ))
        self._visit_children(node, held, nested)


# --------------------------------------------------------------------------
# the lock model
# --------------------------------------------------------------------------

class LockModel:
    """Inferred lock set + per-function lock facts over one call graph."""

    def __init__(self, graph: CallGraph):
        self.graph = graph
        #: class qname -> {attr: lock id}
        self.class_locks: dict[str, dict[str, str]] = {}
        #: module name -> {global name: lock id}
        self.module_locks: dict[str, dict[str, str]] = {}
        #: lock id -> "lock" | "rlock"
        self.lock_kinds: dict[str, str] = {}
        #: function qname -> scan
        self.scans: dict[str, _FnScan] = {}
        #: function qname -> locks held at every entry (assumed-locked)
        self.assumed: dict[str, frozenset[str]] = {}
        #: callee qname -> internal sites targeting it
        self.sites_by_callee: dict[str, list[CallSite]] = {}
        self._closure_memo: dict[str, frozenset[str]] = {}

    # -- lookups -----------------------------------------------------------
    def locks_of_class(self, class_qname: str) -> dict[str, str]:
        """attr -> lock id over the class and its analyzed bases."""
        out: dict[str, str] = {}
        for cls in reversed(self.graph.mro(class_qname)):
            out.update(self.class_locks.get(cls, {}))
        return out

    def lock_for_attr(self, class_qname: str, attr: str) -> str | None:
        for cls in self.graph.mro(class_qname):
            hit = self.class_locks.get(cls, {}).get(attr)
            if hit is not None:
                return hit
        return None

    def effective_held(self, qname: str, held: frozenset[str],
                       nested: bool) -> frozenset[str]:
        """Lexically held locks plus the function's assumed-locked set.

        Code inside a nested ``def`` runs later, outside the enclosing
        function's entry context, so it gets only its own lexical holds.
        """
        if nested:
            return held
        return held | self.assumed.get(qname, frozenset())

    def held_at_site(self, site: CallSite) -> tuple[frozenset[str], bool]:
        scan = self.scans.get(site.caller)
        if scan is None:
            return frozenset(), False
        return scan.call_held.get((site.line, site.col), (frozenset(), False))

    def closure_acquires(self, qname: str) -> frozenset[str]:
        """Locks ``qname`` may acquire, transitively over resolved edges."""
        memo = self._closure_memo
        if qname in memo:
            return memo[qname]
        memo[qname] = frozenset()            # cycle guard
        out: set[str] = set()
        scan = self.scans.get(qname)
        if scan is not None:
            out.update(a.lock_id for a in scan.acquires if not a.nested)
            for site in self.graph.sites_of(qname):
                if site.kind != "internal" \
                        or site.callee not in self.graph.functions:
                    continue
                _held, nested = self.held_at_site(site)
                if nested:
                    continue
                out.update(self.closure_acquires(site.callee))
        memo[qname] = frozenset(out)
        return memo[qname]

    # -- stats -------------------------------------------------------------
    def stats(self) -> dict[str, object]:
        lock_map = {
            owner: sorted(locks.values())
            for owner, locks in sorted(self.class_locks.items())
            if locks
        }
        for mod_name, locks in sorted(self.module_locks.items()):
            if locks:
                lock_map[mod_name] = sorted(locks.values())
        return {
            "locks": len(self.lock_kinds),
            "classes_with_locks": sum(
                1 for locks in self.class_locks.values() if locks
            ),
            "module_locks": sum(
                len(locks) for locks in self.module_locks.values()
            ),
            "assumed_locked_methods": sum(
                1 for locked in self.assumed.values() if locked
            ),
            "lock_map": lock_map,
        }


def build_lock_model(graph: CallGraph) -> LockModel:
    model = LockModel(graph)
    _discover_locks(model)
    for qname in graph.functions:
        model.scans[qname] = _Scanner(
            model, graph, graph.functions[qname]
        ).run()
    for qname in graph.functions:
        for site in graph.sites_of(qname):
            if site.kind == "internal" and site.callee is not None:
                model.sites_by_callee.setdefault(site.callee, []).append(site)
    _compute_assumed(model)
    return model


def _discover_locks(model: LockModel) -> None:
    graph = model.graph
    for mod in graph.modules.values():
        # module-level ``_X = threading.Lock()`` globals
        for stmt in mod.tree.body:
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                    and isinstance(stmt.targets[0], ast.Name):
                kind = _lock_kind_of_value(mod, stmt.value)
                if kind is not None:
                    name = stmt.targets[0].id
                    lock_id = f"{mod.name}.{name}"
                    model.module_locks.setdefault(mod.name, {})[name] = lock_id
                    model.lock_kinds[lock_id] = kind
        # dataclass-style annotated lock fields in class bodies
        for stmt in mod.tree.body:
            if not isinstance(stmt, ast.ClassDef):
                continue
            class_qname = mod.classes.get(stmt.name)
            if class_qname is None:
                continue
            for member in stmt.body:
                if isinstance(member, ast.AnnAssign) \
                        and isinstance(member.target, ast.Name):
                    kind = _lock_kind_of_annotation(mod, member.annotation)
                    if kind is not None:
                        attr = member.target.id
                        lock_id = f"{class_qname}.{attr}"
                        model.class_locks.setdefault(
                            class_qname, {}
                        )[attr] = lock_id
                        model.lock_kinds[lock_id] = kind
    # ``self._x = threading.Lock()`` assignments in any method
    for info in graph.functions.values():
        if info.class_qname is None or info.self_name is None:
            continue
        mod = graph.modules.get(info.module)
        if mod is None:
            continue
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == info.self_name):
                continue
            kind = _lock_kind_of_value(mod, node.value)
            if kind is not None:
                lock_id = f"{info.class_qname}.{target.attr}"
                model.class_locks.setdefault(
                    info.class_qname, {}
                )[target.attr] = lock_id
                model.lock_kinds[lock_id] = kind


def _compute_assumed(model: LockModel) -> None:
    """Decreasing fixpoint: locks provably held at *every* call site.

    Granted to private methods of lock-owning classes only — a public
    method can always be entered by an unseen external caller, so it
    never gets assumed-locked status.  A call site contributes the locks
    lexically held there, plus the caller's own assumed set when the
    caller is a method of the same class; a same-class ``__init__``
    caller contributes every class lock (constructor exclusivity); a
    call from inside a nested ``def`` contributes nothing.
    """
    graph = model.graph
    targets: list[str] = []
    for qname, info in graph.functions.items():
        if info.class_qname is None or info.is_public \
                or info.name == "__init__":
            continue
        cls_locks = frozenset(model.locks_of_class(info.class_qname).values())
        if not cls_locks:
            continue
        targets.append(qname)
        sites = model.sites_by_callee.get(qname)
        model.assumed[qname] = cls_locks if sites else frozenset()
    changed = True
    while changed:
        changed = False
        for qname in targets:
            info = graph.functions[qname]
            cls_locks = frozenset(
                model.locks_of_class(info.class_qname).values()
            ) if info.class_qname else frozenset()
            sites = model.sites_by_callee.get(qname, [])
            if not sites:
                continue
            new = cls_locks
            for site in sites:
                caller = graph.functions.get(site.caller)
                held, nested = model.held_at_site(site)
                if nested:
                    contribution: frozenset[str] = frozenset()
                elif caller is not None \
                        and caller.class_qname == info.class_qname \
                        and caller.name == "__init__":
                    contribution = cls_locks
                else:
                    effective = held
                    if caller is not None \
                            and caller.class_qname == info.class_qname:
                        effective = held | model.assumed.get(
                            site.caller, frozenset()
                        )
                    contribution = effective & cls_locks
                new &= contribution
                if not new:
                    break
            if new != model.assumed[qname]:
                model.assumed[qname] = new
                changed = True


# --------------------------------------------------------------------------
# rule scaffolding
# --------------------------------------------------------------------------

class ConcurrencyRule:
    """Base class: one concurrency invariant over graph + lock model."""

    rule_id: ClassVar[str] = "RC000"
    severity: ClassVar[Severity] = Severity.ERROR
    summary: ClassVar[str] = ""
    rationale: ClassVar[str] = ""

    def check(self, graph: CallGraph,
              model: LockModel) -> list[Finding]:  # pragma: no cover
        raise NotImplementedError

    def report(self, path: str, line: int, col: int, message: str,
               chain: tuple[str, ...] = ()) -> Finding:
        return Finding(
            path=path, line=line, col=col, rule_id=self.rule_id,
            message=message, severity=self.severity, chain=chain,
        )


def _fmt_locks(lock_ids: Iterable[str]) -> str:
    return ", ".join(sorted(lock_ids))


# --------------------------------------------------------------------------
# RC001 — lock-guard inference
# --------------------------------------------------------------------------

class LockGuardRule(ConcurrencyRule):
    """RC001: an attribute guarded on some write paths must be on all."""

    rule_id = "RC001"
    summary = (
        "an instance attribute written under the owner's lock anywhere "
        "must be written under it everywhere (outside __init__)"
    )
    rationale = (
        "A counter or cache bumped lock-free on one path while every "
        "other writer takes the lock is a data race that loses updates "
        "silently; the guard set is inferred, so new state inherits the "
        "discipline without annotations."
    )

    def check(self, graph: CallGraph, model: LockModel) -> list[Finding]:
        findings: list[Finding] = []
        for class_qname in sorted(graph.classes):
            locks = model.locks_of_class(class_qname)
            if not locks:
                continue
            lock_ids = frozenset(locks.values())
            lock_attrs = frozenset(locks)
            writes: dict[str, list[tuple[str, _Write, frozenset[str], bool]]] = {}
            for qname in sorted(graph.functions):
                info = graph.functions[qname]
                if info.class_qname != class_qname:
                    continue
                scan = model.scans[qname]
                is_init = info.name == "__init__"
                for write in scan.writes:
                    if write.attr in lock_attrs:
                        continue             # the lock attribute itself
                    effective = model.effective_held(
                        qname, write.held, write.nested
                    )
                    writes.setdefault(write.attr, []).append(
                        (qname, write, effective & lock_ids, is_init)
                    )
            for attr, entries in sorted(writes.items()):
                guards: set[str] = set()
                for _qname, _write, held_locks, is_init in entries:
                    if not is_init:
                        guards.update(held_locks)
                if not guards:
                    continue
                for qname, write, held_locks, is_init in entries:
                    if is_init or held_locks:
                        continue
                    info = graph.functions[qname]
                    findings.append(self.report(
                        info.path, write.line, write.col,
                        f"attribute `{attr}` of {class_qname} is written "
                        f"under {_fmt_locks(guards)} elsewhere but "
                        f"lock-free in {qname}",
                    ))
        return findings


# --------------------------------------------------------------------------
# RC002 — the _locked naming convention
# --------------------------------------------------------------------------

class LockedSuffixRule(ConcurrencyRule):
    """RC002: ``_*_locked`` methods are only entered with the lock held."""

    rule_id = "RC002"
    summary = (
        "a method named *_locked must only be called with its owning "
        "lock held (lexically, via an assumed-locked caller, or from "
        "__init__)"
    )
    rationale = (
        "The suffix is the repo's contract that the caller owns the "
        "critical section (HistoryLog._append_locked, "
        "SignatureIndex._sync_locked); a lock-free call site turns "
        "every invariant the method body relies on into a race."
    )

    def check(self, graph: CallGraph, model: LockModel) -> list[Finding]:
        findings: list[Finding] = []
        roots = sorted(
            q for q, f in graph.functions.items() if f.is_public
        )
        parents = graph.reach_parents(roots)
        for qname in sorted(graph.functions):
            info = graph.functions[qname]
            if not info.name.endswith("_locked"):
                continue
            owner_ids: frozenset[str] = frozenset()
            if info.class_qname is not None:
                owner_ids = frozenset(
                    model.locks_of_class(info.class_qname).values()
                )
            if not owner_ids:
                owner_ids = frozenset(
                    model.module_locks.get(info.module, {}).values()
                )
            if not owner_ids:
                findings.append(self.report(
                    info.path, info.lineno, 0,
                    f"{qname} follows the `_locked` naming convention "
                    f"but no owning lock could be inferred for "
                    f"{info.class_qname or info.module}",
                ))
                continue
            for site in model.sites_by_callee.get(qname, []):
                caller = graph.functions.get(site.caller)
                held, nested = model.held_at_site(site)
                effective = held
                if not nested:
                    effective = held | model.assumed.get(
                        site.caller, frozenset()
                    )
                if effective & owner_ids:
                    continue
                if caller is not None and info.class_qname is not None \
                        and caller.class_qname == info.class_qname \
                        and not nested:
                    if caller.name == "__init__" \
                            or caller.name.endswith("_locked"):
                        continue
                findings.append(self.report(
                    site.path, site.line, site.col,
                    f"{site.caller} calls {qname} without holding "
                    f"{_fmt_locks(owner_ids)}",
                    chain=graph.chain_to(parents, site.caller),
                ))
        return findings


# --------------------------------------------------------------------------
# RC003 — blocking calls inside async defs
# --------------------------------------------------------------------------

_BLOCKING_EXACT = frozenset({
    "time.sleep", "select.select", "signal.pause", "os.waitpid",
    "socket.create_connection", "urllib.request.urlopen",
    "builtins.open", "io.open",
    "concurrent.futures.wait", "concurrent.futures.as_completed",
})

#: ``<head module> x <basename>`` suffix classifications
_BLOCKING_SUFFIXES: tuple[tuple[frozenset[str], frozenset[str]], ...] = (
    (frozenset({"threading", "multiprocessing"}),
     frozenset({"acquire", "join", "wait"})),
    (frozenset({"concurrent"}), frozenset({"result"})),
    (frozenset({"queue"}), frozenset({"get", "put", "join"})),
    (frozenset({"pathlib"}),
     frozenset({"read_text", "write_text", "read_bytes", "write_bytes"})),
)


def _is_blocking_external(external: str) -> bool:
    if external in _BLOCKING_EXACT:
        return True
    if external.startswith("subprocess."):
        return True
    head = external.split(".", 1)[0]
    base = external.rsplit(".", 1)[-1]
    for heads, bases in _BLOCKING_SUFFIXES:
        if head in heads and base in bases:
            return True
    return False


class AsyncBlockingRule(ConcurrencyRule):
    """RC003: nothing reachable from an async def may block the loop."""

    rule_id = "RC003"
    summary = (
        "no blocking call (time.sleep, Lock.acquire, Future.result, "
        "file/socket I/O) may be reachable from an async def without an "
        "executor hand-off"
    )
    rationale = (
        "One blocked event loop stalls every tenant of the async front "
        "end at once — the whole point of ServiceFrontEnd is that "
        "admission answers while shards work.  Blocking work belongs "
        "behind run_in_executor / wrap_future (which is how _run_entry "
        "awaits its shard)."
    )

    def check(self, graph: CallGraph, model: LockModel) -> list[Finding]:
        findings: list[Finding] = []
        reported: set[tuple[str, int, int]] = set()
        roots = sorted(
            q for q, f in graph.functions.items()
            if isinstance(f.node, ast.AsyncFunctionDef)
        )
        for root in roots:
            parents: dict[str, CallSite | None] = {root: None}
            queue = [root]
            while queue:
                qname = queue.pop(0)
                info = graph.functions[qname]
                scan = model.scans[qname]
                for site in graph.sites_of(qname):
                    _held, nested = model.held_at_site(site)
                    if nested:
                        # a nested def is deferred work — it runs on a
                        # shard thread, not on the event loop
                        continue
                    if site.kind == "internal":
                        callee = site.callee
                        if callee in graph.functions \
                                and callee not in parents:
                            parents[callee] = site
                            queue.append(callee)
                        continue
                    if (site.line, site.col) in scan.awaited:
                        continue             # awaited => async-native API
                    reason = self._blocking_reason(site, info, model)
                    if reason is None:
                        continue
                    key = (site.path, site.line, site.col)
                    if key in reported:
                        continue
                    reported.add(key)
                    findings.append(self.report(
                        site.path, site.line, site.col,
                        f"blocking call `{site.text}(...)` ({reason}) is "
                        f"reachable from async {root} — hand it off via "
                        f"run_in_executor or use the async API",
                        chain=self._chain(parents, qname),
                    ))
        return findings

    @staticmethod
    def _blocking_reason(site: CallSite, info: FunctionInfo,
                         model: LockModel) -> str | None:
        if site.kind == "external" and site.external is not None:
            if _is_blocking_external(site.external):
                return site.external
            return None
        # unresolved fallback: bare lock-method calls on an inferred lock
        parts = site.text.split(".")
        if len(parts) < 2 or parts[-1] not in {"acquire", "wait", "join"}:
            return None
        if parts[0] == info.self_name and len(parts) == 3 \
                and info.class_qname is not None:
            lock_id = model.lock_for_attr(info.class_qname, parts[1])
            if lock_id is not None:
                return f"acquires inferred lock {lock_id}"
        if len(parts) == 2:
            lock_id = model.module_locks.get(info.module, {}).get(parts[0])
            if lock_id is not None:
                return f"acquires inferred lock {lock_id}"
        return None

    @staticmethod
    def _chain(parents: dict[str, CallSite | None],
               target: str) -> tuple[str, ...]:
        hops: list[str] = []
        cursor = target
        while True:
            site = parents.get(cursor)
            if site is None:
                break
            hops.append(f"{site.path}:{site.line} {site.caller} -> {cursor}")
            cursor = site.caller
        return tuple(reversed(hops))


# --------------------------------------------------------------------------
# RC004 — shared-memory segment lifecycle
# --------------------------------------------------------------------------

def _walk_no_nested(root: ast.AST) -> Iterable[ast.AST]:
    """Walk a function body without descending into nested defs."""
    stack = list(ast.iter_child_nodes(root))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _is_direct_creation(call: ast.Call) -> bool:
    parts = _dotted_parts(call.func)
    return bool(parts) and parts[-1] == "SharedMemory"


class _SegWalker:
    """Track SharedMemory creations, release evidence, and risky calls."""

    def __init__(self, graph: CallGraph, info: FunctionInfo,
                 creators: set[str]):
        self._info = info
        self._creators = creators
        self._sites_at = {
            (s.line, s.col): s for s in graph.sites_of(info.qname)
        }
        #: (var name or None for unbound, line, col)
        self.creations: list[tuple[str | None, int, int]] = []
        #: var -> [(line, protected)] — protected = handler/finally
        self.evidence: dict[str, list[tuple[int, bool]]] = {}
        #: (line, swallowed) of every other call
        self.risky: list[tuple[int, bool]] = []

    def creating(self, node: ast.expr) -> bool:
        if not isinstance(node, ast.Call):
            return False
        if _is_direct_creation(node):
            return True
        site = self._sites_at.get((node.lineno, node.col_offset))
        return site is not None and site.kind == "internal" \
            and site.callee in self._creators

    def run(self) -> None:
        for stmt in self._info.node.body:
            self._visit(stmt, False, False)

    @staticmethod
    def _swallows(node: ast.Try) -> bool:
        """A broad handler with no re-raise stops exception propagation."""
        for handler in node.handlers:
            broad = handler.type is None or (
                isinstance(handler.type, ast.Name)
                and handler.type.id in {"Exception", "BaseException"}
            )
            if broad and not any(
                isinstance(n, ast.Raise) for n in ast.walk(handler)
            ):
                return True
        return False

    def _note_evidence(self, var: str, line: int, protected: bool) -> None:
        self.evidence.setdefault(var, []).append((line, protected))

    def _visit(self, node: ast.AST, protected: bool, swallowed: bool) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            return
        if isinstance(node, ast.Try):
            swallow = swallowed or self._swallows(node)
            for stmt in node.body:
                self._visit(stmt, protected, swallow)
            for handler in node.handlers:
                for stmt in handler.body:
                    self._visit(stmt, True, swallowed)
            for stmt in node.orelse:
                self._visit(stmt, protected, swallowed)
            for stmt in node.finalbody:
                self._visit(stmt, True, swallowed)
            return
        if isinstance(node, ast.Assign):
            if len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name) \
                    and self.creating(node.value):
                self.creations.append((
                    node.targets[0].id,
                    node.value.lineno, node.value.col_offset,
                ))
                for child in ast.iter_child_nodes(node.value):
                    self._visit(child, protected, swallowed)
                return
            if isinstance(node.value, ast.Name):
                # storing the segment into a container/attribute is a
                # hand-off: something else now owns the close
                for target in node.targets:
                    if isinstance(target, (ast.Attribute, ast.Subscript)):
                        self._note_evidence(
                            node.value.id, node.lineno, protected
                        )
        elif isinstance(node, ast.Return):
            if isinstance(node.value, ast.Name):
                self._note_evidence(node.value.id, node.lineno, protected)
                return
        elif isinstance(node, ast.Expr) and isinstance(node.value, ast.Call) \
                and self.creating(node.value):
            self.creations.append((
                None, node.value.lineno, node.value.col_offset,
            ))
            for child in ast.iter_child_nodes(node.value):
                self._visit(child, protected, swallowed)
            return
        elif isinstance(node, ast.Call):
            func = node.func
            is_release = False
            if isinstance(func, ast.Attribute) \
                    and isinstance(func.value, ast.Name) \
                    and func.attr in {"close", "unlink"}:
                self._note_evidence(func.value.id, node.lineno, protected)
                is_release = True
            for arg in [*node.args, *(kw.value for kw in node.keywords)]:
                if isinstance(arg, ast.Name):
                    self._note_evidence(arg.id, node.lineno, protected)
                elif isinstance(arg, ast.Attribute) \
                        and isinstance(arg.value, ast.Name):
                    # seg.name / shm._name handed to a reaper/unregister
                    self._note_evidence(
                        arg.value.id, node.lineno, protected
                    )
            if not is_release and not self.creating(node):
                self.risky.append((node.lineno, swallowed))
        for child in ast.iter_child_nodes(node):
            self._visit(child, protected, swallowed)


def _segment_creators(graph: CallGraph) -> set[str]:
    """Functions that return a freshly created segment (wrapper fixpoint)."""
    creators: set[str] = set()
    changed = True
    while changed:
        changed = False
        for qname, info in graph.functions.items():
            if qname in creators:
                continue
            sites_at = {
                (s.line, s.col): s for s in graph.sites_of(qname)
            }

            def _creates(expr: ast.expr) -> bool:
                if not isinstance(expr, ast.Call):
                    return False
                if _is_direct_creation(expr):
                    return True
                site = sites_at.get((expr.lineno, expr.col_offset))
                return site is not None and site.kind == "internal" \
                    and site.callee in creators

            local_segments: set[str] = set()
            for node in _walk_no_nested(info.node):
                if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                        and isinstance(node.targets[0], ast.Name) \
                        and _creates(node.value):
                    local_segments.add(node.targets[0].id)
            for node in _walk_no_nested(info.node):
                if not isinstance(node, ast.Return) or node.value is None:
                    continue
                if _creates(node.value) or (
                    isinstance(node.value, ast.Name)
                    and node.value.id in local_segments
                ):
                    creators.add(qname)
                    changed = True
                    break
    return creators


class SegmentLifecycleRule(ConcurrencyRule):
    """RC004: every created segment reaches a close/unlink or hand-off."""

    rule_id = "RC004"
    summary = (
        "every SharedMemory creation must reach a close/unlink, a "
        "return, or a registered hand-off on all paths, including "
        "exception edges"
    )
    rationale = (
        "A leaked /dev/shm segment outlives the process and eats a "
        "bounded kernel resource; the engine's encode/dispatch/reap "
        "protocol only works because every segment has exactly one "
        "owner responsible for its unlink."
    )

    def check(self, graph: CallGraph, model: LockModel) -> list[Finding]:
        findings: list[Finding] = []
        creators = _segment_creators(graph)
        for qname in sorted(graph.functions):
            info = graph.functions[qname]
            if qname in creators:
                # a wrapper's whole job is returning the live segment;
                # its callers own the lifecycle
                continue
            walker = _SegWalker(graph, info, creators)
            walker.run()
            for var, line, col in walker.creations:
                if var is None:
                    findings.append(self.report(
                        info.path, line, col,
                        f"{qname} creates a SharedMemory segment without "
                        f"binding it — it can never be closed or unlinked",
                    ))
                    continue
                events = [
                    e for e in walker.evidence.get(var, ()) if e[0] >= line
                ]
                if not events:
                    findings.append(self.report(
                        info.path, line, col,
                        f"segment `{var}` created in {qname} is never "
                        f"closed, unlinked, or handed off",
                    ))
                    continue
                if any(protected for _line, protected in events):
                    continue                 # finally/handler path covers it
                first = min(evt_line for evt_line, _p in events)
                exposed = [
                    r_line for r_line, r_swallowed in walker.risky
                    if line < r_line < first and not r_swallowed
                ]
                if exposed:
                    findings.append(self.report(
                        info.path, line, col,
                        f"segment `{var}` created in {qname} may leak: "
                        f"{len(exposed)} call(s) between creation (line "
                        f"{line}) and first release/hand-off (line "
                        f"{first}) can raise — add try/finally or an "
                        f"except-path close",
                        ))
        return findings


# --------------------------------------------------------------------------
# RC005 — lock-acquisition-order cycles
# --------------------------------------------------------------------------

class LockOrderRule(ConcurrencyRule):
    """RC005: the inferred lock set must have a consistent global order."""

    rule_id = "RC005"
    summary = (
        "lock acquisition order must be globally consistent — no "
        "cycles in the holds-while-acquiring graph, no re-acquisition "
        "of a held non-reentrant lock"
    )
    rationale = (
        "Two threads taking the same two locks in opposite orders is "
        "the classic service-killing deadlock; the static order graph "
        "(checked here) and the runtime one (dynsan) must both stay "
        "acyclic."
    )

    def check(self, graph: CallGraph, model: LockModel) -> list[Finding]:
        findings: list[Finding] = []
        #: (held, acquired) -> first observation (path, line, col, text)
        edges: dict[tuple[str, str], tuple[str, int, int, str]] = {}

        def note_edge(held_id: str, acq_id: str, path: str, line: int,
                      col: int, text: str) -> None:
            edges.setdefault((held_id, acq_id), (path, line, col, text))

        for qname in sorted(graph.functions):
            info = graph.functions[qname]
            scan = model.scans[qname]
            for acq in scan.acquires:
                effective = model.effective_held(
                    qname, acq.held_before, acq.nested
                )
                for held_id in sorted(effective):
                    if held_id == acq.lock_id:
                        if model.lock_kinds.get(held_id) == "rlock":
                            continue
                        findings.append(self.report(
                            info.path, acq.line, acq.col,
                            f"{qname} re-acquires non-reentrant lock "
                            f"{held_id} it already holds — guaranteed "
                            f"deadlock",
                        ))
                    else:
                        note_edge(held_id, acq.lock_id, info.path,
                                  acq.line, acq.col, qname)
            for site in graph.sites_of(qname):
                if site.kind != "internal" \
                        or site.callee not in graph.functions:
                    continue
                held, nested = model.held_at_site(site)
                effective = model.effective_held(qname, held, nested)
                if not effective:
                    continue
                for acq_id in sorted(model.closure_acquires(site.callee)):
                    for held_id in sorted(effective):
                        if held_id == acq_id:
                            if model.lock_kinds.get(held_id) == "rlock":
                                continue
                            findings.append(self.report(
                                site.path, site.line, site.col,
                                f"{qname} holds {held_id} while calling "
                                f"{site.callee}, which re-acquires it "
                                f"(transitively) — deadlock",
                            ))
                        else:
                            note_edge(
                                held_id, acq_id, site.path, site.line,
                                site.col, f"{qname} -> {site.callee}",
                            )
        findings.extend(self._cycle_findings(edges))
        return findings

    def _cycle_findings(
        self, edges: dict[tuple[str, str], tuple[str, int, int, str]],
    ) -> list[Finding]:
        adjacency: dict[str, set[str]] = {}
        for held_id, acq_id in edges:
            adjacency.setdefault(held_id, set()).add(acq_id)
            adjacency.setdefault(acq_id, set())
        sccs = _tarjan_sccs(adjacency)
        findings: list[Finding] = []
        for scc in sccs:
            if len(scc) < 2:
                continue
            members = set(scc)
            scc_edges = sorted(
                (a, b) for (a, b) in edges
                if a in members and b in members
            )
            anchor = min(
                edges[edge][:3] for edge in scc_edges
            )
            rendered = "; ".join(
                f"{a} -> {b} (at {edges[(a, b)][0]}:{edges[(a, b)][1]}, "
                f"{edges[(a, b)][3]})"
                for a, b in scc_edges
            )
            findings.append(self.report(
                anchor[0], anchor[1], anchor[2],
                f"lock-order cycle among {{{_fmt_locks(members)}}}: "
                f"{rendered} — pick one global order",
            ))
        return findings


def _tarjan_sccs(adjacency: dict[str, set[str]]) -> list[list[str]]:
    """Iterative Tarjan strongly-connected components, stable order."""
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[list[str]] = []
    counter = [0]

    for start in sorted(adjacency):
        if start in index:
            continue
        work: list[tuple[str, Iterable[str]]] = [
            (start, iter(sorted(adjacency[start])))
        ]
        index[start] = low[start] = counter[0]
        counter[0] += 1
        stack.append(start)
        on_stack.add(start)
        while work:
            node, children = work[-1]
            advanced = False
            for child in children:
                if child not in index:
                    index[child] = low[child] = counter[0]
                    counter[0] += 1
                    stack.append(child)
                    on_stack.add(child)
                    work.append((child, iter(sorted(adjacency[child]))))
                    advanced = True
                    break
                if child in on_stack:
                    low[node] = min(low[node], index[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                component: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                sccs.append(sorted(component))
    return sccs


# --------------------------------------------------------------------------
# driver
# --------------------------------------------------------------------------

ALL_CONCURRENCY_RULES: tuple[type[ConcurrencyRule], ...] = (
    LockGuardRule,
    LockedSuffixRule,
    AsyncBlockingRule,
    SegmentLifecycleRule,
    LockOrderRule,
)


def get_concurrency_rules(
    ids: Iterable[str] | None = None,
) -> list[type[ConcurrencyRule]]:
    if ids is None:
        return list(ALL_CONCURRENCY_RULES)
    wanted = {i.upper() for i in ids}
    known = {r.rule_id for r in ALL_CONCURRENCY_RULES}
    unknown = wanted - known
    if unknown:
        raise ValueError(
            f"unknown concurrency rule id(s): {', '.join(sorted(unknown))}"
        )
    return [r for r in ALL_CONCURRENCY_RULES if r.rule_id in wanted]


def concurrency_rule_catalogue() -> list[dict[str, str]]:
    return [
        {
            "rule": rule.rule_id,
            "severity": rule.severity.value,
            "summary": rule.summary,
            "rationale": rule.rationale,
        }
        for rule in ALL_CONCURRENCY_RULES
    ]


@dataclass
class ConcurrencyReport:
    """Outcome of one concurrency pass: findings + lock-model stats."""

    result: LintResult
    stats: dict[str, object] = field(default_factory=dict)


def run_concurrency_rules(
    graph: CallGraph,
    rules: Sequence[type[ConcurrencyRule]] = ALL_CONCURRENCY_RULES,
    model: LockModel | None = None,
) -> list[Finding]:
    if model is None:
        model = build_lock_model(graph)
    findings: list[Finding] = []
    for rule_cls in rules:
        findings.extend(rule_cls().check(graph, model))
    return findings


def lint_concurrency(
    paths: Iterable[str],
    rules: Sequence[type[ConcurrencyRule]] = ALL_CONCURRENCY_RULES,
    graph: CallGraph | None = None,
) -> ConcurrencyReport:
    """Build the call graph over ``paths`` and run the RC rules.

    Suppressions apply at the line each finding lands on, with the same
    ``# staticcheck: ignore[RCxxx]`` markers as every other pass.
    """
    if graph is None:
        graph = build_call_graph(paths)
    model = build_lock_model(graph)
    result = LintResult(n_files=len(graph.modules))
    suppression_cache: dict[str, object] = {}
    for finding in run_concurrency_rules(graph, rules, model=model):
        suppressions = suppression_cache.get(finding.path)
        if suppressions is None:
            mod = graph.module_of_path(finding.path)
            source = mod.source if mod is not None else ""
            suppressions = parse_suppressions(source)
            suppression_cache[finding.path] = suppressions
        if suppressions.silences(finding.line, finding.rule_id):
            result.suppressed.append(finding)
        else:
            result.findings.append(finding)
    result.findings.sort(key=Finding.sort_key)
    result.suppressed.sort(key=Finding.sort_key)
    stats = dict(graph.resolution_stats())
    stats["concurrency"] = model.stats()
    return ConcurrencyReport(result=result, stats=stats)
