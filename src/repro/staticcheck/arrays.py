"""Array-program analysis: shape/dtype abstract interpreter + RA rules.

The repo's two standing contracts — bit-identity between scalar/batch
paths and the throughput target — live in numpy array programs.  This
pass interprets every analyzed function over a small abstract domain
and lints what the RS/RF/RC families cannot see: silent dtype drift,
provably incompatible shapes, hidden copies, python-level element
loops, loop-invariant allocation, and expensive array work under a
held lock.

Abstract domain
---------------
An :class:`AV` (abstract value) is one of ``array`` / ``int`` /
``float`` / ``bool`` / ``str`` / ``list`` / ``unknown``.  Arrays carry
a *symbolic shape* — a tuple of dimensions that are int literals,
symbols (``"n"``, ``"self._dim"``, ``"len(xs)"``), or the unknown dim
``"?"`` — plus a canonical numpy dtype name and a contiguity bit
(cleared by ``.T`` / ``transpose`` / step slices).  ``None`` as a shape
means unknown rank.

Soundness: the interpreter is **optimistic about the unknown** — a rule
only fires on *provable* facts (two unequal int dims, a dtype literally
spelled ``float32``, a call the lock scanner saw under a held lock).
Unresolved calls, dynamic shapes, ``self`` attributes, and nested defs
all degrade to ``unknown`` and fire nothing, so a clean ``--arrays``
run means "clean over what the interpreter could see", not a proof —
the same caveat the flow pass documents.

The perf rules (RA003/RA004/RA005) apply only to *hot* functions: the
closure of the declarative :mod:`repro.staticcheck.hotpaths` table over
resolved call edges.  Files outside the ``repro`` package tree are
entirely hot (fixture semantics, mirroring per-file rule scopes).
Suppressions use the same ``# staticcheck: ignore[RAxxx]`` markers as
every other pass, applied at the line the finding lands on.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from itertools import zip_longest
from pathlib import Path
from typing import ClassVar, Iterable, Sequence

from .concurrency import build_lock_model
from .graph import CallGraph, FunctionInfo, build_call_graph
from .hotpaths import resolve_hot_functions
from .model import Finding, LintResult, Severity, parse_suppressions
from .runner import _in_repro_package

__all__ = [
    "AV",
    "ArrayRule",
    "ArrayAnalysis",
    "ArraysReport",
    "ALL_ARRAY_RULES",
    "get_array_rules",
    "array_rule_catalogue",
    "run_array_rules",
    "lint_arrays",
]

try:                                     # numpy drives dtype promotion;
    import numpy as _np                  # degrade to "unknown" without it
except Exception:                        # pragma: no cover - baked into CI
    _np = None                           # type: ignore[assignment]

#: the unknown dimension: never equal to, never in conflict with, anything
UNKNOWN_DIM = "?"

#: modules bound by the scalar/batch bit-identity contract (RA001 scope);
#: extends the RS004 float-equality set with the numeric kernels the
#: contract's arrays actually flow through
BIT_IDENTITY_SCOPE: tuple[str, ...] = (
    "simulator.py", "costmodel.py", "scheduler.py", "rngpool.py",
    "gp.py", "additive_gp.py", "kernels.py", "simindex.py",
    "similarity.py", "shm.py",
)

# --------------------------------------------------------------------------
# abstract values
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class AV:
    """One abstract value: a kind, and for arrays a shape/dtype/contiguity.

    Scalar kinds may carry an explicit numpy ``dtype`` (``np.float32(x)``
    is a *strong* float32 scalar, a bare python float a *weak* one) —
    the distinction NEP 50 promotion needs.
    """

    kind: str = "unknown"
    shape: tuple | None = None
    dtype: str | None = None
    contiguous: bool = True


UNKNOWN = AV()
INT = AV("int")
FLOAT = AV("float")
BOOL = AV("bool")
STR = AV("str")
LIST = AV("list")


def _arr(shape: tuple | None, dtype: str | None,
         contiguous: bool = True) -> AV:
    return AV("array", shape, dtype, contiguous)


def _fmt_shape(shape: tuple | None) -> str:
    if shape is None:
        return "(?)"
    if len(shape) == 1:
        return f"({shape[0]},)"
    return "(" + ", ".join(str(d) for d in shape) + ")"


def _fmt_dtype(dtype: str | None) -> str:
    return dtype if dtype is not None else "?"


# --------------------------------------------------------------------------
# dtype lattice
# --------------------------------------------------------------------------

#: numpy spellings whose width depends on the platform's C types
_PLATFORM_DTYPES = frozenset({
    "int_", "intc", "uint", "long", "ulong", "longlong", "ulonglong",
})

#: spellings that narrow the float64 bit-identity contract
_NARROW_FLOATS = frozenset({"float32", "float16", "single", "half"})

_DTYPE_CANON = {
    "single": "float32", "half": "float16", "double": "float64",
    "float_": "float64", "bool_": "bool", "int_": "int64",
    "intc": "int32", "long": "int64", "longlong": "int64",
    "intp": "int64", "byte": "int8", "short": "int16",
}

_FLOAT_WIDTH = {"float16": 2, "float32": 4, "float64": 8}


def _is_int_dtype(dtype: str | None) -> bool:
    return dtype is not None and (dtype.startswith("int")
                                  or dtype.startswith("uint"))


def _is_float_dtype(dtype: str | None) -> bool:
    return dtype is not None and dtype.startswith("float")


def _promote(a: str | None, b: str | None) -> str | None:
    """numpy's own result_type over canonical names; unknown degrades."""
    if a is None or b is None or _np is None:
        return None
    try:
        return _np.result_type(a, b).name
    except Exception:
        return None


def _effective_dtype(av: AV) -> str | None:
    """Operand dtype for promotion: strong dtypes pass through, weak
    python scalars resolve against the other operand (see _pair_dtype)."""
    if av.kind == "array" or av.dtype is not None:
        return av.dtype
    return {"int": "weak-int", "float": "weak-float",
            "bool": "weak-bool"}.get(av.kind)


def _pair_dtype(da: str | None, db: str | None) -> str | None:
    """NEP-50-style promotion of two effective dtypes."""
    weak = {"weak-int", "weak-float", "weak-bool"}
    if da in weak and db in weak:
        return None                      # scalar-scalar: nothing to pin
    if da in weak:
        da, db = db, da
    if db in weak:
        if db == "weak-float" and not _is_float_dtype(da):
            return "float64" if da is not None else None
        return da
    return _promote(da, db)


# --------------------------------------------------------------------------
# symbolic shapes
# --------------------------------------------------------------------------


def _dims_broadcast(d1, d2):
    """One broadcast step: (result dim, conflict pair or None)."""
    if d1 == 1:
        return d2, None
    if d2 == 1:
        return d1, None
    if isinstance(d1, int) and isinstance(d2, int):
        if d1 == d2:
            return d1, None
        return UNKNOWN_DIM, (d1, d2)
    if d1 == d2 and d1 != UNKNOWN_DIM:
        return d1, None                  # same symbol
    return UNKNOWN_DIM, None             # symbol vs anything: unknowable


def _broadcast(s1: tuple | None, s2: tuple | None):
    """Broadcast two symbolic shapes: (shape, conflict pair or None)."""
    if s1 is None or s2 is None:
        return None, None
    out: list = []
    conflict = None
    for d1, d2 in zip_longest(reversed(s1), reversed(s2), fillvalue=1):
        dim, bad = _dims_broadcast(d1, d2)
        out.append(dim)
        if bad is not None and conflict is None:
            conflict = bad
    return tuple(reversed(out)), conflict


def _inner_conflict(x, y):
    """Matmul inner dims must match exactly (no broadcast-to-1)."""
    if isinstance(x, int) and isinstance(y, int) and x != y:
        return (x, y)
    return None


def _matmul_shape(sa: tuple | None, sb: tuple | None):
    """(result shape, inner-dim conflict or None) for ``a @ b``."""
    if sa is None or sb is None or not sa or not sb:
        return None, None
    if len(sa) == 1 and len(sb) == 1:
        return (), _inner_conflict(sa[0], sb[0])
    if len(sa) == 2 and len(sb) == 1:
        return (sa[0],), _inner_conflict(sa[1], sb[0])
    if len(sa) == 1 and len(sb) == 2:
        return (sb[1],), _inner_conflict(sa[0], sb[0])
    if len(sa) == 2 and len(sb) == 2:
        return (sa[0], sb[1]), _inner_conflict(sa[1], sb[0])
    return None, None                    # stacked matmul: out of subset


def _merge_dims(a, b):
    if a == b:
        return a
    return UNKNOWN_DIM


def _merge(a: AV, b: AV) -> AV:
    """Join of two abstract values (branch/loop merge)."""
    if a == b:
        return a
    if a.kind != b.kind:
        return UNKNOWN
    if a.kind == "array":
        if a.shape is None or b.shape is None or len(a.shape) != len(b.shape):
            shape = None
        else:
            shape = tuple(_merge_dims(x, y)
                          for x, y in zip(a.shape, b.shape))
        dtype = a.dtype if a.dtype == b.dtype else None
        return _arr(shape, dtype, a.contiguous and b.contiguous)
    dtype = a.dtype if a.dtype == b.dtype else None
    return AV(a.kind, None, dtype)


# --------------------------------------------------------------------------
# facts
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Fact:
    """One interpreter observation, pre-rendered for the report."""

    kind: str
    qname: str
    path: str
    line: int
    col: int
    detail: str


#: numpy callables that allocate (RA005's loop-invariant check)
_CONSTRUCTORS = frozenset({
    "zeros", "ones", "empty", "full", "zeros_like", "ones_like",
    "empty_like", "full_like", "arange", "linspace", "eye", "identity",
})

#: numpy callables that build a fresh array from parts (RA005 growth)
_GROWERS = frozenset({"concatenate", "append", "vstack", "hstack", "stack"})

_ELEMENTWISE = frozenset({
    "sqrt", "exp", "log", "log2", "log10", "abs", "absolute", "sign",
    "floor", "ceil", "round", "tanh", "exp2", "square", "reciprocal",
    "add", "subtract", "multiply", "divide", "true_divide",
    "floor_divide", "power", "mod", "maximum", "minimum", "clip",
    "logical_and", "logical_or", "logical_not", "isnan", "isfinite",
    "isinf",
})

_FLOAT_FUNCS = frozenset({
    "sqrt", "exp", "log", "log2", "log10", "tanh", "exp2", "reciprocal",
})

_BOOL_FUNCS = frozenset({
    "logical_and", "logical_or", "logical_not", "isnan", "isfinite",
    "isinf",
})

_REDUCTIONS = frozenset({
    "sum", "mean", "prod", "min", "max", "amin", "amax", "std", "var",
    "median", "all", "any", "argmin", "argmax", "count_nonzero",
})

_METHOD_REDUCTIONS = frozenset({
    "sum", "mean", "prod", "min", "max", "std", "var", "all", "any",
    "argmin", "argmax",
})

_SAME_SHAPE_FUNCS = frozenset({"sort", "argsort", "partition",
                               "argpartition", "cumsum", "cumprod"})


# --------------------------------------------------------------------------
# the interpreter
# --------------------------------------------------------------------------


class _Interp:
    """One function's abstract execution; appends to ``analysis.facts``."""

    def __init__(self, analysis: "ArrayAnalysis", info: FunctionInfo):
        self.analysis = analysis
        self.graph = analysis.graph
        self.info = info
        self.mod = analysis.graph.modules.get(info.module)
        self.env: dict[str, AV] = {}
        #: stack of per-loop assigned-name sets (loop-variance)
        self._loops: list[set[str]] = []
        #: local list names `.append`ed to inside a loop
        self._loop_appended: set[str] = set()
        self._returns: list[AV] = []
        self._site_map = {
            (s.line, s.col): s for s in analysis.graph.sites_of(info.qname)
        }

    # -- plumbing ----------------------------------------------------------
    def _fact(self, kind: str, node: ast.AST, detail: str) -> None:
        self.analysis.facts.append(Fact(
            kind=kind, qname=self.info.qname, path=self.info.path,
            line=node.lineno, col=node.col_offset, detail=detail,
        ))

    def _numpy_name(self, expr: ast.expr) -> str | None:
        """Absolute dotted numpy name of ``expr`` via module imports."""
        if self.mod is None:
            return None
        parts: list[str] = []
        node = expr
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.mod.imports.get(node.id)
        if root is None:
            return None
        full = ".".join([root, *reversed(parts)])
        if full == "numpy" or full.startswith("numpy."):
            return full
        return None

    def _sym(self, expr: ast.expr):
        """A dimension: int literal, readable symbol, or UNKNOWN_DIM."""
        if isinstance(expr, ast.Constant) and isinstance(expr.value, int) \
                and not isinstance(expr.value, bool):
            return expr.value
        if isinstance(expr, ast.UnaryOp) and isinstance(expr.op, ast.USub) \
                and isinstance(expr.operand, ast.Constant) \
                and isinstance(expr.operand.value, int):
            return -expr.operand.value
        if isinstance(expr, ast.Name):
            return expr.id
        if isinstance(expr, ast.Attribute):
            parts: list[str] = []
            node: ast.expr = expr
            while isinstance(node, ast.Attribute):
                parts.append(node.attr)
                node = node.value
            if isinstance(node, ast.Name) and len(parts) <= 2:
                parts.append(node.id)
                return ".".join(reversed(parts))
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name) \
                and expr.func.id == "len" and len(expr.args) == 1:
            inner = self._sym(expr.args[0])
            if isinstance(inner, str) and inner != UNKNOWN_DIM:
                return f"len({inner})"
        return UNKNOWN_DIM

    def _shape_from_arg(self, expr: ast.expr) -> tuple | None:
        """Shape of a constructor's shape argument."""
        if isinstance(expr, (ast.Tuple, ast.List)):
            return tuple(self._sym(el) for el in expr.elts)
        return (self._sym(expr),)

    def _parse_dtype(self, expr: ast.expr | None,
                     node: ast.AST | None = None):
        """(canonical dtype, spelling); emits RA001 facts when asked."""
        if expr is None:
            return None, None
        name: str | None = None
        if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
            name = expr.value
        elif isinstance(expr, ast.Name) and expr.id in (
                "int", "float", "bool", "complex"):
            name = {"int": "int64", "float": "float64", "bool": "bool",
                    "complex": "complex128"}[expr.id]
            return name, expr.id
        else:
            full = self._numpy_name(expr)
            if full is not None and full.startswith("numpy."):
                name = full[len("numpy."):]
        if name is None:
            return None, None
        canon = _DTYPE_CANON.get(name, name)
        if node is not None:
            if name in _NARROW_FLOATS or canon in ("float32", "float16"):
                self._fact(
                    "narrow-float-dtype", node,
                    f"dtype {name!r} narrows the float64 bit-identity "
                    f"contract; use float64 (or waive with a reason)")
            elif name in _PLATFORM_DTYPES:
                self._fact(
                    "platform-dtype", node,
                    f"platform-dependent dtype {name!r} (C-type width "
                    f"varies across platforms); pin an explicit width "
                    f"like int64")
        return canon, name

    def _loop_variant(self) -> set[str]:
        out: set[str] = set()
        for names in self._loops:
            out |= names
        return out

    def _bind(self, name: str, av: AV) -> None:
        self.env[name] = av
        for names in self._loops:
            names.add(name)

    def _bind_target(self, target: ast.expr, av: AV) -> None:
        if isinstance(target, ast.Name):
            self._bind(target.id, av)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for el in target.elts:
                self._bind_target(el, UNKNOWN)
        # attribute/subscript targets: out of the local domain

    # -- entry -------------------------------------------------------------
    def run(self) -> AV:
        for arg in self._all_params():
            self.env[arg.arg] = self._param_av(arg)
        self._exec_block(self.info.node.body)
        summary = UNKNOWN
        if self._returns:
            summary = self._returns[0]
            for av in self._returns[1:]:
                summary = _merge(summary, av)
        return summary

    def _all_params(self) -> list[ast.arg]:
        a = self.info.node.args
        return [*a.posonlyargs, *a.args, *a.kwonlyargs]

    def _param_av(self, arg: ast.arg) -> AV:
        ann = arg.annotation
        if ann is None:
            return UNKNOWN
        if isinstance(ann, ast.Name):
            return {"int": INT, "float": FLOAT, "bool": BOOL,
                    "str": STR, "list": LIST}.get(ann.id, UNKNOWN)
        if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
            if ann.value.endswith("ndarray"):
                return _arr(None, None)
            return UNKNOWN
        if self._numpy_name(ann) == "numpy.ndarray":
            return _arr(None, None)
        return UNKNOWN

    # -- statements --------------------------------------------------------
    def _exec_block(self, stmts: Sequence[ast.stmt]) -> None:
        for stmt in stmts:
            self._exec(stmt)

    def _exec(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            av = self._eval(stmt.value)
            self._check_growth(stmt, av)
            for target in stmt.targets:
                self._bind_target(target, av)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                av = self._eval(stmt.value)
            else:
                av = self._param_av(ast.arg(arg="_", annotation=stmt.annotation))
            if isinstance(stmt.target, ast.Name):
                self._bind(stmt.target.id, av)
        elif isinstance(stmt, ast.AugAssign):
            value = self._eval(stmt.value)
            if isinstance(stmt.target, ast.Name):
                current = self.env.get(stmt.target.id, UNKNOWN)
                self._bind(stmt.target.id,
                           self._binop_av(stmt, stmt.op, current, value))
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._returns.append(self._eval(stmt.value))
            else:
                self._returns.append(AV("none"))
        elif isinstance(stmt, ast.If):
            self._eval(stmt.test)
            self._exec_branches([stmt.body, stmt.orelse])
        elif isinstance(stmt, ast.For):
            self._exec_for(stmt)
        elif isinstance(stmt, ast.While):
            self._eval(stmt.test)
            self._exec_loop_body(stmt.body, loop_names=set())
            self._exec_block(stmt.orelse)
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                self._eval(item.context_expr)
                if item.optional_vars is not None:
                    self._bind_target(item.optional_vars, UNKNOWN)
            self._exec_block(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._exec_branches(
                [stmt.body]
                + [h.body for h in stmt.handlers]
            )
            self._exec_block(stmt.orelse)
            self._exec_block(stmt.finalbody)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            pass                         # nested defs: out of the domain
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._eval(child)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    self.env.pop(target.id, None)
        # pass/break/continue/import/global: nothing to do

    def _exec_branches(self, branches: list[list[ast.stmt]]) -> None:
        base = dict(self.env)
        outcomes: list[dict[str, AV]] = []
        for body in branches:
            self.env = dict(base)
            self._exec_block(body)
            outcomes.append(self.env)
        merged = dict(outcomes[0])
        for env in outcomes[1:]:
            for name in set(merged) | set(env):
                merged[name] = _merge(merged.get(name, UNKNOWN),
                                      env.get(name, UNKNOWN))
        self.env = merged

    def _exec_for(self, stmt: ast.For) -> None:
        iter_av = self._eval(stmt.iter)
        element = UNKNOWN
        if iter_av.kind == "array":
            self._fact(
                "iter-ndarray", stmt,
                f"python-level loop over ndarray of shape "
                f"{_fmt_shape(iter_av.shape)} dtype "
                f"{_fmt_dtype(iter_av.dtype)}; vectorize the body")
            element = self._element_of(iter_av)
        loop_names: set[str] = set()
        self._collect_names(stmt.target, loop_names)
        self._bind_target(stmt.target, element)
        self._exec_loop_body(stmt.body, loop_names)
        self._exec_block(stmt.orelse)

    def _exec_loop_body(self, body: list[ast.stmt],
                        loop_names: set[str]) -> None:
        before = dict(self.env)
        self._loops.append(set(loop_names))
        self._exec_block(body)
        assigned = self._loops.pop()
        for name in assigned:
            self.env[name] = _merge(before.get(name, UNKNOWN),
                                    self.env.get(name, UNKNOWN))

    @staticmethod
    def _collect_names(target: ast.expr, out: set[str]) -> None:
        for node in ast.walk(target):
            if isinstance(node, ast.Name):
                out.add(node.id)

    def _element_of(self, av: AV) -> AV:
        if av.shape is None:
            return UNKNOWN               # unknown rank: could be scalar
        if len(av.shape) == 1:
            if _is_float_dtype(av.dtype):
                return AV("float", None, av.dtype)
            if _is_int_dtype(av.dtype):
                return AV("int", None, av.dtype)
            if av.dtype == "bool":
                return AV("bool", None, av.dtype)
            return UNKNOWN
        return _arr(av.shape[1:], av.dtype)

    def _check_growth(self, stmt: ast.Assign, value_av: AV) -> None:
        """``acc = np.concatenate([acc, ...])`` inside a loop (RA005)."""
        if not self._loops or not isinstance(stmt.value, ast.Call):
            return
        full = self._numpy_name(stmt.value.func)
        if full is None or full[len("numpy."):] not in _GROWERS:
            return
        targets = {t.id for t in stmt.targets if isinstance(t, ast.Name)}
        if not targets:
            return
        arg_names = {
            n.id for a in stmt.value.args for n in ast.walk(a)
            if isinstance(n, ast.Name)
        }
        grown = sorted(targets & arg_names)
        if grown:
            self._fact(
                "concat-growth", stmt.value,
                f"{full.split('.')[-1]} onto its own accumulator "
                f"{grown[0]!r} inside a loop grows quadratically; "
                f"preallocate or collect parts and concatenate once")

    # -- expressions -------------------------------------------------------
    def _eval(self, expr: ast.expr) -> AV:
        if isinstance(expr, ast.Constant):
            v = expr.value
            if isinstance(v, bool):
                return BOOL
            if isinstance(v, int):
                return INT
            if isinstance(v, float):
                return FLOAT
            if isinstance(v, str):
                return STR
            return UNKNOWN
        if isinstance(expr, ast.Name):
            return self.env.get(expr.id, UNKNOWN)
        if isinstance(expr, ast.BinOp):
            left = self._eval(expr.left)
            right = self._eval(expr.right)
            return self._binop_av(expr, expr.op, left, right)
        if isinstance(expr, ast.UnaryOp):
            inner = self._eval(expr.operand)
            if isinstance(expr.op, ast.Not):
                return BOOL
            return inner
        if isinstance(expr, ast.BoolOp):
            for v in expr.values:
                self._eval(v)
            return UNKNOWN
        if isinstance(expr, ast.Compare):
            return self._eval_compare(expr)
        if isinstance(expr, ast.Call):
            return self._eval_call(expr)
        if isinstance(expr, ast.Attribute):
            return self._eval_attribute(expr)
        if isinstance(expr, ast.Subscript):
            return self._eval_subscript(expr)
        if isinstance(expr, ast.IfExp):
            self._eval(expr.test)
            return _merge(self._eval(expr.body), self._eval(expr.orelse))
        if isinstance(expr, (ast.List, ast.Tuple, ast.Set)):
            for el in expr.elts:
                self._eval(el)
            return LIST if isinstance(expr, ast.List) else UNKNOWN
        if isinstance(expr, ast.Dict):
            for v in expr.values:
                if v is not None:
                    self._eval(v)
            return UNKNOWN
        if isinstance(expr, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            return self._eval_comprehension(expr)
        if isinstance(expr, ast.Starred):
            return self._eval(expr.value)
        if isinstance(expr, ast.JoinedStr):
            return STR
        if isinstance(expr, ast.Lambda):
            return UNKNOWN
        return UNKNOWN

    def _eval_comprehension(self, expr) -> AV:
        for gen in expr.generators:
            iter_av = self._eval(gen.iter)
            if iter_av.kind == "array":
                self._fact(
                    "comprehension-over-ndarray", expr,
                    f"comprehension over ndarray of shape "
                    f"{_fmt_shape(iter_av.shape)} dtype "
                    f"{_fmt_dtype(iter_av.dtype)} makes a python-level "
                    f"element loop; vectorize")
            self._bind_target(gen.target, UNKNOWN)
            for cond in gen.ifs:
                self._eval(cond)
        if isinstance(expr, ast.GeneratorExp):
            return UNKNOWN
        self._eval(expr.elt)
        return LIST

    def _eval_compare(self, expr: ast.Compare) -> AV:
        avs = [self._eval(expr.left)] + [self._eval(c)
                                         for c in expr.comparators]
        shape: tuple | None = ()
        is_array = False
        for prev, cur in zip(avs, avs[1:]):
            if prev.kind == "array" or cur.kind == "array":
                is_array = True
                sa = prev.shape if prev.kind == "array" else ()
                sb = cur.shape if cur.kind == "array" else ()
                shape, conflict = _broadcast(
                    shape if shape is not None else None, sa)
                shape, conflict2 = _broadcast(
                    shape if shape is not None else None, sb)
                bad = conflict or conflict2
                if bad is not None:
                    self._fact(
                        "broadcast-mismatch", expr,
                        f"comparison of incompatible shapes "
                        f"{_fmt_shape(prev.shape)} and "
                        f"{_fmt_shape(cur.shape)}: dimension "
                        f"{bad[0]} vs {bad[1]} cannot broadcast")
        if is_array:
            return _arr(shape, "bool")
        return BOOL

    def _binop_av(self, node: ast.AST, op: ast.operator,
                  left: AV, right: AV) -> AV:
        if isinstance(op, ast.MatMult):
            return self._matmul_av(node, left, right)
        arrays = [v for v in (left, right) if v.kind == "array"]
        da, db = _effective_dtype(left), _effective_dtype(right)
        if not arrays:
            if left.kind == right.kind and left.kind in (
                    "int", "float", "str"):
                if isinstance(op, ast.Div):
                    return FLOAT
                return AV(left.kind)
            if {left.kind, right.kind} <= {"int", "float", "bool"}:
                return FLOAT if "float" in (left.kind, right.kind) else INT
            return UNKNOWN
        sa = left.shape if left.kind == "array" else ()
        sb = right.shape if right.kind == "array" else ()
        shape, conflict = _broadcast(sa, sb)
        if conflict is not None:
            self._fact(
                "broadcast-mismatch", node,
                f"operands of incompatible shapes {_fmt_shape(left.shape)} "
                f"and {_fmt_shape(right.shape)}: dimension {conflict[0]} "
                f"vs {conflict[1]} cannot broadcast")
        if _is_float_dtype(da) and _is_float_dtype(db) and da != db:
            self._fact(
                "mixed-float-op", node,
                f"mixed-precision operation ({da} with {db}) promotes "
                f"silently to {_pair_dtype(da, db) or '?'}; cast one "
                f"operand explicitly")
        dtype = _pair_dtype(da, db)
        if isinstance(op, ast.Div):
            int_a = _is_int_dtype(da) or da == "weak-int"
            int_b = _is_int_dtype(db) or db == "weak-int"
            if (_is_int_dtype(da) or _is_int_dtype(db)) and int_a and int_b:
                self._fact(
                    "int-truediv", node,
                    f"true division of integer operands "
                    f"({_fmt_dtype(da)} / {_fmt_dtype(db)}) yields "
                    f"float64 implicitly; make the cast explicit")
            if dtype is not None and not _is_float_dtype(dtype):
                dtype = "float64"
        return _arr(shape, dtype)

    def _matmul_av(self, node: ast.AST, left: AV, right: AV) -> AV:
        if left.kind != "array" and right.kind != "array":
            return UNKNOWN
        if left.kind == "array" and right.kind == "array":
            if not left.contiguous or not right.contiguous:
                side = "left" if not left.contiguous else "right"
                self._fact(
                    "noncontig-matmul", node,
                    f"{side} matmul operand is a non-contiguous view "
                    f"(transpose/strided slice); BLAS pack-copies it on "
                    f"every call — pre-copy it once instead")
        sa = left.shape if left.kind == "array" else None
        sb = right.shape if right.kind == "array" else None
        shape, conflict = _matmul_shape(sa, sb)
        if conflict is not None:
            self._fact(
                "matmul-mismatch", node,
                f"matmul of {_fmt_shape(sa)} @ {_fmt_shape(sb)}: inner "
                f"dimensions {conflict[0]} and {conflict[1]} differ")
        dtype = _pair_dtype(_effective_dtype(left), _effective_dtype(right))
        if shape == ():
            return AV("float" if _is_float_dtype(dtype) else "unknown",
                      None, dtype)
        return _arr(shape, dtype)

    # -- attribute / subscript --------------------------------------------
    def _eval_attribute(self, expr: ast.Attribute) -> AV:
        base = self._eval(expr.value)
        if base.kind == "array":
            if expr.attr == "T":
                shape = tuple(reversed(base.shape)) \
                    if base.shape is not None else None
                return _arr(shape, base.dtype, contiguous=False)
            if expr.attr in ("size", "ndim", "itemsize", "nbytes"):
                return INT
        return UNKNOWN

    def _eval_subscript(self, expr: ast.Subscript) -> AV:
        base = self._eval(expr.value)
        idx = expr.slice
        if base.kind != "array":
            self._eval_index(idx)
            return UNKNOWN
        if self._is_fancy_index(idx):
            idx_av = self._eval_index(idx)
            if self._loops:
                self._fact(
                    "fancy-index-loop", expr,
                    f"fancy indexing into shape {_fmt_shape(base.shape)} "
                    f"copies on every loop iteration; hoist the gather "
                    f"out of the loop")
            if idx_av.kind == "array" and idx_av.dtype == "bool":
                return _arr((UNKNOWN_DIM,), base.dtype)
            return _arr(None, base.dtype)
        self._eval_index(idx)
        return self._sliced(base, idx)

    def _eval_index(self, idx: ast.expr) -> AV:
        if isinstance(idx, ast.Slice):
            for part in (idx.lower, idx.upper, idx.step):
                if part is not None:
                    self._eval(part)
            return UNKNOWN
        if isinstance(idx, ast.Tuple):
            for el in idx.elts:
                self._eval_index(el)
            return UNKNOWN
        return self._eval(idx)

    def _is_fancy_index(self, idx: ast.expr) -> bool:
        if isinstance(idx, ast.List):
            return True
        if isinstance(idx, ast.Tuple):
            return any(self._is_fancy_index(el) for el in idx.elts)
        if isinstance(idx, ast.Slice) or (
                isinstance(idx, ast.Constant)):
            return False
        if isinstance(idx, (ast.Name, ast.Attribute, ast.Call,
                            ast.Subscript)):
            av = self._eval(idx)
            return av.kind in ("array", "list")
        return False

    def _sliced(self, base: AV, idx: ast.expr) -> AV:
        if base.shape is None:
            return _arr(None, base.dtype, base.contiguous)
        parts = list(idx.elts) if isinstance(idx, ast.Tuple) else [idx]
        dims = list(base.shape)
        out: list = []
        contiguous = base.contiguous
        i = 0
        for part in parts:
            if isinstance(part, ast.Constant) and part.value is None:
                out.append(1)
                continue
            if isinstance(part, ast.Constant) and part.value is Ellipsis:
                remaining = len(dims) - i - sum(
                    1 for p in parts[parts.index(part) + 1:]
                    if not (isinstance(p, ast.Constant)
                            and p.value in (None, Ellipsis)))
                while i < remaining:
                    out.append(dims[i])
                    i += 1
                continue
            if i >= len(dims):
                return _arr(None, base.dtype)
            if isinstance(part, ast.Slice):
                if part.lower is None and part.upper is None \
                        and part.step is None:
                    out.append(dims[i])
                else:
                    out.append(UNKNOWN_DIM)
                    if part.step is not None:
                        contiguous = False
                i += 1
            else:
                i += 1                   # int index: dim dropped
        out.extend(dims[i:])
        if not out:
            return self._element_of(_arr((1,), base.dtype)) \
                if len(base.shape) == len(parts) else _arr((), base.dtype)
        return _arr(tuple(out), base.dtype, contiguous)

    # -- calls -------------------------------------------------------------
    def _eval_call(self, node: ast.Call) -> AV:
        func = node.func
        # numpy API by absolute name
        full = self._numpy_name(func)
        if full is not None:
            return self._eval_numpy_call(node, full)
        # builtins
        if isinstance(func, ast.Name):
            for arg in node.args:
                self._eval(arg)
            for kw in node.keywords:
                self._eval(kw.value)
            if func.id == "len":
                return INT
            if func.id in ("int", "round"):
                return INT
            if func.id == "float":
                return FLOAT
            if func.id == "bool":
                return BOOL
            if func.id == "str":
                return STR
            if func.id in ("list", "sorted"):
                return LIST
            return self._internal_summary(node)
        # method call on an evaluated receiver
        if isinstance(func, ast.Attribute):
            base = self._eval(func.value)
            if base.kind == "array":
                return self._eval_array_method(node, base, func.attr)
            if base.kind == "list":
                if func.attr in ("append", "extend") and self._loops \
                        and isinstance(func.value, ast.Name):
                    self._loop_appended.add(func.value.id)
                for arg in node.args:
                    self._eval(arg)
                return UNKNOWN
            for arg in node.args:
                self._eval(arg)
            for kw in node.keywords:
                self._eval(kw.value)
            return self._internal_summary(node)
        self._eval(func)
        for arg in node.args:
            self._eval(arg)
        return UNKNOWN

    def _internal_summary(self, node: ast.Call) -> AV:
        site = self._site_map.get((node.lineno, node.col_offset))
        if site is not None and site.kind == "internal" \
                and site.callee is not None:
            return self.analysis.summary(site.callee)
        return UNKNOWN

    def _kw(self, node: ast.Call, name: str) -> ast.expr | None:
        for kw in node.keywords:
            if kw.arg == name:
                return kw.value
        return None

    def _axis_of(self, node: ast.Call, pos: int | None):
        """(axis int or None, keepdims bool) from kwargs/positionals."""
        axis_expr = self._kw(node, "axis")
        if axis_expr is None and pos is not None and len(node.args) > pos:
            axis_expr = node.args[pos]
        keep_expr = self._kw(node, "keepdims")
        keepdims = isinstance(keep_expr, ast.Constant) \
            and keep_expr.value is True
        if isinstance(axis_expr, ast.Constant) \
                and isinstance(axis_expr.value, int) \
                and not isinstance(axis_expr.value, bool):
            return axis_expr.value, keepdims
        if axis_expr is None:
            return None, keepdims
        return UNKNOWN_DIM, keepdims     # dynamic axis: unknown

    def _reduce_av(self, node: ast.Call, base: AV, fname: str,
                   axis, keepdims: bool) -> AV:
        dtype = base.dtype
        if fname in ("mean", "std", "var", "median"):
            dtype = dtype if _is_float_dtype(dtype) else (
                "float64" if dtype is not None else None)
        if fname in ("argmin", "argmax"):
            dtype = "int64"
        if fname in ("all", "any"):
            dtype = "bool"
        if axis is None:
            if fname == "count_nonzero":
                return INT
            if _is_float_dtype(dtype):
                return AV("float", None, dtype)
            if _is_int_dtype(dtype):
                return AV("int", None, dtype)
            if dtype == "bool":
                return AV("bool", None, dtype)
            return UNKNOWN
        if base.shape is None or axis == UNKNOWN_DIM:
            return _arr(None, dtype)
        rank = len(base.shape)
        if isinstance(axis, int) and (axis >= rank or axis < -rank):
            self._fact(
                "axis-out-of-rank", node,
                f"axis={axis} out of range for inferred shape "
                f"{_fmt_shape(base.shape)} (rank {rank})")
            return _arr(None, dtype)
        index = axis % rank if isinstance(axis, int) else 0
        dims = list(base.shape)
        if keepdims:
            dims[index] = 1
        else:
            dims.pop(index)
        return _arr(tuple(dims), dtype)

    def _eval_array_method(self, node: ast.Call, base: AV,
                           method: str) -> AV:
        for arg in node.args:
            if not isinstance(arg, (ast.Constant,)):
                self._eval(arg)
        for kw in node.keywords:
            self._eval(kw.value)
        if method == "astype":
            target = node.args[0] if node.args else self._kw(node, "dtype")
            canon, _sp = self._parse_dtype(target, node)
            return _arr(base.shape, canon)
        if method == "reshape":
            if len(node.args) == 1 and isinstance(
                    node.args[0], (ast.Tuple, ast.List)):
                shape = self._shape_from_arg(node.args[0])
            else:
                shape = tuple(self._sym(a) for a in node.args)
            shape = tuple(UNKNOWN_DIM if d == -1 else d for d in shape)
            return _arr(shape or None, base.dtype)
        if method == "ravel":
            return _arr((UNKNOWN_DIM,), base.dtype)
        if method == "flatten":
            self._fact(
                "flatten-copy", node,
                f"ndarray.flatten() always copies (shape "
                f"{_fmt_shape(base.shape)}); ravel() returns a view "
                f"when possible")
            return _arr((UNKNOWN_DIM,), base.dtype)
        if method == "transpose":
            shape = tuple(reversed(base.shape)) \
                if base.shape is not None else None
            return _arr(shape, base.dtype, contiguous=False)
        if method == "copy":
            return _arr(base.shape, base.dtype, contiguous=True)
        if method in _METHOD_REDUCTIONS:
            axis, keepdims = self._axis_of(node, pos=0)
            return self._reduce_av(node, base, method, axis, keepdims)
        if method == "item":
            if self._loops:
                self._fact(
                    "item-in-loop", node,
                    ".item() per element inside a loop; vectorize the "
                    "surrounding computation instead")
            return self._element_of(_arr((1,), base.dtype))
        if method == "tolist":
            return LIST
        if method in ("dot",):
            other = self._eval(node.args[0]) if node.args else UNKNOWN
            return self._matmul_av(node, base, other)
        if method in ("clip", "round", "cumsum", "cumprod", "view",
                      "squeeze", "fill", "sort", "partition"):
            return _arr(base.shape if method not in ("squeeze",) else None,
                        base.dtype)
        if method in ("argsort", "argpartition"):
            return _arr(base.shape, "int64")
        if method == "nonzero":
            return UNKNOWN
        return UNKNOWN

    def _eval_numpy_call(self, node: ast.Call, full: str) -> AV:
        name = full[len("numpy."):] if full != "numpy" else ""
        arg_avs = [self._eval(a) for a in node.args]
        for kw in node.keywords:
            if kw.arg != "dtype":
                self._eval(kw.value)
        dtype_expr = self._kw(node, "dtype")
        dtype, _spelling = self._parse_dtype(dtype_expr, node) \
            if dtype_expr is not None else (None, None)

        if name in ("float32", "float16", "single", "half"):
            self._fact(
                "narrow-float-dtype", node,
                f"np.{name}(...) literal narrows the float64 "
                f"bit-identity contract; use float64 (or waive with a "
                f"reason)")
            return AV("float", None, _DTYPE_CANON.get(name, name))
        if name in ("float64", "double"):
            return AV("float", None, "float64")
        if name in ("int32", "int64", "intp"):
            return AV("int", None, _DTYPE_CANON.get(name, name))
        if name in ("int_", "intc"):
            self._fact(
                "platform-dtype", node,
                f"platform-dependent dtype {name!r} (C-type width "
                f"varies across platforms); pin an explicit width "
                f"like int64")
            return AV("int", None, _DTYPE_CANON.get(name, name))

        if name in ("zeros", "ones", "empty"):
            shape = self._shape_from_arg(node.args[0]) if node.args else None
            self._check_loop_alloc(node, name)
            return _arr(shape, dtype or "float64")
        if name == "full":
            shape = self._shape_from_arg(node.args[0]) if node.args else None
            fill = arg_avs[1] if len(arg_avs) > 1 else UNKNOWN
            if dtype is None:
                dtype = fill.dtype or {"int": "int64", "float": "float64",
                                       "bool": "bool"}.get(fill.kind)
            self._check_loop_alloc(node, name)
            return _arr(shape, dtype)
        if name in ("zeros_like", "ones_like", "empty_like", "full_like"):
            src = arg_avs[0] if arg_avs else UNKNOWN
            self._check_loop_alloc(node, name)
            return _arr(src.shape, dtype or src.dtype)
        if name == "arange":
            self._check_loop_alloc(node, name)
            if dtype is None:
                kinds = {av.kind for av in arg_avs}
                dtype = "float64" if "float" in kinds else (
                    "int64" if kinds <= {"int"} and kinds else None)
            if len(node.args) == 1:
                return _arr((self._sym(node.args[0]),), dtype)
            return _arr((UNKNOWN_DIM,), dtype)
        if name == "linspace":
            self._check_loop_alloc(node, name)
            num = self._sym(node.args[2]) if len(node.args) > 2 else 50
            return _arr((num,), dtype or "float64")
        if name in ("eye", "identity"):
            self._check_loop_alloc(node, name)
            n = self._sym(node.args[0]) if node.args else UNKNOWN_DIM
            return _arr((n, n), dtype or "float64")
        if name in ("array", "asarray", "ascontiguousarray", "asfarray"):
            return self._eval_np_array(node, name, arg_avs, dtype)
        if name == "frombuffer":
            return _arr((UNKNOWN_DIM,), dtype)
        if name == "where" and len(arg_avs) == 3:
            shape, conflict = _broadcast(
                arg_avs[1].shape if arg_avs[1].kind == "array" else (),
                arg_avs[2].shape if arg_avs[2].kind == "array" else ())
            return _arr(shape, _pair_dtype(
                _effective_dtype(arg_avs[1]), _effective_dtype(arg_avs[2])))
        if name in _ELEMENTWISE:
            return self._eval_np_elementwise(node, name, arg_avs)
        if name in _REDUCTIONS:
            base = arg_avs[0] if arg_avs else UNKNOWN
            if base.kind != "array":
                return UNKNOWN
            axis, keepdims = self._axis_of(node, pos=1)
            return self._reduce_av(node, base, name, axis, keepdims)
        if name in _SAME_SHAPE_FUNCS:
            base = arg_avs[0] if arg_avs else UNKNOWN
            out_dtype = "int64" if name.startswith("arg") else base.dtype
            return _arr(base.shape, out_dtype)
        if name in _GROWERS:
            return self._eval_np_concat(node, name, arg_avs)
        if name == "transpose":
            base = arg_avs[0] if arg_avs else UNKNOWN
            shape = tuple(reversed(base.shape)) \
                if base.shape is not None else None
            return _arr(shape, base.dtype, contiguous=False)
        if name == "reshape" and len(node.args) >= 2:
            base = arg_avs[0]
            shape = self._shape_from_arg(node.args[1])
            shape = tuple(UNKNOWN_DIM if d == -1 else d for d in shape)
            return _arr(shape, base.dtype)
        if name == "ravel":
            base = arg_avs[0] if arg_avs else UNKNOWN
            return _arr((UNKNOWN_DIM,), base.dtype)
        if name in ("dot", "matmul") and len(arg_avs) >= 2:
            return self._matmul_av(node, arg_avs[0], arg_avs[1])
        if name in ("flatnonzero", "unique", "searchsorted"):
            base = arg_avs[0] if arg_avs else UNKNOWN
            out_dtype = "int64" if name != "unique" else base.dtype
            return _arr((UNKNOWN_DIM,), out_dtype)
        if name in ("array_equal", "allclose", "isclose", "any", "all"):
            return BOOL
        return UNKNOWN

    def _eval_np_array(self, node: ast.Call, name: str,
                       arg_avs: list[AV], dtype: str | None) -> AV:
        if not node.args:
            return UNKNOWN
        arg = node.args[0]
        src = arg_avs[0]
        if src.kind == "array":
            if name == "array" and self._kw(node, "copy") is None:
                self._fact(
                    "ndarray-recopy", node,
                    f"np.array() over an existing ndarray (shape "
                    f"{_fmt_shape(src.shape)}) always copies; use "
                    f"np.asarray() or pass copy=False")
            return _arr(src.shape, dtype or src.dtype)
        if isinstance(arg, ast.Name) and arg.id in self._loop_appended \
                and name in ("array", "asarray"):
            self._fact(
                "list-append-np-array", node,
                f"np.{name}() over the list {arg.id!r} grown by "
                f".append() in a loop; build the array with one "
                f"vectorized expression instead")
        if isinstance(arg, (ast.List, ast.Tuple)):
            shape, inferred = self._literal_shape_dtype(arg)
            return _arr(shape, dtype or inferred)
        if src.kind == "list":
            return _arr((UNKNOWN_DIM,), dtype)
        return _arr(None, dtype)

    def _literal_shape_dtype(self, node: ast.expr):
        """Shape/dtype of a (possibly nested) list/tuple literal."""
        if not isinstance(node, (ast.List, ast.Tuple)):
            return None, None
        n = len(node.elts)
        if n and all(isinstance(el, (ast.List, ast.Tuple))
                     for el in node.elts):
            inner, dtype = self._literal_shape_dtype(node.elts[0])
            if inner is not None:
                return (n, *inner), dtype
            return (n, UNKNOWN_DIM), dtype
        kinds = set()
        for el in node.elts:
            if isinstance(el, ast.Constant):
                if isinstance(el.value, bool):
                    kinds.add("bool")
                elif isinstance(el.value, int):
                    kinds.add("int")
                elif isinstance(el.value, float):
                    kinds.add("float")
                else:
                    kinds.add("other")
            else:
                kinds.add("other")
        if kinds == {"int"}:
            return (n,), "int64"
        if kinds <= {"int", "float"} and kinds:
            return (n,), "float64"
        if kinds == {"bool"}:
            return (n,), "bool"
        return (n,), None

    def _eval_np_elementwise(self, node: ast.Call, name: str,
                             arg_avs: list[AV]) -> AV:
        arrays = [av for av in arg_avs if av.kind == "array"]
        shape: tuple | None = ()
        shown: list[AV] = []
        for av in arrays:
            new_shape, conflict = _broadcast(shape, av.shape)
            if conflict is not None:
                self._fact(
                    "broadcast-mismatch", node,
                    f"np.{name} operands of incompatible shapes "
                    f"{_fmt_shape(shown[-1].shape)} and "
                    f"{_fmt_shape(av.shape)}: dimension {conflict[0]} "
                    f"vs {conflict[1]} cannot broadcast")
            shape = new_shape
            shown.append(av)
        if not arrays:
            return UNKNOWN
        dtype: str | None = None
        if len(arg_avs) >= 2 and name in (
                "add", "subtract", "multiply", "divide", "true_divide",
                "floor_divide", "power", "mod", "maximum", "minimum"):
            da = _effective_dtype(arg_avs[0])
            db = _effective_dtype(arg_avs[1])
            dtype = _pair_dtype(da, db)
            if name in ("divide", "true_divide"):
                int_a = _is_int_dtype(da) or da == "weak-int"
                int_b = _is_int_dtype(db) or db == "weak-int"
                if (_is_int_dtype(da) or _is_int_dtype(db)) \
                        and int_a and int_b:
                    self._fact(
                        "int-truediv", node,
                        f"np.{name} of integer operands "
                        f"({_fmt_dtype(da)} / {_fmt_dtype(db)}) yields "
                        f"float64 implicitly; make the cast explicit")
                if dtype is not None and not _is_float_dtype(dtype):
                    dtype = "float64"
        else:
            dtype = arrays[0].dtype
        if name in _FLOAT_FUNCS:
            dtype = dtype if _is_float_dtype(dtype) else (
                "float64" if dtype is not None else None)
        if name in _BOOL_FUNCS:
            dtype = "bool"
        return _arr(shape, dtype)

    def _eval_np_concat(self, node: ast.Call, name: str,
                        arg_avs: list[AV]) -> AV:
        parts: list[AV] = []
        if node.args and isinstance(node.args[0], (ast.List, ast.Tuple)):
            parts = [self._eval(el) for el in node.args[0].elts]
        arrays = [p for p in parts if p.kind == "array"]
        if not arrays or any(p.shape is None for p in arrays):
            return _arr(None, None)
        dtype = arrays[0].dtype
        for p in arrays[1:]:
            dtype = dtype if dtype == p.dtype else None
        ranks = {len(p.shape) for p in arrays}
        if name == "stack":
            if len(ranks) == 1:
                rank = ranks.pop()
                return _arr((len(arrays), *([UNKNOWN_DIM] * rank))
                            if rank else (len(arrays),), dtype)
            return _arr(None, dtype)
        if len(ranks) != 1:
            return _arr(None, dtype)
        rank = ranks.pop()
        dims: list = []
        for i in range(rank):
            if i == 0 and name in ("concatenate", "append", "vstack"):
                dims.append(UNKNOWN_DIM)
                continue
            cand = {p.shape[i] for p in arrays}
            dims.append(cand.pop() if len(cand) == 1 else UNKNOWN_DIM)
        if name == "hstack" and rank == 1:
            dims = [UNKNOWN_DIM]
        return _arr(tuple(dims), dtype)

    def _check_loop_alloc(self, node: ast.Call, name: str) -> None:
        """RA005: a constructor inside a loop with no loop-carried operand."""
        if not self._loops:
            return
        variant = self._loop_variant()
        exprs = list(node.args) + [kw.value for kw in node.keywords]
        for expr in exprs:
            for sub in ast.walk(expr):
                if isinstance(sub, (ast.Call, ast.Attribute)):
                    return               # could change per iteration
                if isinstance(sub, ast.Name) and sub.id in variant:
                    return
        self._fact(
            "alloc-in-loop", node,
            f"np.{name}(...) has no loop-carried operand; hoist the "
            f"allocation out of the loop and reuse the buffer")


# --------------------------------------------------------------------------
# whole-program analysis
# --------------------------------------------------------------------------


class ArrayAnalysis:
    """Interpret every function once; hold facts, hot set, summaries."""

    def __init__(self, graph: CallGraph):
        self.graph = graph
        self.hot, self.hot_roots = resolve_hot_functions(graph)
        self.facts: list[Fact] = []
        self._summaries: dict[str, AV] = {}
        self._in_progress: set[str] = set()
        self._outside_repro: dict[str, bool] = {}
        for qname in sorted(graph.functions):
            self.summary(qname)
        self._hot_parents = graph.reach_parents(sorted(self.hot_roots))

    def summary(self, qname: str) -> AV:
        if qname in self._summaries:
            return self._summaries[qname]
        if qname in self._in_progress:
            return UNKNOWN               # recursion: degrade
        info = self.graph.functions.get(qname)
        if info is None:
            return UNKNOWN
        self._in_progress.add(qname)
        try:
            out = _Interp(self, info).run()
        finally:
            self._in_progress.discard(qname)
        self._summaries[qname] = out
        return out

    def is_hot(self, qname: str) -> bool:
        if qname in self.hot:
            return True
        info = self.graph.functions.get(qname)
        if info is None:
            return False
        cached = self._outside_repro.get(info.path)
        if cached is None:
            try:
                resolved = Path(info.path).resolve()
            except OSError:              # pragma: no cover
                resolved = Path(info.path)
            cached = not _in_repro_package(resolved)
            self._outside_repro[info.path] = cached
        return cached

    def phase_of(self, qname: str) -> str:
        return self.hot.get(qname, "local")

    def chain_for(self, qname: str) -> tuple[str, ...]:
        if qname in self._hot_parents:
            return self.graph.chain_to(self._hot_parents, qname)
        return ()

    def stats(self) -> dict[str, object]:
        return {
            "functions_interpreted": len(self._summaries),
            "hot_functions": len(self.hot),
            "hot_roots": len(self.hot_roots),
            "facts": len(self.facts),
        }


# --------------------------------------------------------------------------
# rules
# --------------------------------------------------------------------------


def _path_in_scope(path: str, scope: tuple[str, ...]) -> bool:
    """Same semantics as runner.rule_applies: scoping narrows inside the
    repro package only; everything outside it is fully in scope."""
    try:
        resolved = Path(path).resolve()
    except OSError:                      # pragma: no cover
        resolved = Path(path)
    if not _in_repro_package(resolved):
        return True
    parts = resolved.parts
    return any(entry in parts or entry == resolved.name for entry in scope)


class ArrayRule:
    """Base: translate interpreter facts into findings."""

    rule_id: ClassVar[str]
    severity: ClassVar[Severity] = Severity.ERROR
    summary: ClassVar[str] = ""
    rationale: ClassVar[str] = ""
    fact_kinds: ClassVar[frozenset[str]] = frozenset()
    hot_only: ClassVar[bool] = False
    scope: ClassVar[tuple[str, ...] | None] = None

    def check(self, graph: CallGraph,
              analysis: ArrayAnalysis) -> list[Finding]:
        out: list[Finding] = []
        for fact in analysis.facts:
            if fact.kind not in self.fact_kinds:
                continue
            if self.scope is not None \
                    and not _path_in_scope(fact.path, self.scope):
                continue
            if self.hot_only and not analysis.is_hot(fact.qname):
                continue
            chain = analysis.chain_for(fact.qname) if self.hot_only else ()
            out.append(Finding(
                path=fact.path, line=fact.line, col=fact.col,
                rule_id=self.rule_id, message=fact.detail,
                severity=self.severity, chain=chain,
            ))
        return out


class DtypeStabilityRule(ArrayRule):
    rule_id = "RA001"
    severity = Severity.ERROR
    summary = "dtype drift in a bit-identity module (narrow float, " \
              "platform dtype, implicit int division)"
    rationale = (
        "The scalar/batch identity contract compares float64 bit "
        "patterns; a float32 literal, a platform-width int, or an "
        "implicit int-division promotion changes results silently."
    )
    fact_kinds = frozenset({
        "narrow-float-dtype", "platform-dtype", "mixed-float-op",
        "int-truediv",
    })
    scope = BIT_IDENTITY_SCOPE


class ShapeConsistencyRule(ArrayRule):
    rule_id = "RA002"
    severity = Severity.ERROR
    summary = "provably incompatible shapes (broadcast, matmul inner " \
              "dim, axis out of inferred rank)"
    rationale = (
        "A shape error that only fires on one batch width escapes the "
        "unit tests; the interpreter flags the cases that are wrong "
        "for every input."
    )
    fact_kinds = frozenset({
        "broadcast-mismatch", "matmul-mismatch", "axis-out-of-rank",
    })


class HiddenCopyRule(ArrayRule):
    rule_id = "RA003"
    severity = Severity.WARNING
    summary = "hidden copy in a hot path (flatten, np.array on an " \
              "ndarray, fancy index per iteration, non-contiguous @)"
    rationale = (
        "Each hidden copy is O(n) memory traffic inside the surfaces "
        "PhaseProfiler times; the fix is usually a one-token change "
        "(ravel, asarray, hoist)."
    )
    fact_kinds = frozenset({
        "flatten-copy", "ndarray-recopy", "fancy-index-loop",
        "noncontig-matmul",
    })
    hot_only = True


class ElementLoopRule(ArrayRule):
    rule_id = "RA004"
    severity = Severity.WARNING
    summary = "python-level element loop over an ndarray in a hot path"
    rationale = (
        "A per-element python loop caps throughput at ~1e6 ops/s "
        "against the >=50k evals/s target; vectorize or waive with "
        "the reason the call-out must stay scalar."
    )
    fact_kinds = frozenset({
        "iter-ndarray", "comprehension-over-ndarray", "item-in-loop",
        "list-append-np-array",
    })
    hot_only = True


class LoopAllocRule(ArrayRule):
    rule_id = "RA005"
    severity = Severity.WARNING
    summary = "loop-invariant allocation or quadratic concatenate " \
              "growth in a hot path"
    rationale = (
        "Allocating the same buffer every iteration (or growing an "
        "accumulator by concatenation — the anti-pattern the "
        "capacity-doubling GP buffers replaced) turns O(n) loops "
        "into allocator-bound or O(n^2) ones."
    )
    fact_kinds = frozenset({"alloc-in-loop", "concat-growth"})
    hot_only = True


#: expensive-by-construction calls for RA006 (prefix and exact matches)
_EXPENSIVE_PREFIXES = ("numpy.linalg.", "scipy.")
_EXPENSIVE_CALLS = frozenset({
    "numpy.sort", "numpy.argsort", "numpy.partition",
    "numpy.argpartition", "numpy.lexsort", "numpy.concatenate",
    "numpy.stack", "numpy.vstack", "numpy.hstack", "numpy.einsum",
    "numpy.dot", "numpy.matmul", "numpy.tensordot", "numpy.unique",
    "numpy.histogram",
})
_IO_CALLS = frozenset({
    "builtins.open", "time.sleep", "pickle.dump", "pickle.dumps",
    "pickle.load", "pickle.loads", "json.dump", "json.load",
    "subprocess.run", "subprocess.check_call", "subprocess.check_output",
    "os.replace", "os.fsync", "shutil.copy", "shutil.copyfile",
})


def _expensive_label(external: str) -> str | None:
    if external in _IO_CALLS:
        return f"{external} (blocking IO)"
    if external in _EXPENSIVE_CALLS:
        return external
    for prefix in _EXPENSIVE_PREFIXES:
        if external.startswith(prefix):
            return external
    return None


class LockedArrayWorkRule(ArrayRule):
    rule_id = "RA006"
    severity = Severity.WARNING
    summary = "expensive array work or blocking IO under a held lock"
    rationale = (
        "A sort/linalg/IO call under a lock serializes every other "
        "shard/tenant behind one critical section; compute outside, "
        "publish under the lock."
    )
    fact_kinds = frozenset()

    def check(self, graph: CallGraph,
              analysis: ArrayAnalysis) -> list[Finding]:
        model = build_lock_model(graph)
        out: list[Finding] = []
        for qname in sorted(graph.functions):
            for site in graph.sites_of(qname):
                if site.kind != "external" or site.external is None:
                    continue
                label = _expensive_label(site.external)
                if label is None:
                    continue
                held, nested = model.held_at_site(site)
                eff = model.effective_held(qname, held, nested)
                if not eff:
                    continue
                locks = ", ".join(sorted(eff))
                out.append(Finding(
                    path=site.path, line=site.line, col=site.col,
                    rule_id=self.rule_id,
                    message=(
                        f"expensive call {label} while holding "
                        f"{locks}; hoist it out of the critical "
                        f"section and publish the result under the "
                        f"lock"
                    ),
                    severity=self.severity,
                ))
        return out


# --------------------------------------------------------------------------
# driver
# --------------------------------------------------------------------------

ALL_ARRAY_RULES: tuple[type[ArrayRule], ...] = (
    DtypeStabilityRule,
    ShapeConsistencyRule,
    HiddenCopyRule,
    ElementLoopRule,
    LoopAllocRule,
    LockedArrayWorkRule,
)


def get_array_rules(ids: Iterable[str] | None = None
                    ) -> list[type[ArrayRule]]:
    if ids is None:
        return list(ALL_ARRAY_RULES)
    wanted = {i.upper() for i in ids}
    known = {r.rule_id for r in ALL_ARRAY_RULES}
    unknown = wanted - known
    if unknown:
        raise ValueError(
            f"unknown array rule id(s): {', '.join(sorted(unknown))}"
        )
    return [r for r in ALL_ARRAY_RULES if r.rule_id in wanted]


def array_rule_catalogue() -> list[dict[str, str]]:
    return [
        {
            "rule": rule.rule_id,
            "severity": rule.severity.value,
            "summary": rule.summary,
            "rationale": rule.rationale,
        }
        for rule in ALL_ARRAY_RULES
    ]


@dataclass
class ArraysReport:
    """Outcome of one array pass: findings + graph/interpreter stats."""

    result: LintResult
    stats: dict[str, object] = field(default_factory=dict)


def run_array_rules(graph: CallGraph,
                    rules: Sequence[type[ArrayRule]] = ALL_ARRAY_RULES
                    ) -> tuple[list[Finding], ArrayAnalysis]:
    analysis = ArrayAnalysis(graph)
    findings: list[Finding] = []
    for rule_cls in rules:
        findings.extend(rule_cls().check(graph, analysis))
    return findings, analysis


def lint_arrays(paths: Iterable[str],
                rules: Sequence[type[ArrayRule]] = ALL_ARRAY_RULES,
                graph: CallGraph | None = None) -> ArraysReport:
    """Build the call graph over ``paths`` and run the RA rules.

    Suppressions apply at the line each finding lands on, with the
    same ``# staticcheck: ignore[RAxxx]`` markers as every other pass.
    """
    if graph is None:
        graph = build_call_graph(paths)
    findings, analysis = run_array_rules(graph, rules)
    result = LintResult(n_files=len(graph.modules))
    suppression_cache: dict[str, object] = {}
    for finding in findings:
        suppressions = suppression_cache.get(finding.path)
        if suppressions is None:
            mod = graph.module_of_path(finding.path)
            source = mod.source if mod is not None else ""
            suppressions = parse_suppressions(source)
            suppression_cache[finding.path] = suppressions
        if suppressions.silences(finding.line, finding.rule_id):
            result.suppressed.append(finding)
        else:
            result.findings.append(finding)
    result.findings.sort(key=Finding.sort_key)
    result.suppressed.sort(key=Finding.sort_key)
    stats = graph.resolution_stats()
    stats["arrays"] = analysis.stats()
    return ArraysReport(result=result, stats=stats)
