"""Domain validator: configuration spaces, constraints, workloads.

A malformed search space is the config-tuning equivalent of a type
error — a default outside its bounds, a constraint referencing a knob
that does not exist, or a space none of whose grid corners can even be
granted resources will burn a whole tuning budget before anyone notices.
This module *imports* the space/workload/constraint definitions and
checks them statically (no simulation runs), producing the same
:class:`~repro.staticcheck.model.Finding` records as the AST linter:

========  ==============================================================
RD001     parameter default fails its own ``validate()``
RD002     unit-interval encoding does not round-trip the default
RD003     constraint references a parameter the space does not define
RD004     no feasible grid corner: every low/high/default corner is
          denied resources on every reference cluster
RD005     wide numeric range (>= 100x) not log-scaled
RD006     categorical parameter with duplicate or missing-default choices
RD007     workload registry entry broken (bad name, inputs, or job list)
========  ==============================================================
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Mapping

from ..cloud.cluster import Cluster
from ..config.constraints import grant_resources
from ..config.space import (
    CategoricalParameter,
    Configuration,
    ConfigurationSpace,
    _NumericParameter,
)
from .model import Finding, Severity

__all__ = [
    "ConstraintSpec",
    "RESOURCE_PACKING",
    "validate_space",
    "validate_workloads",
    "validate_default_domain",
]

#: ranges spanning at least this many multiples should be log-scaled
_LOG_SPAN_THRESHOLD = 100.0


@dataclass(frozen=True)
class ConstraintSpec:
    """A declared cross-parameter constraint and the knobs it reads.

    The packing logic itself lives in :mod:`repro.config.constraints`;
    this record makes its *parameter footprint* explicit so the validator
    can detect a constraint whose knobs drifted out of the space (or were
    renamed) — the "dangling constraint" failure mode.
    """

    name: str
    params: tuple[str, ...]
    description: str = ""

    def anchored_in(self, space: ConfigurationSpace) -> bool:
        """Whether any of this constraint's parameters exist in ``space``."""
        return any(p in space for p in self.params)


#: the YARN-style packing constraint grant_resources() evaluates
RESOURCE_PACKING = ConstraintSpec(
    name="resource-packing",
    params=(
        "spark.executor.instances",
        "spark.executor.cores",
        "spark.executor.memory",
    ),
    description=(
        "executor containers (heap x (1+overhead), cores) must pack onto "
        "cluster nodes alongside the driver; see "
        "repro.config.constraints.grant_resources"
    ),
)


def _finding(source: str, rule_id: str, message: str,
             severity: Severity = Severity.ERROR) -> Finding:
    return Finding(path=source, line=0, col=0, rule_id=rule_id,
                   message=message, severity=severity)


def _roundtrips(param, value) -> bool:
    decoded = param.from_unit(param.to_unit(value))
    if isinstance(value, float) and not isinstance(value, bool):
        if value == 0:
            return abs(decoded) < 1e-12
        return math.isclose(decoded, value, rel_tol=1e-9)
    return decoded == value


def validate_space(space: ConfigurationSpace,
                   constraints: Iterable[ConstraintSpec] = (),
                   clusters: Iterable[Cluster] = ()) -> list[Finding]:
    """Statically validate one configuration space.

    ``constraints`` that touch none of the space's parameters are
    ignored (a DISC constraint is not dangling merely because a pure
    cloud space is being validated); once *anchored* — at least one
    referenced parameter present — every referenced parameter must
    exist.  ``clusters`` are the reference deployments for the RD004
    feasibility probe; with none supplied the probe is skipped.
    """
    source = f"<space:{space.name}>"
    findings: list[Finding] = []

    for param in space.parameters:
        label = f"{space.name}.{param.name}"
        # RD001: the default must satisfy the parameter's own validator.
        try:
            param.validate(param.default)
        except ValueError as exc:
            findings.append(_finding(
                source, "RD001", f"default of {label} is invalid: {exc}"))
            continue
        # RD002: encode/decode must round-trip the default, or every
        # surrogate-model tuner observes a configuration it never chose.
        try:
            ok = _roundtrips(param, param.default)
        except (ValueError, OverflowError, ZeroDivisionError) as exc:
            ok = False
            findings.append(_finding(
                source, "RD002",
                f"unit encoding of {label} raised on its own default: {exc}"))
        else:
            if not ok:
                findings.append(_finding(
                    source, "RD002",
                    f"unit encoding of {label} does not round-trip its "
                    f"default {param.default!r} -> "
                    f"{param.from_unit(param.to_unit(param.default))!r}"))
        # RD005: a wide numeric span without log scaling wastes most of
        # the unit interval on the top decade.
        if isinstance(param, _NumericParameter) and not param.log:
            if param.low > 0 and param.high / param.low >= _LOG_SPAN_THRESHOLD:
                findings.append(_finding(
                    source, "RD005",
                    f"{label} spans {param.high / param.low:.0f}x "
                    f"({param.low}..{param.high}) without log scaling",
                    severity=Severity.WARNING))
        # RD006: categorical integrity (normally constructor-enforced,
        # re-checked here because spaces can be built programmatically).
        if isinstance(param, CategoricalParameter):
            if len(set(param.choices)) != len(param.choices):
                findings.append(_finding(
                    source, "RD006", f"{label} has duplicate choices"))
            if param.default not in param.choices:
                findings.append(_finding(
                    source, "RD006",
                    f"default {param.default!r} of {label} not among its "
                    f"choices"))

    # RD003: anchored constraints must resolve every parameter they read.
    anchored = [c for c in constraints if c.anchored_in(space)]
    for constraint in anchored:
        for name in constraint.params:
            if name not in space:
                findings.append(_finding(
                    source, "RD003",
                    f"constraint {constraint.name!r} references "
                    f"{name!r}, which {space.name!r} does not define"))

    # RD004: at least one grid corner must be grantable somewhere.
    clusters = list(clusters)
    if clusters and not any(f.rule_id == "RD003" for f in findings):
        packing = [c for c in anchored if c.name == RESOURCE_PACKING.name]
        if packing and all(p in space for p in RESOURCE_PACKING.params):
            findings.extend(_check_feasible_corners(space, clusters, source))

    return findings


def _corner_configs(space: ConfigurationSpace) -> list[Configuration]:
    """Default plus the all-low / all-high corners of the resource knobs."""
    default = space.default_configuration()
    corners = [default]
    for u in (0.0, 1.0):
        updates = {
            name: space[name].from_unit(u)
            for name in RESOURCE_PACKING.params
            if name in space
        }
        corners.append(default.replace(**updates))
    return corners


def _check_feasible_corners(space: ConfigurationSpace,
                            clusters: list[Cluster],
                            source: str) -> list[Finding]:
    feasible = any(
        grant_resources(corner, cluster).executors >= 1
        for corner in _corner_configs(space)
        for cluster in clusters
    )
    if feasible:
        return []
    return [_finding(
        source, "RD004",
        f"no feasible grid corner: default and low/high resource corners "
        f"of {space.name!r} are all denied resources on every reference "
        f"cluster ({', '.join(c.describe() for c in clusters)})")]


def validate_workloads(suite: Mapping[str, type]) -> list[Finding]:
    """Validate a workload registry (RD007)."""
    findings: list[Finding] = []
    seen_names: dict[str, str] = {}
    for key, cls in suite.items():
        source = f"<workload:{key}>"
        try:
            workload = cls()
        except Exception as exc:
            findings.append(_finding(
                source, "RD007", f"workload {key!r} failed to construct: {exc}"))
            continue
        if not workload.name:
            findings.append(_finding(
                source, "RD007", f"workload {key!r} has an empty name"))
        elif workload.name in seen_names:
            findings.append(_finding(
                source, "RD007",
                f"workload name {workload.name!r} registered under both "
                f"{seen_names[workload.name]!r} and {key!r}"))
        else:
            seen_names[workload.name] = key
        inputs = getattr(workload, "inputs", None)
        if inputs is None:
            findings.append(_finding(
                source, "RD007", f"workload {key!r} declares no evolving inputs"))
            continue
        if not 0 < inputs.ds1_mb < inputs.ds2_mb < inputs.ds3_mb:
            findings.append(_finding(
                source, "RD007",
                f"workload {key!r} inputs are not strictly growing: "
                f"{inputs.ds1_mb}, {inputs.ds2_mb}, {inputs.ds3_mb}"))
            continue
        try:
            jobs = workload.jobs(inputs.ds1_mb)
        except Exception as exc:
            findings.append(_finding(
                source, "RD007",
                f"workload {key!r} failed to build jobs at DS1: {exc}"))
            continue
        if not jobs:
            findings.append(_finding(
                source, "RD007", f"workload {key!r} builds an empty job list"))
    return findings


def _reference_clusters() -> list[Cluster]:
    """Small/large reference deployments for the feasibility probe."""
    return [Cluster.of("m5.xlarge", 4), Cluster.of("h1.4xlarge", 4)]


def validate_default_domain() -> list[Finding]:
    """Validate the repo's own spaces, constraints, and workload suite."""
    from ..config.cloud_params import cloud_space, joint_space
    from ..config.spark_params import spark_core_space, spark_space
    from ..workloads.suite import SUITE

    clusters = _reference_clusters()
    constraints = [RESOURCE_PACKING]
    findings: list[Finding] = []
    disc = spark_space()
    for space in (disc, spark_core_space(), cloud_space(),
                  joint_space(spark_core_space())):
        findings.extend(validate_space(space, constraints=constraints,
                                       clusters=clusters))
    findings.extend(validate_workloads(SUITE))
    return findings
