"""Render lint results as human-readable text or machine-readable JSON."""

from __future__ import annotations

import json

from .model import LintResult, Severity

__all__ = ["render_text", "render_json"]


def render_text(result: LintResult, verbose: bool = False) -> str:
    """One line per finding plus a summary, ruff/flake8-style."""
    lines = [finding.format() for finding in result.sorted_findings()]
    n_err = len(result.errors)
    n_warn = len(result.findings) - n_err
    summary = (
        f"checked {result.n_files} file(s): "
        f"{n_err} error(s), {n_warn} warning(s)"
    )
    if result.n_suppressed:
        summary += f", {result.n_suppressed} suppressed"
    if result.clean:
        summary += " — clean"
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    payload = {
        "clean": result.clean,
        "files_checked": result.n_files,
        "suppressed": result.n_suppressed,
        "errors": len(result.errors),
        "warnings": sum(
            1 for f in result.findings if f.severity is Severity.WARNING
        ),
        "findings": [f.to_dict() for f in result.sorted_findings()],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
