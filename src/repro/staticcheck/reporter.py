"""Render lint results as human-readable text or machine-readable JSON.

Both renderers accept the optional call-graph ``stats`` the flow pass
produces, so a ``--flow`` report always states how much of the call
surface was actually resolved (see the soundness caveat in
:mod:`repro.staticcheck.flow`).

Suppressed findings are first-class in the JSON payload: per-rule counts
plus the exact silenced locations, not just an aggregate number — a
suppression is an audit trail, and an audit trail needs the *where*.
"""

from __future__ import annotations

import json

from .model import LintResult, Severity
from .waivers import reason_for, waiver_footer

__all__ = ["render_text", "render_json"]


def _stats_line(stats: dict[str, object]) -> str:
    rate = float(stats.get("resolution_rate", 0.0))
    return (
        f"call graph: {stats.get('functions', 0)} function(s), "
        f"{stats.get('call_sites', 0)} call site(s), "
        f"{rate:.1%} resolved ({stats.get('unresolved', 0)} unresolved)"
    )


def _concurrency_line(conc: dict[str, object]) -> str:
    return (
        f"lock model: {conc.get('locks', 0)} lock(s) over "
        f"{conc.get('classes_with_locks', 0)} class(es) + "
        f"{conc.get('module_locks', 0)} module global(s), "
        f"{conc.get('assumed_locked_methods', 0)} assumed-locked method(s)"
    )


def _arrays_line(arr: dict[str, object]) -> str:
    return (
        f"array interp: {arr.get('functions_interpreted', 0)} "
        f"function(s), {arr.get('hot_functions', 0)} hot over "
        f"{arr.get('hot_roots', 0)} root(s), "
        f"{arr.get('facts', 0)} fact(s)"
    )


def render_text(result: LintResult, verbose: bool = False,
                stats: dict[str, object] | None = None) -> str:
    """One line per finding plus a summary, ruff/flake8-style.

    Findings are stably sorted by (path, line, rule); interprocedural
    findings carry their ``via`` call-chain lines.
    """
    lines = [finding.format() for finding in result.sorted_findings()]
    n_err = len(result.errors)
    n_warn = len(result.findings) - n_err
    summary = (
        f"checked {result.n_files} file(s): "
        f"{n_err} error(s), {n_warn} warning(s)"
    )
    if result.n_suppressed:
        by_rule = ", ".join(
            f"{rule} x{count}"
            for rule, count in result.suppressed_by_rule().items()
        )
        summary += f", {result.n_suppressed} suppressed ({by_rule})"
    if result.clean:
        summary += " — clean"
    lines.append(summary)
    if stats is not None:
        lines.append(_stats_line(stats))
        conc = stats.get("concurrency")
        if isinstance(conc, dict):
            lines.append(_concurrency_line(conc))
        arr = stats.get("arrays")
        if isinstance(arr, dict):
            lines.append(_arrays_line(arr))
    # inventory-backed suppressions render their reasons — the audit
    # trail travels with the report, not just with the gate tests
    lines.extend(waiver_footer(result.sorted_suppressed()))
    return "\n".join(lines)


def render_json(result: LintResult,
                stats: dict[str, object] | None = None) -> str:
    payload: dict[str, object] = {
        "clean": result.clean,
        "files_checked": result.n_files,
        "errors": len(result.errors),
        "warnings": sum(
            1 for f in result.findings if f.severity is Severity.WARNING
        ),
        "findings": [f.to_dict() for f in result.sorted_findings()],
        "suppressed": {
            "total": result.n_suppressed,
            "by_rule": result.suppressed_by_rule(),
            "locations": [f.to_dict() for f in result.sorted_suppressed()],
            "waivers": [
                {
                    "rule": f.rule_id,
                    "path": f.path,
                    "line": f.line,
                    "reason": reason,
                }
                for f in result.sorted_suppressed()
                if (reason := reason_for(f.rule_id, f.path)) is not None
            ],
        },
    }
    if stats is not None:
        payload["call_graph"] = stats
    return json.dumps(payload, indent=2, sort_keys=True)
