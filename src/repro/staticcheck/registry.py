"""One declarative table of every rule the linter serves.

Five rule families grew five hand-rolled catalogues (per-file ``RS``,
domain ``RD``, flow ``RF``, concurrency ``RC``, arrays ``RA``), each
with its own id partitioning in the CLI.  This module folds them into
a single registry
so ``--list-rules`` and ``--rules`` have exactly one source of truth:
a rule id is valid iff it has a :class:`RuleEntry`, and its ``family``
says which pass runs it.

The domain validator has no rule classes (findings come straight out of
``validate_*`` helpers), so its metadata rows are declared here — the
one place the RD catalogue exists in code.
"""

from __future__ import annotations

from dataclasses import dataclass

from .arrays import array_rule_catalogue
from .concurrency import concurrency_rule_catalogue
from .flow import flow_rule_catalogue
from .rules import rule_catalogue

__all__ = [
    "RuleEntry",
    "rule_registry",
    "registry_ids",
    "partition_rule_ids",
]

#: family -> how the rule is evaluated (shown by ``--list-rules``)
FAMILY_SCOPES = {
    "per-file": None,                        # per-rule path scopes apply
    "domain": "imported domain objects (config spaces, workloads)",
    "flow": "interprocedural (call graph)",
    "concurrency": "interprocedural (call graph + inferred lock model)",
    "arrays": "interprocedural (call graph + hot-path table)",
}


@dataclass(frozen=True)
class RuleEntry:
    """One rule's identity and metadata, family-agnostic."""

    rule_id: str
    family: str                              # key of FAMILY_SCOPES
    severity: str                            # "error" | "warning"
    summary: str
    rationale: str = ""
    #: per-file path scope fragments (None = all files / not path-scoped)
    scope: tuple[str, ...] | None = None


#: the domain validator's findings, declared here because domain.py
#: builds Findings directly instead of defining rule classes
_DOMAIN_ROWS: tuple[RuleEntry, ...] = (
    RuleEntry(
        "RD001", "domain", "error",
        "parameter default fails its own validate()",
        "A space whose default is already invalid burns the whole "
        "tuning budget before the first real candidate.",
    ),
    RuleEntry(
        "RD002", "domain", "error",
        "unit-interval encoding does not round-trip the default",
        "Optimizers work in [0,1]^d; a lossy encode/decode silently "
        "moves every suggestion they make.",
    ),
    RuleEntry(
        "RD003", "domain", "error",
        "constraint references a parameter the space does not define",
        "A dangling constraint either never fires or rejects "
        "everything, depending on evaluation order.",
    ),
    RuleEntry(
        "RD004", "domain", "error",
        "no feasible grid corner: every low/high/default corner is "
        "denied resources on every reference cluster",
        "If not even the corners pack onto any reference cluster, the "
        "space and the constraint have drifted apart.",
    ),
    RuleEntry(
        "RD005", "domain", "warning",
        "wide numeric range (>= 100x) not log-scaled",
        "Linear encoding of a 100x span concentrates the optimizer's "
        "samples in the top decade.",
    ),
    RuleEntry(
        "RD006", "domain", "error",
        "categorical parameter with duplicate or missing-default choices",
        "Duplicate choices skew the encoding's bin widths; a default "
        "outside the choices can never round-trip.",
    ),
    RuleEntry(
        "RD007", "domain", "error",
        "workload registry entry broken (bad name, inputs, or job list)",
        "The registry is the service's submission surface; a broken "
        "entry fails at tenant-request time instead of lint time.",
    ),
)


def rule_registry() -> list[RuleEntry]:
    """Every rule of every family, in catalogue order."""
    entries: list[RuleEntry] = []
    for row in rule_catalogue():
        entries.append(RuleEntry(
            rule_id=row["id"], family="per-file",
            severity=row["severity"], summary=row["summary"],
            rationale=row["rationale"],
            scope=tuple(row["scope"]) if row["scope"] else None,
        ))
    entries.extend(_DOMAIN_ROWS)
    for row in flow_rule_catalogue():
        entries.append(RuleEntry(
            rule_id=row["rule"], family="flow",
            severity=row["severity"], summary=row["summary"],
            rationale=row["rationale"],
        ))
    for row in concurrency_rule_catalogue():
        entries.append(RuleEntry(
            rule_id=row["rule"], family="concurrency",
            severity=row["severity"], summary=row["summary"],
            rationale=row["rationale"],
        ))
    for row in array_rule_catalogue():
        entries.append(RuleEntry(
            rule_id=row["rule"], family="arrays",
            severity=row["severity"], summary=row["summary"],
            rationale=row["rationale"],
        ))
    return entries


def registry_ids() -> dict[str, str]:
    """rule id -> family, for id validation and partitioning."""
    return {entry.rule_id: entry.family for entry in rule_registry()}


def partition_rule_ids(spec: str) -> dict[str, list[str]]:
    """Split a ``--rules`` spec into per-family id lists.

    Returns ``{family: [ids...]}`` with only the families that were
    requested; raises :class:`ValueError` naming every unknown id, so a
    typo'd rule can never be silently skipped.
    """
    families = registry_ids()
    out: dict[str, list[str]] = {}
    unknown: list[str] = []
    for raw in spec.split(","):
        rule_id = raw.strip().upper()
        if not rule_id:
            continue
        family = families.get(rule_id)
        if family is None:
            unknown.append(rule_id)
            continue
        out.setdefault(family, []).append(rule_id)
    if unknown:
        raise ValueError(
            f"unknown rule id(s): {', '.join(sorted(set(unknown)))}"
        )
    return out
