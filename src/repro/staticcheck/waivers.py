"""The repo's single waiver inventory.

Every ``# staticcheck: ignore[...]`` marker that silences a *genuine*
finding in ``src/repro`` must have a row here carrying the reason the
code is allowed to stay as written.  The clean-gate tests
(``test_repo_clean.py``, ``test_repo_arrays_clean.py``) pin their
expected-suppression counts to this table instead of to private dicts,
and the text reporter renders the reasons as a footer — so the
inventory cannot drift from either the markers or the gates without a
test failing.

A row matches a suppressed finding when the rule id is equal and the
finding's path ends with the row's ``path`` (paths are stored
repo-relative with forward slashes so the inventory is portable across
checkouts and operating systems).
"""

from __future__ import annotations

from dataclasses import dataclass

from .model import Finding

__all__ = ["Waiver", "WAIVERS", "expected_by_rule", "reason_for",
           "waiver_footer"]


@dataclass(frozen=True)
class Waiver:
    """One deliberate, reasoned suppression of a genuine finding."""

    rule_id: str
    path: str                    #: repo-relative, forward slashes
    reason: str
    #: number of in-source markers this row covers (one reason can
    #: justify several lines of the same pattern in one file)
    count: int = 1


WAIVERS: tuple[Waiver, ...] = (
    Waiver(
        "RF001", "src/repro/sparksim/rngpool.py",
        "placeholder bit generator; its state is overwritten from the "
        "pool before any draw can happen",
    ),
    Waiver(
        "RF002", "src/repro/engine/cache.py",
        "idempotent config-fingerprint memo: recomputing yields the "
        "identical value, so the benign race is harmless",
    ),
    Waiver(
        "RF003", "src/repro/engine/executors.py",
        "deliberately worker-local: each worker process owns its own "
        "attachment cache and never shares it",
    ),
    Waiver(
        "RF004", "src/repro/engine/engine.py",
        "best-effort close of an already-broken pool; any exception "
        "here would mask the original failure",
    ),
    Waiver(
        "RF004", "src/repro/engine/shm.py",
        "best-effort resource-tracker unregister; absence of the "
        "segment is the expected race on teardown",
    ),
    Waiver(
        "RA006", "src/repro/core/simindex.py",
        "the k-NN answer must be snapshot-consistent: partition/"
        "concatenate/argsort over the signature block have to happen "
        "under the shard lock or a concurrent ingest can tear the "
        "candidate set",
        count=3,
    ),
    Waiver(
        "RA004", "src/repro/core/simindex.py",
        "the output loop materializes at most k (key, distance, mean) "
        "tuples; the (W, d) distance work above it is fully vectorized",
    ),
    Waiver(
        "RA006", "src/repro/engine/engine.py",
        "evaluate_batch's documented contract serializes batches on "
        "_lock; the retry backoff sleep is part of answering the "
        "in-flight batch, and releasing mid-batch would interleave "
        "pool rebuilds",
    ),
    Waiver(
        "RA003", "src/repro/engine/shm.py",
        "the fancy-index gather over the frombuffer view is the decode "
        "output itself — the copy is the product, not overhead",
    ),
    Waiver(
        "RA003", "src/repro/tuning/bo/kernels.py",
        "a @ b.T hands the transposed view to BLAS gemm's trans flag; "
        "no pack-copy happens for a plain transpose",
    ),
)


def _matches(waiver: Waiver, rule_id: str, path: str) -> bool:
    if waiver.rule_id != rule_id:
        return False
    normalized = path.replace("\\", "/")
    return normalized.endswith(waiver.path)


def expected_by_rule(prefix: str | None = None) -> dict[str, int]:
    """Expected suppression counts per rule id, optionally filtered to
    one family prefix (``"RF"``, ``"RA"``)."""
    out: dict[str, int] = {}
    for waiver in WAIVERS:
        if prefix is not None and not waiver.rule_id.startswith(prefix):
            continue
        out[waiver.rule_id] = out.get(waiver.rule_id, 0) + waiver.count
    return out


def reason_for(rule_id: str, path: str) -> str | None:
    """The inventory reason covering a suppressed finding, or None."""
    for waiver in WAIVERS:
        if _matches(waiver, rule_id, path):
            return waiver.reason
    return None


def waiver_footer(suppressed: list[Finding]) -> list[str]:
    """Reporter footer lines: one per suppressed finding the inventory
    covers, rendering its reason."""
    lines: list[str] = []
    for finding in suppressed:
        reason = reason_for(finding.rule_id, finding.path)
        if reason is not None:
            lines.append(
                f"waiver {finding.rule_id} {finding.path}:{finding.line}"
                f" -- {reason}"
            )
    return lines
