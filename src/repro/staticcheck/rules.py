"""The invariant rule catalogue (RS001 — RS006).

Each rule is a small :class:`ast.NodeVisitor` protecting one invariant
the repo's determinism / reproducibility story depends on.  Rules carry
an ID, a severity, a one-line summary, and an optional path *scope*: a
tuple of directory or file names the invariant is contracted for.  A
scoped rule still applies in full to files outside the ``repro`` package
tree (fixtures, scratch scripts), so known-bad snippets always trip it.

The catalogue:

========  ==============================================================
RS001     unseeded randomness (stdlib ``random``, legacy ``np.random.*``
          globals, ``default_rng()`` without a seed)
RS002     wall-clock reads (``time.time``, ``datetime.now``...) in the
          simulation/tuning/engine hot paths
RS003     mutable default arguments
RS004     float ``==`` / ``!=`` in bit-identity-contracted modules
RS005     attribute writes to slotted classes outside ``__slots__``
RS006     cache-key completeness/purity for classes with ``cache_key()``
========  ==============================================================
"""

from __future__ import annotations

import ast
from typing import Any, ClassVar

from .model import Finding, Severity

__all__ = ["Rule", "ALL_RULES", "get_rules", "rule_catalogue"]


class Rule(ast.NodeVisitor):
    """One invariant check over a single module's AST."""

    rule_id: ClassVar[str]
    severity: ClassVar[Severity] = Severity.ERROR
    summary: ClassVar[str]
    rationale: ClassVar[str]
    #: directory / file names this invariant is contracted for; ``None``
    #: applies everywhere.  See :func:`repro.staticcheck.runner.rule_applies`.
    scope: ClassVar[tuple[str, ...] | None] = None

    def __init__(self, path: str):
        self.path = path
        self.findings: list[Finding] = []

    def check(self, tree: ast.AST) -> list[Finding]:
        self.visit(tree)
        return self.findings

    def report(self, node: ast.AST, message: str,
               severity: Severity | None = None) -> None:
        self.findings.append(
            Finding(
                path=self.path,
                line=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0),
                rule_id=self.rule_id,
                message=message,
                severity=severity or self.severity,
            )
        )


def _dotted_chain(node: ast.expr) -> list[str] | None:
    """``np.random.rand`` -> ["np", "random", "rand"]; None if not a pure chain."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return parts[::-1]
    return None


class _ImportTracking(Rule):
    """Shared import-alias bookkeeping for module-reference rules."""

    #: module path -> set of local aliases, e.g. "numpy" -> {"np"}
    def __init__(self, path: str):
        super().__init__(path)
        self.module_aliases: dict[str, set[str]] = {}
        #: local name -> (module, original name) for ``from m import n as l``
        self.from_imports: dict[str, tuple[str, str]] = {}

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            # ``import numpy.random`` binds "numpy"; with an asname the
            # alias refers to the full dotted module.
            module = alias.name if alias.asname else alias.name.split(".")[0]
            self.module_aliases.setdefault(module, set()).add(local)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        for alias in node.names:
            local = alias.asname or alias.name
            self.from_imports[local] = (module, alias.name)
            # ``from numpy import random as npr`` aliases a submodule.
            self.module_aliases.setdefault(
                f"{module}.{alias.name}" if module else alias.name, set()
            ).add(local)
        self.generic_visit(node)

    def _aliases(self, module: str) -> set[str]:
        return self.module_aliases.get(module, set())


def _is_unseeded_rng_call(node: ast.Call) -> bool:
    """``default_rng()`` / ``default_rng(None)`` — no reproducible seed."""
    if node.args:
        first = node.args[0]
        return isinstance(first, ast.Constant) and first.value is None
    for kw in node.keywords:
        if kw.arg == "seed":
            value = kw.value
            return isinstance(value, ast.Constant) and value.value is None
    return True


class UnseededRandomness(_ImportTracking):
    """RS001: all randomness must flow through an explicitly seeded generator."""

    rule_id = "RS001"
    summary = "unseeded or process-global randomness"
    rationale = (
        "Results must be a pure function of (request, seed).  The stdlib "
        "``random`` module and the legacy ``np.random.*`` globals share "
        "hidden process state, and ``default_rng()`` without a seed draws "
        "OS entropy — all three make runs irreproducible and break the "
        "engine's cache/retry bit-identity contracts."
    )

    _LEGACY_OK = frozenset({"default_rng", "Generator", "SeedSequence",
                            "PCG64", "Philox", "SFC64", "MT19937",
                            "BitGenerator", "RandomState"})

    def visit_Call(self, node: ast.Call) -> None:
        chain = _dotted_chain(node.func)
        if chain is not None:
            self._check_chain(node, chain)
        self.generic_visit(node)

    def _check_chain(self, node: ast.Call, chain: list[str]) -> None:
        head, rest = chain[0], chain[1:]
        # random.random(), random.seed(), rnd.choice(), ...
        if head in self._aliases("random") and len(rest) == 1:
            self.report(
                node,
                f"call to stdlib random.{rest[0]}: process-global RNG; "
                f"thread a seeded np.random.Generator instead",
            )
            return
        # np.random.<fn>() and numpy.random-submodule aliases
        fn: str | None = None
        if head in self._aliases("numpy") and len(rest) == 2 and rest[0] == "random":
            fn = rest[1]
        elif head in self._aliases("numpy.random") and len(rest) == 1:
            fn = rest[0]
        if fn is not None:
            if fn == "default_rng":
                if _is_unseeded_rng_call(node):
                    self.report(
                        node,
                        "default_rng() without a seed draws OS entropy; "
                        "pass an explicit seed or Generator",
                    )
            elif fn == "RandomState" or fn not in self._LEGACY_OK:
                self.report(
                    node,
                    f"legacy global numpy RNG np.random.{fn}: shares hidden "
                    f"process state; use a seeded np.random.Generator",
                )
            return
        # from numpy.random import default_rng; default_rng()
        if len(chain) == 1:
            origin = self.from_imports.get(head)
            if origin is None:
                return
            module, original = origin
            if original == "default_rng" and module.startswith("numpy"):
                if _is_unseeded_rng_call(node):
                    self.report(
                        node,
                        "default_rng() without a seed draws OS entropy; "
                        "pass an explicit seed or Generator",
                    )
            elif module == "random":
                self.report(
                    node,
                    f"call to stdlib random.{original}: process-global RNG; "
                    f"thread a seeded np.random.Generator instead",
                )


class WallClockRead(_ImportTracking):
    """RS002: hot paths must not read the wall clock."""

    rule_id = "RS002"
    summary = "wall-clock read in a deterministic hot path"
    scope = ("sparksim", "tuning", "engine")
    rationale = (
        "Simulated time is the *output* of the cost model; reading host "
        "wall-clock time inside sparksim/tuning/engine couples results to "
        "the machine and the moment.  Monotonic telemetry "
        "(time.perf_counter / time.monotonic) is explicitly allowed — it "
        "feeds counters, never results."
    )

    _BAD_TIME = frozenset({"time", "time_ns", "localtime", "ctime",
                           "gmtime", "asctime", "strftime"})
    _BAD_DATETIME = frozenset({"now", "utcnow", "today"})
    _DATETIME_CLASSES = frozenset({"datetime", "date"})

    def visit_Call(self, node: ast.Call) -> None:
        chain = _dotted_chain(node.func)
        if chain is not None:
            self._check_chain(node, chain)
        self.generic_visit(node)

    def _check_chain(self, node: ast.Call, chain: list[str]) -> None:
        head, rest = chain[0], chain[1:]
        if head in self._aliases("time") and len(rest) == 1 and rest[0] in self._BAD_TIME:
            self.report(node, f"wall-clock read time.{rest[0]}() in a hot path; "
                              f"derive time from the simulation, or use "
                              f"perf_counter for telemetry")
            return
        if len(chain) == 1:
            origin = self.from_imports.get(head)
            if origin is not None and origin[0] == "time" and origin[1] in self._BAD_TIME:
                self.report(node, f"wall-clock read time.{origin[1]}() in a hot path; "
                                  f"derive time from the simulation, or use "
                                  f"perf_counter for telemetry")
            return
        # datetime.now() / datetime.datetime.now() / date.today() ...
        if rest and rest[-1] in self._BAD_DATETIME:
            base = chain[:-1]
            is_datetime_class = (
                # from datetime import datetime; datetime.now()
                (len(base) == 1 and self.from_imports.get(base[0], ("", ""))[0] == "datetime"
                 and self.from_imports.get(base[0], ("", ""))[1] in self._DATETIME_CLASSES)
                # import datetime; datetime.datetime.now()
                or (len(base) == 2 and base[0] in self._aliases("datetime")
                    and base[1] in self._DATETIME_CLASSES)
            )
            if is_datetime_class:
                self.report(
                    node,
                    f"wall-clock read {'.'.join(chain)}() in a hot path; "
                    f"results must not depend on the host clock",
                )


class MutableDefaultArgument(Rule):
    """RS003: default argument values must be immutable."""

    rule_id = "RS003"
    summary = "mutable default argument"
    rationale = (
        "A mutable default is evaluated once and shared across calls — "
        "state leaks between evaluations, which already bit us once "
        "(Calibration() defaults, fixed in PR 1).  Use None plus an "
        "in-body default."
    )

    _MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray",
                                "OrderedDict", "defaultdict", "Counter",
                                "deque"})

    def _check_defaults(self, node) -> None:
        args = node.args
        for default in list(args.defaults) + list(args.kw_defaults):
            if default is None:
                continue
            if isinstance(default, (ast.List, ast.Dict, ast.Set,
                                    ast.ListComp, ast.DictComp, ast.SetComp)):
                self.report(default, "mutable default argument (shared across "
                                     "calls); use None and default inside the body")
            elif isinstance(default, ast.Call):
                chain = _dotted_chain(default.func)
                if chain and chain[-1] in self._MUTABLE_CALLS:
                    self.report(default,
                                f"mutable default argument {chain[-1]}() "
                                f"(shared across calls); use None and default "
                                f"inside the body")

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_defaults(node)
        self.generic_visit(node)


class FloatEquality(Rule):
    """RS004: no ``==`` / ``!=`` against float literals in bit-identity modules."""

    rule_id = "RS004"
    summary = "float equality comparison in a bit-identity module"
    scope = ("simulator.py", "costmodel.py", "scheduler.py")
    rationale = (
        "simulator.py / costmodel.py / scheduler.py carry a bit-identity "
        "contract (run_batch == scalar run loop, vector scheduler == heap "
        "scheduler).  Equality against float literals is where refactors "
        "silently diverge: an expression reassociated by a 'harmless' "
        "cleanup stops comparing equal.  Compare integers, or use an "
        "explicit tolerance; suppress only for exact-value sentinels."
    )

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for i, op in enumerate(node.ops):
            if isinstance(op, (ast.Eq, ast.NotEq)):
                left, right = operands[i], operands[i + 1]
                for side in (left, right):
                    if isinstance(side, ast.Constant) and type(side.value) is float:
                        self.report(
                            node,
                            f"float {'==' if isinstance(op, ast.Eq) else '!='} "
                            f"{side.value!r} in a bit-identity-contracted module; "
                            f"compare integers or use an explicit tolerance",
                        )
                        break
        self.generic_visit(node)


def _literal_strs(node: ast.expr) -> list[str] | None:
    """String elements of a tuple/list/str literal, else None."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return [node.value]
    if isinstance(node, (ast.Tuple, ast.List)):
        out = []
        for element in node.elts:
            if not (isinstance(element, ast.Constant)
                    and isinstance(element.value, str)):
                return None
            out.append(element.value)
        return out
    return None


class SlottedClassAttrWrite(Rule):
    """RS005: slotted classes only write attributes declared in ``__slots__``."""

    rule_id = "RS005"
    summary = "attribute write outside __slots__ on a slotted class"
    rationale = (
        "Hot-path classes (Configuration) declare __slots__ so per-instance "
        "memos stay cheap; a write to an undeclared attribute raises "
        "AttributeError at runtime, but only on the code path that writes — "
        "exactly the bug a refactor ships.  Declare the slot or drop the "
        "write."
    )

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        slots = self._declared_slots(node)
        if slots is not None:
            allowed = slots | self._property_setter_names(node)
            for method in node.body:
                if isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    self._check_method(method, allowed)
        self.generic_visit(node)

    @staticmethod
    def _declared_slots(node: ast.ClassDef) -> set[str] | None:
        for stmt in node.body:
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            for target in targets:
                if (value is not None and isinstance(target, ast.Name)
                        and target.id == "__slots__"):
                    names = _literal_strs(value)
                    # Dynamically-built __slots__ can't be checked statically.
                    return set(names) if names is not None else None
        return None

    @staticmethod
    def _property_setter_names(node: ast.ClassDef) -> set[str]:
        names = set()
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for decorator in stmt.decorator_list:
                    if (isinstance(decorator, ast.Attribute)
                            and decorator.attr == "setter"):
                        names.add(stmt.name)
        return names

    def _check_method(self, method, allowed: set[str]) -> None:
        if not method.args.args:
            return
        first_arg = method.args.args[0].arg
        if first_arg == "cls":
            return
        for sub in ast.walk(method):
            if (isinstance(sub, ast.Attribute)
                    and isinstance(sub.ctx, ast.Store)
                    and isinstance(sub.value, ast.Name)
                    and sub.value.id == first_arg
                    and sub.attr not in allowed):
                self.report(
                    sub,
                    f"write to {first_arg}.{sub.attr} not declared in "
                    f"__slots__ {tuple(sorted(allowed))}; declare the slot "
                    f"or drop the write",
                )


class CacheKeyPurity(Rule):
    """RS006: ``cache_key()`` covers every field except declared exclusions."""

    rule_id = "RS006"
    summary = "cache key out of sync with declared fields/exclusions"
    rationale = (
        "Engine memoization and retry bit-identity hinge on cache_key() "
        "covering the *full* evaluation identity and nothing volatile: a "
        "field silently missing conflates distinct runs; reading an "
        "excluded field (EvalRequest.attempt) makes retried results "
        "diverge from first-try results.  Exclusions are declared in "
        "``_cache_key_excluded`` so they are auditable."
    )

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        cache_key = next(
            (stmt for stmt in node.body
             if isinstance(stmt, ast.FunctionDef) and stmt.name == "cache_key"),
            None,
        )
        if cache_key is not None:
            self._check_class(node, cache_key)
        self.generic_visit(node)

    def _check_class(self, node: ast.ClassDef, cache_key: ast.FunctionDef) -> None:
        fields: dict[str, ast.AnnAssign] = {}
        excluded: list[str] = []
        excluded_stmt: ast.stmt | None = None
        for stmt in node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                name = stmt.target.id
                annotation = ast.unparse(stmt.annotation)
                if name == "_cache_key_excluded":
                    names = _literal_strs(stmt.value) if stmt.value else None
                    excluded, excluded_stmt = list(names or ()), stmt
                elif "ClassVar" not in annotation and not name.startswith("_"):
                    fields[name] = stmt
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if (isinstance(target, ast.Name)
                            and target.id == "_cache_key_excluded"):
                        names = _literal_strs(stmt.value)
                        excluded, excluded_stmt = list(names or ()), stmt

        if not fields:
            return
        if not cache_key.args.args:
            return
        self_name = cache_key.args.args[0].arg
        reads = {
            sub.attr
            for sub in ast.walk(cache_key)
            if isinstance(sub, ast.Attribute)
            and isinstance(sub.ctx, ast.Load)
            and isinstance(sub.value, ast.Name)
            and sub.value.id == self_name
        }
        for name in excluded:
            if name in reads:
                self.report(
                    cache_key,
                    f"cache_key() reads {name!r}, which _cache_key_excluded "
                    f"declares outside the evaluation identity",
                )
            if name not in fields and excluded_stmt is not None:
                self.report(
                    excluded_stmt,
                    f"_cache_key_excluded names unknown field {name!r}",
                )
        for name, stmt in fields.items():
            if name not in reads and name not in excluded:
                self.report(
                    stmt,
                    f"field {name!r} is neither read in cache_key() nor "
                    f"declared in _cache_key_excluded; two distinct requests "
                    f"would share one cache entry",
                )


ALL_RULES: tuple[type[Rule], ...] = (
    UnseededRandomness,
    WallClockRead,
    MutableDefaultArgument,
    FloatEquality,
    SlottedClassAttrWrite,
    CacheKeyPurity,
)


def get_rules(ids=None) -> tuple[type[Rule], ...]:
    """The rule classes to run, optionally filtered by ID."""
    if ids is None:
        return ALL_RULES
    wanted = {rule_id.upper() for rule_id in ids}
    unknown = wanted - {rule.rule_id for rule in ALL_RULES}
    if unknown:
        raise ValueError(f"unknown rule id(s): {sorted(unknown)}")
    return tuple(rule for rule in ALL_RULES if rule.rule_id in wanted)


def rule_catalogue() -> list[dict[str, Any]]:
    """Catalogue rows for ``--list-rules`` and the docs."""
    return [
        {
            "id": rule.rule_id,
            "severity": rule.severity.value,
            "summary": rule.summary,
            "scope": list(rule.scope) if rule.scope else None,
            "rationale": " ".join(rule.rationale.split()),
        }
        for rule in ALL_RULES
    ]
