"""Interprocedural flow rules (``RF001``—``RF005``) over the call graph.

Where the per-file rules (:mod:`repro.staticcheck.rules`) pin invariants
inside one function, these walk :class:`~repro.staticcheck.graph.CallGraph`
edges and report findings with the full call chain from the analysis
entry point down to the violating statement.  Every finding's ``chain``
hops render as ``"path:line caller -> callee"``.

Soundness: a flow rule only follows **resolved** edges.  Calls the graph
could not resolve sit in its ``unresolved`` bucket and are *not*
traversed — so a violation hidden behind dynamic dispatch can escape.
The CLI prints the resolution rate for exactly this reason; treat a
clean ``--flow`` run as "clean over the resolved 90-odd percent", not as
a proof.

Suppressions use the same ``# staticcheck: ignore[RFxxx]`` markers as
the per-file rules and apply at the line the finding lands on — the
*callee*'s line, not the entry point's.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import ClassVar, Iterable, Sequence

from .graph import CallGraph, FunctionInfo, build_call_graph
from .model import Finding, LintResult, Severity, parse_suppressions

__all__ = [
    "FlowRule",
    "FlowReport",
    "ALL_FLOW_RULES",
    "get_flow_rules",
    "flow_rule_catalogue",
    "run_flow_rules",
    "lint_flow",
]

# --------------------------------------------------------------------------
# shared classification helpers
# --------------------------------------------------------------------------

#: module-path segments that mark seeding-contract entry points (RF001)
_SEEDED_SEGMENTS = frozenset({"sparksim", "tuning", "engine"})

#: module-path segments whose exception handlers are audited (RF004)
_DISPATCH_SEGMENTS = frozenset({"engine", "retry"})

#: names whose presence in a seed expression certifies provenance
_SEEDY_RE = re.compile(r"(seed|rng|salt|entropy|derive)", re.IGNORECASE)

#: attribute/name fragments that count as recording a failure (RF004)
_FAILURE_RE = re.compile(
    r"(fail|counter|record|retr|error|timeout|exhaust|degrad|abort)",
    re.IGNORECASE,
)


def _is_rng_construction(external: str) -> bool:
    """Constructions and global-state draws — NOT seeded-generator usage.

    ``numpy.random.default_rng`` (a construction) is in; drawing from an
    already-constructed generator (``numpy.random.default_rng.normal``,
    i.e. ``self.rng.normal(...)``) is the sanctioned pattern and out.
    Legacy module-level APIs (``numpy.random.rand``, ``random.randint``)
    draw from hidden global state, so they count as unseedable
    constructions too.
    """
    for marker in (".default_rng.", ".Generator.", ".RandomState.",
                   ".Random."):
        if marker in external:
            return False
    base = external.rsplit(".", 1)[-1]
    if base in {"default_rng", "Generator", "RandomState", "Random"}:
        return True
    return external.startswith("numpy.random.") \
        or external.startswith("random.")


def _is_rng_usage(external: str) -> bool:
    return (
        _is_rng_construction(external)
        or external.startswith("numpy.random.")
        or external.startswith("random.")
        or ".default_rng." in external
    )


_WALL_CLOCK = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "datetime.datetime.now", "datetime.datetime.utcnow", "datetime.now",
    "datetime.utcnow", "uuid.uuid4", "uuid.uuid1", "os.urandom",
})


def _is_wall_clock(external: str) -> bool:
    return external in _WALL_CLOCK or external.endswith(".datetime.now")


def _module_segments(module: str) -> frozenset[str]:
    return frozenset(module.split("."))


def _dotted_text(func: ast.expr) -> str | None:
    parts: list[str] = []
    while isinstance(func, ast.Attribute):
        parts.append(func.attr)
        func = func.value
    if isinstance(func, ast.Name):
        parts.append(func.id)
        return ".".join(reversed(parts))
    return None


def _call_node_at(info: FunctionInfo, line: int, col: int,
                  text: str) -> ast.Call | None:
    """Find the Call a site refers to; chained calls like
    ``default_rng(s).normal()`` share (line, col) with their receiver, so
    the rendered callee text disambiguates."""
    fallback: ast.Call | None = None
    for node in ast.walk(info.node):
        if isinstance(node, ast.Call) and node.lineno == line \
                and node.col_offset == col:
            if _dotted_text(node.func) == text:
                return node
            if fallback is None:
                fallback = node
    return fallback


# --------------------------------------------------------------------------
# rule scaffolding
# --------------------------------------------------------------------------

class FlowRule:
    """Base class: one interprocedural invariant over the call graph."""

    rule_id: ClassVar[str] = "RF000"
    severity: ClassVar[Severity] = Severity.ERROR
    summary: ClassVar[str] = ""
    rationale: ClassVar[str] = ""

    def check(self, graph: CallGraph) -> list[Finding]:  # pragma: no cover
        raise NotImplementedError

    def report(self, path: str, line: int, col: int, message: str,
               chain: tuple[str, ...] = ()) -> Finding:
        return Finding(
            path=path, line=line, col=col, rule_id=self.rule_id,
            message=message, severity=self.severity, chain=chain,
        )


# --------------------------------------------------------------------------
# RF001 — seed provenance
# --------------------------------------------------------------------------

class _Tainter:
    """Decides whether a seed expression traces back to real provenance.

    Tainted (= acceptable) sources: any name or attribute matching the
    seed/rng/salt pattern (parameters and ``self.salt`` style state), a
    call whose name documents a derivation (``derive_seed``,
    ``_seed_for``), and any expression built from tainted parts
    (``[self.salt & MASK, seed & MASK]`` stays tainted).  Locals are
    chased through their assignments, so ``s = seed + i`` then
    ``default_rng(s)`` passes.
    """

    def __init__(self, info: FunctionInfo):
        self.assignments: dict[str, list[ast.expr]] = {}
        for node in ast.walk(info.node):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self.assignments.setdefault(target.id, []).append(
                            node.value
                        )
            elif isinstance(node, ast.AnnAssign) and node.value is not None \
                    and isinstance(node.target, ast.Name):
                self.assignments.setdefault(node.target.id, []).append(
                    node.value
                )

    def tainted(self, expr: ast.expr, seen: frozenset[str] = frozenset()) -> bool:
        if isinstance(expr, ast.Name):
            if _SEEDY_RE.search(expr.id):
                return True
            if expr.id in seen:
                return False
            return any(
                self.tainted(value, seen | {expr.id})
                for value in self.assignments.get(expr.id, [])
            )
        if isinstance(expr, ast.Attribute):
            if _SEEDY_RE.search(expr.attr):
                return True
            return self.tainted(expr.value, seen)
        if isinstance(expr, ast.Call):
            chain: list[str] = []
            func = expr.func
            while isinstance(func, ast.Attribute):
                chain.append(func.attr)
                func = func.value
            if isinstance(func, ast.Name):
                chain.append(func.id)
            if any(_SEEDY_RE.search(part) for part in chain):
                return True
            return any(self.tainted(arg, seen) for arg in expr.args) or any(
                kw.value is not None and self.tainted(kw.value, seen)
                for kw in expr.keywords
            )
        if isinstance(expr, ast.Constant):
            return False
        return any(
            self.tainted(child, seen)
            for child in ast.iter_child_nodes(expr)
            if isinstance(child, ast.expr)
        )


class SeedProvenanceRule(FlowRule):
    """RF001: reachable RNG constructions must carry seed provenance."""

    rule_id = "RF001"
    summary = (
        "RNG constructions reachable from sparksim/tuning/engine entry "
        "points must be seeded from an explicit seed/rng parameter or a "
        "documented derivation"
    )
    rationale = (
        "Per-candidate determinism is the contract the whole execution "
        "history rests on; one unseeded default_rng() buried a call deep "
        "silently unfixes every downstream fingerprint."
    )

    def check(self, graph: CallGraph) -> list[Finding]:
        roots = [
            info.qname
            for info in graph.functions.values()
            if info.is_public
            and _module_segments(info.module) & _SEEDED_SEGMENTS
        ]
        parents = graph.reach_parents(roots)
        findings: list[Finding] = []
        for qname in sorted(parents):
            info = graph.functions[qname]
            tainter: _Tainter | None = None
            for site in graph.sites_of(qname):
                if site.external is None \
                        or not _is_rng_construction(site.external):
                    continue
                call = _call_node_at(info, site.line, site.col, site.text)
                if call is None:        # pragma: no cover - defensive
                    continue
                if tainter is None:
                    tainter = _Tainter(info)
                seed_args = list(call.args) + [
                    kw.value for kw in call.keywords if kw.value is not None
                ]
                if seed_args and any(tainter.tainted(a) for a in seed_args):
                    continue
                reason = ("no seed argument" if not seed_args
                          else "seed has no provenance (literal or "
                               "underived value)")
                findings.append(self.report(
                    site.path, site.line, site.col,
                    f"RNG constructed via {site.external} in {qname} "
                    f"with {reason}; pass a seed/rng parameter or a "
                    f"documented derivation",
                    chain=graph.chain_to(parents, qname),
                ))
        return findings


# --------------------------------------------------------------------------
# RF002 — cache-purity closure
# --------------------------------------------------------------------------

#: constructors whose result counts as a fresh function-local object
_FRESH_CALL_NAMES = frozenset({
    "list", "dict", "set", "tuple", "frozenset", "bytearray",
    "OrderedDict", "defaultdict", "Counter", "deque", "sorted",
})


def _fresh_locals(node: ast.AST) -> set[str]:
    """Names assigned only from fresh, function-local values."""
    fresh: set[str] = set()
    spoiled: set[str] = set()
    for sub in ast.walk(node):
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(sub, ast.Assign):
            targets, value = sub.targets, sub.value
        elif isinstance(sub, ast.AnnAssign) and sub.value is not None:
            targets, value = [sub.target], sub.value
        if value is None:
            continue
        is_fresh = isinstance(value, (
            ast.Dict, ast.List, ast.Set, ast.Tuple, ast.Constant,
            ast.ListComp, ast.DictComp, ast.SetComp, ast.GeneratorExp,
        ))
        if not is_fresh and isinstance(value, ast.Call):
            func = value.func
            name = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else ""
            )
            is_fresh = name in _FRESH_CALL_NAMES
        for target in targets:
            if isinstance(target, ast.Name):
                if is_fresh and target.id not in spoiled:
                    fresh.add(target.id)
                else:
                    spoiled.add(target.id)
                    fresh.discard(target.id)
    return fresh


class CachePurityRule(FlowRule):
    """RF002: the cache-key/fingerprint closure must be pure."""

    rule_id = "RF002"
    summary = (
        "every callable reachable from cache_key()/fingerprint roots must "
        "be pure: no writes to non-local state, no RNG, no wall clock"
    )
    rationale = (
        "Cache hits replace execution; an impure key path makes two "
        "identical configurations hash apart (wasted reruns) or distinct "
        "ones collide (wrong results served from cache)."
    )

    @staticmethod
    def _roots(graph: CallGraph) -> list[str]:
        return [
            info.qname
            for info in graph.functions.values()
            if info.name == "cache_key" or "fingerprint" in info.name
        ]

    def check(self, graph: CallGraph) -> list[Finding]:
        parents = graph.reach_parents(self._roots(graph))
        findings: list[Finding] = []
        for qname in sorted(parents):
            info = graph.functions[qname]
            chain = graph.chain_to(parents, qname)
            findings.extend(self._check_function(graph, info, chain))
        return findings

    def _check_function(self, graph: CallGraph, info: FunctionInfo,
                        chain: tuple[str, ...]) -> list[Finding]:
        findings: list[Finding] = []
        fresh = _fresh_locals(info.node)
        self_name = info.self_name
        for node in ast.walk(info.node):
            if isinstance(node, ast.Global):
                findings.append(self.report(
                    info.path, node.lineno, node.col_offset,
                    f"{info.qname} declares `global "
                    f"{', '.join(node.names)}` inside the cache-key "
                    f"closure; fingerprints must not touch module state",
                    chain=chain,
                ))
            elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    if not isinstance(target, (ast.Attribute, ast.Subscript)):
                        continue
                    base = target.value
                    while isinstance(base, (ast.Attribute, ast.Subscript)):
                        base = base.value
                    if isinstance(base, ast.Name) and base.id in fresh:
                        continue
                    what = ("attribute" if isinstance(target, ast.Attribute)
                            else "subscript")
                    owner = (base.id if isinstance(base, ast.Name)
                             else "<expr>")
                    if owner == self_name:
                        desc = f"self.{_store_name(target)}"
                    else:
                        desc = f"{owner} ({what} store)"
                    findings.append(self.report(
                        info.path, target.lineno, target.col_offset,
                        f"{info.qname} writes non-local state "
                        f"({desc}) inside the cache-key closure",
                        chain=chain,
                    ))
        for site in graph.sites_of(info.qname):
            if site.external is None:
                continue
            if _is_rng_usage(site.external):
                findings.append(self.report(
                    site.path, site.line, site.col,
                    f"{info.qname} draws randomness ({site.external}) "
                    f"inside the cache-key closure",
                    chain=chain,
                ))
            elif _is_wall_clock(site.external):
                findings.append(self.report(
                    site.path, site.line, site.col,
                    f"{info.qname} reads the wall clock ({site.external}) "
                    f"inside the cache-key closure",
                    chain=chain,
                ))
        return findings


def _store_name(target: ast.expr) -> str:
    if isinstance(target, ast.Attribute):
        return target.attr
    return "<subscript>"


# --------------------------------------------------------------------------
# RF003 — process-pool race detector
# --------------------------------------------------------------------------

class PoolRaceRule(FlowRule):
    """RF003: functions shipped to worker processes must not race on globals."""

    rule_id = "RF003"
    summary = (
        "functions shipped to ParallelExecutor/ProcessPoolExecutor workers "
        "must not write module-level state nor read module-level mutables "
        "written elsewhere in the package"
    )
    rationale = (
        "A forked worker sees a stale copy of module state and its writes "
        "are lost on exit; both bugs are invisible locally and flaky in "
        "CI.  Per-worker state installed by a pool initializer is the "
        "sanctioned pattern and stays allowed."
    )

    def check(self, graph: CallGraph) -> list[Finding]:
        shipped_roots, init_roots = self._discover_shipped(graph)
        shipped_parents = graph.reach_parents(shipped_roots)
        initializer_closure = graph.closure(init_roots)
        findings: list[Finding] = []
        for qname in sorted(shipped_parents):
            if qname in initializer_closure:
                # initializer closure is the sanctioned per-worker-state
                # pattern: it runs once per worker before any task
                continue
            info = graph.functions[qname]
            chain = graph.chain_to(shipped_parents, qname)
            findings.extend(self._check_function(
                graph, info, chain, initializer_closure
            ))
        return findings

    @staticmethod
    def _discover_shipped(graph: CallGraph) -> tuple[list[str], list[str]]:
        """Functions passed to ``.submit``/``.map`` and ``initializer=``."""
        shipped: list[str] = []
        initializers: list[str] = []
        for info in graph.functions.values():
            mod = graph.modules.get(info.module)
            if mod is None:
                continue
            for node in ast.walk(info.node):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                attr = func.attr if isinstance(func, ast.Attribute) else None
                if attr in {"submit", "map"} and node.args:
                    first = node.args[0]
                    if isinstance(first, ast.Name):
                        target = mod.functions.get(first.id) \
                            or mod.imports.get(first.id)
                        if target in graph.functions:
                            shipped.append(target)
                for kw in node.keywords:
                    if kw.arg == "initializer" \
                            and isinstance(kw.value, ast.Name):
                        target = mod.functions.get(kw.value.id) \
                            or mod.imports.get(kw.value.id)
                        if target in graph.functions:
                            initializers.append(target)
        return shipped, initializers

    def _check_function(self, graph: CallGraph, info: FunctionInfo,
                        chain: tuple[str, ...],
                        initializer_closure: set[str]) -> list[Finding]:
        mod = graph.modules.get(info.module)
        if mod is None:                  # pragma: no cover - defensive
            return []
        findings: list[Finding] = []
        declared: set[str] = set()
        local_names: set[str] = set()
        for node in ast.walk(info.node):
            if isinstance(node, ast.Global):
                declared.update(node.names)
                findings.append(self.report(
                    info.path, node.lineno, node.col_offset,
                    f"{info.qname} runs in worker processes but writes "
                    f"module-level state (`global "
                    f"{', '.join(node.names)}`); worker writes are lost "
                    f"at task exit",
                    chain=chain,
                ))
            elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                for t in targets:
                    if isinstance(t, ast.Name):
                        local_names.add(t.id)
            elif isinstance(node, (ast.For, ast.comprehension)):
                for t in ast.walk(node.target):
                    if isinstance(t, ast.Name):
                        local_names.add(t.id)
        args = info.node.args
        for a in (list(args.posonlyargs) + list(args.args)
                  + list(args.kwonlyargs)
                  + ([args.vararg] if args.vararg else [])
                  + ([args.kwarg] if args.kwarg else [])):
            local_names.add(a.arg)
        local_names -= declared
        # in-place mutation of module-level containers
        for node in ast.walk(info.node):
            if not isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                continue
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for t in targets:
                if not isinstance(t, (ast.Subscript, ast.Attribute)):
                    continue
                base = t.value
                while isinstance(base, (ast.Subscript, ast.Attribute)):
                    base = base.value
                if isinstance(base, ast.Name) \
                        and base.id not in local_names \
                        and base.id in mod.global_kinds:
                    findings.append(self.report(
                        info.path, t.lineno, t.col_offset,
                        f"{info.qname} runs in worker processes but "
                        f"mutates module-level `{base.id}`; the write "
                        f"never leaves the worker",
                        chain=chain,
                    ))
        # reads of module-level mutable state written elsewhere
        reported: set[tuple[str, int]] = set()
        for node in ast.walk(info.node):
            if not (isinstance(node, ast.Name)
                    and isinstance(node.ctx, ast.Load)):
                continue
            name = node.id
            if name in local_names or name in declared:
                continue
            if name not in mod.global_kinds:
                continue
            writers = graph.global_writers.get((mod.name, name), set())
            mutable = mod.global_kinds[name] == "mutable" or bool(writers)
            outside = {
                w for w in writers
                if w not in initializer_closure and w != info.qname
            }
            if mutable and outside and (name, node.lineno) not in reported:
                reported.add((name, node.lineno))
                writer_names = ", ".join(sorted(outside))
                findings.append(self.report(
                    info.path, node.lineno, node.col_offset,
                    f"{info.qname} runs in worker processes but reads "
                    f"module-level mutable `{name}`, written by "
                    f"{writer_names}; forked workers see a stale copy",
                    chain=chain,
                ))
        return findings


# --------------------------------------------------------------------------
# RF004 — exception-flow audit
# --------------------------------------------------------------------------

class ExceptionFlowRule(FlowRule):
    """RF004: no silent exception swallow in engine/retry dispatch."""

    rule_id = "RF004"
    summary = (
        "every except handler reachable in engine/retry dispatch must "
        "re-raise, return a failure-marked result, or record into the "
        "failure counters"
    )
    rationale = (
        "The failure path is a first-class contract (PR 2): a swallowed "
        "exception turns a counted, retried, re-tuned fault into a "
        "silently wrong run."
    )

    def check(self, graph: CallGraph) -> list[Finding]:
        roots = [
            info.qname
            for info in graph.functions.values()
            if info.is_public
            and _module_segments(info.module) & _DISPATCH_SEGMENTS
        ]
        parents = graph.reach_parents(roots)
        findings: list[Finding] = []
        for qname in sorted(parents):
            info = graph.functions[qname]
            if not _module_segments(info.module) & _DISPATCH_SEGMENTS:
                # reachable helper living outside engine/retry modules is
                # out of contract scope
                continue
            chain = graph.chain_to(parents, qname)
            for node in ast.walk(info.node):
                if not isinstance(node, ast.ExceptHandler):
                    continue
                if self._handler_ok(node):
                    continue
                findings.append(self.report(
                    info.path, node.lineno, node.col_offset,
                    f"except handler in {info.qname} swallows the "
                    f"exception: add a re-raise, return a failure-marked "
                    f"result, or record into FailureCounters",
                    chain=chain,
                ))
        return findings

    @staticmethod
    def _handler_ok(handler: ast.ExceptHandler) -> bool:
        for node in ast.walk(handler):
            if isinstance(node, (ast.Raise, ast.Return, ast.Continue,
                                 ast.Break)):
                return True
            if isinstance(node, ast.Attribute) \
                    and _FAILURE_RE.search(node.attr):
                return True
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load) \
                    and _FAILURE_RE.search(node.id):
                return True
        return False


# --------------------------------------------------------------------------
# RF005 — scalar/batch divergence guard
# --------------------------------------------------------------------------

#: cost/effect leaves both halves of a scalar/batch pair must agree on,
#: by basename; a ``_batch`` suffix is stripped before comparison so the
#: vectorized twin of a leaf counts as the same leaf.
_LEAF_NAMES = frozenset({
    "compute_stage_cost", "compute_stage_cost_batch",
    "compute_plan_cost_batch",
    "schedule_stage", "schedule_stage_batch",
    "gc_fraction", "shuffle_read", "shuffle_write", "spill_outcome",
    "serializer_of", "codec_of", "resolve_num_tasks",
    "grant_resources", "_sample_durations", "_apply_speculation",
    "_list_schedule", "_median_1d", "_median_quantile_1d",
})

#: reviewed divergences, keyed by the scalar half's qualified name:
#: (scalar_only, batch_only) leaf basenames that are allowed to differ.
_PAIR_ALLOWANCES: dict[str, tuple[frozenset[str], frozenset[str]]] = {
    # The batch cost model deliberately inlines the vectorized forms of
    # the per-stage helpers (task counts, serializer/codec factors,
    # shuffle and spill arithmetic) and only calls out for gc_fraction;
    # bit-identity of the inlined math is pinned by
    # tests/sparksim/test_batch_identity.py.
    "repro.sparksim.costmodel.compute_stage_cost": (
        frozenset({"resolve_num_tasks", "serializer_of", "codec_of",
                   "shuffle_read", "shuffle_write", "spill_outcome"}),
        frozenset(),
    ),
    # The batch scheduler replaces numpy median/quantile dispatch inside
    # _apply_speculation with the local _median_1d/_median_quantile_1d
    # kernels; equivalence is pinned by the same bit-identity suite.
    "repro.sparksim.scheduler.schedule_stage": (
        frozenset({"_apply_speculation"}),
        frozenset({"_median_1d", "_median_quantile_1d"}),
    ),
    # run_batch keeps the scalar path reachable as its screening
    # fallback, so its closure is a strict superset; the extra batch
    # leaves are the scheduler kernels above plus the joint
    # (stages x candidates) plan sweep, which fuses the whole
    # compute_stage_cost_batch loop into one compiled program —
    # bit-identity of the fused sweep (OOM masks, spill arithmetic,
    # noise stream order) is pinned by test_batch_identity.py up to
    # 512-candidate batches.
    "repro.sparksim.simulator.SparkSimulator.run": (
        frozenset(),
        frozenset({"_median_1d", "_median_quantile_1d",
                   "compute_plan_cost_batch"}),
    ),
}


def _normalize_leaf(name: str) -> str:
    return name[:-6] if name.endswith("_batch") else name


class ScalarBatchDivergenceRule(FlowRule):
    """RF005: paired scalar/batch implementations share their leaf set."""

    rule_id = "RF005"
    summary = (
        "paired scalar/batch implementations (f / f_batch) must bottom "
        "out in the same whitelisted cost/effect leaf set"
    )
    rationale = (
        "The batch fast path is only legitimate while bit-identical to "
        "the scalar path; a leaf that one side calls and the other "
        "doesn't is exactly how drift starts, and hypothesis finds it "
        "days later if at all."
    )

    def check(self, graph: CallGraph) -> list[Finding]:
        findings: list[Finding] = []
        for scalar_q in sorted(graph.functions):
            batch_q = f"{scalar_q}_batch"
            if batch_q not in graph.functions:
                continue
            scalar_leaves = self._leaves(graph, scalar_q)
            batch_leaves = self._leaves(graph, batch_q)
            if not scalar_leaves and not batch_leaves:
                # pair is outside the cost/effect surface (e.g. a tuner's
                # suggest/suggest_batch) — nothing to compare
                continue
            allowed_scalar, allowed_batch = _PAIR_ALLOWANCES.get(
                scalar_q, (frozenset(), frozenset())
            )
            scalar_norm = {_normalize_leaf(n) for n in scalar_leaves}
            batch_norm = {_normalize_leaf(n) for n in batch_leaves}
            scalar_only = scalar_norm - batch_norm \
                - {_normalize_leaf(n) for n in allowed_scalar}
            batch_only = batch_norm - scalar_norm \
                - {_normalize_leaf(n) for n in allowed_batch}
            if not scalar_only and not batch_only:
                continue
            info = graph.functions[batch_q]
            divergence: list[str] = []
            if scalar_only:
                divergence.append(
                    "scalar-only leaves: " + ", ".join(sorted(scalar_only))
                )
            if batch_only:
                divergence.append(
                    "batch-only leaves: " + ", ".join(sorted(batch_only))
                )
            sample = sorted(scalar_only or batch_only)[0]
            root = scalar_q if scalar_only else batch_q
            findings.append(self.report(
                info.path, info.lineno, 0,
                f"{scalar_q} and {batch_q} bottom out in different "
                f"cost/effect leaves ({'; '.join(divergence)}); align the "
                f"implementations or record the divergence in the "
                f"reviewed allowance table",
                chain=self._chain_to_leaf(graph, root, sample),
            ))
        return findings

    @staticmethod
    def _leaves(graph: CallGraph, root: str) -> set[str]:
        closure = graph.closure([root])
        return {
            graph.functions[q].name
            for q in closure
            if q != root and graph.functions[q].name in _LEAF_NAMES
        }

    @staticmethod
    def _chain_to_leaf(graph: CallGraph, root: str,
                       leaf_basename: str) -> tuple[str, ...]:
        parents = graph.reach_parents([root])
        for qname in sorted(parents):
            if graph.functions[qname].name == leaf_basename:
                return graph.chain_to(parents, qname)
        return ()


# --------------------------------------------------------------------------
# driver
# --------------------------------------------------------------------------

ALL_FLOW_RULES: tuple[type[FlowRule], ...] = (
    SeedProvenanceRule,
    CachePurityRule,
    PoolRaceRule,
    ExceptionFlowRule,
    ScalarBatchDivergenceRule,
)


def get_flow_rules(ids: Iterable[str] | None = None) -> list[type[FlowRule]]:
    if ids is None:
        return list(ALL_FLOW_RULES)
    wanted = {i.upper() for i in ids}
    known = {r.rule_id for r in ALL_FLOW_RULES}
    unknown = wanted - known
    if unknown:
        raise ValueError(
            f"unknown flow rule id(s): {', '.join(sorted(unknown))}"
        )
    return [r for r in ALL_FLOW_RULES if r.rule_id in wanted]


def flow_rule_catalogue() -> list[dict[str, str]]:
    return [
        {
            "rule": rule.rule_id,
            "severity": rule.severity.value,
            "summary": rule.summary,
            "rationale": rule.rationale,
        }
        for rule in ALL_FLOW_RULES
    ]


@dataclass
class FlowReport:
    """Outcome of one flow pass: findings + graph health numbers."""

    result: LintResult
    stats: dict[str, object] = field(default_factory=dict)


def run_flow_rules(graph: CallGraph,
                   rules: Sequence[type[FlowRule]] = ALL_FLOW_RULES
                   ) -> list[Finding]:
    findings: list[Finding] = []
    for rule_cls in rules:
        findings.extend(rule_cls().check(graph))
    return findings


def lint_flow(paths: Iterable[str],
              rules: Sequence[type[FlowRule]] = ALL_FLOW_RULES,
              graph: CallGraph | None = None) -> FlowReport:
    """Build the call graph over ``paths`` and run the flow rules.

    Suppressions apply at the line each finding lands on — the callee's
    line — using the same ``# staticcheck: ignore[RFxxx]`` markers as
    the per-file pass.
    """
    if graph is None:
        graph = build_call_graph(paths)
    result = LintResult(n_files=len(graph.modules))
    suppression_cache: dict[str, object] = {}
    for finding in run_flow_rules(graph, rules):
        suppressions = suppression_cache.get(finding.path)
        if suppressions is None:
            mod = graph.module_of_path(finding.path)
            source = mod.source if mod is not None else ""
            suppressions = parse_suppressions(source)
            suppression_cache[finding.path] = suppressions
        if suppressions.silences(finding.line, finding.rule_id):
            result.suppressed.append(finding)
        else:
            result.findings.append(finding)
    result.findings.sort(key=Finding.sort_key)
    result.suppressed.sort(key=Finding.sort_key)
    return FlowReport(result=result, stats=graph.resolution_stats())
