"""``python -m repro.staticcheck`` — lint the repo's invariants.

Usage::

    python -m repro.staticcheck                  # lint src/repro + domain
    python -m repro.staticcheck src/repro        # explicit paths
    python -m repro.staticcheck --format json path/to/file.py
    python -m repro.staticcheck --list-rules
    python -m repro.staticcheck --rules RS001,RS004 src/repro
    python -m repro.staticcheck --no-domain tests/staticcheck/fixtures

Exit codes: 0 clean, 1 findings, 2 usage / IO error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .model import LintResult
from .reporter import render_json, render_text
from .rules import get_rules, rule_catalogue
from .runner import lint_paths

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.staticcheck",
        description=(
            "AST invariant linter + config-space validator for the repro "
            "package: determinism, cache-key purity, and domain sanity."
        ),
    )
    parser.add_argument(
        "paths", nargs="*",
        help="files or directories to lint (default: src/repro if it exists)",
    )
    parser.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--rules", metavar="IDS",
        help="comma-separated rule IDs to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--no-domain", action="store_true",
        help="skip the config-space/workload domain validator",
    )
    parser.add_argument(
        "--ignore-scopes", action="store_true",
        help="apply every rule to every file, ignoring path scopes",
    )
    return parser


def _default_paths() -> list[str]:
    candidate = Path("src") / "repro"
    if candidate.is_dir():
        return [str(candidate)]
    # Fall back to the installed package location (running from elsewhere).
    return [str(Path(__file__).resolve().parent.parent)]


def _print_catalogue() -> None:
    for row in rule_catalogue():
        scope = ", ".join(row["scope"]) if row["scope"] else "all files"
        print(f"{row['id']}  [{row['severity']}]  {row['summary']}")
        print(f"       scope: {scope}")
        print(f"       {row['rationale']}")


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        _print_catalogue()
        return 0
    try:
        rules = get_rules(args.rules.split(",")) if args.rules else get_rules()
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    paths = args.paths or _default_paths()
    try:
        result = lint_paths(paths, rules=rules,
                            respect_scopes=not args.ignore_scopes)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if not args.no_domain:
        domain = LintResult(findings=list(_run_domain()))
        result.extend(domain)

    if args.format == "json":
        print(render_json(result))
    else:
        print(render_text(result))
    return 0 if result.clean else 1


def _run_domain():
    from .domain import validate_default_domain

    return validate_default_domain()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
