"""``python -m repro.staticcheck`` — lint the repo's invariants.

Usage::

    python -m repro.staticcheck                  # lint src/repro + domain
    python -m repro.staticcheck --flow           # + interprocedural RF rules
    python -m repro.staticcheck src/repro        # explicit paths
    python -m repro.staticcheck --format json path/to/file.py
    python -m repro.staticcheck --list-rules
    python -m repro.staticcheck --rules RS001,RF002 src/repro
    python -m repro.staticcheck --no-domain tests/staticcheck/fixtures
    python -m repro.staticcheck --no-cache       # bypass the warm cache

Runs are incremental by default: per-file findings are cached in
``.staticcheck_cache.json`` keyed on content hashes (the flow and domain
passes on a whole-tree hash), so an unchanged tree re-renders without
re-parsing anything.  ``--no-cache`` forces a full re-analysis.

Exit codes: 0 clean, 1 findings, 2 usage / IO error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .flow import flow_rule_catalogue, get_flow_rules
from .incremental import CACHE_FILE, incremental_check
from .reporter import render_json, render_text
from .rules import get_rules, rule_catalogue

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.staticcheck",
        description=(
            "AST invariant linter + config-space validator for the repro "
            "package: determinism, cache-key purity, and domain sanity. "
            "--flow adds the interprocedural pass (seed provenance, "
            "cache-purity closure, pool races, exception flow, "
            "scalar/batch divergence) with call-chain traces."
        ),
    )
    parser.add_argument(
        "paths", nargs="*",
        help="files or directories to lint (default: src/repro if it exists)",
    )
    parser.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--rules", metavar="IDS",
        help=(
            "comma-separated rule IDs to run (default: all); RF ids "
            "implicitly enable the flow pass"
        ),
    )
    parser.add_argument(
        "--flow", action="store_true",
        help="also run the interprocedural RF rules over the call graph",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue (per-file + flow) and exit",
    )
    parser.add_argument(
        "--no-domain", action="store_true",
        help="skip the config-space/workload domain validator",
    )
    parser.add_argument(
        "--ignore-scopes", action="store_true",
        help="apply every rule to every file, ignoring path scopes",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help=f"re-analyze everything, ignoring {CACHE_FILE}",
    )
    parser.add_argument(
        "--cache-file", default=CACHE_FILE, metavar="PATH",
        help=f"incremental cache location (default: {CACHE_FILE})",
    )
    return parser


def _default_paths() -> list[str]:
    candidate = Path("src") / "repro"
    if candidate.is_dir():
        return [str(candidate)]
    # Fall back to the installed package location (running from elsewhere).
    return [str(Path(__file__).resolve().parent.parent)]


def _print_catalogue() -> None:
    for row in rule_catalogue():
        scope = ", ".join(row["scope"]) if row["scope"] else "all files"
        print(f"{row['id']}  [{row['severity']}]  {row['summary']}")
        print(f"       scope: {scope}")
        print(f"       {row['rationale']}")
    for row in flow_rule_catalogue():
        print(f"{row['rule']}  [{row['severity']}]  {row['summary']}")
        print("       scope: interprocedural (call graph)")
        print(f"       {row['rationale']}")


def _split_rule_ids(spec: str) -> tuple[list[str], list[str]]:
    """Partition ``--rules`` ids into per-file (RS/RD) and flow (RF) ids."""
    per_file: list[str] = []
    flow: list[str] = []
    for raw in spec.split(","):
        rule_id = raw.strip()
        if not rule_id:
            continue
        (flow if rule_id.upper().startswith("RF") else per_file).append(rule_id)
    return per_file, flow


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        _print_catalogue()
        return 0
    try:
        if args.rules:
            per_file_ids, flow_ids = _split_rule_ids(args.rules)
            rules = get_rules(per_file_ids) if per_file_ids else []
            flow_rules = (get_flow_rules(flow_ids) if flow_ids
                          else (get_flow_rules() if args.flow else None))
        else:
            rules = get_rules()
            flow_rules = get_flow_rules() if args.flow else None
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    paths = args.paths or _default_paths()
    try:
        outcome = incremental_check(
            paths,
            per_file_rules=rules,
            flow_rules=flow_rules,
            respect_scopes=not args.ignore_scopes,
            run_domain=not args.no_domain,
            cache_path=args.cache_file,
            use_cache=not args.no_cache,
        )
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    result = outcome.result
    if args.format == "json":
        print(render_json(result, stats=outcome.stats))
    else:
        print(render_text(result, stats=outcome.stats))
    return 0 if result.clean else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
