"""``python -m repro.staticcheck`` — lint the repo's invariants.

Usage::

    python -m repro.staticcheck                  # lint src/repro + domain
    python -m repro.staticcheck --flow           # + interprocedural RF rules
    python -m repro.staticcheck --concurrency    # + lock/async/shm RC rules
    python -m repro.staticcheck --arrays         # + shape/dtype RA rules
    python -m repro.staticcheck src/repro        # explicit paths
    python -m repro.staticcheck --format json path/to/file.py
    python -m repro.staticcheck --format sarif --arrays src/repro
    python -m repro.staticcheck --list-rules
    python -m repro.staticcheck --rules RS001,RF002,RC001 src/repro
    python -m repro.staticcheck --no-domain tests/staticcheck/fixtures
    python -m repro.staticcheck --no-cache       # bypass the warm cache

Rule ids come from one registry (:mod:`repro.staticcheck.registry`):
``RS`` per-file, ``RD`` domain, ``RF`` flow, ``RC`` concurrency, ``RA``
arrays.  Naming an ``RF``/``RC``/``RA`` id under ``--rules`` implicitly
enables that pass; naming ``RD`` ids narrows the domain report to them.

Runs are incremental by default: per-file findings are cached in
``.staticcheck_cache.json`` keyed on content hashes (the flow, domain,
concurrency, and arrays passes on a whole-tree hash), so an unchanged
tree re-renders without re-parsing anything.  ``--no-cache`` forces a
full re-analysis.

Exit codes: 0 clean, 1 findings, 2 usage / IO error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .arrays import get_array_rules
from .concurrency import get_concurrency_rules
from .flow import get_flow_rules
from .incremental import CACHE_FILE, incremental_check
from .registry import FAMILY_SCOPES, partition_rule_ids, rule_registry
from .reporter import render_json, render_text
from .rules import get_rules
from .sarif import render_sarif

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.staticcheck",
        description=(
            "AST invariant linter + config-space validator for the repro "
            "package: determinism, cache-key purity, and domain sanity. "
            "--flow adds the interprocedural pass (seed provenance, "
            "cache-purity closure, pool races, exception flow, "
            "scalar/batch divergence); --concurrency adds the lock-guard/"
            "async/shared-memory/lock-order pass; --arrays adds the "
            "shape/dtype abstract interpreter and hot-path perf lint — "
            "all with call-chain traces."
        ),
    )
    parser.add_argument(
        "paths", nargs="*",
        help="files or directories to lint (default: src/repro if it exists)",
    )
    parser.add_argument(
        "--format", choices=["text", "json", "sarif"], default="text",
        help="report format (default: text); sarif targets code scanning",
    )
    parser.add_argument(
        "--rules", metavar="IDS",
        help=(
            "comma-separated rule IDs to run (default: all); RF/RC ids "
            "implicitly enable the flow/concurrency pass"
        ),
    )
    parser.add_argument(
        "--flow", action="store_true",
        help="also run the interprocedural RF rules over the call graph",
    )
    parser.add_argument(
        "--concurrency", action="store_true",
        help=(
            "also run the RC concurrency rules (lock-guard inference, "
            "_locked reachability, async blocking calls, shared-memory "
            "lifecycle, lock-order cycles)"
        ),
    )
    parser.add_argument(
        "--arrays", action="store_true",
        help=(
            "also run the RA array-program rules (shape/dtype abstract "
            "interpretation, hot-path hidden copies and element loops, "
            "loop allocation, array work under locks)"
        ),
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the full rule catalogue (every family) and exit",
    )
    parser.add_argument(
        "--no-domain", action="store_true",
        help="skip the config-space/workload domain validator",
    )
    parser.add_argument(
        "--ignore-scopes", action="store_true",
        help="apply every rule to every file, ignoring path scopes",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help=f"re-analyze everything, ignoring {CACHE_FILE}",
    )
    parser.add_argument(
        "--cache-file", default=CACHE_FILE, metavar="PATH",
        help=f"incremental cache location (default: {CACHE_FILE})",
    )
    return parser


def _default_paths() -> list[str]:
    candidate = Path("src") / "repro"
    if candidate.is_dir():
        return [str(candidate)]
    # Fall back to the installed package location (running from elsewhere).
    return [str(Path(__file__).resolve().parent.parent)]


def _print_catalogue() -> None:
    for entry in rule_registry():
        print(f"{entry.rule_id}  [{entry.severity}]  {entry.summary}")
        if entry.scope:
            scope = ", ".join(entry.scope)
        else:
            scope = FAMILY_SCOPES.get(entry.family) or "all files"
        print(f"       scope: {scope}")
        print(f"       {entry.rationale}")


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        _print_catalogue()
        return 0
    domain_ids: list[str] = []
    try:
        if args.rules:
            by_family = partition_rule_ids(args.rules)
            per_file_ids = by_family.get("per-file", [])
            flow_ids = by_family.get("flow", [])
            conc_ids = by_family.get("concurrency", [])
            arr_ids = by_family.get("arrays", [])
            domain_ids = by_family.get("domain", [])
            rules = get_rules(per_file_ids) if per_file_ids else []
            flow_rules = (get_flow_rules(flow_ids) if flow_ids
                          else (get_flow_rules() if args.flow else None))
            conc_rules = (
                get_concurrency_rules(conc_ids) if conc_ids
                else (get_concurrency_rules() if args.concurrency else None)
            )
            arr_rules = (
                get_array_rules(arr_ids) if arr_ids
                else (get_array_rules() if args.arrays else None)
            )
        else:
            rules = get_rules()
            flow_rules = get_flow_rules() if args.flow else None
            conc_rules = get_concurrency_rules() if args.concurrency else None
            arr_rules = get_array_rules() if args.arrays else None
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    paths = args.paths or _default_paths()
    try:
        outcome = incremental_check(
            paths,
            per_file_rules=rules,
            flow_rules=flow_rules,
            concurrency_rules=conc_rules,
            array_rules=arr_rules,
            respect_scopes=not args.ignore_scopes,
            run_domain=not args.no_domain,
            cache_path=args.cache_file,
            use_cache=not args.no_cache,
        )
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    result = outcome.result
    if domain_ids:
        # an explicit RD subset narrows the domain report; the cache
        # stores the full validator output, so filter at render time
        keep = set(domain_ids)
        result.findings = [
            f for f in result.findings
            if not f.rule_id.startswith("RD") or f.rule_id in keep
        ]
    if args.format == "json":
        print(render_json(result, stats=outcome.stats))
    elif args.format == "sarif":
        print(render_sarif(result, stats=outcome.stats))
    else:
        print(render_text(result, stats=outcome.stats))
    return 0 if result.clean else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
