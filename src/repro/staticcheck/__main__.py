"""``python -m repro.staticcheck`` entry point."""

import sys

from .cli import main

sys.exit(main())
