"""Declarative hot-path table for the array-program rules.

The perf-sensitive RA rules (hidden copies, python-level element loops,
loop-invariant allocation) only matter where throughput matters.  Rather
than guessing from names, the hot set is *declared* here and seeded from
the surfaces the repo already measures: the ``PhaseProfiler`` phases
(suggest / evaluate / similarity), the costmodel's joint (S, N) batch
sweep, and the shared-memory columnar codec.  Each entry names root
functions by qname *suffix* (``engine.shm.decode_configs`` matches both
``repro.engine.shm.decode_configs`` and a fixture package's
``ra003_pkg.engine.shm.decode_configs``), and the hot set is the closure
of those roots over the call graph's **resolved** edges — the same
soundness caveat as the flow pass: a helper reached only through
dynamic dispatch is invisible and will not be linted as hot.

Files outside the ``repro`` package tree (fixtures, scratch snippets)
are treated as entirely hot, mirroring the per-file rules' scope
semantics: scoping narrows enforcement inside the package, it never
lets external known-bad code pass.
"""

from __future__ import annotations

from dataclasses import dataclass

from .graph import CallGraph

__all__ = ["HotPath", "HOT_PATHS", "resolve_hot_functions"]


@dataclass(frozen=True)
class HotPath:
    """One profiled surface and the root functions that implement it."""

    phase: str                   #: PhaseProfiler phase or bench surface
    roots: tuple[str, ...]       #: qname suffixes, resolved per graph
    reason: str


#: the table — one row per surface the profiler/benches time
HOT_PATHS: tuple[HotPath, ...] = (
    HotPath(
        phase="suggest",
        roots=(
            "tuning.bo.bayesopt.BayesOptTuner.suggest",
            "tuning.bo.gp.GaussianProcess.fit",
            "tuning.bo.gp.GaussianProcess.update",
            "tuning.bo.gp.GaussianProcess.predict",
        ),
        reason="PhaseProfiler 'suggest': surrogate fit/update + "
               "acquisition maximisation per proposal",
    ),
    HotPath(
        phase="evaluate",
        roots=(
            "sparksim.simulator.SparkSimulator.run_batch",
            "sparksim.costmodel.build_batch_inputs",
            "sparksim.costmodel.compute_stage_cost_batch",
            "sparksim.costmodel.build_plan_arrays",
            "sparksim.costmodel.compute_plan_cost_batch",
            "sparksim.scheduler.schedule_stage_batch",
        ),
        reason="PhaseProfiler 'evaluate': the (S, N) joint "
               "stage-candidate cost sweep behind the >=50k evals/s "
               "target",
    ),
    HotPath(
        phase="similarity",
        roots=(
            "core.simindex.SignatureIndex.find_similar",
            "core.similarity.find_similar_workloads",
        ),
        reason="PhaseProfiler 'similarity': the (W, d) signature "
               "nearest-neighbour op on every transfer decision",
    ),
    HotPath(
        phase="shm-codec",
        roots=(
            "engine.shm.encode_configs",
            "engine.shm.decode_configs",
            "engine.shm.write_payload",
            "engine.shm.read_payload",
        ),
        reason="columnar shared-memory codec: once per dispatch batch "
               "on the process-pool path",
    ),
)


def resolve_hot_functions(
        graph: CallGraph) -> tuple[dict[str, str], frozenset[str]]:
    """Resolve the table against one call graph.

    Returns ``(hot, roots)``: ``hot`` maps every hot function's qname
    to the phase that makes it hot (roots first, then every function
    reachable from a root over resolved internal edges), and ``roots``
    is the set of function qnames a table suffix actually matched —
    the health number the repo gate pins so a rename cannot silently
    turn the perf rules vacuous, and the start set hot-path chains are
    rendered from.
    """
    hot: dict[str, str] = {}
    roots: set[str] = set()
    for entry in HOT_PATHS:
        for suffix in entry.roots:
            for qname in graph.functions:
                if qname == suffix or qname.endswith("." + suffix):
                    roots.add(qname)
                    hot.setdefault(qname, entry.phase)
    stack = list(hot)
    while stack:
        qname = stack.pop()
        for site in graph.sites_of(qname):
            if site.kind != "internal" or site.callee not in graph.functions:
                continue
            if site.callee not in hot:
                hot[site.callee] = hot[qname]
                stack.append(site.callee)
    return hot, frozenset(roots)
