"""Lint driver: walk files, parse, run rules, apply suppressions.

Scope semantics: a rule with a ``scope`` tuple is contracted for files
whose path contains one of the named directories / file names.  Files
*outside* the ``repro`` package tree (test fixtures, scratch snippets)
get every rule at full strictness — scoping narrows enforcement inside
the package, it never lets external known-bad code pass.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, Sequence

from .model import Finding, LintResult, Severity, parse_suppressions
from .rules import ALL_RULES, Rule

__all__ = ["iter_python_files", "rule_applies", "lint_source", "lint_paths"]

#: directories never worth descending into
_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", "build", "dist"}


def iter_python_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for sub in path.rglob("*.py"):
                if not any(part in _SKIP_DIRS or part.endswith(".egg-info")
                           for part in sub.parts):
                    out.add(sub)
        elif path.suffix == ".py":
            out.add(path)
        elif not path.exists():
            raise FileNotFoundError(f"no such file or directory: {path}")
    return sorted(out)


def _in_repro_package(resolved: Path) -> bool:
    """Whether ``resolved`` sits under the ``repro`` *package* directory.

    Anchored on a directory literally named ``repro`` that contains an
    ``__init__.py``, so a repository checked out into a folder that
    happens to be called ``repro`` does not put its tests in scope.
    """
    for parent in resolved.parents:
        if parent.name == "repro" and (parent / "__init__.py").exists():
            return True
    return False


def rule_applies(rule: type[Rule], path: Path) -> bool:
    """Whether ``rule`` is in scope for ``path`` (see module docstring)."""
    if rule.scope is None:
        return True
    try:
        resolved = path.resolve()
    except OSError:                      # pragma: no cover - exotic filesystems
        resolved = path
    if not _in_repro_package(resolved):
        # Outside the package tree every invariant applies: fixture files
        # and ad-hoc snippets are linted at full strictness.
        return True
    parts = resolved.parts
    return any(entry in parts or entry == path.name for entry in rule.scope)


def lint_source(source: str, path: str | Path,
                rules: Sequence[type[Rule]] = ALL_RULES,
                respect_scopes: bool = True) -> LintResult:
    """Lint one module's source text; ``path`` is used for reporting/scoping."""
    path = Path(path)
    result = LintResult(n_files=1)
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        result.findings.append(
            Finding(
                path=str(path), line=exc.lineno or 0, col=exc.offset or 0,
                rule_id="RS000", message=f"syntax error: {exc.msg}",
                severity=Severity.ERROR,
            )
        )
        return result
    suppressions = parse_suppressions(source)
    for rule_cls in rules:
        if respect_scopes and not rule_applies(rule_cls, path):
            continue
        for finding in rule_cls(str(path)).check(tree):
            if suppressions.silences(finding.line, finding.rule_id):
                result.suppressed.append(finding)
            else:
                result.findings.append(finding)
    return result


def lint_paths(paths: Iterable[str | Path],
               rules: Sequence[type[Rule]] = ALL_RULES,
               respect_scopes: bool = True) -> LintResult:
    """Lint every Python file under ``paths``."""
    total = LintResult()
    for path in iter_python_files(paths):
        source = path.read_text(encoding="utf-8")
        total.extend(lint_source(source, path, rules=rules,
                                 respect_scopes=respect_scopes))
    total.findings.sort(key=Finding.sort_key)
    return total
