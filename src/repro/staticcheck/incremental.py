"""Incremental staticcheck: reuse findings for files that did not change.

The cache (``.staticcheck_cache.json``, git-ignored) stores three
sections:

* ``files`` — per-file findings and suppressions keyed on the blake2b
  hash of the file's bytes.  Only changed files are re-parsed.
* ``tree.flow`` — the interprocedural pass's findings plus its call-graph
  stats, keyed on a *tree hash* over every ``(relpath, filehash)`` pair.
  Flow findings are whole-program facts: one edited file can change a
  call chain three modules away, so anything less than a tree key would
  serve stale chains.
* ``tree.concurrency`` — the RC pass's findings and lock-model stats,
  same tree key (lock inference is whole-program too).
* ``tree.arrays`` — the RA pass's findings and interpreter stats, same
  tree key (hot-path closure and summaries are whole-program).
* ``tree.domain`` — the config-space validator's findings, same key.

When two or more of the flow/concurrency/arrays passes miss the cache,
they share one call-graph build.

The cache **signature** folds in the cache format version, the active
rule ids (per-file, flow, concurrency, and arrays), the scope switch,
and a
digest of the staticcheck package's own sources — editing any rule
(``concurrency.py`` included) invalidates every entry, so a stale
linter can never replay old verdicts.

Warm runs on an unchanged tree skip ``ast.parse`` entirely (and never
even import the domain validator), and re-rendered output is
byte-identical to the cold run's because findings round-trip through
:meth:`Finding.to_dict` / :meth:`Finding.from_dict`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from .arrays import ArrayRule, lint_arrays
from .concurrency import ConcurrencyRule, lint_concurrency
from .flow import ALL_FLOW_RULES, FlowRule, lint_flow
from .graph import CallGraph, build_call_graph
from .model import Finding, LintResult
from .rules import ALL_RULES, Rule
from .runner import iter_python_files, lint_source

__all__ = ["CACHE_FILE", "CheckOutcome", "incremental_check"]

CACHE_FILE = ".staticcheck_cache.json"
_CACHE_VERSION = 1


@dataclass
class CheckOutcome:
    """Everything one (possibly cached) staticcheck run produced."""

    result: LintResult
    stats: dict[str, object] | None = None
    #: files actually re-analyzed this run (cache misses)
    n_reanalyzed: int = 0
    #: whether the flow/domain tree sections were served from cache
    tree_cached: bool = False


def _file_hash(data: bytes) -> str:
    return hashlib.blake2b(data, digest_size=16).hexdigest()


def _self_digest() -> str:
    """Digest of the staticcheck package's own sources."""
    here = Path(__file__).resolve().parent
    h = hashlib.blake2b(digest_size=16)
    for path in sorted(here.glob("*.py")):
        h.update(path.name.encode())
        h.update(path.read_bytes())
    return h.hexdigest()


def _signature(per_file_rules: Sequence[type[Rule]],
               flow_rules: Sequence[type[FlowRule]] | None,
               concurrency_rules: Sequence[type[ConcurrencyRule]] | None,
               array_rules: Sequence[type[ArrayRule]] | None,
               respect_scopes: bool, run_domain: bool) -> str:
    parts = [
        f"v{_CACHE_VERSION}",
        ",".join(sorted(r.rule_id for r in per_file_rules)),
        ",".join(sorted(r.rule_id for r in (flow_rules or ()))),
        ",".join(sorted(r.rule_id for r in (concurrency_rules or ()))),
        ",".join(sorted(r.rule_id for r in (array_rules or ()))),
        f"scopes={respect_scopes}",
        f"domain={run_domain}",
        _self_digest(),
    ]
    return hashlib.blake2b("|".join(parts).encode(),
                           digest_size=16).hexdigest()


def _tree_hash(hashes: dict[str, str]) -> str:
    h = hashlib.blake2b(digest_size=16)
    for rel, file_hash in sorted(hashes.items()):
        h.update(rel.encode())
        h.update(file_hash.encode())
    return h.hexdigest()


def _load_cache(cache_path: Path, signature: str) -> dict:
    try:
        payload = json.loads(cache_path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return {}
    if not isinstance(payload, dict) or payload.get("signature") != signature:
        return {}
    return payload


def _dump_findings(findings: Iterable[Finding]) -> list[dict]:
    return [f.to_dict() for f in findings]


def _load_findings(payload: Iterable[dict]) -> list[Finding]:
    return [Finding.from_dict(entry) for entry in payload]


def incremental_check(
    paths: Iterable[str | Path],
    per_file_rules: Sequence[type[Rule]] = ALL_RULES,
    flow_rules: Sequence[type[FlowRule]] | None = None,
    concurrency_rules: Sequence[type[ConcurrencyRule]] | None = None,
    array_rules: Sequence[type[ArrayRule]] | None = None,
    respect_scopes: bool = True,
    run_domain: bool = False,
    cache_path: str | Path = CACHE_FILE,
    use_cache: bool = True,
) -> CheckOutcome:
    """Run the per-file pass (plus optional flow/concurrency/domain)
    with caching.

    ``use_cache=False`` is the ``--no-cache`` escape hatch: everything is
    re-analyzed and the cache file is left untouched.
    """
    cache_path = Path(cache_path)
    signature = _signature(per_file_rules, flow_rules, concurrency_rules,
                           array_rules, respect_scopes,
                           run_domain) if use_cache else ""
    cache = _load_cache(cache_path, signature) if use_cache else {}
    cached_files: dict = cache.get("files", {})

    files = iter_python_files(paths)
    sources: dict[str, bytes] = {}
    hashes: dict[str, str] = {}
    for path in files:
        data = path.read_bytes()
        key = str(path)
        sources[key] = data
        hashes[key] = _file_hash(data)

    result = LintResult()
    new_files_section: dict[str, dict] = {}
    n_reanalyzed = 0
    for path in files:
        key = str(path)
        entry = cached_files.get(key)
        if entry is not None and entry.get("hash") == hashes[key]:
            per_file = LintResult(
                findings=_load_findings(entry.get("findings", [])),
                n_files=1,
                suppressed=_load_findings(entry.get("suppressed", [])),
            )
        else:
            per_file = lint_source(
                sources[key].decode("utf-8"), path,
                rules=per_file_rules, respect_scopes=respect_scopes,
            )
            n_reanalyzed += 1
        new_files_section[key] = {
            "hash": hashes[key],
            "findings": _dump_findings(per_file.findings),
            "suppressed": _dump_findings(per_file.suppressed),
        }
        result.extend(per_file)

    tree = _tree_hash(hashes)
    cached_tree: dict = cache.get("tree", {})
    tree_cached = bool(cached_tree) and cached_tree.get("hash") == tree
    stats: dict[str, object] | None = None
    new_tree_section: dict[str, object] = {"hash": tree}

    #: one call graph shared by the flow/concurrency/arrays passes when
    #: more than one misses the cache — rebuilding would re-parse the tree
    graph: CallGraph | None = None

    if flow_rules is not None:
        if tree_cached and "flow" in cached_tree:
            flow_entry = cached_tree["flow"]
            flow_result = LintResult(
                findings=_load_findings(flow_entry.get("findings", [])),
                suppressed=_load_findings(flow_entry.get("suppressed", [])),
            )
            stats = flow_entry.get("stats")
        else:
            tree_cached = False
            if graph is None and (concurrency_rules is not None
                                  or array_rules is not None):
                graph = build_call_graph([str(p) for p in files])
            report = lint_flow([str(p) for p in files], rules=flow_rules,
                               graph=graph)
            flow_result = report.result
            flow_result.n_files = 0     # files already counted above
            stats = report.stats
        new_tree_section["flow"] = {
            "findings": _dump_findings(flow_result.findings),
            "suppressed": _dump_findings(flow_result.suppressed),
            "stats": stats,
        }
        result.extend(flow_result)

    if concurrency_rules is not None:
        if tree_cached and "concurrency" in cached_tree:
            conc_entry = cached_tree["concurrency"]
            conc_result = LintResult(
                findings=_load_findings(conc_entry.get("findings", [])),
                suppressed=_load_findings(conc_entry.get("suppressed", [])),
            )
            conc_stats = conc_entry.get("stats")
        else:
            tree_cached = False
            if graph is None and array_rules is not None:
                graph = build_call_graph([str(p) for p in files])
            conc_report = lint_concurrency(
                [str(p) for p in files], rules=concurrency_rules,
                graph=graph,
            )
            conc_result = conc_report.result
            conc_result.n_files = 0     # files already counted above
            conc_stats = conc_report.stats
        new_tree_section["concurrency"] = {
            "findings": _dump_findings(conc_result.findings),
            "suppressed": _dump_findings(conc_result.suppressed),
            "stats": conc_stats,
        }
        result.extend(conc_result)
        if isinstance(conc_stats, dict):
            stats = {**(stats or {}), **conc_stats}

    if array_rules is not None:
        if tree_cached and "arrays" in cached_tree:
            arr_entry = cached_tree["arrays"]
            arr_result = LintResult(
                findings=_load_findings(arr_entry.get("findings", [])),
                suppressed=_load_findings(arr_entry.get("suppressed", [])),
            )
            arr_stats = arr_entry.get("stats")
        else:
            tree_cached = False
            arr_report = lint_arrays(
                [str(p) for p in files], rules=array_rules, graph=graph,
            )
            arr_result = arr_report.result
            arr_result.n_files = 0      # files already counted above
            arr_stats = arr_report.stats
        new_tree_section["arrays"] = {
            "findings": _dump_findings(arr_result.findings),
            "suppressed": _dump_findings(arr_result.suppressed),
            "stats": arr_stats,
        }
        result.extend(arr_result)
        if isinstance(arr_stats, dict):
            stats = {**(stats or {}), **arr_stats}

    if run_domain:
        if tree_cached and "domain" in cached_tree:
            domain_findings = _load_findings(cached_tree["domain"])
        else:
            tree_cached = False
            from .domain import validate_default_domain

            domain_findings = list(validate_default_domain())
        new_tree_section["domain"] = _dump_findings(domain_findings)
        result.findings.extend(domain_findings)

    result.findings.sort(key=Finding.sort_key)
    result.suppressed.sort(key=Finding.sort_key)

    if use_cache:
        payload = {
            "signature": signature,
            "files": new_files_section,
            "tree": new_tree_section,
        }
        try:
            cache_path.write_text(
                json.dumps(payload, sort_keys=True), encoding="utf-8"
            )
        except OSError:
            pass                         # read-only checkout: run uncached

    return CheckOutcome(
        result=result, stats=stats,
        n_reanalyzed=n_reanalyzed, tree_cached=tree_cached,
    )
