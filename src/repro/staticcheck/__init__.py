"""repro.staticcheck — AST invariant linter and domain validator.

The determinism and cache-purity invariants earlier PRs established by
hand (bit-identical ``run_batch`` vs scalar ``run()``, seed-keyed
faults, ``attempt`` excluded from cache keys, slotted hot-path classes)
are enforced here statically, at PR time, instead of discovered through
flaky property-test failures.

Two halves:

* **AST rules** (``RS001``-``RS006``, :mod:`repro.staticcheck.rules`)
  lint source files for unseeded randomness, wall-clock reads in hot
  paths, mutable default arguments, float equality in bit-identity
  modules, out-of-``__slots__`` writes, and cache-key drift.
* **Domain validation** (``RD001``-``RD007``,
  :mod:`repro.staticcheck.domain`) imports the configuration spaces,
  constraints, and workload registry and checks them for structural
  sanity — defaults inside bounds, round-tripping encodings, anchored
  constraints, feasible grid corners, log-scale consistency.
* **Flow rules** (``RF001``-``RF005``, :mod:`repro.staticcheck.flow`)
  walk the project-wide call graph (:mod:`repro.staticcheck.graph`) and
  enforce the invariants interprocedurally: seed provenance, cache-key
  purity closure, process-pool race freedom, exception-flow auditing,
  and scalar/batch leaf-set agreement — each finding carries its call
  chain.  Enable with ``--flow``.
* **Concurrency rules** (``RC001``-``RC005``,
  :mod:`repro.staticcheck.concurrency`) infer the repo's lock set and
  enforce the service layer's threading discipline: lock-guard
  consistency, ``_*_locked`` reachability, async-loop blocking calls,
  shared-memory segment lifecycle, and lock-order acyclicity.  Enable
  with ``--concurrency``; the runtime twin is
  :mod:`repro.staticcheck.dynsan`.
* **Array rules** (``RA001``-``RA006``, :mod:`repro.staticcheck.arrays`)
  run a shape/dtype abstract interpreter over the call graph and lint
  the numeric kernels: dtype stability in bit-identity modules,
  provable shape/broadcast errors, hidden copies and python-level
  element loops on the hot paths the :mod:`repro.staticcheck.hotpaths`
  table declares, loop-invariant allocation, and expensive array work
  under locks (reusing the RC lock model).  Enable with ``--arrays``.

Every family's metadata lives in one declarative table
(:mod:`repro.staticcheck.registry`), which serves ``--list-rules`` and
``--rules`` id partitioning.

Runs are incremental (:mod:`repro.staticcheck.incremental`): unchanged
files replay their cached findings, keyed on content hashes.

Run ``python -m repro.staticcheck`` (see :mod:`repro.staticcheck.cli`);
suppress individual lines with ``# staticcheck: ignore[RS004]`` plus a
justifying comment.
"""

from .arrays import (
    ALL_ARRAY_RULES,
    ArrayAnalysis,
    ArraysReport,
    array_rule_catalogue,
    get_array_rules,
    lint_arrays,
    run_array_rules,
)
from .concurrency import (
    ALL_CONCURRENCY_RULES,
    ConcurrencyReport,
    LockModel,
    build_lock_model,
    concurrency_rule_catalogue,
    get_concurrency_rules,
    lint_concurrency,
    run_concurrency_rules,
)
from .domain import (
    RESOURCE_PACKING,
    ConstraintSpec,
    validate_default_domain,
    validate_space,
    validate_workloads,
)
from .dynsan import (
    LockOrderSanitizer,
    LockOrderViolation,
    SanitizedLock,
    instrument_attr,
)
from .flow import (
    ALL_FLOW_RULES,
    FlowReport,
    flow_rule_catalogue,
    get_flow_rules,
    lint_flow,
    run_flow_rules,
)
from .graph import CallGraph, build_call_graph
from .hotpaths import HOT_PATHS, HotPath, resolve_hot_functions
from .incremental import CACHE_FILE, CheckOutcome, incremental_check
from .model import Finding, LintResult, Severity
from .registry import RuleEntry, partition_rule_ids, rule_registry
from .rules import ALL_RULES, get_rules, rule_catalogue
from .runner import iter_python_files, lint_paths, lint_source
from .sarif import findings_from_sarif, render_sarif
from .waivers import WAIVERS, Waiver, expected_by_rule, reason_for

__all__ = [
    "ALL_ARRAY_RULES",
    "ArrayAnalysis",
    "ArraysReport",
    "array_rule_catalogue",
    "get_array_rules",
    "lint_arrays",
    "run_array_rules",
    "HOT_PATHS",
    "HotPath",
    "resolve_hot_functions",
    "WAIVERS",
    "Waiver",
    "expected_by_rule",
    "reason_for",
    "findings_from_sarif",
    "render_sarif",
    "ALL_CONCURRENCY_RULES",
    "ConcurrencyReport",
    "LockModel",
    "build_lock_model",
    "concurrency_rule_catalogue",
    "get_concurrency_rules",
    "lint_concurrency",
    "run_concurrency_rules",
    "LockOrderSanitizer",
    "LockOrderViolation",
    "SanitizedLock",
    "instrument_attr",
    "RuleEntry",
    "partition_rule_ids",
    "rule_registry",
    "Finding",
    "LintResult",
    "Severity",
    "ALL_RULES",
    "get_rules",
    "rule_catalogue",
    "ALL_FLOW_RULES",
    "FlowReport",
    "flow_rule_catalogue",
    "get_flow_rules",
    "lint_flow",
    "run_flow_rules",
    "CallGraph",
    "build_call_graph",
    "CACHE_FILE",
    "CheckOutcome",
    "incremental_check",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "ConstraintSpec",
    "RESOURCE_PACKING",
    "validate_space",
    "validate_workloads",
    "validate_default_domain",
]
