"""repro.staticcheck — AST invariant linter and domain validator.

The determinism and cache-purity invariants earlier PRs established by
hand (bit-identical ``run_batch`` vs scalar ``run()``, seed-keyed
faults, ``attempt`` excluded from cache keys, slotted hot-path classes)
are enforced here statically, at PR time, instead of discovered through
flaky property-test failures.

Two halves:

* **AST rules** (``RS001``-``RS006``, :mod:`repro.staticcheck.rules`)
  lint source files for unseeded randomness, wall-clock reads in hot
  paths, mutable default arguments, float equality in bit-identity
  modules, out-of-``__slots__`` writes, and cache-key drift.
* **Domain validation** (``RD001``-``RD007``,
  :mod:`repro.staticcheck.domain`) imports the configuration spaces,
  constraints, and workload registry and checks them for structural
  sanity — defaults inside bounds, round-tripping encodings, anchored
  constraints, feasible grid corners, log-scale consistency.

Run ``python -m repro.staticcheck`` (see :mod:`repro.staticcheck.cli`);
suppress individual lines with ``# staticcheck: ignore[RS004]`` plus a
justifying comment.
"""

from .domain import (
    RESOURCE_PACKING,
    ConstraintSpec,
    validate_default_domain,
    validate_space,
    validate_workloads,
)
from .model import Finding, LintResult, Severity
from .rules import ALL_RULES, get_rules, rule_catalogue
from .runner import iter_python_files, lint_paths, lint_source

__all__ = [
    "Finding",
    "LintResult",
    "Severity",
    "ALL_RULES",
    "get_rules",
    "rule_catalogue",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "ConstraintSpec",
    "RESOURCE_PACKING",
    "validate_space",
    "validate_workloads",
    "validate_default_domain",
]
