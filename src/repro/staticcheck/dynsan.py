"""Dynamic lock-order sanitizer — the runtime half of the RC005 check.

The static pass (:mod:`repro.staticcheck.concurrency`) proves the
*resolved* lock graph acyclic; dynamic dispatch, callbacks, and test
harness code sit outside it.  This module closes that gap at runtime:
wrap the locks of interest in a :class:`LockOrderSanitizer` and every
acquisition records a ``held -> acquired`` edge in a process-wide order
graph.  The moment an acquisition would close a cycle — the classic
AB/BA inversion — the sanitizer raises :class:`LockOrderViolation`
*instead of deadlocking*, naming both edges.

Usage (as wired into ``tests/core/test_service_concurrency.py``)::

    san = LockOrderSanitizer()
    log._lock = san.wrap(log._lock, "HistoryLog._lock")
    idx._lock = san.wrap(idx._lock, "SignatureIndex._lock")
    ... run the stress suite ...
    assert san.cycles() == []

The wrapper is a drop-in context manager with ``acquire``/``release``,
so instrumented code paths need no changes.  Overhead is one dict
update under a small internal lock per acquisition — fine for tests,
not meant for production hot paths.

Detection is *order-based*, like a lock-order (not a happens-before)
sanitizer: it flags any two locks ever taken in both orders, even if
the interleavings observed so far never actually deadlocked.  That is
exactly the strictness a stress suite wants — the schedule that would
deadlock is the one CI never reproduces.
"""

from __future__ import annotations

import threading
from typing import Iterator

__all__ = [
    "LockOrderViolation",
    "SanitizedLock",
    "LockOrderSanitizer",
    "instrument_attr",
]


class LockOrderViolation(RuntimeError):
    """An acquisition closed a cycle in the runtime lock-order graph."""


class SanitizedLock:
    """Drop-in wrapper notifying the sanitizer around a real lock."""

    def __init__(self, sanitizer: "LockOrderSanitizer", lock,
                 name: str, reentrant: bool = False):
        self._sanitizer = sanitizer
        self._lock = lock
        self.name = name
        self.reentrant = reentrant

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        self._sanitizer._on_acquire(self)
        got = self._lock.acquire(blocking, timeout)
        if not got:
            self._sanitizer._on_release(self)
        return got

    def release(self) -> None:
        self._lock.release()
        self._sanitizer._on_release(self)

    def __enter__(self) -> "SanitizedLock":
        self.acquire()
        return self

    def __exit__(self, *exc) -> bool:
        self.release()
        return False


class LockOrderSanitizer:
    """Process-wide runtime acquisition-order graph with cycle detection.

    ``raise_on_cycle=True`` (the default) turns the first observed
    inversion into an immediate :class:`LockOrderViolation`; with it off
    the graph just records, and :meth:`cycles` reports at the end — the
    mode for surveying an existing suite without failing it.
    """

    def __init__(self, raise_on_cycle: bool = True):
        self.raise_on_cycle = raise_on_cycle
        self._meta = threading.Lock()
        #: held name -> acquired name -> first-observation description
        self._graph: dict[str, dict[str, str]] = {}
        self._tls = threading.local()

    # -- construction ------------------------------------------------------
    def lock(self, name: str, reentrant: bool = False) -> SanitizedLock:
        """A fresh sanitized lock (RLock when ``reentrant``)."""
        raw = threading.RLock() if reentrant else threading.Lock()
        return SanitizedLock(self, raw, name, reentrant=reentrant)

    def wrap(self, lock, name: str) -> SanitizedLock:
        """Wrap an existing lock object under ``name``.

        Reentrancy is inferred from the wrapped type's repr — an RLock
        may be re-acquired by its holder without a violation.
        """
        reentrant = "RLock" in type(lock).__name__ \
            or "RLock" in repr(lock)
        return SanitizedLock(self, lock, name, reentrant=reentrant)

    # -- bookkeeping -------------------------------------------------------
    def _held_stack(self) -> list[str]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = []
            self._tls.stack = stack
        return stack

    def _on_acquire(self, lock: SanitizedLock) -> None:
        stack = self._held_stack()
        thread = threading.current_thread().name
        if lock.name in stack and not lock.reentrant:
            raise LockOrderViolation(
                f"thread {thread} re-acquires non-reentrant lock "
                f"{lock.name} it already holds"
            )
        new_cycle: str | None = None
        with self._meta:
            for held in stack:
                if held == lock.name:
                    continue                 # reentrant re-acquisition
                edges = self._graph.setdefault(held, {})
                if lock.name not in edges:
                    edges[lock.name] = (
                        f"thread {thread} acquired {lock.name} while "
                        f"holding {held}"
                    )
                    if new_cycle is None:
                        new_cycle = self._closes_cycle(lock.name, held)
        if new_cycle is not None and self.raise_on_cycle:
            # raise *before* pushing: the underlying lock is never
            # acquired, so the held stack must not record it
            raise LockOrderViolation(new_cycle)
        stack.append(lock.name)

    def _on_release(self, lock: SanitizedLock) -> None:
        stack = self._held_stack()
        for i in range(len(stack) - 1, -1, -1):
            if stack[i] == lock.name:
                del stack[i]
                break

    def _closes_cycle(self, start: str, target: str) -> str | None:
        """DFS from ``start``: a path back to ``target`` closes a cycle.

        Called with ``self._meta`` held, immediately after inserting the
        ``target -> start`` edge.
        """
        path = self._dfs_path(start, target)
        if path is None:
            return None
        hops = " -> ".join([target, *path])
        return (
            f"lock-order cycle: {hops} (edge {target} -> {start} just "
            f"observed; reverse path already on record)"
        )

    def _dfs_path(self, start: str, target: str) -> list[str] | None:
        seen: set[str] = set()
        stack: list[tuple[str, list[str]]] = [(start, [start])]
        while stack:
            node, path = stack.pop()
            if node == target:
                return path
            if node in seen:
                continue
            seen.add(node)
            for nxt in sorted(self._graph.get(node, ())):
                stack.append((nxt, [*path, nxt]))
        return None

    # -- reporting ---------------------------------------------------------
    def edges(self) -> list[tuple[str, str, str]]:
        """Every observed ``(held, acquired, description)`` edge."""
        with self._meta:
            return [
                (held, acquired, desc)
                for held, targets in sorted(self._graph.items())
                for acquired, desc in sorted(targets.items())
            ]

    def cycles(self) -> list[list[str]]:
        """Strongly-connected components of size > 1 in the order graph."""
        with self._meta:
            adjacency = {
                held: set(targets) for held, targets in self._graph.items()
            }
            for targets in list(adjacency.values()):
                for name in targets:
                    adjacency.setdefault(name, set())
            return [
                component
                for component in _sccs(adjacency)
                if len(component) > 1
            ]


def _sccs(adjacency: dict[str, set[str]]) -> Iterator[list[str]]:
    """Iterative Tarjan SCCs (the dynsan twin of the static version)."""
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    counter = [0]
    for start in sorted(adjacency):
        if start in index:
            continue
        work = [(start, iter(sorted(adjacency[start])))]
        index[start] = low[start] = counter[0]
        counter[0] += 1
        stack.append(start)
        on_stack.add(start)
        while work:
            node, children = work[-1]
            advanced = False
            for child in children:
                if child not in index:
                    index[child] = low[child] = counter[0]
                    counter[0] += 1
                    stack.append(child)
                    on_stack.add(child)
                    work.append((child, iter(sorted(adjacency[child]))))
                    advanced = True
                    break
                if child in on_stack:
                    low[node] = min(low[node], index[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                component: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                yield sorted(component)


def instrument_attr(obj: object, attr: str,
                    sanitizer: LockOrderSanitizer,
                    name: str | None = None) -> SanitizedLock:
    """Replace ``obj.<attr>`` with a sanitized wrapper of itself.

    Returns the wrapper so tests can assert on it; ``name`` defaults to
    ``ClassName.attr``.
    """
    raw = getattr(obj, attr)
    label = name or f"{type(obj).__name__}.{attr}"
    wrapped = sanitizer.wrap(raw, label)
    setattr(obj, attr, wrapped)
    return wrapped
