"""SARIF 2.1.0 renderer, so CI findings upload to code scanning.

One run, one driver (``repro.staticcheck``), every family's rules in
the tool component — the ``ruleIndex`` of each result points into the
same :func:`repro.staticcheck.registry.rule_registry` table that serves
``--list-rules``, so the SARIF rule metadata can never diverge from the
CLI's.

Suppressed findings are emitted as results carrying an ``inSource``
suppression object (the GitHub UI hides them but keeps the audit
trail), mirroring the JSON reporter's locations list.  Call chains ride
in each result's property bag.  Output is deterministic
(``sort_keys`` + the model's stable finding sort) so the incremental
byte-identity guarantees extend to SARIF.

:func:`findings_from_sarif` inverts the renderer — the round-trip test
feeds one through the other and requires the exact ``Finding`` lists
back.
"""

from __future__ import annotations

import json

from .model import Finding, LintResult, Severity
from .registry import rule_registry

__all__ = ["render_sarif", "findings_from_sarif"]

_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def _result(finding: Finding, rule_index: dict[str, int],
            suppressed: bool) -> dict[str, object]:
    out: dict[str, object] = {
        "ruleId": finding.rule_id,
        "level": finding.severity.value,
        "message": {"text": finding.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {"uri": finding.path},
                "region": {
                    "startLine": finding.line,
                    # SARIF columns are 1-based; the AST's are 0-based
                    "startColumn": finding.col + 1,
                },
            },
        }],
        "properties": {"chain": list(finding.chain)},
    }
    index = rule_index.get(finding.rule_id)
    if index is not None:
        out["ruleIndex"] = index
    if suppressed:
        out["suppressions"] = [{"kind": "inSource"}]
    return out


def render_sarif(result: LintResult,
                 stats: dict[str, object] | None = None) -> str:
    """The whole report as one SARIF 2.1.0 run."""
    rules = [
        {
            "id": entry.rule_id,
            "shortDescription": {"text": entry.summary},
            "fullDescription": {"text": entry.rationale},
            "defaultConfiguration": {"level": entry.severity},
            "properties": {"family": entry.family},
        }
        for entry in rule_registry()
    ]
    rule_index = {row["id"]: i for i, row in enumerate(rules)}
    results = [
        _result(f, rule_index, suppressed=False)
        for f in result.sorted_findings()
    ] + [
        _result(f, rule_index, suppressed=True)
        for f in result.sorted_suppressed()
    ]
    run: dict[str, object] = {
        "tool": {
            "driver": {
                "name": "repro.staticcheck",
                "informationUri":
                    "https://github.com/repro/repro#static-checks",
                "rules": rules,
            },
        },
        "results": results,
        "properties": {"files_checked": result.n_files},
    }
    if stats is not None:
        run["properties"]["call_graph"] = stats  # type: ignore[index]
    payload = {
        "$schema": _SCHEMA,
        "version": "2.1.0",
        "runs": [run],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def findings_from_sarif(text: str) -> tuple[list[Finding], list[Finding]]:
    """Invert :func:`render_sarif`: ``(findings, suppressed)``."""
    payload = json.loads(text)
    findings: list[Finding] = []
    suppressed: list[Finding] = []
    for run in payload.get("runs", []):
        for row in run.get("results", []):
            loc = row["locations"][0]["physicalLocation"]
            region = loc["region"]
            finding = Finding(
                path=loc["artifactLocation"]["uri"],
                line=region["startLine"],
                col=region["startColumn"] - 1,
                rule_id=row["ruleId"],
                message=row["message"]["text"],
                severity=Severity(row["level"]),
                chain=tuple(row.get("properties", {}).get("chain", ())),
            )
            if row.get("suppressions"):
                suppressed.append(finding)
            else:
                findings.append(finding)
    return findings, suppressed
