"""Project-wide call-graph builder for the interprocedural (``RF``) rules.

The per-file rules (RS001—RS006) stop at function boundaries, so an
unseeded RNG or a global-state write hidden one call deep sails past
them.  This module builds the structure the flow rules walk instead:

* a **module index** — every analyzed file parsed once, its imports
  resolved to absolute dotted targets (relative imports included), its
  top-level functions, classes, and module-level assignments recorded;
* a **function table** keyed by qualified name
  (``repro.engine.engine.EvaluationEngine.evaluate_batch``), where a
  nested ``def`` belongs to its enclosing function's analysis unit;
* **call edges**: every ``ast.Call`` in every function, resolved where
  the code gives us enough to resolve it — bare names through imports
  and module scope, ``self.method()`` through an intra-package MRO walk
  (``__slots__`` classes included; slots never affect method lookup),
  ``self.attr.method()`` through attribute types inferred from
  ``__init__`` assignments and annotations, locals assigned from
  constructors, parameter annotations, and ``super().method()``.

Soundness caveat (documented, deliberate): calls we cannot resolve land
in an explicit **unresolved bucket** instead of being guessed at.  A
flow rule therefore never *follows* an unresolved edge — the analysis
can miss violations hidden behind dynamic dispatch, and
:meth:`CallGraph.resolution_stats` exists precisely so that blind spot
is measured, not assumed away.  Calls into the stdlib/numpy/builtins are
classified ``external`` and keep their absolute dotted name, which is
what the flow rules match RNG constructions and wall-clock reads on.
"""

from __future__ import annotations

import ast
import builtins
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

__all__ = [
    "CallSite",
    "FunctionInfo",
    "ClassInfo",
    "ModuleInfo",
    "CallGraph",
    "build_call_graph",
    "module_name_for",
]

#: method names assumed to belong to builtin containers / stdlib objects
#: when the receiver's type is unknown — classified external rather than
#: unresolved, because treating ``results.append`` as a blind spot would
#: drown the unresolved bucket in list plumbing.
_BUILTIN_METHODS = frozenset({
    "append", "extend", "insert", "remove", "pop", "clear", "sort",
    "reverse", "copy", "count", "index",
    "keys", "values", "items", "get", "setdefault", "update", "popitem",
    "move_to_end",
    "add", "discard", "union", "intersection", "difference",
    "join", "split", "rsplit", "strip", "lstrip", "rstrip", "format",
    "startswith", "endswith", "replace", "upper", "lower", "encode",
    "decode", "title", "ljust", "rjust", "zfill", "splitlines",
    "hexdigest", "digest",
    "tolist", "sum", "any", "all", "min", "max", "mean", "astype",
    "partition", "flatten", "ravel", "reshape", "fill", "nonzero", "item",
})

_BUILTIN_NAMES = frozenset(dir(builtins))

#: constructor calls whose result is a fresh, function-local object
_FRESH_BUILTINS = frozenset({
    "list", "dict", "set", "tuple", "frozenset", "bytearray",
    "OrderedDict", "defaultdict", "Counter", "deque",
})


@dataclass(frozen=True)
class CallSite:
    """One ``ast.Call`` inside one function."""

    caller: str                  #: qualified name of the calling function
    path: str
    line: int
    col: int
    text: str                    #: best-effort dotted rendering of the callee
    kind: str                    #: "internal" | "external" | "unresolved"
    callee: str | None = None    #: qualified name when kind == "internal"
    external: str | None = None  #: absolute dotted name when kind == "external"
    #: keyword argument names present at the site (for initializer= detection)
    keywords: tuple[str, ...] = ()


@dataclass
class FunctionInfo:
    """One analyzed function or method (nested defs belong to it)."""

    qname: str
    name: str
    module: str
    path: str
    lineno: int
    node: ast.FunctionDef | ast.AsyncFunctionDef
    class_qname: str | None = None

    @property
    def is_method(self) -> bool:
        return self.class_qname is not None

    @property
    def is_public(self) -> bool:
        return not self.name.startswith("_")

    @property
    def self_name(self) -> str | None:
        if self.class_qname is None or not self.node.args.args:
            return None
        decorators = {
            d.id for d in self.node.decorator_list if isinstance(d, ast.Name)
        }
        if "staticmethod" in decorators:
            return None
        return self.node.args.args[0].arg


@dataclass
class ClassInfo:
    """One class: methods, resolved bases, inferred attribute types."""

    qname: str
    name: str
    module: str
    lineno: int
    #: base-class qnames resolved inside the analyzed set (others dropped)
    bases: list[str] = field(default_factory=list)
    methods: dict[str, str] = field(default_factory=dict)   # name -> func qname
    #: instance attribute -> class qname, from __init__ assignments and
    #: annotated class-level declarations
    attr_types: dict[str, str] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """One parsed module of the analyzed set."""

    name: str
    path: str
    tree: ast.Module
    source: str
    #: local alias -> absolute dotted target ("np" -> "numpy",
    #: "SparkSimulator" -> "repro.sparksim.simulator.SparkSimulator")
    imports: dict[str, str] = field(default_factory=dict)
    functions: dict[str, str] = field(default_factory=dict)  # name -> qname
    classes: dict[str, str] = field(default_factory=dict)    # name -> qname
    #: module-level assigned names -> "mutable" | "immutable" | "opaque"
    global_kinds: dict[str, str] = field(default_factory=dict)


def module_name_for(path: Path) -> str:
    """Dotted module name of ``path``, anchored at its topmost package.

    Walks parents upward while an ``__init__.py`` sibling exists, so
    ``src/repro/engine/engine.py`` maps to ``repro.engine.engine`` and a
    test fixture package maps to ``<pkg>.<module>`` regardless of where
    the repository is checked out.
    """
    path = path.resolve()
    parts: list[str] = []
    if path.name != "__init__.py":
        parts.append(path.stem)
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.append(parent.name)
        parent = parent.parent
    if not parts:
        parts.append(path.stem)
    return ".".join(reversed(parts))


def _dotted(node: ast.expr) -> list[str] | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return parts[::-1]
    return None


def _annotation_names(node: ast.expr | None) -> list[str]:
    """Candidate class names mentioned in an annotation expression.

    Handles ``SparkSimulator``, ``SparkSimulator | None``,
    ``Optional[SparkSimulator]``, and string annotations.
    """
    if node is None:
        return []
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return []
    names: list[str] = []
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            names.append(sub.id)
        elif isinstance(sub, ast.Attribute):
            chain = _dotted(sub)
            if chain:
                names.append(".".join(chain))
    return names


def _value_class_candidates(value: ast.expr) -> list[list[str]]:
    """Constructor chains a value expression might take its type from.

    ``SparkSimulator(...)`` yields ``[["SparkSimulator"]]``;
    ``simulator or SparkSimulator()`` and
    ``EvaluationCache(...) if size else None`` unwrap to their call arms.
    """
    if isinstance(value, ast.Call):
        chain = _dotted(value.func)
        return [chain] if chain else []
    if isinstance(value, ast.BoolOp):
        out = []
        for arm in value.values:
            out.extend(_value_class_candidates(arm))
        return out
    if isinstance(value, ast.IfExp):
        return (_value_class_candidates(value.body)
                + _value_class_candidates(value.orelse))
    return []


class CallGraph:
    """The resolved call structure of one analyzed file set."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.sites: dict[str, list[CallSite]] = {}
        #: (module, global name) -> set of function qnames that rebind it
        self.global_writers: dict[tuple[str, str], set[str]] = {}

    # --- lookups ----------------------------------------------------------
    def module_of_path(self, path: str) -> ModuleInfo | None:
        for mod in self.modules.values():
            if mod.path == path:
                return mod
        return None

    def function(self, qname: str) -> FunctionInfo | None:
        return self.functions.get(qname)

    def sites_of(self, qname: str) -> list[CallSite]:
        return self.sites.get(qname, [])

    def all_sites(self) -> Iterable[CallSite]:
        for sites in self.sites.values():
            yield from sites

    def mro(self, class_qname: str) -> list[str]:
        """Linearized intra-package base chain (C3 not needed at this scale)."""
        out: list[str] = []
        stack = [class_qname]
        seen: set[str] = set()
        while stack:
            cls = stack.pop(0)
            if cls in seen or cls not in self.classes:
                continue
            seen.add(cls)
            out.append(cls)
            stack.extend(self.classes[cls].bases)
        return out

    def resolve_method(self, class_qname: str, method: str) -> str | None:
        for cls in self.mro(class_qname):
            hit = self.classes[cls].methods.get(method)
            if hit is not None:
                return hit
        return None

    def resolve_attr_type(self, class_qname: str, attr: str) -> str | None:
        for cls in self.mro(class_qname):
            hit = self.classes[cls].attr_types.get(attr)
            if hit is not None:
                return hit
        return None

    def constructor_of(self, class_qname: str) -> str | None:
        """``Class(...)`` dispatches to ``__init__`` when one is analyzed."""
        return self.resolve_method(class_qname, "__init__")

    # --- traversal --------------------------------------------------------
    def closure(self, roots: Iterable[str]) -> set[str]:
        """Roots plus every internal function transitively reachable."""
        seen: set[str] = set()
        stack = [r for r in roots if r in self.functions]
        while stack:
            qname = stack.pop()
            if qname in seen:
                continue
            seen.add(qname)
            for site in self.sites_of(qname):
                # a dataclass-style class with no explicit __init__ resolves
                # to the class qname itself — a dead end, not a function
                if site.callee in self.functions and site.callee not in seen:
                    stack.append(site.callee)
        return seen

    def reach_parents(self, roots: Iterable[str]) -> dict[str, CallSite | None]:
        """BFS parents: reachable qname -> the site that first reached it.

        Roots map to ``None``; use :meth:`chain_to` to render the path.
        """
        parents: dict[str, CallSite | None] = {}
        queue: list[str] = []
        for root in roots:
            if root in self.functions and root not in parents:
                parents[root] = None
                queue.append(root)
        while queue:
            qname = queue.pop(0)
            for site in self.sites_of(qname):
                callee = site.callee
                if callee in self.functions and callee not in parents:
                    parents[callee] = site
                    queue.append(callee)
        return parents

    def chain_to(self, parents: dict[str, CallSite | None],
                 target: str) -> tuple[str, ...]:
        """Render the entry-point-to-``target`` path as report hops."""
        hops: list[str] = []
        cursor = target
        while True:
            site = parents.get(cursor)
            if site is None:
                break
            hops.append(
                f"{site.path}:{site.line} {site.caller} -> {cursor}"
            )
            cursor = site.caller
        return tuple(reversed(hops))

    # --- stats ------------------------------------------------------------
    def resolution_stats(self) -> dict[str, object]:
        """How much of the call surface the resolver actually pinned down."""
        internal = external = unresolved = 0
        for site in self.all_sites():
            if site.kind == "internal":
                internal += 1
            elif site.kind == "external":
                external += 1
            else:
                unresolved += 1
        attempted = internal + unresolved
        return {
            "files": len(self.modules),
            "functions": len(self.functions),
            "call_sites": internal + external + unresolved,
            "resolved": internal,
            "external": external,
            "unresolved": unresolved,
            # Share of non-external calls we resolved: externals have a
            # known target by definition; unresolved ones are the honest
            # blind spot the module docstring describes.
            "resolution_rate": (internal / attempted) if attempted else 1.0,
        }

    def unresolved_sites(self) -> list[CallSite]:
        return [s for s in self.all_sites() if s.kind == "unresolved"]


# --------------------------------------------------------------------------
# builder
# --------------------------------------------------------------------------

def build_call_graph(paths: Iterable[str | Path]) -> CallGraph:
    """Parse ``paths`` (files or directories) and build their call graph."""
    from .runner import iter_python_files

    graph = CallGraph()
    files = iter_python_files(paths)

    # Pass 1: parse + index every module.
    for path in files:
        source = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError:
            continue                 # the per-file pass reports RS000
        name = module_name_for(path)
        mod = ModuleInfo(name=name, path=str(path), tree=tree, source=source)
        _index_module(mod)
        graph.modules[name] = mod

    # Pass 2: functions, classes, attribute types.
    for mod in graph.modules.values():
        _index_definitions(graph, mod)

    # Pass 3: resolve class bases now every class is known.
    for mod in graph.modules.values():
        _resolve_bases(graph, mod)

    # Pass 4: attribute types (needs resolved class names).
    for mod in graph.modules.values():
        _infer_attr_types(graph, mod)

    # Pass 5: call sites + module-global writers.
    for mod in graph.modules.values():
        for fn_qname in list(graph.functions):
            info = graph.functions[fn_qname]
            if info.module != mod.name:
                continue
            _collect_sites(graph, mod, info)
    return graph


def _index_module(mod: ModuleInfo) -> None:
    package = mod.name if _is_package_init(mod) else mod.name.rsplit(".", 1)[0]
    for stmt in mod.tree.body:
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                mod.imports[local] = target
        elif isinstance(stmt, ast.ImportFrom):
            base = _relative_base(package, stmt.level, stmt.module)
            for alias in stmt.names:
                local = alias.asname or alias.name
                mod.imports[local] = f"{base}.{alias.name}" if base else alias.name
        elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            targets = (stmt.targets if isinstance(stmt, ast.Assign)
                       else [stmt.target])
            value = stmt.value
            for target in targets:
                if isinstance(target, ast.Name) and value is not None:
                    mod.global_kinds[target.id] = _mutability(value)


def _is_package_init(mod: ModuleInfo) -> bool:
    return mod.path.endswith("__init__.py")


def _relative_base(package: str, level: int, module: str | None) -> str:
    if level == 0:
        return module or ""
    parts = package.split(".")
    # level 1 = current package, each extra level strips one component.
    keep = len(parts) - (level - 1)
    base_parts = parts[:keep] if keep > 0 else []
    if module:
        base_parts.append(module)
    return ".".join(base_parts)


def _mutability(value: ast.expr) -> str:
    if isinstance(value, (ast.Dict, ast.List, ast.Set,
                          ast.ListComp, ast.DictComp, ast.SetComp)):
        return "mutable"
    if isinstance(value, ast.Call):
        chain = _dotted(value.func)
        if chain and chain[-1] in _FRESH_BUILTINS:
            return "mutable"
        if chain and chain[-1] == "frozenset":
            return "immutable"
        return "opaque"
    if isinstance(value, (ast.Constant, ast.UnaryOp, ast.BinOp, ast.Tuple)):
        return "immutable"
    return "opaque"


def _index_definitions(graph: CallGraph, mod: ModuleInfo) -> None:
    for stmt in mod.tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qname = f"{mod.name}.{stmt.name}"
            mod.functions[stmt.name] = qname
            graph.functions[qname] = FunctionInfo(
                qname=qname, name=stmt.name, module=mod.name,
                path=mod.path, lineno=stmt.lineno, node=stmt,
            )
        elif isinstance(stmt, ast.ClassDef):
            cls_qname = f"{mod.name}.{stmt.name}"
            mod.classes[stmt.name] = cls_qname
            info = ClassInfo(qname=cls_qname, name=stmt.name,
                             module=mod.name, lineno=stmt.lineno)
            graph.classes[cls_qname] = info
            for sub in stmt.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    fn_qname = f"{cls_qname}.{sub.name}"
                    info.methods[sub.name] = fn_qname
                    graph.functions[fn_qname] = FunctionInfo(
                        qname=fn_qname, name=sub.name, module=mod.name,
                        path=mod.path, lineno=sub.lineno, node=sub,
                        class_qname=cls_qname,
                    )


def _resolve_symbol(graph: CallGraph, mod: ModuleInfo, name: str) -> str | None:
    """Absolute dotted target of a bare name in module scope, if known."""
    if name in mod.imports:
        return mod.imports[name]
    if name in mod.functions:
        return mod.functions[name]
    if name in mod.classes:
        return mod.classes[name]
    return None


def _resolve_class_name(graph: CallGraph, mod: ModuleInfo,
                        name: str) -> str | None:
    """Resolve ``name`` to an analyzed class qname, following imports."""
    target = _resolve_symbol(graph, mod, name)
    if target is None:
        return None
    if target in graph.classes:
        return target
    # ``from .space import Configuration`` targets the symbol directly;
    # ``import repro.config.space`` would need attribute access instead.
    return target if target in graph.classes else None


def _resolve_bases(graph: CallGraph, mod: ModuleInfo) -> None:
    for stmt in mod.tree.body:
        if not isinstance(stmt, ast.ClassDef):
            continue
        info = graph.classes[f"{mod.name}.{stmt.name}"]
        for base in stmt.bases:
            chain = _dotted(base)
            if not chain:
                continue
            resolved = None
            if len(chain) == 1:
                resolved = _resolve_class_name(graph, mod, chain[0])
            else:
                root = mod.imports.get(chain[0])
                if root is not None:
                    candidate = ".".join([root, *chain[1:]])
                    if candidate in graph.classes:
                        resolved = candidate
            if resolved is not None:
                info.bases.append(resolved)


def _infer_attr_types(graph: CallGraph, mod: ModuleInfo) -> None:
    for stmt in mod.tree.body:
        if not isinstance(stmt, ast.ClassDef):
            continue
        info = graph.classes[f"{mod.name}.{stmt.name}"]
        for sub in stmt.body:
            # Annotated class-level fields (dataclass style): x: ClassName
            if isinstance(sub, ast.AnnAssign) and isinstance(sub.target, ast.Name):
                resolved = _annotation_type(graph, mod, sub.annotation)
                if resolved is not None:
                    info.attr_types.setdefault(sub.target.id, resolved)
        for sub in stmt.body:
            if not isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not sub.args.args:
                continue
            self_name = sub.args.args[0].arg
            param_types: dict[str, str] = {}
            for arg in (list(sub.args.posonlyargs) + list(sub.args.args)
                        + list(sub.args.kwonlyargs)):
                typed = _annotation_type(graph, mod, arg.annotation)
                if typed is not None:
                    param_types[arg.arg] = typed
            for node in ast.walk(sub):
                value: ast.expr | None = None
                targets: list[ast.expr] = []
                if isinstance(node, ast.Assign):
                    targets, value = node.targets, node.value
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    targets, value = [node.target], node.value
                if value is None:
                    continue
                for target in targets:
                    if not (isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == self_name):
                        continue
                    resolved = _first_constructed_class(graph, mod, value)
                    if resolved is None and isinstance(value, ast.Name):
                        # ``self.space = space`` takes the param's annotation
                        resolved = param_types.get(value.id)
                    if resolved is not None:
                        # First write wins; conflicting reassignment to a
                        # different class drops the inference (unresolved
                        # beats wrong).
                        prior = info.attr_types.get(target.attr)
                        if prior is None:
                            info.attr_types[target.attr] = resolved
                        elif prior != resolved:
                            info.attr_types[target.attr] = "?conflict"
        info.attr_types = {
            k: v for k, v in info.attr_types.items() if v != "?conflict"
        }


#: typing-module scaffolding that shows up in annotations but never names
#: a receiver type worth dispatching through
_TYPING_NAMES = frozenset({
    "Optional", "Union", "Any", "Sequence", "Iterable", "Iterator", "List",
    "Dict", "Tuple", "Set", "FrozenSet", "Mapping", "MutableMapping",
    "Callable", "Type", "ClassVar", "Final", "Literal", "TypeVar",
})


def _first_constructed_class(graph: CallGraph, mod: ModuleInfo,
                             value: ast.expr) -> str | None:
    """Type a value takes from a constructor call, if we can tell.

    Returns an analyzed class qname, or ``"ext:<dotted>"`` when the
    constructor resolves to an import from outside the analyzed set
    (``np.random.default_rng(...)`` -> ``ext:numpy.random.default_rng``).
    Calls on externally-typed receivers classify as external with the
    full dotted name, which is what the flow rules match RNG usage on.
    """
    external: str | None = None
    for chain in _value_class_candidates(value):
        if len(chain) == 1:
            resolved = _resolve_class_name(graph, mod, chain[0])
            if resolved is not None:
                return resolved
            target = _resolve_symbol(graph, mod, chain[0])
            if target is not None and external is None \
                    and not _targets_analyzed(graph, target):
                external = f"ext:{target}"
        else:
            root = mod.imports.get(chain[0])
            if root is None:
                continue
            full = ".".join([root, *chain[1:]])
            if full in graph.classes:
                return full
            if root in graph.classes and len(chain) == 2:
                # classmethod-factory heuristic: ``Impl.fresh()`` yields
                # an Impl (the dominant pattern for alternate ctors)
                return root
            if external is None and not _targets_analyzed(graph, root):
                external = f"ext:{full}"
    return external


def _targets_analyzed(graph: CallGraph, dotted: str) -> bool:
    """Whether ``dotted`` points inside the analyzed module set."""
    root = dotted.split(".")[0]
    return any(m == root or m.startswith(root + ".") for m in graph.modules) \
        or dotted in graph.functions or dotted in graph.classes


def _annotation_type(graph: CallGraph, mod: ModuleInfo,
                     annotation: ast.expr | None) -> str | None:
    """Receiver type named by an annotation: analyzed class, or ext-typed.

    Prefers an analyzed class anywhere in the annotation over the first
    external hit, so ``Sequence[EvalRequest]`` types as ``EvalRequest``
    rather than ``ext:typing.Sequence``.
    """
    external: str | None = None
    for cand in _annotation_names(annotation):
        head = cand.split(".")[0]
        if head in _TYPING_NAMES or head in _BUILTIN_NAMES:
            continue
        resolved = _resolve_class_name(graph, mod, head)
        if resolved is not None:
            return resolved
        target = _resolve_symbol(graph, mod, head)
        if target is not None and external is None \
                and not _targets_analyzed(graph, target) \
                and not target.startswith("typing"):
            tail = cand.split(".")[1:]
            external = "ext:" + ".".join([target, *tail])
    return external


class _LocalState:
    """Per-function resolution context: params, annotations, local types."""

    def __init__(self, graph: CallGraph, mod: ModuleInfo, info: FunctionInfo):
        self.graph = graph
        self.mod = mod
        self.info = info
        args = info.node.args
        every = (list(args.posonlyargs) + list(args.args)
                 + list(args.kwonlyargs))
        if args.vararg:
            every.append(args.vararg)
        if args.kwarg:
            every.append(args.kwarg)
        self.params = {a.arg for a in every}
        self.param_types: dict[str, str] = {}
        for a in every:
            typed = _annotation_type(graph, mod, a.annotation)
            if typed is not None:
                self.param_types[a.arg] = typed
        #: locals assigned from a constructor call exactly once
        self.local_types: dict[str, str] = {}
        reassigned: set[str] = set()
        for node in ast.walk(info.node):
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name):
                name = node.targets[0].id
                resolved = _first_constructed_class(graph, mod, node.value)
                if name in self.local_types or name in reassigned:
                    reassigned.add(name)
                    self.local_types.pop(name, None)
                elif resolved is not None:
                    self.local_types[name] = resolved
                else:
                    reassigned.add(name)

    def type_of_name(self, name: str) -> str | None:
        if name in self.local_types:
            return self.local_types[name]
        return self.param_types.get(name)


def _collect_sites(graph: CallGraph, mod: ModuleInfo, info: FunctionInfo) -> None:
    state = _LocalState(graph, mod, info)
    sites: list[CallSite] = []
    for node in ast.walk(info.node):
        if isinstance(node, (ast.Global,)):
            # handled below for writer tracking
            continue
        if isinstance(node, ast.Call):
            sites.append(_resolve_call(graph, mod, info, state, node))
    graph.sites[info.qname] = sites
    # Module-global writers, two shapes: rebinding through a ``global``
    # declaration, and in-place mutation (``CACHE[k] = v`` / ``OBJ.x = v``
    # / ``COUNTS[k] += 1``) of a name defined at module scope.
    declared: set[str] = set()
    local_names = set(state.params)
    for node in ast.walk(info.node):
        if isinstance(node, ast.Global):
            declared.update(node.names)
        elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for t in targets:
                if isinstance(t, ast.Name):
                    local_names.add(t.id)
        elif isinstance(node, (ast.For, ast.comprehension)):
            target = node.target
            for t in ast.walk(target):
                if isinstance(t, ast.Name):
                    local_names.add(t.id)
    local_names -= declared
    for node in ast.walk(info.node):
        if not isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            continue
        targets = (node.targets if isinstance(node, ast.Assign)
                   else [node.target])
        for t in targets:
            if isinstance(t, ast.Name) and t.id in declared:
                graph.global_writers.setdefault((mod.name, t.id), set()).add(
                    info.qname
                )
            elif isinstance(t, (ast.Subscript, ast.Attribute)):
                base = t.value
                while isinstance(base, (ast.Subscript, ast.Attribute)):
                    base = base.value
                if isinstance(base, ast.Name) and base.id not in local_names \
                        and base.id in mod.global_kinds:
                    graph.global_writers.setdefault(
                        (mod.name, base.id), set()
                    ).add(info.qname)


def _site(info: FunctionInfo, node: ast.Call, text: str, kind: str,
          callee: str | None = None, external: str | None = None) -> CallSite:
    return CallSite(
        caller=info.qname, path=info.path, line=node.lineno,
        col=node.col_offset, text=text, kind=kind, callee=callee,
        external=external,
        keywords=tuple(kw.arg for kw in node.keywords if kw.arg),
    )


def _resolve_call(graph: CallGraph, mod: ModuleInfo, info: FunctionInfo,
                  state: _LocalState, node: ast.Call) -> CallSite:
    # super().method() — resolve along the MRO past the defining class.
    if (isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Call)
            and isinstance(node.func.value.func, ast.Name)
            and node.func.value.func.id == "super"
            and info.class_qname is not None):
        method = node.func.attr
        for cls in graph.mro(info.class_qname)[1:]:
            hit = graph.classes[cls].methods.get(method)
            if hit is not None:
                return _site(info, node, f"super().{method}", "internal",
                             callee=hit)
        return _site(info, node, f"super().{method}", "unresolved")

    chain = _dotted(node.func)
    if chain is None:
        return _site(info, node, "<dynamic>", "unresolved")
    text = ".".join(chain)
    head, rest = chain[0], chain[1:]

    # self.method() / self.attr.method() / cls.method() / bare cls()
    if info.class_qname is not None and head in (info.self_name, "cls") \
            and head is not None:
        if not rest:
            # ``cls(...)`` in a classmethod factory -> the constructor
            ctor = graph.constructor_of(info.class_qname)
            if ctor is not None:
                return _site(info, node, text, "internal", callee=ctor)
            return _site(info, node, text, "unresolved")
        if len(rest) == 1:
            hit = graph.resolve_method(info.class_qname, rest[0])
            if hit is not None:
                return _site(info, node, text, "internal", callee=hit)
            attr_cls = graph.resolve_attr_type(info.class_qname, rest[0])
            if attr_cls is not None:
                if attr_cls.startswith("ext:"):
                    return _site(info, node, text, "external",
                                 external=attr_cls[4:])
                # calling an instance attribute: dispatches to __call__
                call = graph.resolve_method(attr_cls, "__call__")
                if call is not None:
                    return _site(info, node, text, "internal", callee=call)
            return _site(info, node, text, "unresolved")
        if len(rest) == 2:
            attr_cls = graph.resolve_attr_type(info.class_qname, rest[0])
            if attr_cls is not None:
                if attr_cls.startswith("ext:"):
                    return _site(info, node, text, "external",
                                 external=f"{attr_cls[4:]}.{rest[1]}")
                hit = graph.resolve_method(attr_cls, rest[1])
                if hit is not None:
                    return _site(info, node, text, "internal", callee=hit)
            if rest[1] in _BUILTIN_METHODS:
                return _site(info, node, text, "external",
                             external=f"<method>.{rest[1]}")
            return _site(info, node, text, "unresolved")
        return _site(info, node, text, "unresolved")

    # bare name
    if not rest:
        typed = state.type_of_name(head)
        if typed is not None and head not in mod.imports \
                and not typed.startswith("ext:"):
            # a local/param holding an instance: calling it is __call__
            call = graph.resolve_method(typed, "__call__")
            if call is not None:
                return _site(info, node, text, "internal", callee=call)
        target = _resolve_symbol(graph, mod, head)
        if target is not None:
            if target in graph.functions:
                return _site(info, node, text, "internal", callee=target)
            if target in graph.classes:
                ctor = graph.constructor_of(target)
                return _site(info, node, text, "internal",
                             callee=ctor or target)
            if target in graph.modules:
                return _site(info, node, text, "unresolved")
            return _site(info, node, text, "external", external=target)
        if head in state.params:
            return _site(info, node, text, "unresolved")
        if head in _BUILTIN_NAMES:
            return _site(info, node, text, "external",
                         external=f"builtins.{head}")
        return _site(info, node, text, "unresolved")

    # dotted: local/param receiver with an inferred type
    typed = state.type_of_name(head)
    if typed is not None:
        if typed.startswith("ext:"):
            return _site(info, node, text, "external",
                         external=".".join([typed[4:], *rest]))
        if len(rest) == 1:
            hit = graph.resolve_method(typed, rest[0])
            if hit is not None:
                return _site(info, node, text, "internal", callee=hit)

    # dotted through an imported root or module-scope symbol
    target = _resolve_symbol(graph, mod, head)
    if target is not None:
        full = ".".join([target, *rest])
        resolved = _resolve_dotted(graph, full)
        if resolved is not None:
            return _site(info, node, text, "internal", callee=resolved)
        root = target.split(".")[0]
        if root not in graph.modules and not any(
            m == root or m.startswith(root + ".") for m in graph.modules
        ):
            return _site(info, node, text, "external", external=full)
        return _site(info, node, text, "unresolved")

    # unknown receiver: builtin-ish method names classify as external
    if rest[-1] in _BUILTIN_METHODS:
        return _site(info, node, text, "external",
                     external=f"<method>.{rest[-1]}")
    return _site(info, node, text, "unresolved")


def _resolve_dotted(graph: CallGraph, full: str) -> str | None:
    """Resolve an absolute dotted path against the analyzed set."""
    if full in graph.functions:
        return full
    if full in graph.classes:
        return graph.constructor_of(full) or full
    parts = full.split(".")
    # Class.method through the MRO
    for split in range(len(parts) - 1, 0, -1):
        prefix = ".".join(parts[:split])
        if prefix in graph.classes:
            remainder = parts[split:]
            if len(remainder) == 1:
                return graph.resolve_method(prefix, remainder[0])
            return None
        if prefix in graph.modules:
            mod = graph.modules[prefix]
            remainder = parts[split:]
            head = remainder[0]
            sym = _resolve_symbol(graph, mod, head)
            if sym is None:
                return None
            if len(remainder) == 1:
                if sym in graph.functions:
                    return sym
                if sym in graph.classes:
                    return graph.constructor_of(sym) or sym
                return None
            return _resolve_dotted(graph, ".".join([sym, *remainder[1:]]))
    return None
